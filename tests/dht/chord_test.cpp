#include "dht/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.hpp"

namespace clash::dht {
namespace {

ChordRing make_ring(std::size_t n, unsigned vs = 1, std::uint64_t salt = 0) {
  ChordRing::Config cfg;
  cfg.hash_bits = 32;
  cfg.virtual_servers = vs;
  cfg.salt = salt;
  ChordRing ring(cfg);
  for (std::size_t i = 0; i < n; ++i) ring.add_server(ServerId{i});
  return ring;
}

TEST(Chord, MapIsDeterministic) {
  const auto ring = make_ring(50);
  for (std::uint64_t h = 0; h < 1000; h += 37) {
    EXPECT_EQ(ring.map(HashKey{h}), ring.map(HashKey{h}));
  }
}

TEST(Chord, MapMatchesSuccessorDefinition) {
  const auto ring = make_ring(20);
  // The owner of h must be the server whose position is the first at or
  // after h (with wrap-around).
  for (std::uint64_t probe = 0; probe < 100; ++probe) {
    const HashKey h{probe * 0x28F5C28ull};
    const ServerId owner = ring.map(h);
    const HashKey owner_pos = ring.successor_position(h);
    bool owner_holds_pos = false;
    for (const auto p : ring.positions_of(owner)) {
      owner_holds_pos |= (p == owner_pos);
    }
    EXPECT_TRUE(owner_holds_pos);
    // No other position lies in [h, owner_pos).
    for (std::size_t s = 0; s < ring.server_count(); ++s) {
      for (const auto p : ring.positions_of(ServerId{s})) {
        if (p == owner_pos) continue;
        EXPECT_FALSE(p.value >= h.value && p.value < owner_pos.value);
      }
    }
  }
}

TEST(Chord, LookupFindsSameOwnerAsMap) {
  const auto ring = make_ring(100);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const HashKey h{rng.next() & 0xFFFFFFFFu};
    const ServerId origin{rng.below(100)};
    const auto result = ring.lookup(h, origin);
    EXPECT_EQ(result.owner, ring.map(h));
  }
}

TEST(Chord, LookupFromOwnerIsZeroHops) {
  const auto ring = make_ring(64);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const HashKey h{rng.next() & 0xFFFFFFFFu};
    const auto owner = ring.map(h);
    // Starting at the owner: target already in (pred, self], zero hops.
    EXPECT_EQ(ring.lookup(h, owner).hops, 0u);
  }
}

TEST(Chord, HopsAreLogarithmic) {
  const std::size_t n = 1000;
  const auto ring = make_ring(n);
  Rng rng(11);
  double total_hops = 0;
  unsigned max_hops = 0;
  const int lookups = 2000;
  for (int i = 0; i < lookups; ++i) {
    const HashKey h{rng.next() & 0xFFFFFFFFu};
    const ServerId origin{rng.below(n)};
    const auto r = ring.lookup(h, origin);
    total_hops += r.hops;
    max_hops = std::max(max_hops, r.hops);
  }
  const double avg = total_hops / lookups;
  const double log_n = std::log2(double(n));
  // Chord theory: ~0.5 log2(S) average, O(log S) whp.
  EXPECT_GT(avg, 0.25 * log_n);
  EXPECT_LT(avg, 1.0 * log_n);
  EXPECT_LE(max_hops, unsigned(3 * log_n));
}

TEST(Chord, LookupThrowsForUnknownOrigin) {
  const auto ring = make_ring(4);
  EXPECT_THROW((void)ring.lookup(HashKey{1}, ServerId{99}),
               std::invalid_argument);
}

TEST(Chord, AddRemoveServer) {
  auto ring = make_ring(10);
  EXPECT_EQ(ring.server_count(), 10u);
  ring.remove_server(ServerId{3});
  EXPECT_EQ(ring.server_count(), 9u);
  // Removed server never owns anything.
  for (std::uint64_t h = 0; h < 5000; h += 13) {
    EXPECT_NE(ring.map(HashKey{h}), ServerId{3});
  }
  ring.add_server(ServerId{3});
  EXPECT_EQ(ring.server_count(), 10u);
}

TEST(Chord, RemovalOnlyMovesKeysToSuccessor) {
  auto ring = make_ring(30);
  std::map<std::uint64_t, ServerId> before;
  for (std::uint64_t h = 0; h < 3000; h += 7) before[h] = ring.map(HashKey{h});
  ring.remove_server(ServerId{5});
  for (const auto& [h, owner] : before) {
    const auto now = ring.map(HashKey{h});
    if (owner != ServerId{5}) {
      EXPECT_EQ(now, owner) << "key " << h << " moved unnecessarily";
    } else {
      EXPECT_NE(now, ServerId{5});
    }
  }
}

TEST(Chord, DuplicateAddThrows) {
  auto ring = make_ring(3);
  EXPECT_THROW(ring.add_server(ServerId{1}), std::invalid_argument);
}

TEST(Chord, VirtualServersSmoothAllocation) {
  // Measure the spread of hash-space ownership with and without
  // virtual servers; log(S) virtual servers should shrink it (Chord
  // Section: uniform partitioning).
  const std::size_t n = 128;
  auto share_spread = [&](unsigned vs) {
    const auto ring = make_ring(n, vs);
    std::map<std::uint64_t, ServerId> ring_view;
    std::vector<double> share(n, 0.0);
    // Sample ownership over a fine grid.
    const int grid = 1 << 16;
    for (int i = 0; i < grid; ++i) {
      const std::uint64_t h = (std::uint64_t(i) << 16);
      share[ring.map(HashKey{h}).value] += 1.0 / grid;
    }
    double max_share = 0;
    for (const double s : share) max_share = std::max(max_share, s);
    return max_share * double(n);  // 1.0 == perfectly fair
  };
  const double plain = share_spread(1);
  const double with_vs = share_spread(8);
  EXPECT_LT(with_vs, plain);
}

TEST(Chord, PositionsPerServerMatchesConfig) {
  const auto ring = make_ring(5, 4);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.positions_of(ServerId{i}).size(), 4u);
  }
}

TEST(Chord, EmptyRingMapsToInvalid) {
  ChordRing ring(ChordRing::Config{});
  EXPECT_FALSE(ring.map(HashKey{1}).valid());
}

}  // namespace
}  // namespace clash::dht
