#include "dht/hash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace clash::dht {
namespace {

TEST(KeyHasher, StaysInHashSpace) {
  for (const unsigned bits : {8u, 24u, 32u, 64u}) {
    const KeyHasher h(bits, KeyHasher::Algo::kMix64);
    for (std::uint64_t v = 0; v < 200; ++v) {
      const auto hk = h.hash_key(Key(v, 24));
      if (bits < 64) {
        EXPECT_LT(hk.value, std::uint64_t{1} << bits);
      }
    }
  }
}

TEST(KeyHasher, Deterministic) {
  const KeyHasher a(32, KeyHasher::Algo::kSha1, 7);
  const KeyHasher b(32, KeyHasher::Algo::kSha1, 7);
  EXPECT_EQ(a.hash_key(Key(123, 24)), b.hash_key(Key(123, 24)));
  EXPECT_EQ(a.hash_token(55), b.hash_token(55));
}

TEST(KeyHasher, SaltChangesPlacement) {
  const KeyHasher a(32, KeyHasher::Algo::kMix64, 1);
  const KeyHasher b(32, KeyHasher::Algo::kMix64, 2);
  int same = 0;
  for (std::uint64_t v = 0; v < 100; ++v) {
    same += (a.hash_key(Key(v, 24)) == b.hash_key(Key(v, 24)));
  }
  EXPECT_LT(same, 3);
}

TEST(KeyHasher, WidthMatters) {
  const KeyHasher h(32, KeyHasher::Algo::kMix64);
  // "0101" as a 4-bit key differs from "0101" zero-extended in 8 bits.
  EXPECT_NE(h.hash_key(Key(0b0101, 4)), h.hash_key(Key(0b01010000, 8)));
}

TEST(KeyHasher, BothAlgosSpreadUniformly) {
  for (const auto algo : {KeyHasher::Algo::kSha1, KeyHasher::Algo::kMix64}) {
    const KeyHasher h(16, algo);
    std::array<int, 16> buckets{};
    const int n = 16000;
    for (int v = 0; v < n; ++v) {
      buckets[h.hash_key(Key(std::uint64_t(v), 24)).value >> 12]++;
    }
    for (const int c : buckets) {
      EXPECT_NEAR(c, n / 16, 150) << (algo == KeyHasher::Algo::kSha1);
    }
  }
}

TEST(RingMath, OpenInterval) {
  const std::uint64_t mask = 0xFF;
  EXPECT_TRUE(ring_in_open(5, 2, 10, mask));
  EXPECT_FALSE(ring_in_open(2, 2, 10, mask));
  EXPECT_FALSE(ring_in_open(10, 2, 10, mask));
  // Wrapping interval (250, 5).
  EXPECT_TRUE(ring_in_open(252, 250, 5, mask));
  EXPECT_TRUE(ring_in_open(3, 250, 5, mask));
  EXPECT_FALSE(ring_in_open(100, 250, 5, mask));
  // Full circle (a == b): everything except the endpoint.
  EXPECT_TRUE(ring_in_open(1, 7, 7, mask));
  EXPECT_FALSE(ring_in_open(7, 7, 7, mask));
}

TEST(RingMath, HalfOpenInterval) {
  const std::uint64_t mask = 0xFF;
  EXPECT_TRUE(ring_in_half_open(10, 2, 10, mask));
  EXPECT_FALSE(ring_in_half_open(2, 2, 10, mask));
  EXPECT_TRUE(ring_in_half_open(5, 250, 5, mask));
}

TEST(RingMath, Distance) {
  const std::uint64_t mask = 0xFF;
  EXPECT_EQ(ring_distance(10, 20, mask), 10u);
  EXPECT_EQ(ring_distance(250, 5, mask), 11u);
  EXPECT_EQ(ring_distance(7, 7, mask), 0u);
}

}  // namespace
}  // namespace clash::dht
