// GroupLog unit coverage: head ordering, append/suffix/compact/reset,
// op application to group state, and RecoveryCoordinator bookkeeping.
#include <gtest/gtest.h>

#include "repl/log.hpp"
#include "repl/recovery.hpp"

namespace clash::repl {
namespace {

TEST(LogHead, LexicographicOrder) {
  EXPECT_LT((LogHead{1, 5}), (LogHead{1, 6}));
  EXPECT_LT((LogHead{1, 99}), (LogHead{2, 0}));
  EXPECT_EQ((LogHead{3, 4}), (LogHead{3, 4}));
  EXPECT_LE((LogHead{3, 4}), (LogHead{3, 4}));
  EXPECT_FALSE((LogHead{2, 0}) < (LogHead{1, 99}));
  EXPECT_EQ((LogHead{2, 7}).to_string(), "(2,7)");
}

TEST(GroupLog, AppendAdvancesHeadMonotonically) {
  GroupLog log(3, 10);
  EXPECT_EQ(log.head(), (LogHead{3, 10}));
  EXPECT_EQ(log.append(LogOp::del_stream(ClientId{1})), (LogHead{3, 11}));
  EXPECT_EQ(log.append(LogOp::del_stream(ClientId{2})), (LogHead{3, 12}));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.floor_seq(), 10u);
}

TEST(GroupLog, SuffixFromReturnsExactlyTheMissingOps) {
  GroupLog log(1, 0);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    log.append(LogOp::del_stream(ClientId{i}));
  }
  std::vector<LogOp> out;
  ASSERT_TRUE(log.suffix_from(2, out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].source, ClientId{3});
  EXPECT_EQ(out[2].source, ClientId{5});

  out.clear();
  ASSERT_TRUE(log.suffix_from(5, out));  // fully caught up
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(log.suffix_from(99, out));  // ahead of us: nothing to give
  EXPECT_TRUE(out.empty());
}

TEST(GroupLog, CompactionMovesTheFloor) {
  GroupLog log(1, 0);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    log.append(LogOp::del_stream(ClientId{i}));
  }
  log.compact();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.floor_seq(), 4u);
  EXPECT_EQ(log.head(), (LogHead{1, 4}));

  std::vector<LogOp> out;
  EXPECT_FALSE(log.suffix_from(2, out));  // predates the floor: snapshot
  EXPECT_TRUE(log.suffix_from(4, out));
  log.append(LogOp::del_stream(ClientId{5}));
  out.clear();
  ASSERT_TRUE(log.suffix_from(4, out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(GroupLog, ResetReanchorsAtSnapshotBoundary) {
  GroupLog log(1, 0);
  log.append(LogOp::del_stream(ClientId{1}));
  log.reset(4, 100);
  EXPECT_EQ(log.epoch(), 4u);
  EXPECT_EQ(log.head(), (LogHead{4, 100}));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.append(LogOp::del_stream(ClientId{2})), (LogHead{4, 101}));
}

TEST(GroupLog, ApplyReplaysOpsOntoGroupState) {
  GroupState st;
  GroupLog::apply(LogOp::put_stream({ClientId{1}, Key(0x12, 8), 2.0}), st);
  GroupLog::apply(LogOp::put_stream({ClientId{2}, Key(0x13, 8), 3.0}), st);
  EXPECT_EQ(st.streams.size(), 2u);
  EXPECT_DOUBLE_EQ(st.stream_rate, 5.0);

  // Upsert replaces the previous rate.
  GroupLog::apply(LogOp::put_stream({ClientId{1}, Key(0x12, 8), 4.0}), st);
  EXPECT_EQ(st.streams.size(), 2u);
  EXPECT_DOUBLE_EQ(st.stream_rate, 7.0);

  GroupLog::apply(LogOp::del_stream(ClientId{2}), st);
  EXPECT_EQ(st.streams.size(), 1u);
  EXPECT_DOUBLE_EQ(st.stream_rate, 4.0);
  GroupLog::apply(LogOp::del_stream(ClientId{99}), st);  // unknown: no-op
  EXPECT_DOUBLE_EQ(st.stream_rate, 4.0);

  GroupLog::apply(LogOp::put_query(QueryInfo{QueryId{7}, Key(0x12, 8)}), st);
  EXPECT_EQ(st.queries.size(), 1u);
  GroupLog::apply(LogOp::del_query(QueryId{7}), st);
  EXPECT_TRUE(st.queries.empty());

  // App deltas do not touch the object state.
  GroupLog::apply(LogOp::app_delta_op({1, 2, 3}), st);
  EXPECT_EQ(st.streams.size(), 1u);
}

TEST(RecoveryCoordinator, TracksRepairAndStaleness) {
  RecoveryCoordinator rc;
  const KeyGroup g = KeyGroup::of(Key(0x40, 8), 2);

  // Healed promotion: started behind, repaired to the advertised head.
  ASSERT_TRUE(rc.begin(g, LogHead{1, 5}));
  EXPECT_FALSE(rc.begin(g, LogHead{1, 5}));  // session already open
  rc.note_entries_repaired(g, 3);
  rc.finish(g, LogHead{1, 8}, LogHead{1, 8});
  EXPECT_EQ(rc.stats().sessions, 1u);
  EXPECT_EQ(rc.stats().entries_repaired, 3u);
  EXPECT_EQ(rc.stats().stale_promotions_averted, 1u);
  EXPECT_EQ(rc.stats().stale_promotions, 0u);
  EXPECT_FALSE(rc.active(g));

  // Stale promotion: nobody could repair us to the advertised head.
  ASSERT_TRUE(rc.begin(g, LogHead{1, 5}));
  rc.finish(g, LogHead{1, 5}, LogHead{1, 9});
  EXPECT_EQ(rc.stats().stale_promotions, 1u);

  // Snapshot pull.
  ASSERT_TRUE(rc.begin(g, LogHead{}));
  rc.note_snapshot_pulled(g);
  rc.finish(g, LogHead{2, 40}, LogHead{2, 40});
  EXPECT_EQ(rc.stats().snapshots_pulled, 1u);
  EXPECT_EQ(rc.stats().stale_promotions_averted, 2u);
}

}  // namespace
}  // namespace clash::repl
