// Message-level coverage of the operation-log replication engine
// inside ClashServer: incremental appends, gap detection + anti-entropy
// repair, snapshot-after-compaction, peer recovery at promotion (the
// stale-replica audit), app-delta replay, and rejoin handoffs. A tiny
// synchronous router stands in for the transport so individual frames
// can be blackholed to force divergence.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "clash/server.hpp"
#include "repl/log.hpp"

namespace clash {
namespace {

constexpr unsigned kWidth = 8;

ClashConfig log_config() {
  ClashConfig cfg;
  cfg.key_width = kWidth;
  cfg.initial_depth = 0;
  cfg.capacity = 1e9;  // never split under load in these tests
  cfg.replication_factor = 2;
  cfg.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.log_compact_threshold = 64;
  cfg.snapshot_chunk_objects = 2;  // exercise multi-chunk assembly
  return cfg;
}

/// Synchronous message router shared by every server's env.
struct Router {
  std::map<std::uint64_t, ClashServer*> servers;
  std::vector<ServerId> replica_targets;  // scripted replica set
  std::set<std::uint64_t> blackholed;
  ServerId lookup_owner{0};

  void deliver(ServerId from, ServerId to, const Message& msg) {
    if (blackholed.count(to.value) > 0) return;
    const auto it = servers.find(to.value);
    if (it != servers.end()) it->second->deliver(from, msg);
  }
};

class RouterEnv final : public ServerEnv {
 public:
  RouterEnv(Router& router, ServerId self) : router_(router), self_(self) {}

  dht::LookupResult dht_lookup(dht::HashKey) override {
    return dht::LookupResult{router_.lookup_owner, 0};
  }
  std::vector<ServerId> replica_targets(dht::HashKey, unsigned) override {
    return router_.replica_targets;
  }
  void send(ServerId to, const Message& msg) override {
    router_.deliver(self_, to, msg);
  }
  [[nodiscard]] SimTime now() const override { return SimTime{0}; }

 private:
  Router& router_;
  ServerId self_;
};

/// A cluster of bare ClashServers on the router: s(0) owns the root
/// group, s(1) and s(2) are its scripted replica set.
struct LogCluster {
  explicit LogCluster(std::size_t n, ClashConfig cfg = log_config()) {
    router.replica_targets = {ServerId{1}, ServerId{2}};
    router.lookup_owner = ServerId{0};
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(std::make_unique<RouterEnv>(router, ServerId{i}));
      servers.push_back(std::make_unique<ClashServer>(
          ServerId{i}, cfg, *envs.back(),
          dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0)));
      router.servers[i] = servers.back().get();
    }
  }

  ClashServer& s(std::size_t i) { return *servers[i]; }

  /// Activate the root group on s(0) (snapshots flow to the set).
  KeyGroup install_root() {
    ServerTableEntry entry;
    entry.group = KeyGroup::root(kWidth);
    entry.root = true;
    entry.active = true;
    s(0).install_entry(entry);
    return entry.group;
  }

  void add_stream(std::uint64_t source, std::uint64_t key, double rate) {
    AcceptObject obj;
    obj.key = Key(key, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{source};
    obj.stream_rate = rate;
    (void)s(0).handle_accept_object(obj);
  }

  void add_query(std::uint64_t id, std::uint64_t key) {
    AcceptObject obj;
    obj.key = Key(key, kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{id};
    (void)s(0).handle_accept_object(obj);
  }

  Router router;
  std::vector<std::unique_ptr<RouterEnv>> envs;
  std::vector<std::unique_ptr<ClashServer>> servers;
};

TEST(ReplicationLog, AppendsFlowToReplicasIncrementally) {
  LogCluster cluster(3);
  const KeyGroup root = cluster.install_root();

  cluster.add_stream(1, 0x12, 2.0);
  cluster.add_query(7, 0x34);
  cluster.add_stream(2, 0x56, 3.0);

  const auto owner_head = cluster.s(0).log_head(root);
  ASSERT_TRUE(owner_head.has_value());
  EXPECT_EQ(owner_head->seq, 3u);
  for (std::size_t i : {1u, 2u}) {
    EXPECT_EQ(cluster.s(i).replica_head(root), owner_head) << "s" << i;
    const GroupState* st = cluster.s(i).replica_state(root);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->streams.size(), 2u);
    EXPECT_EQ(st->queries.size(), 1u);
    EXPECT_DOUBLE_EQ(st->stream_rate, 5.0);
  }

  // Removal ops replicate too.
  cluster.s(0).remove_stream(ClientId{1}, Key(0x12, kWidth));
  EXPECT_EQ(cluster.s(1).replica_state(root)->streams.size(), 1u);
  EXPECT_DOUBLE_EQ(cluster.s(1).replica_state(root)->stream_rate, 3.0);
  EXPECT_EQ(cluster.s(1).replica_head(root), cluster.s(0).log_head(root));
}

TEST(ReplicationLog, GapHealsThroughAntiEntropyDiff) {
  LogCluster cluster(3);
  const KeyGroup root = cluster.install_root();
  cluster.add_stream(1, 0x11, 1.0);

  // s(1) misses two appends...
  cluster.router.blackholed.insert(1);
  cluster.add_stream(2, 0x22, 1.0);
  cluster.add_query(5, 0x33);
  cluster.router.blackholed.erase(1);
  EXPECT_LT(cluster.s(1).replica_head(root)->seq,
            cluster.s(0).log_head(root)->seq);

  // ...and the next live append carries a seq gap: s(1) answers with a
  // diff naming its real head, the owner streams the missing suffix.
  cluster.add_stream(3, 0x44, 1.0);
  EXPECT_EQ(cluster.s(1).replica_head(root), cluster.s(0).log_head(root));
  const GroupState* st = cluster.s(1).replica_state(root);
  EXPECT_EQ(st->streams.size(), 3u);
  EXPECT_EQ(st->queries.size(), 1u);
}

TEST(ReplicationLog, PeriodicProbeRepairsSilentDivergence) {
  LogCluster cluster(3);
  const KeyGroup root = cluster.install_root();
  cluster.add_stream(1, 0x11, 1.0);

  // s(2) silently misses the tail (no further append to expose it).
  cluster.router.blackholed.insert(2);
  cluster.add_stream(2, 0x22, 1.0);
  cluster.router.blackholed.erase(2);
  ASSERT_LT(cluster.s(2).replica_head(root)->seq,
            cluster.s(0).log_head(root)->seq);

  // The anti-entropy timer exchanges (epoch, seq) vectors and repairs.
  cluster.s(0).run_load_check();
  EXPECT_EQ(cluster.s(2).replica_head(root), cluster.s(0).log_head(root));
  EXPECT_EQ(cluster.s(2).replica_state(root)->streams.size(), 2u);
}

TEST(ReplicationLog, LagPastCompactionFloorGetsChunkedSnapshot) {
  auto cfg = log_config();
  cfg.log_compact_threshold = 3;
  LogCluster cluster(3, cfg);
  const KeyGroup root = cluster.install_root();

  // s(1) misses enough appends that the owner compacts past its head
  // (threshold 3), so a delta repair is impossible.
  cluster.router.blackholed.insert(1);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    cluster.add_stream(i, i * 17 % 251, 1.0);
  }
  cluster.router.blackholed.erase(1);
  ASSERT_GT(cluster.s(0).stats().log_compactions, 0u);

  cluster.s(0).run_load_check();  // probe -> diff -> snapshot (chunked)
  EXPECT_EQ(cluster.s(1).replica_head(root), cluster.s(0).log_head(root));
  EXPECT_EQ(cluster.s(1).replica_state(root)->streams.size(), 6u);
}

TEST(ReplicationLog, PromotionPullsMissingSuffixFromFresherPeer) {
  LogCluster cluster(3);
  const KeyGroup root = cluster.install_root();
  cluster.add_stream(1, 0x11, 1.0);

  // s(1) falls behind; s(2) stays fresh. The owner dies (silently).
  cluster.router.blackholed.insert(1);
  cluster.add_stream(2, 0x22, 2.0);
  cluster.add_query(9, 0x33);
  cluster.router.blackholed.erase(1);
  cluster.router.blackholed.insert(0);  // owner is gone
  const auto fresh_head = cluster.s(2).replica_head(root);
  ASSERT_LT(cluster.s(1).replica_head(root).value(), fresh_head.value());

  // The stale heir must not install its lagging copy: the recovery
  // pull drains the missing suffix from s(2) first.
  ASSERT_TRUE(cluster.s(1).promote_replica(root));
  const GroupState* st = cluster.s(1).group_state(root);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->streams.size(), 2u);
  EXPECT_EQ(st->queries.size(), 1u);
  EXPECT_DOUBLE_EQ(st->stream_rate, 3.0);
  EXPECT_GT(cluster.s(1).recovery_stats().entries_repaired, 0u);
  EXPECT_EQ(cluster.s(1).recovery_stats().stale_promotions, 0u);
  EXPECT_EQ(cluster.s(1).recovery_stats().stale_promotions_averted, 1u);
  // The new ownership line supersedes the dead owner's epoch.
  EXPECT_GT(cluster.s(1).log_head(root)->epoch, fresh_head->epoch);
}

TEST(ReplicationLog, PromotionWithoutLocalReplicaPullsPeerSnapshot) {
  LogCluster cluster(4);
  const KeyGroup root = cluster.install_root();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    cluster.add_stream(i, i * 31 % 251, 1.0);
  }
  cluster.router.blackholed.insert(0);  // owner gone
  // The heir s(3) never held a replica, but the set {s1, s2} did.
  ASSERT_FALSE(cluster.s(3).has_replica(root));
  ASSERT_TRUE(cluster.s(3).promote_replica(root));
  EXPECT_EQ(cluster.s(3).group_state(root)->streams.size(), 5u);
  // Both surviving holders answer the pull; at least one snapshot lands.
  EXPECT_GE(cluster.s(3).recovery_stats().snapshots_pulled, 1u);
  EXPECT_EQ(cluster.s(3).stats().groups_lost, 0u);
}

TEST(ReplicationLog, StalePromotionIsCountedWhenNoPeerCanHeal) {
  LogCluster cluster(3);
  const KeyGroup root = cluster.install_root();
  cluster.add_stream(1, 0x11, 1.0);
  // Both holders miss the tail append; the dying owner still manages
  // to advertise its head (1,2) to s(1) via one last anti-entropy
  // probe, but its repair never arrives and s(2) is equally stale.
  cluster.router.blackholed.insert(1);
  cluster.router.blackholed.insert(2);
  cluster.add_stream(2, 0x22, 1.0);
  cluster.router.blackholed.erase(1);
  cluster.router.blackholed.insert(0);  // diffs back to the owner die
  cluster.s(0).run_load_check();        // advertises (1,2) to s(1)
  cluster.router.blackholed.erase(2);

  ASSERT_TRUE(cluster.s(1).promote_replica(root));
  // s(1) knows (1,2) existed but could only reach (1,1): recorded as a
  // stale promotion, not silently ignored.
  EXPECT_EQ(cluster.s(1).recovery_stats().stale_promotions, 1u);
  EXPECT_EQ(cluster.s(1).group_state(root)->streams.size(), 1u);
}

/// Records replication app callbacks for delta-replay assertions.
class RecordingHooks final : public AppHooks {
 public:
  std::vector<std::uint8_t> snapshot;
  std::vector<std::vector<std::uint8_t>> applied;
  std::vector<std::uint8_t> imported;

  std::vector<std::uint8_t> snapshot_state(const KeyGroup&) override {
    return snapshot;
  }
  void import_state(const KeyGroup&,
                    const std::vector<std::uint8_t>& state) override {
    imported = state;
  }
  void apply_delta(const KeyGroup&,
                   const std::vector<std::uint8_t>& delta) override {
    applied.push_back(delta);
  }
};

TEST(ReplicationLog, AppDeltasReplayInOrderAtPromotion) {
  LogCluster cluster(3);
  RecordingHooks owner_hooks;
  owner_hooks.snapshot = {0xAA};
  RecordingHooks heir_hooks;
  cluster.s(0).set_app_hooks(&owner_hooks);
  cluster.s(1).set_app_hooks(&heir_hooks);
  const KeyGroup root = cluster.install_root();  // snapshot {0xAA} ships

  ASSERT_TRUE(cluster.s(0).append_app_delta(root, {1}));
  ASSERT_TRUE(cluster.s(0).append_app_delta(root, {2}));
  ASSERT_TRUE(cluster.s(0).append_app_delta(root, {3}));
  EXPECT_FALSE(cluster.s(1).append_app_delta(root, {9}));  // not the owner

  cluster.router.blackholed.insert(0);
  ASSERT_TRUE(cluster.s(1).promote_replica(root));
  EXPECT_EQ(heir_hooks.imported, (std::vector<std::uint8_t>{0xAA}));
  ASSERT_EQ(heir_hooks.applied.size(), 3u);
  EXPECT_EQ(heir_hooks.applied[0], (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(heir_hooks.applied[2], (std::vector<std::uint8_t>{3}));
}

TEST(ReplicationLog, HandoffPreservesRootFlagStateAndEpochFencing) {
  LogCluster cluster(4);
  const KeyGroup root = cluster.install_root();
  cluster.add_stream(1, 0x11, 1.0);
  cluster.add_query(4, 0x22);
  const auto old_epoch = cluster.s(0).log_head(root)->epoch;

  // The ring now maps the group to s(3): hand it back with state.
  cluster.router.lookup_owner = ServerId{3};
  EXPECT_EQ(cluster.s(0).handoff_groups(ServerId{3}), 1u);

  EXPECT_EQ(cluster.s(0).group_state(root), nullptr);
  EXPECT_FALSE(cluster.s(0).is_active());
  const auto* entry = cluster.s(3).table().find(root);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->active);
  EXPECT_TRUE(entry->root);
  EXPECT_EQ(cluster.s(3).group_state(root)->streams.size(), 1u);
  EXPECT_EQ(cluster.s(3).group_state(root)->queries.size(), 1u);
  // The new line fences out the old one.
  EXPECT_GT(cluster.s(3).log_head(root)->epoch, old_epoch);
  EXPECT_EQ(cluster.s(0).stats().handoffs, 1u);
}

TEST(ReplicationLog, HandoffToSelfOrUnmappedGroupsIsANoOp) {
  LogCluster cluster(3);
  (void)cluster.install_root();
  EXPECT_EQ(cluster.s(0).handoff_groups(ServerId{0}), 0u);
  cluster.router.lookup_owner = ServerId{0};  // still maps here
  EXPECT_EQ(cluster.s(0).handoff_groups(ServerId{2}), 0u);
  EXPECT_TRUE(cluster.s(0).is_active());
}

}  // namespace
}  // namespace clash
