// Regression coverage for the snapshot-transfer bugs the link-fault
// layer exposed, driven as exact frame sequences — each test plays the
// messages a faulty link produces (duplicated offers, a lost chunk
// with late re-delivery, a retransmitted stream) into a bare receiver
// and asserts the assembly survives. All three failed before the
// fixes:
//   1. a duplicate/competing SnapshotOffer mid-transfer overwrote
//      rec.pending and discarded every received chunk;
//   2. an out-of-sync chunk reset the assembly silently, leaving the
//      sender streaming a dead transfer until the next anti-entropy
//      round;
//   3. a re-delivered stream overwrote its map entry but its rate
//      accumulated twice.
#include <gtest/gtest.h>

#include <memory>

#include "clash/server.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

constexpr unsigned kWidth = 8;

ClashConfig log_config() {
  ClashConfig cfg;
  cfg.key_width = kWidth;
  cfg.initial_depth = 0;
  cfg.capacity = 1e9;
  cfg.replication_factor = 2;
  cfg.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.snapshot_chunk_objects = 2;
  return cfg;
}

/// A bare replica holder: no active groups, so offers are accepted,
/// and every outbound message (acks, nacks) lands in env.sent.
struct Holder {
  Holder()
      : server(ServerId{9}, log_config(), env,
               dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0)) {}

  void deliver(const Message& msg) { server.deliver(ServerId{0}, msg); }

  [[nodiscard]] std::size_t nacks() const {
    std::size_t n = 0;
    for (const auto& [to, msg] : env.sent) {
      if (const auto* ack = std::get_if<ReplAck>(&msg); ack && !ack->ok) ++n;
    }
    return n;
  }

  testing::MockServerEnv env;
  ClashServer server;
};

SnapshotOffer make_offer(const KeyGroup& group, repl::LogHead head,
                         std::uint32_t total) {
  SnapshotOffer offer;
  offer.group = group;
  offer.owner = ServerId{0};
  offer.head = head;
  offer.root = true;
  offer.total_chunks = total;
  return offer;
}

SnapshotChunk make_chunk(const KeyGroup& group, repl::LogHead head,
                         std::uint32_t index, std::uint32_t total,
                         std::vector<StreamInfo> streams,
                         std::vector<QueryInfo> queries = {}) {
  SnapshotChunk chunk;
  chunk.group = group;
  chunk.head = head;
  chunk.index = index;
  chunk.total = total;
  chunk.streams = std::move(streams);
  chunk.queries = std::move(queries);
  return chunk;
}

StreamInfo stream(std::uint64_t source, std::uint64_t key, double rate) {
  return StreamInfo{ClientId{source}, Key(key, kWidth), rate};
}

TEST(SnapshotTransfer, DuplicateOfferMidTransferDoesNotDiscardChunks) {
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead head{1, 5};

  holder.deliver(Message(make_offer(root, head, 2)));
  holder.deliver(Message(make_chunk(root, head, 0, 2,
                                    {stream(1, 0x11, 2.0)})));
  // The link re-delivers the offer (or a competing holder repeats it)
  // while chunk 1 is still in flight: the assembly must keep its
  // cursor — pre-fix this overwrote rec.pending and desynced the
  // stream, losing both chunks.
  holder.deliver(Message(make_offer(root, head, 2)));
  holder.deliver(Message(make_chunk(root, head, 1, 2,
                                    {stream(2, 0x22, 1.0)},
                                    {QueryInfo{QueryId{7}, Key(0x33, kWidth)}})));

  EXPECT_EQ(holder.server.stats().snapshot_offers_ignored, 1u);
  ASSERT_EQ(holder.server.replica_head(root), head);
  const GroupState* st = holder.server.replica_state(root);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->streams.size(), 2u);
  EXPECT_EQ(st->queries.size(), 1u);
  EXPECT_EQ(holder.nacks(), 0u);
}

TEST(SnapshotTransfer, StrictlyNewerOfferPreemptsTheAssembly) {
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead old_head{1, 5};
  const repl::LogHead new_head{2, 1};

  holder.deliver(Message(make_offer(root, old_head, 2)));
  holder.deliver(Message(make_chunk(root, old_head, 0, 2,
                                    {stream(1, 0x11, 2.0)})));
  // A fresher snapshot (bumped epoch) supersedes the one in flight.
  holder.deliver(Message(make_offer(root, new_head, 1)));
  holder.deliver(Message(make_chunk(root, new_head, 0, 1,
                                    {stream(9, 0x44, 4.0)})));

  ASSERT_EQ(holder.server.replica_head(root), new_head);
  const GroupState* st = holder.server.replica_state(root);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->streams.size(), 1u);
  EXPECT_DOUBLE_EQ(st->stream_rate, 4.0);
}

TEST(SnapshotTransfer, LostChunkNacksOnceAndAcceptsTheRestart) {
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead head{1, 6};

  holder.deliver(Message(make_offer(root, head, 3)));
  holder.deliver(Message(make_chunk(root, head, 0, 3,
                                    {stream(1, 0x11, 1.0)})));
  // Chunk 1 never arrives (the link ate it); chunk 2 exposes the gap.
  // Pre-fix the assembly died silently and the sender kept streaming a
  // dead transfer; now the holder must nack immediately so the sender
  // restarts without waiting out an anti-entropy period.
  holder.deliver(Message(make_chunk(root, head, 2, 3,
                                    {stream(3, 0x33, 1.0)})));
  EXPECT_EQ(holder.nacks(), 1u);
  EXPECT_EQ(holder.server.stats().snapshot_aborts, 1u);

  // The lost chunk shows up late (delayed, not dropped): remnants of
  // an already-nacked stream must stay silent — one nack per failed
  // transfer, not one per stale chunk.
  holder.deliver(Message(make_chunk(root, head, 1, 3,
                                    {stream(2, 0x22, 1.0)})));
  EXPECT_EQ(holder.nacks(), 1u);

  // The sender restarts the transfer from scratch; it must be
  // accepted even though its head equals the nacked one.
  holder.deliver(Message(make_offer(root, head, 3)));
  holder.deliver(Message(make_chunk(root, head, 0, 3,
                                    {stream(1, 0x11, 1.0)})));
  holder.deliver(Message(make_chunk(root, head, 1, 3,
                                    {stream(2, 0x22, 1.0)})));
  holder.deliver(Message(make_chunk(root, head, 2, 3,
                                    {stream(3, 0x33, 1.0)})));
  ASSERT_EQ(holder.server.replica_head(root), head);
  EXPECT_EQ(holder.server.replica_state(root)->streams.size(), 3u);
}

TEST(SnapshotTransfer, RedeliveredStreamDoesNotDoubleCountItsRate) {
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead head{1, 4};

  holder.deliver(Message(make_offer(root, head, 2)));
  holder.deliver(Message(make_chunk(root, head, 0, 2,
                                    {stream(1, 0x11, 2.0)})));
  // A retransmission re-delivers stream 1 in the second chunk (the
  // restarted sender cut its chunks differently). The map entry is
  // replaced; pre-fix the rate accumulated anyway.
  holder.deliver(Message(make_chunk(root, head, 1, 2,
                                    {stream(1, 0x11, 2.0),
                                     stream(2, 0x22, 1.0)})));

  ASSERT_EQ(holder.server.replica_head(root), head);
  const GroupState* st = holder.server.replica_state(root);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->streams.size(), 2u);
  EXPECT_DOUBLE_EQ(st->stream_rate, 3.0);
}

TEST(SnapshotTransfer, AppendGapDuringAssemblyStaysQuiet) {
  // Over paced TCP a long snapshot transfer overlaps routine
  // ReplAppends whose base the holder does not have yet. Nacking those
  // would make the sender cancel and restart the very transfer that is
  // about to fix the gap — so while an assembly is pending, a gapped
  // append must be dropped silently.
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead head{3, 10};

  holder.deliver(Message(make_offer(root, head, 2)));
  holder.deliver(Message(make_chunk(root, head, 0, 2,
                                    {stream(1, 0x11, 1.0)})));
  ReplAppend append;
  append.group = root;
  append.owner = ServerId{0};
  append.epoch = 3;
  append.base_seq = 10;  // far beyond the holder's (0,0) log
  append.entries.push_back(repl::LogOp::put_stream(stream(4, 0x44, 1.0)));
  holder.deliver(Message(append));
  EXPECT_EQ(holder.nacks(), 0u) << "append gap nacked mid-assembly";

  // The transfer completes and re-anchors the log at the offer head.
  holder.deliver(Message(make_chunk(root, head, 1, 2,
                                    {stream(2, 0x22, 1.0)})));
  EXPECT_EQ(holder.server.replica_head(root), head);

  // With no assembly in flight the same gap nacks as before.
  append.base_seq = 20;
  holder.deliver(Message(append));
  EXPECT_EQ(holder.nacks(), 1u);
}

TEST(SnapshotTransfer, DuplicatedAppliedChunkIsIdempotent) {
  Holder holder;
  const KeyGroup root = KeyGroup::root(kWidth);
  const repl::LogHead head{1, 4};

  holder.deliver(Message(make_offer(root, head, 2)));
  holder.deliver(Message(make_chunk(root, head, 0, 2,
                                    {stream(1, 0x11, 2.0)})));
  // The link duplicates the frame just applied: ignore, don't abort.
  holder.deliver(Message(make_chunk(root, head, 0, 2,
                                    {stream(1, 0x11, 2.0)})));
  holder.deliver(Message(make_chunk(root, head, 1, 2,
                                    {stream(2, 0x22, 1.0)})));

  ASSERT_EQ(holder.server.replica_head(root), head);
  EXPECT_DOUBLE_EQ(holder.server.replica_state(root)->stream_rate, 3.0);
  EXPECT_EQ(holder.nacks(), 0u);
}

}  // namespace
}  // namespace clash
