#include "cq/stream_engine.hpp"

#include <gtest/gtest.h>

namespace clash::cq {
namespace {

ContinuousQuery query(std::uint64_t id, const char* scope) {
  return ContinuousQuery{QueryId{id}, KeyGroup::parse(scope, 8).value(), {}};
}

TEST(StreamEngine, FiresSinkPerMatch) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fired;
  StreamEngine engine(8, [&](const ContinuousQuery& q, const Record& r) {
    fired.emplace_back(q.id.value, r.key.value());
  });
  engine.register_query(query(1, "0110*"));
  engine.register_query(query(2, "0*"));

  EXPECT_EQ(engine.process(Record{Key(0b01101111, 8), {}}), 2u);
  EXPECT_EQ(engine.process(Record{Key(0b11111111, 8), {}}), 0u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(engine.records_processed(), 2u);
  EXPECT_EQ(engine.matches_fired(), 2u);
}

TEST(StreamEngine, UnregisterStopsMatching) {
  StreamEngine engine(8);
  engine.register_query(query(1, "0*"));
  EXPECT_TRUE(engine.unregister_query(QueryId{1}));
  EXPECT_FALSE(engine.unregister_query(QueryId{1}));
  EXPECT_EQ(engine.process(Record{Key(0, 8), {}}), 0u);
}

TEST(StreamEngine, MigrationMovesScopedQueries) {
  StreamEngine a(8), b(8);
  a.register_query(query(1, "0110*"));
  a.register_query(query(2, "1*"));

  // CLASH split of group 0* hands the right half... here migrate the
  // whole 0-subtree to engine b, as a split-to-b of group 0* would.
  const auto moved = a.migrate_out(KeyGroup::parse("0*", 8).value());
  ASSERT_EQ(moved.size(), 1u);
  b.migrate_in(moved);

  EXPECT_EQ(a.query_count(), 1u);
  EXPECT_EQ(b.query_count(), 1u);
  EXPECT_EQ(a.process(Record{Key(0b01101111, 8), {}}), 0u);
  EXPECT_EQ(b.process(Record{Key(0b01101111, 8), {}}), 1u);
}

TEST(StreamEngine, WorksWithoutSink) {
  StreamEngine engine(8);
  engine.register_query(query(1, "0*"));
  EXPECT_EQ(engine.process(Record{Key(0, 8), {}}), 1u);
}

TEST(StreamEngine, SnapshotExportIsNonDestructive) {
  StreamEngine engine(8);
  ContinuousQuery q1 = query(1, "0110*");
  q1.predicates.push_back({3, Predicate::Op::kGe, -5});
  engine.register_query(q1);
  engine.register_query(query(2, "0111*"));
  engine.register_query(query(3, "1*"));

  const auto blob = engine.export_group(KeyGroup::parse("01*", 8).value());
  EXPECT_EQ(engine.query_count(), 3u);  // still running everything

  StreamEngine restored(8);
  restored.import_blob(blob);
  EXPECT_EQ(restored.query_count(), 2u);  // only the scoped queries
  EXPECT_EQ(restored.process(Record{Key(0b01101111, 8), {{0, 0, 0, 7}}}),
            1u);
  EXPECT_EQ(restored.process(Record{Key(0b01111111, 8), {}}), 1u);
  EXPECT_EQ(restored.process(Record{Key(0b10000000, 8), {}}), 0u);
}

TEST(StreamEngine, PredicatesSurviveTheBlobRoundTrip) {
  StreamEngine engine(8);
  ContinuousQuery q = query(9, "0*");
  q.predicates.push_back({0, Predicate::Op::kGt, 10});
  q.predicates.push_back({1, Predicate::Op::kEq, -3});
  engine.register_query(q);

  StreamEngine restored(8);
  restored.import_blob(engine.export_group(KeyGroup::root(8)));
  EXPECT_EQ(restored.process(Record{Key(0b00000001, 8), {11, -3}}), 1u);
  EXPECT_EQ(restored.process(Record{Key(0b00000001, 8), {11, 4}}), 0u);
  EXPECT_EQ(restored.process(Record{Key(0b00000001, 8), {10, -3}}), 0u);
}

TEST(StreamEngine, DeltasApplyRegisterAndUnregister) {
  StreamEngine source(8);
  StreamEngine replica(8);

  ContinuousQuery q = query(4, "01*");
  ASSERT_TRUE(replica.apply_delta(StreamEngine::encode_register(q)));
  EXPECT_EQ(replica.query_count(), 1u);
  EXPECT_EQ(replica.process(Record{Key(0b01000000, 8), {}}), 1u);

  ASSERT_TRUE(replica.apply_delta(StreamEngine::encode_unregister(QueryId{4})));
  EXPECT_EQ(replica.query_count(), 0u);
  (void)source;
}

TEST(StreamEngine, MalformedDeltasAreRejected) {
  StreamEngine engine(8);
  EXPECT_FALSE(engine.apply_delta({}));
  EXPECT_FALSE(engine.apply_delta({0xFF, 1, 2}));
  auto good = StreamEngine::encode_register(query(1, "0*"));
  good.push_back(0x00);  // trailing garbage
  EXPECT_FALSE(engine.apply_delta(good));
  auto truncated = StreamEngine::encode_register(query(1, "0*"));
  truncated.resize(truncated.size() - 2);
  EXPECT_FALSE(engine.apply_delta(truncated));
  EXPECT_EQ(engine.query_count(), 0u);
}

}  // namespace
}  // namespace clash::cq
