#include "cq/stream_engine.hpp"

#include <gtest/gtest.h>

namespace clash::cq {
namespace {

ContinuousQuery query(std::uint64_t id, const char* scope) {
  return ContinuousQuery{QueryId{id}, KeyGroup::parse(scope, 8).value(), {}};
}

TEST(StreamEngine, FiresSinkPerMatch) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fired;
  StreamEngine engine(8, [&](const ContinuousQuery& q, const Record& r) {
    fired.emplace_back(q.id.value, r.key.value());
  });
  engine.register_query(query(1, "0110*"));
  engine.register_query(query(2, "0*"));

  EXPECT_EQ(engine.process(Record{Key(0b01101111, 8), {}}), 2u);
  EXPECT_EQ(engine.process(Record{Key(0b11111111, 8), {}}), 0u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(engine.records_processed(), 2u);
  EXPECT_EQ(engine.matches_fired(), 2u);
}

TEST(StreamEngine, UnregisterStopsMatching) {
  StreamEngine engine(8);
  engine.register_query(query(1, "0*"));
  EXPECT_TRUE(engine.unregister_query(QueryId{1}));
  EXPECT_FALSE(engine.unregister_query(QueryId{1}));
  EXPECT_EQ(engine.process(Record{Key(0, 8), {}}), 0u);
}

TEST(StreamEngine, MigrationMovesScopedQueries) {
  StreamEngine a(8), b(8);
  a.register_query(query(1, "0110*"));
  a.register_query(query(2, "1*"));

  // CLASH split of group 0* hands the right half... here migrate the
  // whole 0-subtree to engine b, as a split-to-b of group 0* would.
  const auto moved = a.migrate_out(KeyGroup::parse("0*", 8).value());
  ASSERT_EQ(moved.size(), 1u);
  b.migrate_in(moved);

  EXPECT_EQ(a.query_count(), 1u);
  EXPECT_EQ(b.query_count(), 1u);
  EXPECT_EQ(a.process(Record{Key(0b01101111, 8), {}}), 0u);
  EXPECT_EQ(b.process(Record{Key(0b01101111, 8), {}}), 1u);
}

TEST(StreamEngine, WorksWithoutSink) {
  StreamEngine engine(8);
  engine.register_query(query(1, "0*"));
  EXPECT_EQ(engine.process(Record{Key(0, 8), {}}), 1u);
}

}  // namespace
}  // namespace clash::cq
