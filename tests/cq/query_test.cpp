#include "cq/query.hpp"

#include <gtest/gtest.h>

namespace clash::cq {
namespace {

Record record(const char* key_bits, std::vector<std::int64_t> attrs = {}) {
  return Record{Key::parse(key_bits).value(), std::move(attrs)};
}

TEST(Predicate, AllOperators) {
  using Op = Predicate::Op;
  EXPECT_TRUE((Predicate{0, Op::kEq, 5}.eval(5)));
  EXPECT_FALSE((Predicate{0, Op::kEq, 5}.eval(6)));
  EXPECT_TRUE((Predicate{0, Op::kNe, 5}.eval(6)));
  EXPECT_TRUE((Predicate{0, Op::kLt, 5}.eval(4)));
  EXPECT_FALSE((Predicate{0, Op::kLt, 5}.eval(5)));
  EXPECT_TRUE((Predicate{0, Op::kLe, 5}.eval(5)));
  EXPECT_TRUE((Predicate{0, Op::kGt, 5}.eval(6)));
  EXPECT_TRUE((Predicate{0, Op::kGe, 5}.eval(5)));
  EXPECT_FALSE((Predicate{0, Op::kGe, 5}.eval(4)));
}

TEST(Predicate, ToString) {
  EXPECT_EQ((Predicate{2, Predicate::Op::kLe, 9}.to_string()), "a2 <= 9");
}

TEST(ContinuousQuery, ScopeFiltersKeys) {
  ContinuousQuery q{QueryId{1}, KeyGroup::parse("0110*", 7).value(), {}};
  EXPECT_TRUE(q.matches(record("0110101")));
  EXPECT_FALSE(q.matches(record("0111101")));
}

TEST(ContinuousQuery, ConjunctivePredicates) {
  ContinuousQuery q{QueryId{1},
                    KeyGroup::parse("*", 7).value(),
                    {{0, Predicate::Op::kGe, 10}, {1, Predicate::Op::kLt, 5}}};
  EXPECT_TRUE(q.matches(record("0000000", {10, 4})));
  EXPECT_FALSE(q.matches(record("0000000", {9, 4})));
  EXPECT_FALSE(q.matches(record("0000000", {10, 5})));
}

TEST(ContinuousQuery, MissingAttributeFailsPredicate) {
  ContinuousQuery q{QueryId{1},
                    KeyGroup::parse("*", 7).value(),
                    {{3, Predicate::Op::kEq, 1}}};
  EXPECT_FALSE(q.matches(record("0000000", {1})));  // attr 3 absent
}

TEST(Record, AttrAccess) {
  const auto r = record("0000000", {7, 8});
  EXPECT_EQ(r.attr(0), 7);
  EXPECT_EQ(r.attr(1), 8);
  EXPECT_EQ(r.attr(2), std::nullopt);
}

}  // namespace
}  // namespace clash::cq
