#include "cq/query_index.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace clash::cq {
namespace {

ContinuousQuery query(std::uint64_t id, const char* scope,
                      std::vector<Predicate> preds = {}) {
  return ContinuousQuery{QueryId{id}, KeyGroup::parse(scope, 8).value(),
                         std::move(preds)};
}

Record record(std::uint64_t key, std::vector<std::int64_t> attrs = {}) {
  return Record{Key(key, 8), std::move(attrs)};
}

TEST(QueryIndex, MatchesByScopePrefix) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*"));
  idx.insert(query(2, "01*"));
  idx.insert(query(3, "1*"));

  const auto hits = idx.match(record(0b01101010));
  ASSERT_EQ(hits.size(), 2u);
  // Matches arrive shallow-to-deep.
  EXPECT_EQ(hits[0]->id, QueryId{2});
  EXPECT_EQ(hits[1]->id, QueryId{1});
}

TEST(QueryIndex, PredicatesFilterWithinScope) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*", {{0, Predicate::Op::kGt, 10}}));
  EXPECT_TRUE(idx.match(record(0b01100000, {5})).empty());
  EXPECT_EQ(idx.match(record(0b01100000, {11})).size(), 1u);
}

TEST(QueryIndex, EraseRemoves) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*"));
  EXPECT_TRUE(idx.erase(QueryId{1}));
  EXPECT_FALSE(idx.erase(QueryId{1}));
  EXPECT_TRUE(idx.match(record(0b01101010)).empty());
  EXPECT_EQ(idx.size(), 0u);
}

TEST(QueryIndex, DuplicateIdThrows) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*"));
  EXPECT_THROW(idx.insert(query(1, "1*")), std::invalid_argument);
}

TEST(QueryIndex, QueriesWithinGroup) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*"));
  idx.insert(query(2, "01101*"));
  idx.insert(query(3, "0111*"));
  idx.insert(query(4, "1*"));

  const auto within = idx.queries_within(KeyGroup::parse("011*", 8).value());
  ASSERT_EQ(within.size(), 3u);
}

TEST(QueryIndex, ExtractWithinMigratesState) {
  QueryIndex idx(8);
  idx.insert(query(1, "0110*"));
  idx.insert(query(2, "1*"));
  auto moved = idx.extract_within(KeyGroup::parse("0*", 8).value());
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].id, QueryId{1});
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_NE(idx.find(QueryId{2}), nullptr);
  EXPECT_EQ(idx.find(QueryId{1}), nullptr);
}

TEST(QueryIndex, FullDepthScope) {
  QueryIndex idx(8);
  idx.insert(query(1, "01101010"));
  EXPECT_EQ(idx.match(record(0b01101010)).size(), 1u);
  EXPECT_TRUE(idx.match(record(0b01101011)).empty());
}

// Property: index results agree with brute-force evaluation over random
// query sets and records.
TEST(QueryIndex, MatchesBruteForce) {
  Rng rng(4242);
  QueryIndex idx(8);
  std::vector<ContinuousQuery> all;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const unsigned depth = unsigned(rng.below(9));
    const Key vk = shape(Key(rng.next() & 0xFF, 8), depth);
    ContinuousQuery q{QueryId{i}, KeyGroup::of(vk, depth), {}};
    if (rng.bernoulli(0.5)) {
      q.predicates.push_back(
          {0, Predicate::Op::kGe, std::int64_t(rng.below(10))});
    }
    idx.insert(q);
    all.push_back(q);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const Record r{Key(rng.next() & 0xFF, 8),
                   {std::int64_t(rng.below(10))}};
    std::size_t expect = 0;
    for (const auto& q : all) expect += q.matches(r);
    EXPECT_EQ(idx.match(r).size(), expect);
  }
}

}  // namespace
}  // namespace clash::cq
