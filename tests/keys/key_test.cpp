#include "keys/key.hpp"

#include <gtest/gtest.h>

namespace clash {
namespace {

TEST(Key, ParseAndToString) {
  const auto k = Key::parse("0110101");
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value().width(), 7u);
  EXPECT_EQ(k.value().value(), 0b0110101u);
  EXPECT_EQ(k.value().to_string(), "0110101");
}

TEST(Key, ParseRejectsBadInput) {
  EXPECT_FALSE(Key::parse("").ok());
  EXPECT_FALSE(Key::parse("01x").ok());
  EXPECT_FALSE(Key::parse(std::string(65, '0')).ok());
}

TEST(Key, BitIsMsbFirst) {
  const Key k(0b1010, 4);
  EXPECT_TRUE(k.bit(0));
  EXPECT_FALSE(k.bit(1));
  EXPECT_TRUE(k.bit(2));
  EXPECT_FALSE(k.bit(3));
}

TEST(Key, PrefixValue) {
  const Key k(0b0110101, 7);
  EXPECT_EQ(k.prefix_value(0), 0u);
  EXPECT_EQ(k.prefix_value(4), 0b0110u);
  EXPECT_EQ(k.prefix_value(7), 0b0110101u);
}

// The paper's Section 4 example: the virtual key for "0110*" in a 7-bit
// space is 0110000 (decimal 48); "01101*" expands to 0110100 (54).
TEST(Key, ShapeMatchesPaperExample) {
  const Key k(0b0110101, 7);
  EXPECT_EQ(shape(k, 4).value(), 48u);
  EXPECT_EQ(shape(k, 5).value(), 52u);  // "01101" + "00"
  const Key k2(0b0110100, 7);
  EXPECT_EQ(shape(k2, 5).value(), 52u);
  // The paper's decimal-54 example corresponds to the full expansion of
  // "0110110": check shape keeps d bits exactly.
  EXPECT_EQ(shape(Key(54, 7), 5).to_string(), "0110100");
}

TEST(Key, ShapeZeroDepthIsZero) {
  const Key k(0b1111, 4);
  EXPECT_EQ(shape(k, 0).value(), 0u);
  EXPECT_EQ(shape(k, 4), k);
}

TEST(Key, WithBit) {
  const Key k(0b0000, 4);
  EXPECT_EQ(k.with_bit(0, true).to_string(), "1000");
  EXPECT_EQ(k.with_bit(3, true).to_string(), "0001");
  EXPECT_EQ(Key(0b1111, 4).with_bit(1, false).to_string(), "1011");
}

TEST(Key, CommonPrefixLen) {
  const Key a(0b0110101, 7);
  EXPECT_EQ(a.common_prefix_len(Key(0b0110101, 7)), 7u);
  EXPECT_EQ(a.common_prefix_len(Key(0b0110100, 7)), 6u);
  EXPECT_EQ(a.common_prefix_len(Key(0b0110001, 7)), 4u);
  EXPECT_EQ(a.common_prefix_len(Key(0b1110101, 7)), 0u);
}

TEST(Key, MatchesPrefix) {
  const Key a(0b0110101, 7);
  const Key b(0b0110011, 7);
  EXPECT_TRUE(a.matches_prefix(b, 4));
  EXPECT_FALSE(a.matches_prefix(b, 5));
  EXPECT_TRUE(a.matches_prefix(b, 0));
}

TEST(Key, OrderingAndEquality) {
  EXPECT_TRUE(Key(1, 4) < Key(2, 4));
  EXPECT_TRUE(Key(3, 4) < Key(0, 8));  // width dominates
  EXPECT_EQ(Key(5, 4), Key(5, 4));
  EXPECT_NE(Key(5, 4), Key(5, 5));
}

TEST(Key, FullWidth64) {
  const Key k(~std::uint64_t{0}, 64);
  EXPECT_EQ(k.width(), 64u);
  EXPECT_TRUE(k.bit(0));
  EXPECT_TRUE(k.bit(63));
  EXPECT_EQ(shape(k, 1).value(), std::uint64_t{1} << 63);
}

TEST(Key, HashDistinguishesWidth) {
  const std::hash<Key> h;
  EXPECT_NE(h(Key(5, 4)), h(Key(5, 5)));
}

}  // namespace
}  // namespace clash
