#include "keys/quadtree.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace clash {
namespace {

TEST(QuadTree, KeyWidth) {
  EXPECT_EQ(QuadTreeEncoder(4).key_width(), 8u);
  EXPECT_EQ(QuadTreeEncoder(12).key_width(), 24u);
}

TEST(QuadTree, QuadrantLabels) {
  const QuadTreeEncoder enc(1);
  // One level: 2-bit keys (row, col).
  EXPECT_EQ(enc.encode(0.1, 0.1).to_string(), "00");  // bottom-left
  EXPECT_EQ(enc.encode(0.9, 0.1).to_string(), "01");  // bottom-right
  EXPECT_EQ(enc.encode(0.1, 0.9).to_string(), "10");  // top-left
  EXPECT_EQ(enc.encode(0.9, 0.9).to_string(), "11");  // top-right
}

TEST(QuadTree, NearbyPointsShareLongPrefixes) {
  const QuadTreeEncoder enc(12);
  const Key a = enc.encode(0.500001, 0.500001);
  const Key b = enc.encode(0.500002, 0.500002);
  EXPECT_GE(a.common_prefix_len(b), 16u);
  const Key far = enc.encode(0.01, 0.99);
  EXPECT_LE(a.common_prefix_len(far), 2u);
}

TEST(QuadTree, EncodeDecodeRoundTrip) {
  const QuadTreeEncoder enc(12);
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform01();
    const double y = rng.uniform01();
    const auto p = enc.decode(enc.encode(x, y));
    // Cell size = 2^-12; the decoded centre is within half a cell.
    EXPECT_NEAR(p.x, x, 1.0 / 4096);
    EXPECT_NEAR(p.y, y, 1.0 / 4096);
  }
}

TEST(QuadTree, CellContainsItsPoints) {
  const QuadTreeEncoder enc(6);
  Rng rng(78);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform01();
    const double y = rng.uniform01();
    const Key k = enc.encode(x, y);
    for (unsigned depth = 0; depth <= enc.key_width(); depth += 2) {
      const auto cell = enc.cell(KeyGroup::of(k, depth));
      EXPECT_TRUE(cell.contains(x, y)) << "depth " << depth;
    }
  }
}

TEST(QuadTree, OddDepthCellIsHalfQuadrant) {
  const QuadTreeEncoder enc(2);
  const Key k = enc.encode(0.1, 0.1);  // "0000"
  const auto cell = enc.cell(KeyGroup::of(k, 1));
  // Depth 1 splits on the row bit: bottom half, full width.
  EXPECT_DOUBLE_EQ(cell.x0, 0.0);
  EXPECT_DOUBLE_EQ(cell.x1, 1.0);
  EXPECT_DOUBLE_EQ(cell.y0, 0.0);
  EXPECT_DOUBLE_EQ(cell.y1, 0.5);
}

TEST(QuadTree, ClampsOutOfRange) {
  const QuadTreeEncoder enc(4);
  EXPECT_EQ(enc.encode(-1.0, -5.0), enc.encode(0.0, 0.0));
  EXPECT_EQ(enc.encode(2.0, 7.0), enc.encode(0.999999, 0.999999));
}

TEST(QuadTree, RootCellIsUnitSquare) {
  const QuadTreeEncoder enc(4);
  const auto cell = enc.cell(KeyGroup::root(8));
  EXPECT_DOUBLE_EQ(cell.x0, 0.0);
  EXPECT_DOUBLE_EQ(cell.y0, 0.0);
  EXPECT_DOUBLE_EQ(cell.x1, 1.0);
  EXPECT_DOUBLE_EQ(cell.y1, 1.0);
}

}  // namespace
}  // namespace clash
