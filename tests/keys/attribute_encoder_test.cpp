#include "keys/attribute_encoder.hpp"

#include <gtest/gtest.h>

namespace clash {
namespace {

AttributeEncoder make_encoder() {
  auto enc = AttributeEncoder::create({{"region", 4}, {"type", 3}, {"id", 5}});
  EXPECT_TRUE(enc.ok());
  return enc.value();
}

TEST(AttributeEncoder, TotalWidth) {
  const auto enc = make_encoder();
  EXPECT_EQ(enc.key_width(), 12u);
  EXPECT_EQ(enc.field_offset(0), 0u);
  EXPECT_EQ(enc.field_offset(1), 4u);
  EXPECT_EQ(enc.field_offset(2), 7u);
}

TEST(AttributeEncoder, EncodeDecodeRoundTrip) {
  const auto enc = make_encoder();
  const std::uint64_t values[] = {0b1010, 0b011, 0b10001};
  const auto key = enc.encode(values);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value().to_string(), "101001110001");
  const auto decoded = enc.decode(key.value());
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], values[0]);
  EXPECT_EQ(decoded[1], values[1]);
  EXPECT_EQ(decoded[2], values[2]);
}

TEST(AttributeEncoder, LeadingFieldGivesPrefixClustering) {
  const auto enc = make_encoder();
  const std::uint64_t a[] = {5, 1, 2};
  const std::uint64_t b[] = {5, 7, 30};
  // Same region -> identical 4-bit prefix, so CLASH can cluster them.
  EXPECT_EQ(enc.encode(a).value().prefix_value(4),
            enc.encode(b).value().prefix_value(4));
}

TEST(AttributeEncoder, RejectsOversizedValue) {
  const auto enc = make_encoder();
  const std::uint64_t bad[] = {16, 0, 0};  // region needs 5 bits
  EXPECT_FALSE(enc.encode(bad).ok());
}

TEST(AttributeEncoder, RejectsWrongArity) {
  const auto enc = make_encoder();
  const std::uint64_t two[] = {1, 2};
  EXPECT_FALSE(enc.encode(std::span(two, 2)).ok());
}

TEST(AttributeEncoder, RejectsBadSchemas) {
  EXPECT_FALSE(AttributeEncoder::create({{"a", 0}}).ok());
  EXPECT_FALSE(AttributeEncoder::create({{"a", 40}, {"b", 30}}).ok());
  EXPECT_FALSE(AttributeEncoder::create({}).ok());
}

TEST(AttributeEncoder, SingleField) {
  auto enc = AttributeEncoder::create({{"only", 8}});
  ASSERT_TRUE(enc.ok());
  const std::uint64_t v[] = {0xAB};
  EXPECT_EQ(enc.value().encode(v).value().value(), 0xABu);
}

}  // namespace
}  // namespace clash
