#include "keys/key_group.hpp"

#include <gtest/gtest.h>

namespace clash {
namespace {

KeyGroup group(const char* label, unsigned width = 7) {
  auto g = KeyGroup::parse(label, width);
  EXPECT_TRUE(g.ok()) << label;
  return g.value();
}

// Section 4: the key group "0110*" includes identifiers "0110101" and
// "0110111"; its virtual key is "0110000" with depth 4.
TEST(KeyGroup, PaperExampleMembership) {
  const KeyGroup g = group("0110*");
  EXPECT_EQ(g.depth(), 4u);
  EXPECT_EQ(g.virtual_key().to_string(), "0110000");
  EXPECT_TRUE(g.contains(Key(0b0110101, 7)));
  EXPECT_TRUE(g.contains(Key(0b0110111, 7)));
  EXPECT_FALSE(g.contains(Key(0b0111111, 7)));
}

// Expanding "0110*" creates "01100*" and "01101*"; "01100*" expands to
// the same full virtual key as the parent (same hash, same server).
TEST(KeyGroup, SplitMatchesPaperSemantics) {
  const KeyGroup g = group("0110*");
  const KeyGroup left = g.left_child();
  const KeyGroup right = g.right_child();
  EXPECT_EQ(left.label(), "01100*");
  EXPECT_EQ(right.label(), "01101*");
  EXPECT_EQ(left.depth(), 5u);
  EXPECT_EQ(left.virtual_key(), g.virtual_key());  // same Map() target
  EXPECT_NE(right.virtual_key(), g.virtual_key());
  EXPECT_EQ(right.virtual_key().to_string(), "0110100");
}

TEST(KeyGroup, CardinalityHalvesPerDepth) {
  EXPECT_EQ(group("*").cardinality(), 128u);
  EXPECT_EQ(group("0*").cardinality(), 64u);
  EXPECT_EQ(group("0110*").cardinality(), 8u);
  EXPECT_EQ(group("0110101").cardinality(), 1u);
}

TEST(KeyGroup, ParentAndSibling) {
  const KeyGroup g = group("01101*");
  EXPECT_EQ(g.parent().label(), "0110*");
  EXPECT_TRUE(g.is_right_child());
  EXPECT_EQ(g.sibling().label(), "01100*");
  EXPECT_FALSE(g.sibling().is_right_child());
  EXPECT_EQ(g.sibling().sibling(), g);
}

TEST(KeyGroup, ChildrenPartitionParent) {
  const KeyGroup g = group("011*");
  const auto l = g.left_child();
  const auto r = g.right_child();
  for (std::uint64_t v = 0; v < 128; ++v) {
    const Key k(v, 7);
    EXPECT_EQ(g.contains(k), l.contains(k) || r.contains(k));
    EXPECT_FALSE(l.contains(k) && r.contains(k));
  }
}

TEST(KeyGroup, Covers) {
  EXPECT_TRUE(group("011*").covers(group("0110*")));
  EXPECT_TRUE(group("011*").covers(group("011*")));
  EXPECT_FALSE(group("0110*").covers(group("011*")));
  EXPECT_FALSE(group("010*").covers(group("0110*")));
  EXPECT_TRUE(group("*").covers(group("0110101")));
}

TEST(KeyGroup, RootGroup) {
  const KeyGroup root = KeyGroup::root(7);
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.cardinality(), 128u);
  for (std::uint64_t v = 0; v < 128; ++v) {
    EXPECT_TRUE(root.contains(Key(v, 7)));
  }
}

TEST(KeyGroup, ParseValidation) {
  EXPECT_FALSE(KeyGroup::parse("011", 7).ok());       // not full width
  EXPECT_FALSE(KeyGroup::parse("01101010*", 7).ok()); // too long
  EXPECT_FALSE(KeyGroup::parse("01a*", 7).ok());
  EXPECT_TRUE(KeyGroup::parse("0110101", 7).ok());    // full-depth leaf
  EXPECT_TRUE(KeyGroup::parse("*", 7).ok());          // root
}

TEST(KeyGroup, LabelRoundTrips) {
  for (const char* label : {"*", "0*", "1*", "0110*", "011010*", "0110101"}) {
    EXPECT_EQ(group(label).label(), label);
  }
}

TEST(KeyGroup, OfZeroesSuffix) {
  const KeyGroup g = KeyGroup::of(Key(0b0110101, 7), 4);
  EXPECT_EQ(g.virtual_key().to_string(), "0110000");
  EXPECT_EQ(g.label(), "0110*");
}

TEST(KeyGroup, DeterministicOrdering) {
  // Ordered by virtual key then depth: usable as map keys.
  EXPECT_TRUE(group("0*") < group("1*"));
  EXPECT_TRUE(group("0*") < group("01*"));
}

// Property: for any key and any two depths d1 < d2, the deeper group is
// covered by the shallower one.
TEST(KeyGroup, NestingProperty) {
  const Key k(0b1011001, 7);
  for (unsigned d1 = 0; d1 <= 7; ++d1) {
    for (unsigned d2 = d1; d2 <= 7; ++d2) {
      EXPECT_TRUE(KeyGroup::of(k, d1).covers(KeyGroup::of(k, d2)))
          << d1 << " " << d2;
    }
  }
}

}  // namespace
}  // namespace clash
