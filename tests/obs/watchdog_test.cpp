// StallWatchdog: tick-budget and op-progress stall detection, driven
// deterministically through poll_once with a scripted probe and a fake
// clock — the watchdog thread itself is only exercised for clean
// start/stop.
#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/hub.hpp"

namespace clash::obs {
namespace {

std::size_t count_kind(const FlightRecorder& fr, FlightKind kind) {
  std::size_t n = 0;
  for (const auto& ev : fr.events()) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

TEST(StallWatchdog, QuietWhenNothingStalls) {
  Hub hub;
  StallWatchdog::Config cfg;
  StallWatchdog wd(cfg, hub, /*node=*/1);
  // No probe, no in-flight ops: nothing to report.
  EXPECT_EQ(wd.poll_once(1'000'000), 0u);
  // A tick inside its budget is healthy.
  wd.set_tick_probe([] {
    return std::optional<std::pair<std::uint64_t, std::int64_t>>(
        {std::uint64_t{3}, std::int64_t{900'000}});
  });
  EXPECT_EQ(wd.poll_once(1'000'000), 0u);
  EXPECT_EQ(wd.stall_ticks(), 0u);
  EXPECT_EQ(wd.stall_ops(), 0u);
}

TEST(StallWatchdog, TickStallReportsOncePerTick) {
  Hub hub;
  StallWatchdog::Config cfg;
  cfg.tick_budget_us = 1'000'000;
  StallWatchdog wd(cfg, hub, 1);
  std::uint64_t seq = 7;
  wd.set_tick_probe([&seq] {
    return std::optional<std::pair<std::uint64_t, std::int64_t>>(
        {seq, std::int64_t{0}});
  });
  // Over budget: one fresh verdict, counted and on the flight ring.
  EXPECT_EQ(wd.poll_once(1'500'000), 1u);
  EXPECT_EQ(wd.stall_ticks(), 1u);
  EXPECT_EQ(count_kind(hub.flight, FlightKind::kStallTick), 1u);
  // Same wedged tick on the next poll: already reported, no re-count.
  EXPECT_EQ(wd.poll_once(2'500'000), 0u);
  EXPECT_EQ(wd.stall_ticks(), 1u);
  // A NEW tick that also wedges is a fresh verdict.
  seq = 8;
  EXPECT_EQ(wd.poll_once(4'000'000), 1u);
  EXPECT_EQ(wd.stall_ticks(), 2u);
  EXPECT_EQ(count_kind(hub.flight, FlightKind::kStallTick), 2u);
}

TEST(StallWatchdog, OpStallDedupsAndRelapses) {
  Hub hub;
  StallWatchdog::Config cfg;
  cfg.op_stall_us = 5'000'000;
  StallWatchdog wd(cfg, hub, 2);
  const std::uint64_t tok =
      hub.inflight.begin(OpKind::kSnapshotIn, 2, "01", 9, /*now_us=*/0);
  ASSERT_NE(tok, 0u);

  // Not yet past the threshold.
  EXPECT_EQ(wd.poll_once(4'000'000), 0u);
  // Past it: one verdict, then deduped while it stays stalled.
  EXPECT_EQ(wd.poll_once(6'000'000), 1u);
  EXPECT_EQ(wd.poll_once(7'000'000), 0u);
  EXPECT_EQ(wd.stall_ops(), 1u);
  EXPECT_EQ(count_kind(hub.flight, FlightKind::kStallOp), 1u);

  // Progress rescues the op; a later relapse re-reports.
  hub.inflight.progress(tok, 8'000'000);
  EXPECT_EQ(wd.poll_once(9'000'000), 0u);
  EXPECT_EQ(wd.poll_once(14'000'000), 1u);
  EXPECT_EQ(wd.stall_ops(), 2u);

  // An ended op stops mattering entirely.
  hub.inflight.end(tok);
  EXPECT_EQ(wd.poll_once(30'000'000), 0u);
}

TEST(StallWatchdog, BumpsTheStallCounters) {
  Hub hub;
  StallWatchdog::Config cfg;
  cfg.op_stall_us = 1'000;
  StallWatchdog wd(cfg, hub, 1);
  (void)hub.inflight.begin(OpKind::kReplAppend, 1, "g", 3, 0);
  ASSERT_EQ(wd.poll_once(10'000), 1u);
  EXPECT_EQ(hub.registry.counter("clash_stall_ops_total").value(), 1u);
  EXPECT_EQ(hub.registry.counter("clash_stall_ticks_total").value(), 0u);
}

TEST(StallWatchdog, DumpHookIsRateLimited) {
  Hub hub;
  StallWatchdog::Config cfg;
  cfg.op_stall_us = 1'000;
  cfg.dump_interval_us = 10'000'000;
  StallWatchdog wd(cfg, hub, 1);
  std::vector<std::string> dumps;
  wd.set_dump_hook([&dumps](const char* reason) {
    dumps.emplace_back(reason);
  });
  const std::uint64_t a = hub.inflight.begin(OpKind::kConnect, 1, "", 5, 0);
  ASSERT_EQ(wd.poll_once(5'000), 1u);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0], "stall_watchdog");

  // A second fresh stall inside the dump interval: counted, not dumped.
  hub.inflight.end(a);
  (void)hub.inflight.begin(OpKind::kConnect, 1, "", 6, 6'000);
  ASSERT_EQ(wd.poll_once(20'000), 1u);
  EXPECT_EQ(dumps.size(), 1u);

  // Past the interval the next fresh stall dumps again.
  (void)hub.inflight.begin(OpKind::kSnapshotOut, 1, "g", 7, 11'000'000);
  ASSERT_EQ(wd.poll_once(30'000'000), 1u);
  EXPECT_EQ(dumps.size(), 2u);
}

TEST(StallWatchdog, StartStopIsCleanAndIdempotent) {
  Hub hub;
  StallWatchdog::Config cfg;
  cfg.poll_interval_us = 10'000;
  StallWatchdog wd(cfg, hub, 1);
  wd.set_clock([] { return std::int64_t{0}; });
  wd.start();
  wd.start();  // second start is a no-op
  wd.stop();
  wd.stop();  // second stop too
  // Disabled config never spawns the thread.
  StallWatchdog::Config off;
  off.enabled = false;
  StallWatchdog wd2(off, hub, 1);
  wd2.start();
  wd2.stop();
}

}  // namespace
}  // namespace clash::obs
