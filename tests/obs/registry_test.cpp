// obs::Registry: get-or-create sharing, empty-handle no-ops, gauge
// callbacks, reset semantics, the render_text -> parse_exposition
// round trip, and — the TSan target — scraping while recorder threads
// hammer the hot path.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/expose.hpp"

namespace clash::obs {
namespace {

TEST(Registry, HandlesWithTheSameNameShareOneCell) {
  Registry r;
  Counter a = r.counter("requests_total");
  Counter b = r.counter("requests_total");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(r.counter_value("requests_total"), 7u);

  HistogramHandle h1 = r.histogram("lat_usec");
  HistogramHandle h2 = r.histogram("lat_usec");
  h1.record(10);
  h2.record(20);
  EXPECT_EQ(r.histogram_snapshot("lat_usec").count, 2u);
}

TEST(Registry, EmptyHandlesAreNoOps) {
  // Default-constructed handles are what uninstrumented code holds;
  // every operation must be safe and value() must read as zero.
  Counter c;
  Gauge g;
  HistogramHandle h;
  c.inc(5);
  g.set(9);
  g.add(1);
  h.record(123);
  h.record_signed(-1);
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.raw(), nullptr);
}

TEST(Registry, GaugesAndCallbacks) {
  Registry r;
  Gauge g = r.gauge("queue_depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);

  int calls = 0;
  r.gauge_callback("live_value", [&calls] {
    ++calls;
    return 42.0;
  });
  EXPECT_EQ(calls, 0) << "callbacks run at scrape time, not registration";
  const auto metrics = r.scrape();
  EXPECT_EQ(calls, 1);
  bool found = false;
  for (const auto& m : metrics) {
    if (m.name == "live_value") {
      found = true;
      EXPECT_EQ(m.value, 42.0);
      EXPECT_EQ(m.kind, Registry::MetricValue::Kind::kGauge);
    }
  }
  EXPECT_TRUE(found);

  // Re-registering under the same name replaces the callback.
  r.gauge_callback("live_value", [] { return 7.0; });
  for (const auto& m : r.scrape()) {
    if (m.name == "live_value") {
      EXPECT_EQ(m.value, 7.0);
    }
  }
}

TEST(Registry, ResetZeroesValuesButKeepsSeriesAndCallbacks) {
  Registry r;
  Counter c = r.counter("c");
  Gauge g = r.gauge("g");
  HistogramHandle h = r.histogram("h");
  r.gauge_callback("cb", [] { return 5.0; });
  c.inc(10);
  g.set(-4);
  h.record(100);

  r.reset();

  // Handles stay attached to the (now zeroed) cells.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(r.histogram_snapshot("h").count, 0u);
  c.inc();
  EXPECT_EQ(r.counter_value("c"), 1u);

  std::set<std::string> names;
  for (const auto& m : r.scrape()) names.insert(m.name);
  EXPECT_EQ(names, (std::set<std::string>{"c", "cb", "g", "h"}));
  for (const auto& m : r.scrape()) {
    if (m.name == "cb") {
      EXPECT_EQ(m.value, 5.0);
    }
  }
}

TEST(Registry, RenderTextParsesBackExactly) {
  Registry r;
  r.counter("clash_puts_total").inc(1234);
  r.gauge("clash_node_ring_servers").set(32);
  r.gauge_callback("clash_frac", [] { return 0.625; });
  HistogramHandle h = r.histogram("clash_commit_usec");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);

  const auto parsed = parse_exposition(r.render_text());

  ASSERT_TRUE(parsed.count("clash_puts_total"));
  EXPECT_EQ(parsed.at("clash_puts_total"), 1234.0);
  ASSERT_TRUE(parsed.count("clash_node_ring_servers"));
  EXPECT_EQ(parsed.at("clash_node_ring_servers"), 32.0);
  ASSERT_TRUE(parsed.count("clash_frac"));
  EXPECT_NEAR(parsed.at("clash_frac"), 0.625, 1e-9);

  // Histograms expand to quantile series plus _sum/_count.
  ASSERT_TRUE(parsed.count("clash_commit_usec_count"));
  EXPECT_EQ(parsed.at("clash_commit_usec_count"), 1000.0);
  EXPECT_EQ(parsed.at("clash_commit_usec_sum"), 500500.0);
  ASSERT_TRUE(parsed.count("clash_commit_usec{quantile=\"0.5\"}"));
  EXPECT_NEAR(parsed.at("clash_commit_usec{quantile=\"0.5\"}"), 500.0,
              500.0 * 0.07);
  ASSERT_TRUE(parsed.count("clash_commit_usec{quantile=\"0.99\"}"));
  EXPECT_NEAR(parsed.at("clash_commit_usec{quantile=\"0.99\"}"), 990.0,
              990.0 * 0.07);
}

TEST(Registry, ScrapeWhileRecordingIsConsistent) {
  // The TSan target: recorder threads drive counters and a histogram
  // through the hot path while the main thread scrapes continuously.
  // Under -fsanitize=thread this must be race-free; under any build the
  // final totals must be exact.
  Registry r;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&r, t] {
      Counter c = r.counter("stress_total");
      Gauge g = r.gauge("stress_gauge");
      HistogramHandle h = r.histogram("stress_usec");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        g.set(std::int64_t(i));
        h.record(i % 4096 + std::uint64_t(t));
      }
    });
  }
  std::thread scraper([&r, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = r.render_text();
      const auto parsed = parse_exposition(text);
      // Mid-run values are arbitrary but never torn into nonsense.
      if (parsed.count("stress_total")) {
        EXPECT_LE(parsed.at("stress_total"),
                  double(kThreads) * double(kPerThread));
      }
    }
  });
  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(r.counter_value("stress_total"),
            std::uint64_t(kThreads) * kPerThread);
  const auto snap = r.histogram_snapshot("stress_usec");
  EXPECT_EQ(snap.count, std::uint64_t(kThreads) * kPerThread);
}

TEST(Registry, RenderJsonContainsHistogramSummary) {
  Registry r;
  r.counter("a_total").inc(3);
  r.histogram("b_usec").record(100);
  const std::string json = r.render_json();
  EXPECT_NE(json.find("\"a_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"b_usec\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace clash::obs
