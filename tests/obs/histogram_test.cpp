// obs::Histogram: bucket geometry, percentile accuracy against exact
// quantiles, snapshot merge associativity, and the signed-record clamp.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace clash::obs {
namespace {

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Below the first octave every value has its own width-1 bucket.
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lo(v), v);
    EXPECT_EQ(Histogram::bucket_hi(v), v + 1);
  }
}

TEST(Histogram, BucketBoundsContainTheirValues) {
  std::vector<std::uint64_t> probes;
  for (unsigned e = 0; e < 63; ++e) {
    const std::uint64_t p = 1ull << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  for (std::uint64_t v : probes) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lo(idx), v) << "v=" << v;
    EXPECT_LT(v, Histogram::bucket_hi(idx)) << "v=" << v;
  }
}

TEST(Histogram, BucketsAreContiguous) {
  // Each bucket's exclusive upper bound is the next one's lower bound,
  // and lower bounds round-trip through bucket_index.
  for (std::size_t idx = 0; idx + 1 < Histogram::kBuckets; ++idx) {
    EXPECT_EQ(Histogram::bucket_hi(idx), Histogram::bucket_lo(idx + 1));
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(idx)), idx);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(idx) - 1), idx);
  }
  // Everything at or above 2^kMaxExp collapses into the overflow bucket.
  EXPECT_EQ(Histogram::bucket_index(1ull << Histogram::kMaxExp),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBuckets - 1);
}

TEST(Histogram, PercentilesTrackExactQuantiles) {
  // The log-linear layout bounds relative quantisation error by
  // 2^{1-kSubBits} = 6.25%; allow a little interpolation slack on top.
  constexpr double kTolerance = 0.07;
  Histogram h;
  Rng rng(1234);
  std::vector<std::uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Skewed latency-like distribution across several octaves.
    const std::uint64_t v = 1 + rng.next() % 1000 +
                            (rng.next() % 100 == 0
                                 ? rng.next() % 1000000
                                 : 0);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const auto rank = std::size_t(p / 100.0 * double(values.size() - 1));
    const double exact = double(values[rank]);
    const double approx = snap.percentile(p);
    EXPECT_NEAR(approx, exact, exact * kTolerance) << "p=" << p;
  }
  EXPECT_EQ(snap.min, values.front());
  EXPECT_EQ(snap.max, values.back());
  // p0/p100 clamp to [min, max] up to one bucket's interpolation width.
  EXPECT_LE(snap.percentile(0), double(values.front()) + 1.0);
  EXPECT_GE(snap.percentile(100), double(values.back()) * (1 - kTolerance));
}

Histogram::Snapshot merged(const Histogram::Snapshot& a,
                           const Histogram::Snapshot& b) {
  Histogram::Snapshot out = a;
  out.merge(b);
  return out;
}

void expect_same(const Histogram::Snapshot& a,
                 const Histogram::Snapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Histogram, MergeIsAssociativeAndOrderFree) {
  Histogram ha, hb, hc, hall;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next() % 100000;
    (i % 3 == 0 ? ha : i % 3 == 1 ? hb : hc).record(v);
    hall.record(v);
  }
  const auto a = ha.snapshot();
  const auto b = hb.snapshot();
  const auto c = hc.snapshot();
  // (a + b) + c == a + (b + c) == recording everything into one.
  const auto left = merged(merged(a, b), c);
  const auto right = merged(a, merged(b, c));
  expect_same(left, right);
  expect_same(left, hall.snapshot());
  // Merging an empty snapshot is the identity.
  expect_same(merged(left, Histogram::Snapshot{}), left);
  expect_same(merged(Histogram::Snapshot{}, left), left);
}

TEST(Histogram, SignedRecordClampsNegativesToZero) {
  Histogram h;
  h.record_signed(-12345);
  h.record_signed(7);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 7u);
  EXPECT_EQ(snap.sum, 7u);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(std::uint64_t(i));
  ASSERT_EQ(h.count(), 100u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.percentile(50), 0.0);
  // Still usable after reset.
  h.record(42);
  EXPECT_EQ(h.snapshot().max, 42u);
}

}  // namespace
}  // namespace clash::obs
