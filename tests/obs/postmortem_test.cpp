// Postmortem: the crash/abort dump plane. Unit coverage for source
// registration and rendering, file dumps, and the signal handler —
// the latter through a fork()ed child that really dies of SIGABRT.
// Postmortem::global() is process-global state; gtest_discover_tests
// runs each TEST in its own process, so tests don't see each other's
// sources.
#include "obs/postmortem.hpp"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/hub.hpp"

namespace clash::obs {
namespace {

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/clash_postmortem_%s_%d_%d", tag,
                int(::getpid()), counter++);
  ::mkdir(buf, 0755);
  return buf;
}

std::vector<std::string> dump_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("postmortem-", 0) == 0) out.push_back(dir + "/" + name);
  }
  ::closedir(d);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Postmortem, RenderCarriesReasonAndEverySource) {
  Postmortem& pm = Postmortem::global();
  const std::uint64_t a =
      pm.add_source("alpha", [] { return std::string("{\"x\":1}"); });
  const std::uint64_t b =
      pm.add_source("beta", [] { return std::string("[2,3]"); });
  const std::string doc = pm.render("test \"reason\"");
  EXPECT_NE(doc.find("\"schema\":\"clash-postmortem-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("test \\\"reason\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"alpha\":{\"x\":1}"), std::string::npos);
  EXPECT_NE(doc.find("\"beta\":[2,3]"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":"), std::string::npos);

  // A removed source disappears; a throwing source must not kill the
  // dump of the others.
  pm.remove_source(b);
  const std::uint64_t c = pm.add_source("gamma", []() -> std::string {
    throw std::runtime_error("boom");
  });
  const std::string doc2 = pm.render("again");
  EXPECT_EQ(doc2.find("\"beta\""), std::string::npos);
  EXPECT_NE(doc2.find("\"alpha\""), std::string::npos);
  EXPECT_NE(doc2.find("\"gamma\":\"<source threw>\""), std::string::npos);
  pm.remove_source(a);
  pm.remove_source(c);
}

TEST(Postmortem, DumpWritesAFileOnlyWhenADirIsSet) {
  Postmortem& pm = Postmortem::global();
  EXPECT_EQ(pm.dump("no dir yet"), "");
  EXPECT_EQ(pm.dumps(), 0u);

  const std::string dir = fresh_dir("dump");
  pm.set_dir(dir);
  const std::uint64_t src =
      pm.add_source("hub", [] { return std::string("{\"ok\":true}"); });
  const std::string path = pm.dump("gate failure");
  ASSERT_NE(path, "");
  EXPECT_EQ(pm.dumps(), 1u);
  EXPECT_EQ(path.rfind(dir + "/postmortem-", 0), 0u);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"reason\":\"gate failure\""), std::string::npos);
  EXPECT_NE(body.find("\"hub\":{\"ok\":true}"), std::string::npos);
  EXPECT_EQ(dump_files(dir).size(), 1u);
  // A second dump gets a distinct ordinal, so nothing is overwritten.
  ASSERT_NE(pm.dump("second"), "");
  EXPECT_EQ(dump_files(dir).size(), 2u);
  pm.remove_source(src);
  pm.set_dir("");
}

TEST(Postmortem, HubSourceRendersFlightAndInflight) {
  Postmortem& pm = Postmortem::global();
  Hub hub;
  hub.flight.record(FlightKind::kEpochBump, 1, 50, 7, 2);
  (void)hub.inflight.begin(OpKind::kRecoveryPull, 1, "01*", 3, 60);
  const std::uint64_t id =
      register_hub_source(pm, hub, "node1", [] { return std::int64_t{99}; });
  const std::string doc = pm.render("probe");
  EXPECT_NE(doc.find("\"node1\":{\"flight\":"), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"epoch_bump\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"recovery_pull\""), std::string::npos);
  EXPECT_NE(doc.find("\"now_us\":99"), std::string::npos);
  pm.remove_source(id);
}

TEST(Postmortem, CrashHandlerDumpsThenDiesOfTheOriginalSignal) {
  const std::string dir = fresh_dir("crash");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a node that registers its black box, installs the crash
    // handler, then hits an abort() path. No gtest machinery from
    // here on — the process must die of the re-raised signal.
    Postmortem& pm = Postmortem::global();
    pm.set_dir(dir);
    Hub hub;
    hub.flight.record(FlightKind::kInvariantFail, 4, 123, 77);
    register_hub_source(pm, hub, "node4", [] { return std::int64_t{200}; });
    pm.install_crash_handler();
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The handler re-raises with default disposition: the parent sees
  // the true cause of death, not a clean exit.
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const auto dumps = dump_files(dir);
  ASSERT_EQ(dumps.size(), 1u);
  const std::string body = slurp(dumps[0]);
  EXPECT_NE(body.find("\"reason\":\"SIGABRT\""), std::string::npos);
  EXPECT_NE(body.find("\"node4\":{\"flight\":"), std::string::npos);
  EXPECT_NE(body.find("\"kind\":\"invariant_fail\""), std::string::npos);
  EXPECT_NE(body.find("\"a\":77"), std::string::npos);
}

}  // namespace
}  // namespace clash::obs
