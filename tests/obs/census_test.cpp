// obs::Census: local-record refresh cadence, (incarnation, seq)
// staleness ordering, TTL aging with duplicate-relay refresh, death
// eviction, the budget + rotor record picker, and the view() fold.
#include "obs/census.hpp"

#include <gtest/gtest.h>

#include <set>

#include "keys/key_group.hpp"
#include "wire/codec.hpp"

namespace clash::obs {
namespace {

NodeCensusRecord make_record(std::uint64_t node, std::uint64_t incarnation,
                             std::uint64_t seq, double load = 1.0) {
  NodeCensusRecord rec;
  rec.node = ServerId{node};
  rec.incarnation = incarnation;
  rec.seq = seq;
  rec.load = load;
  rec.queries = 2;
  rec.streams = 3;
  rec.active_groups = 4;
  rec.replica_records = 5;
  rec.totals.bytes_served = 100;
  rec.checksum = wire::census_record_crc(rec);
  return rec;
}

TEST(Census, RefreshesLocalRecordOnCadence) {
  CensusConfig cfg;
  cfg.refresh_periods = 4;
  Census census(ServerId{7}, cfg);
  unsigned collects = 0;
  census.set_collector([&](NodeCensusRecord& rec) {
    ++collects;
    rec.load = 0.5;
  });

  census.tick(3);  // first tick refreshes immediately
  EXPECT_EQ(collects, 1u);
  const NodeCensusRecord* rec = census.record_of(ServerId{7});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->node, ServerId{7});
  EXPECT_EQ(rec->incarnation, 3u);
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_DOUBLE_EQ(rec->load, 0.5);
  // The census stamps a self-consistent per-record CRC.
  EXPECT_EQ(rec->checksum, wire::census_record_crc(*rec));

  census.tick(3);
  census.tick(3);
  EXPECT_EQ(collects, 1u);  // ticks 2, 3: off-cadence
  census.tick(3);
  EXPECT_EQ(collects, 2u);  // tick 4: cadence
  EXPECT_EQ(census.record_of(ServerId{7})->seq, 2u);
}

TEST(Census, TruncatesLocalTopGroupsToTopK) {
  CensusConfig cfg;
  cfg.top_k = 2;
  Census census(ServerId{0}, cfg);
  census.set_collector([](NodeCensusRecord& rec) {
    for (unsigned d = 0; d < 5; ++d) {
      CensusGroupCost gc;
      gc.group = KeyGroup::root(24);
      gc.cost.bytes_served = 10 * (d + 1);
      rec.top_groups.push_back(gc);
    }
  });
  census.tick(1);
  ASSERT_NE(census.record_of(ServerId{0}), nullptr);
  EXPECT_EQ(census.record_of(ServerId{0})->top_groups.size(), 2u);
}

TEST(Census, AbsorbOrdersByIncarnationThenSeq) {
  Census census(ServerId{0}, {});
  EXPECT_TRUE(census.absorb(make_record(1, 2, 5)));
  EXPECT_EQ(census.absorbed(), 1u);

  // Lower seq at the same incarnation: stale.
  EXPECT_FALSE(census.absorb(make_record(1, 2, 4)));
  EXPECT_EQ(census.stale_rejected(), 1u);
  // Higher seq but LOWER incarnation: still stale (incarnation wins).
  EXPECT_FALSE(census.absorb(make_record(1, 1, 99)));
  EXPECT_EQ(census.stale_rejected(), 2u);
  EXPECT_EQ(census.record_of(ServerId{1})->seq, 5u);

  // Higher incarnation with a reset seq: fresher (restart case).
  EXPECT_TRUE(census.absorb(make_record(1, 3, 1)));
  EXPECT_EQ(census.record_of(ServerId{1})->incarnation, 3u);
  EXPECT_EQ(census.record_of(ServerId{1})->seq, 1u);
}

TEST(Census, SelfEchoesNeverAbsorb) {
  Census census(ServerId{4}, {});
  // A relayed copy of our own record (even "fresher") must not install:
  // the local collector is the only authority on the local record.
  EXPECT_FALSE(census.absorb(make_record(4, 100, 100)));
  EXPECT_EQ(census.table_size(), 0u);
}

TEST(Census, PeerRecordsAgeOutAfterTtl) {
  CensusConfig cfg;
  cfg.ttl_periods = 3;
  Census census(ServerId{0}, cfg);
  ASSERT_TRUE(census.absorb(make_record(1, 1, 1)));
  census.tick(1);
  census.tick(1);
  census.tick(1);
  EXPECT_EQ(census.table_size(), 1u);
  census.tick(1);  // age 4 > ttl 3
  EXPECT_EQ(census.table_size(), 0u);
}

TEST(Census, DuplicateRelayRefreshesAge) {
  CensusConfig cfg;
  cfg.ttl_periods = 3;
  Census census(ServerId{0}, cfg);
  ASSERT_TRUE(census.absorb(make_record(1, 1, 1)));
  census.tick(1);
  census.tick(1);
  // An identical (incarnation, seq) relay is not fresher, but it proves
  // the peer's record still circulates — reset the age.
  EXPECT_FALSE(census.absorb(make_record(1, 1, 1)));
  census.tick(1);
  census.tick(1);
  census.tick(1);
  EXPECT_EQ(census.table_size(), 1u);
  census.tick(1);
  EXPECT_EQ(census.table_size(), 0u);
}

TEST(Census, LocalRecordNeverExpires) {
  CensusConfig cfg;
  cfg.ttl_periods = 2;
  cfg.refresh_periods = 1000;  // refresh only on the first tick
  Census census(ServerId{0}, cfg);
  census.set_collector([](NodeCensusRecord&) {});
  for (int i = 0; i < 10; ++i) census.tick(1);
  EXPECT_NE(census.record_of(ServerId{0}), nullptr);
}

TEST(Census, ForgetDropsDeadPeerImmediately) {
  Census census(ServerId{0}, {});
  ASSERT_TRUE(census.absorb(make_record(1, 1, 1)));
  ASSERT_TRUE(census.absorb(make_record(2, 1, 1)));
  census.forget(ServerId{1});
  EXPECT_EQ(census.record_of(ServerId{1}), nullptr);
  EXPECT_NE(census.record_of(ServerId{2}), nullptr);
  census.forget(ServerId{0});  // never forget self (no-op)
  EXPECT_EQ(census.table_size(), 1u);
}

TEST(Census, PickRecordsSpendsBudgetThenRotates) {
  CensusConfig cfg;
  cfg.transmit_budget = 2;
  Census census(ServerId{0}, cfg);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    ASSERT_TRUE(census.absorb(make_record(n, 1, 1)));
  }
  // Budgeted pass: each record rides 2 frames eagerly.
  for (int frame = 0; frame < 2; ++frame) {
    const auto batch = census.pick_records(8);
    EXPECT_EQ(batch.size(), 3u);
  }
  // Budget exhausted: the rotor still backfills every frame, so
  // anti-entropy never stops.
  const auto batch = census.pick_records(2);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(census.pick_records(0).empty());
}

TEST(Census, PickRecordsRotorCoversTableAcrossFrames) {
  CensusConfig cfg;
  cfg.transmit_budget = 0;  // rotor only
  Census census(ServerId{0}, cfg);
  for (std::uint64_t n = 1; n <= 6; ++n) {
    ASSERT_TRUE(census.absorb(make_record(n, 1, 1)));
  }
  std::set<std::uint64_t> seen;
  for (int frame = 0; frame < 3; ++frame) {
    for (const auto& rec : census.pick_records(2)) {
      seen.insert(rec.node.value);
    }
  }
  // 3 frames x 2 records with a round-robin cursor = all 6 peers.
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Census, ViewFoldsNodesAndTotals) {
  Census census(ServerId{0}, {});
  ASSERT_TRUE(census.absorb(make_record(2, 1, 1, 0.25)));
  ASSERT_TRUE(census.absorb(make_record(1, 1, 1, 0.75)));

  const ClusterView view = census.view();
  ASSERT_EQ(view.nodes.size(), 2u);
  EXPECT_EQ(view.nodes[0].id, ServerId{1});  // sorted by id
  EXPECT_EQ(view.nodes[1].id, ServerId{2});
  EXPECT_DOUBLE_EQ(view.total_load, 1.0);
  EXPECT_EQ(view.total_queries, 4u);
  EXPECT_EQ(view.total_streams, 6u);
  EXPECT_EQ(view.total_groups, 8u);
  EXPECT_EQ(view.total_replicas, 10u);
  EXPECT_EQ(view.totals.bytes_served, 200u);
}

TEST(Census, ViewMergesAndRanksTopGroups) {
  const auto group_a = KeyGroup::root(24);
  const auto group_b = group_a.left_child();   // deeper, same prefix
  const auto group_c = group_a.left_child().right_child();

  Census census(ServerId{0}, {});
  auto rec1 = make_record(1, 1, 1);
  rec1.top_groups = {{group_a, GroupCost{0, 0, 50, 0, 0}},
                     {group_b, GroupCost{0, 0, 10, 0, 0}}};
  rec1.checksum = wire::census_record_crc(rec1);
  auto rec2 = make_record(2, 1, 1);
  rec2.top_groups = {{group_b, GroupCost{0, 0, 45, 0, 0}},
                     {group_c, GroupCost{0, 0, 30, 0, 0}}};
  rec2.checksum = wire::census_record_crc(rec2);
  ASSERT_TRUE(census.absorb(rec1));
  ASSERT_TRUE(census.absorb(rec2));

  const ClusterView view = census.view();
  ASSERT_EQ(view.top_groups.size(), 3u);
  // group_b's cost sums across its two publishers: 10 + 45 = 55.
  EXPECT_EQ(view.top_groups[0].group, group_b);
  EXPECT_EQ(view.top_groups[0].cost.total_bytes(), 55u);
  EXPECT_EQ(view.top_groups[1].group, group_a);
  EXPECT_EQ(view.top_groups[2].group, group_c);
}

TEST(Census, ViewReportsMaxAge) {
  Census census(ServerId{0}, {});
  ASSERT_TRUE(census.absorb(make_record(1, 1, 1)));
  census.tick(1);
  census.tick(1);
  ASSERT_TRUE(census.absorb(make_record(2, 1, 1)));
  EXPECT_EQ(census.view().max_age_periods, 2u);
}

}  // namespace
}  // namespace clash::obs
