// obs::TraceRecorder: the enabled gate, the bounded ring with
// oldest-first overwrite, and the Chrome trace_event JSON export.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

namespace clash::obs {
namespace {

TEST(TraceRecorder, DisabledByDefaultRecordsNothing) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled());
  tr.record(SpanKind::kCommit, 1, SimTime{100}, SimDuration{10});
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(TraceRecorder, RecordsSpansWhenEnabled) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kFailover, 7, SimTime{1000}, SimDuration{250}, 42);
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kFailover);
  EXPECT_EQ(spans[0].pid, 7u);
  EXPECT_EQ(spans[0].start_us, 1000);
  EXPECT_EQ(spans[0].dur_us, 250);
  EXPECT_EQ(spans[0].arg, 42u);
}

TEST(TraceRecorder, NegativeDurationsClampToZero) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kCommit, 0, SimTime{5}, SimDuration{-3});
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].dur_us, 0);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder tr(4);
  tr.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    tr.record(SpanKind::kWalFsync, 0, SimTime{i}, SimDuration{1});
  }
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  // Spans 0 and 1 were overwritten; 2..5 survive.
  std::int64_t min_start = spans[0].start_us;
  std::int64_t max_start = spans[0].start_us;
  for (const auto& s : spans) {
    min_start = std::min(min_start, s.start_us);
    max_start = std::max(max_start, s.start_us);
  }
  EXPECT_EQ(min_start, 2);
  EXPECT_EQ(max_start, 5);
}

TEST(TraceRecorder, ClearEmptiesTheRing) {
  TraceRecorder tr(2);
  tr.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tr.record(SpanKind::kLoopTick, 0, SimTime{i}, SimDuration{1});
  }
  tr.clear();
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);
  tr.record(SpanKind::kLoopTick, 0, SimTime{9}, SimDuration{1});
  EXPECT_EQ(tr.spans().size(), 1u);
}

TEST(TraceRecorder, ChromeJsonHasCompleteEvents) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kCommit, 3, SimTime{100}, SimDuration{50}, 7);
  tr.record(SpanKind::kSnapshotTransfer, 4, SimTime{200}, SimDuration{25});
  const std::string json = tr.to_chrome_json();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete ("X") event per span, named per kind.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"repl_commit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"snapshot_transfer\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST(TraceRecorder, WrapManyTimesKeepsExactlyTheNewestSpans) {
  constexpr std::size_t kCap = 8;
  constexpr int kTotal = 8 * 10 + 3;  // wrap ten times, land mid-ring
  TraceRecorder tr(kCap);
  tr.set_enabled(true);
  for (int i = 0; i < kTotal; ++i) {
    tr.record(SpanKind::kIngest, 1, SimTime{i}, SimDuration{1},
              std::uint64_t(i));
  }
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), kCap);
  EXPECT_EQ(tr.dropped(), std::uint64_t(kTotal) - kCap);
  // Exactly the newest kCap starts survive, each exactly once.
  std::vector<std::int64_t> starts;
  for (const auto& s : spans) starts.push_back(s.start_us);
  std::sort(starts.begin(), starts.end());
  for (std::size_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(starts[i], std::int64_t(kTotal - kCap + i));
  }
}

TEST(TraceRecorder, ChromeJsonAfterWrapExportsOnlySurvivors) {
  TraceRecorder tr(3);
  tr.set_enabled(true);
  for (int i = 0; i < 7; ++i) {
    tr.record(SpanKind::kCommit, 2, SimTime{1000 + i}, SimDuration{5});
  }
  const std::string json = tr.to_chrome_json();
  // Overwritten spans (ts 1000..1003) must not leak into the export;
  // the three survivors (1004..1006) must all be present.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(json.find("\"ts\":" + std::to_string(1000 + i)),
              std::string::npos);
  }
  for (int i = 4; i < 7; ++i) {
    EXPECT_NE(json.find("\"ts\":" + std::to_string(1000 + i)),
              std::string::npos);
  }
  // Structurally: one "X" event per surviving span, balanced braces.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\"");
       pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 3u);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceRecorder, ConcurrentRecordDuringExportStaysConsistent) {
  constexpr std::size_t kCap = 64;
  TraceRecorder tr(kCap);
  tr.set_enabled(true);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::int64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      tr.record(SpanKind::kLoopTick, 9, SimTime{t++}, SimDuration{1});
    }
  });
  // Export repeatedly while the writer wraps the ring under us. Every
  // export must see a coherent ring: never more than capacity spans,
  // and every span intact (the kind/pid we wrote, non-negative dur).
  for (int i = 0; i < 200; ++i) {
    const std::string json = tr.to_chrome_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    const auto spans = tr.spans();
    EXPECT_LE(spans.size(), kCap);
    for (const auto& s : spans) {
      EXPECT_EQ(s.kind, SpanKind::kLoopTick);
      EXPECT_EQ(s.pid, 9u);
      EXPECT_GE(s.dur_us, 0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_LE(tr.spans().size(), kCap);
}

TEST(TraceRecorder, SpanNamesCoverEveryKind) {
  for (auto k :
       {SpanKind::kQueryMatch, SpanKind::kCommit, SpanKind::kFailover,
        SpanKind::kSnapshotTransfer, SpanKind::kWalFsync,
        SpanKind::kLoopTick, SpanKind::kRecoveryScan}) {
    EXPECT_NE(std::string(span_name(k)), "");
    EXPECT_NE(std::string(span_category(k)), "");
  }
}

}  // namespace
}  // namespace clash::obs
