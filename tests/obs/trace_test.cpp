// obs::TraceRecorder: the enabled gate, the bounded ring with
// oldest-first overwrite, and the Chrome trace_event JSON export.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace clash::obs {
namespace {

TEST(TraceRecorder, DisabledByDefaultRecordsNothing) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled());
  tr.record(SpanKind::kCommit, 1, SimTime{100}, SimDuration{10});
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(TraceRecorder, RecordsSpansWhenEnabled) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kFailover, 7, SimTime{1000}, SimDuration{250}, 42);
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, SpanKind::kFailover);
  EXPECT_EQ(spans[0].pid, 7u);
  EXPECT_EQ(spans[0].start_us, 1000);
  EXPECT_EQ(spans[0].dur_us, 250);
  EXPECT_EQ(spans[0].arg, 42u);
}

TEST(TraceRecorder, NegativeDurationsClampToZero) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kCommit, 0, SimTime{5}, SimDuration{-3});
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].dur_us, 0);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder tr(4);
  tr.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    tr.record(SpanKind::kWalFsync, 0, SimTime{i}, SimDuration{1});
  }
  const auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  // Spans 0 and 1 were overwritten; 2..5 survive.
  std::int64_t min_start = spans[0].start_us;
  std::int64_t max_start = spans[0].start_us;
  for (const auto& s : spans) {
    min_start = std::min(min_start, s.start_us);
    max_start = std::max(max_start, s.start_us);
  }
  EXPECT_EQ(min_start, 2);
  EXPECT_EQ(max_start, 5);
}

TEST(TraceRecorder, ClearEmptiesTheRing) {
  TraceRecorder tr(2);
  tr.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    tr.record(SpanKind::kLoopTick, 0, SimTime{i}, SimDuration{1});
  }
  tr.clear();
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);
  tr.record(SpanKind::kLoopTick, 0, SimTime{9}, SimDuration{1});
  EXPECT_EQ(tr.spans().size(), 1u);
}

TEST(TraceRecorder, ChromeJsonHasCompleteEvents) {
  TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(SpanKind::kCommit, 3, SimTime{100}, SimDuration{50}, 7);
  tr.record(SpanKind::kSnapshotTransfer, 4, SimTime{200}, SimDuration{25});
  const std::string json = tr.to_chrome_json();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete ("X") event per span, named per kind.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"repl_commit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"snapshot_transfer\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST(TraceRecorder, SpanNamesCoverEveryKind) {
  for (auto k :
       {SpanKind::kQueryMatch, SpanKind::kCommit, SpanKind::kFailover,
        SpanKind::kSnapshotTransfer, SpanKind::kWalFsync,
        SpanKind::kLoopTick, SpanKind::kRecoveryScan}) {
    EXPECT_NE(std::string(span_name(k)), "");
    EXPECT_NE(std::string(span_category(k)), "");
  }
}

}  // namespace
}  // namespace clash::obs
