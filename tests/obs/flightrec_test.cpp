// FlightRecorder + InflightTable: the seqlock event ring and the
// CAS-claimed in-flight operation table that back the postmortem
// plane. Both promise lock-free readers that never misreport a torn
// slot — the concurrency tests hold them to it.
#include "obs/flightrec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace clash::obs {
namespace {

TEST(FlightRecorder, RoundTripsEveryField) {
  FlightRecorder fr(16);
  fr.record(FlightKind::kEpochBump, /*node=*/7, /*t_us=*/1234,
            /*a=*/0xdeadbeef, /*b=*/42);
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, FlightKind::kEpochBump);
  EXPECT_EQ(evs[0].node, 7u);
  EXPECT_EQ(evs[0].t_us, 1234);
  EXPECT_EQ(evs[0].a, 0xdeadbeefu);
  EXPECT_EQ(evs[0].b, 42u);
  EXPECT_EQ(fr.total(), 1u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(0).capacity(), 1u);
}

TEST(FlightRecorder, EnabledByDefaultAndGateable) {
  FlightRecorder fr(8);
  EXPECT_TRUE(fr.enabled());
  fr.set_enabled(false);
  fr.record(FlightKind::kWalFsync, 0, 1);
  EXPECT_EQ(fr.total(), 0u);
  EXPECT_TRUE(fr.events().empty());
  fr.set_enabled(true);
  fr.record(FlightKind::kWalFsync, 0, 2);
  EXPECT_EQ(fr.total(), 1u);
}

TEST(FlightRecorder, WrapKeepsTheNewestWindowOldestFirst) {
  FlightRecorder fr(8);
  for (int i = 0; i < 21; ++i) {
    fr.record(FlightKind::kGroupActivated, 1, i, std::uint64_t(i));
  }
  EXPECT_EQ(fr.total(), 21u);
  EXPECT_EQ(fr.dropped(), 21u - 8u);
  const auto evs = fr.events();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].t_us, std::int64_t(13 + i));  // 13..20, in order
  }
}

TEST(FlightRecorder, JsonIsSelfDescribing) {
  FlightRecorder fr(8);
  fr.record(FlightKind::kSnapshotAborted, 3, 99, 11, 22);
  const std::string json = fr.to_json();
  EXPECT_NE(json.find("\"schema\":\"clash-flightrec-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"snapshot_aborted\""), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":99"), std::string::npos);
  EXPECT_NE(json.find("\"a\":11"), std::string::npos);
  EXPECT_NE(json.find("\"b\":22"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(FlightRecorder, KindNamesCoverEveryEnumerator) {
  for (int k = 0; k <= int(FlightKind::kInvariantFail); ++k) {
    EXPECT_STRNE(flight_kind_name(FlightKind(k)), "unknown")
        << "FlightKind " << k << " has no name";
  }
}

TEST(FlightRecorder, ConcurrentWritersNeverTearAReader) {
  // 4 writers hammer a tiny ring (constant wraparound) while a reader
  // snapshots. The seqlock contract: every event a reader returns is
  // one a writer actually wrote — each writer encodes a checksum
  // relation (b == a * 3 + node) a torn read would break.
  FlightRecorder fr(16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::uint32_t node = 1; node <= 4; ++node) {
    writers.emplace_back([&fr, &stop, node] {
      std::uint64_t a = node;
      while (!stop.load(std::memory_order_relaxed)) {
        fr.record(FlightKind::kWalFsync, node, std::int64_t(a), a,
                  a * 3 + node);
        ++a;
      }
    });
  }
  // Don't start reading until the writers are demonstrably wrapping
  // the ring, so the 500 snapshot passes overlap live rewrites
  // rather than racing thread startup.
  while (fr.total() < 64) std::this_thread::yield();
  for (int i = 0; i < 500; ++i) {
    for (const auto& ev : fr.events()) {
      ASSERT_GE(ev.node, 1u);
      ASSERT_LE(ev.node, 4u);
      ASSERT_EQ(ev.b, ev.a * 3 + ev.node) << "torn flight slot";
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  EXPECT_GT(fr.total(), 16u);
  EXPECT_LE(fr.events().size(), fr.capacity());
}

TEST(InflightTable, BeginSnapshotRoundTrip) {
  InflightTable tab;
  const std::uint64_t tok =
      tab.begin(OpKind::kSnapshotIn, /*node=*/5, "0123", /*peer=*/9,
                /*now_us=*/1000, /*target=*/4);
  ASSERT_NE(tok, 0u);
  EXPECT_EQ(tab.active(), 1u);
  const auto ops = tab.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].token, tok);
  EXPECT_EQ(ops[0].kind, OpKind::kSnapshotIn);
  EXPECT_EQ(ops[0].node, 5u);
  EXPECT_EQ(ops[0].group, "0123");
  EXPECT_EQ(ops[0].peer, 9u);
  EXPECT_EQ(ops[0].start_us, 1000);
  EXPECT_EQ(ops[0].last_progress_us, 1000);
  EXPECT_EQ(ops[0].progress, 0u);
  EXPECT_EQ(ops[0].target, 4u);
}

TEST(InflightTable, ProgressBumpsCountAndTimestamp) {
  InflightTable tab;
  const std::uint64_t tok =
      tab.begin(OpKind::kReplAppend, 1, "g", 2, 100);
  tab.progress(tok, 250);
  tab.progress(tok, 400, /*delta=*/3);
  const auto ops = tab.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].progress, 4u);
  EXPECT_EQ(ops[0].last_progress_us, 400);
  EXPECT_EQ(ops[0].start_us, 100);  // start never moves
}

TEST(InflightTable, EndFreesTheSlotAndStaleTokensAreIgnored) {
  InflightTable tab;
  const std::uint64_t tok = tab.begin(OpKind::kConnect, 1, "", 7, 10);
  tab.end(tok);
  EXPECT_EQ(tab.active(), 0u);
  EXPECT_TRUE(tab.snapshot().empty());
  // The slot is reused by the next begin(); the dead token must not
  // touch the new occupant (this is the re-entrant-send safety net).
  const std::uint64_t tok2 = tab.begin(OpKind::kSnapshotOut, 2, "x", 8, 20);
  tab.progress(tok, 999);  // stale
  tab.end(tok);            // stale
  tab.progress(0, 999);    // failed-begin token
  const auto ops = tab.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].token, tok2);
  EXPECT_EQ(ops[0].progress, 0u);
  EXPECT_EQ(ops[0].last_progress_us, 20);
}

TEST(InflightTable, OverflowRefusesGracefully) {
  InflightTable tab;
  std::vector<std::uint64_t> toks;
  for (std::size_t i = 0; i < InflightTable::kCapacity; ++i) {
    const std::uint64_t t = tab.begin(OpKind::kReplAppend, 1, "g", 0, 0);
    ASSERT_NE(t, 0u);
    toks.push_back(t);
  }
  EXPECT_EQ(tab.active(), InflightTable::kCapacity);
  EXPECT_EQ(tab.begin(OpKind::kReplAppend, 1, "g", 0, 0), 0u);
  EXPECT_EQ(tab.overflow(), 1u);
  // Freeing one slot makes begin() succeed again.
  tab.end(toks[17]);
  EXPECT_NE(tab.begin(OpKind::kConnect, 1, "g", 0, 0), 0u);
}

TEST(InflightTable, StalledFiltersByLastProgress) {
  InflightTable tab;
  const std::uint64_t fresh =
      tab.begin(OpKind::kSnapshotOut, 1, "a", 2, 1000);
  const std::uint64_t stale =
      tab.begin(OpKind::kSnapshotIn, 1, "b", 3, 1000);
  tab.progress(fresh, 9000);
  const auto stalled = tab.stalled(/*now_us=*/10000, /*threshold_us=*/5000);
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0].token, stale);
  EXPECT_EQ(stalled[0].group, "b");
  // Progress on the stale op rescues it.
  tab.progress(stale, 9999);
  EXPECT_TRUE(tab.stalled(10000, 5000).empty());
}

TEST(InflightTable, LongGroupLabelsTruncateSafely) {
  InflightTable tab;
  const std::string longlabel(100, '1');
  const std::uint64_t tok =
      tab.begin(OpKind::kRecoveryPull, 1, longlabel, 0, 0);
  ASSERT_NE(tok, 0u);
  const auto ops = tab.snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].group,
            longlabel.substr(0, InflightTable::kLabelBytes - 1));
}

TEST(InflightTable, JsonNamesTheOperation) {
  InflightTable tab;
  const std::uint64_t tok =
      tab.begin(OpKind::kSnapshotIn, 4, "0132", 11, 500, 8);
  tab.progress(tok, 750, 3);
  const std::string json = tab.to_json(/*now_us=*/1000);
  EXPECT_NE(json.find("\"schema\":\"clash-inflight-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"snapshot_in\""), std::string::npos);
  EXPECT_NE(json.find("\"group\":\"0132\""), std::string::npos);
  EXPECT_NE(json.find("\"peer\":11"), std::string::npos);
  EXPECT_NE(json.find("\"last_progress_us\":750"), std::string::npos);
  EXPECT_NE(json.find("\"since_progress_us\":250"), std::string::npos);
  EXPECT_NE(json.find("\"progress\":3"), std::string::npos);
  EXPECT_NE(json.find("\"target\":8"), std::string::npos);
}

TEST(InflightTable, ConcurrentBeginEndSnapshotStaysCoherent) {
  InflightTable tab;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::uint32_t n = 1; n <= 4; ++n) {
    workers.emplace_back([&tab, &stop, n] {
      std::int64_t t = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t tok =
            tab.begin(OpKind::kReplAppend, n, "grp", n * 100, t);
        if (tok != 0) {
          tab.progress(tok, t + 1);
          tab.end(tok);
        }
        ++t;
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    for (const auto& op : tab.snapshot()) {
      // Any op the reader surfaces must be internally consistent:
      // the fields a concurrent begin() wrote, never a mix of two
      // occupants of the slot.
      ASSERT_GE(op.node, 1u);
      ASSERT_LE(op.node, 4u);
      ASSERT_EQ(op.peer, op.node * 100) << "torn inflight slot";
      ASSERT_EQ(op.group, "grp");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  EXPECT_EQ(tab.active(), 0u);
}

}  // namespace
}  // namespace clash::obs
