// WAL edge cases: torn tail mid-record, CRC-corrupt rejection, segment
// rollover boundaries, and truncation past the snapshot floor.
#include "storage/wal.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "keys/key_group.hpp"
#include "storage/backend.hpp"

namespace clash::storage {
namespace {

constexpr unsigned kWidth = 8;

KeyGroup group_at(std::uint64_t bits, unsigned depth) {
  return KeyGroup::of(Key(bits, kWidth), depth);
}

repl::LogOp stream_op(std::uint64_t source, std::uint64_t key, double rate) {
  return repl::LogOp::put_stream(StreamInfo{ClientId{source},
                                            Key(key, kWidth), rate});
}

std::vector<WalRecord> scan_all(Backend& backend, const std::string& dir,
                                ScanResult* last = nullptr) {
  std::vector<WalRecord> records;
  for (const auto& path : backend.list(dir)) {
    std::vector<std::uint8_t> data;
    EXPECT_TRUE(backend.read_file(path, data));
    const auto result = scan_wal_segment(
        data, [&records](const WalRecord& r) { records.push_back(r); });
    if (last != nullptr) *last = result;
  }
  return records;
}

TEST(WalTest, RecordsRoundTripInOrder) {
  MemBackend backend;
  Wal wal(backend, Wal::Config{}, 0);
  const KeyGroup g = group_at(0x12, 4);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{3, 1}, stream_op(7, 0x12, 2.5)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{3, 2},
                            repl::LogOp::del_stream(ClientId{7})));
  ASSERT_TRUE(wal.append_drop(g, 3));

  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(last.end, ScanEnd::kClean);
  EXPECT_EQ(records[0].kind, RecordKind::kOp);
  EXPECT_EQ(records[0].group, g);
  EXPECT_EQ(records[0].head, (repl::LogHead{3, 1}));
  EXPECT_EQ(records[0].op.kind, repl::OpKind::kPutStream);
  EXPECT_EQ(records[0].op.stream.source.value, 7u);
  EXPECT_DOUBLE_EQ(records[0].op.stream.rate, 2.5);
  EXPECT_EQ(records[1].op.kind, repl::OpKind::kDelStream);
  EXPECT_EQ(records[2].kind, RecordKind::kDrop);
  EXPECT_EQ(records[2].head.epoch, 3u);
}

TEST(WalTest, TornTailTruncatesToLastCompleteRecord) {
  MemBackend backend;
  Wal wal(backend, Wal::Config{}, 0);
  const KeyGroup g = group_at(0x01, 2);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(
        wal.append_op(g, repl::LogHead{1, seq}, stream_op(seq, 0x01, 1.0)));
  }
  // Power cut mid-write of the third record: a few bytes vanish.
  backend.set_crash_fault(MemBackend::CrashFault{false, 5});
  backend.crash();

  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  EXPECT_EQ(last.end, ScanEnd::kTornTail);
  ASSERT_EQ(records.size(), 2u);  // exactly the complete prefix
  EXPECT_EQ(records.back().head.seq, 2u);
}

TEST(WalTest, TornFrameHeaderAlsoTruncatesCleanly) {
  MemBackend backend;
  Wal wal(backend, Wal::Config{}, 0);
  const KeyGroup g = group_at(0x01, 2);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 1}, stream_op(1, 0x01, 1.0)));
  const auto frame = encode_wal_record(WalRecord{
      RecordKind::kOp, g, repl::LogHead{1, 2}, stream_op(2, 0x01, 1.0)});
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 2}, stream_op(2, 0x01, 1.0)));
  // Cut so deep that even the second record's 8-byte frame header is
  // partial.
  backend.set_crash_fault(
      MemBackend::CrashFault{false, std::uint32_t(frame.size() - 3)});
  backend.crash();

  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  EXPECT_EQ(last.end, ScanEnd::kTornTail);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].head.seq, 1u);
}

TEST(WalTest, CrcCorruptRecordFencesTheRestOfTheSegment) {
  MemBackend backend;
  Wal wal(backend, Wal::Config{}, 0);
  const KeyGroup g = group_at(0x02, 3);
  const auto first = encode_wal_record(WalRecord{
      RecordKind::kOp, g, repl::LogHead{1, 1}, stream_op(1, 0x02, 1.0)});
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(
        wal.append_op(g, repl::LogHead{1, seq}, stream_op(seq, 0x02, 1.0)));
  }
  // Bit-rot inside the SECOND record's payload.
  ASSERT_TRUE(
      backend.corrupt(Wal::segment_path("wal", 0), first.size() + 12, 0x40));

  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  EXPECT_EQ(last.end, ScanEnd::kCorrupt);
  // Only the record before the damage is trusted; the third record
  // sits past unverifiable bytes and must NOT be replayed.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].head.seq, 1u);
}

TEST(WalTest, SegmentRolloverSplitsAtRecordBoundaries) {
  MemBackend backend;
  Wal::Config cfg;
  cfg.segment_bytes = 96;  // a handful of records per segment
  Wal wal(backend, cfg, 0);
  const KeyGroup g = group_at(0x03, 4);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    ASSERT_TRUE(
        wal.append_op(g, repl::LogHead{1, seq}, stream_op(seq, 0x03, 1.0)));
  }
  const auto segments = backend.list("wal");
  EXPECT_GT(segments.size(), 2u);
  // Every record survives the boundaries, in order.
  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  EXPECT_EQ(last.end, ScanEnd::kClean);
  ASSERT_EQ(records.size(), 20u);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(records[seq - 1].head.seq, seq);
  }
}

TEST(WalTest, TruncationReclaimsOnlyCoveredPrefixSegments) {
  MemBackend backend;
  Wal::Config cfg;
  cfg.segment_bytes = 96;
  Wal wal(backend, cfg, 0);
  const KeyGroup g = group_at(0x04, 4);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    ASSERT_TRUE(
        wal.append_op(g, repl::LogHead{1, seq}, stream_op(seq, 0x04, 1.0)));
  }
  const auto before = backend.list("wal").size();
  ASSERT_GT(before, 2u);

  // Snapshot floor at seq 5: only segments whose records all sit at or
  // below it may go.
  const auto deleted_low = wal.truncate_covered(
      [](const KeyGroup&, repl::LogHead tail) {
        return tail <= repl::LogHead{1, 5};
      });
  EXPECT_GT(deleted_low, 0u);
  ScanResult last;
  auto records = scan_all(backend, "wal", &last);
  ASSERT_FALSE(records.empty());
  // Every record past the floor survived, contiguously.
  EXPECT_LE(records.front().head.seq, 6u);
  EXPECT_EQ(records.back().head.seq, 20u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].head.seq, records[i - 1].head.seq + 1);
  }

  // Floor at the head: every closed segment is reclaimable (the open
  // one stays).
  wal.truncate_covered(
      [](const KeyGroup&, repl::LogHead) { return true; });
  EXPECT_LE(backend.list("wal").size(), 1u);
  EXPECT_GT(wal.stats().segments_deleted, deleted_low);
}

TEST(WalTest, DropUnsyncedLosesOnlyTheUnsyncedSuffix) {
  MemBackend backend;
  Wal wal(backend, Wal::Config{}, 0);
  const KeyGroup g = group_at(0x05, 4);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 1}, stream_op(1, 0x05, 1.0)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 2}, stream_op(2, 0x05, 1.0)));
  ASSERT_TRUE(wal.sync());
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 3}, stream_op(3, 0x05, 1.0)));

  backend.set_crash_fault(MemBackend::CrashFault{true, 0});
  backend.crash();

  ScanResult last;
  const auto records = scan_all(backend, "wal", &last);
  EXPECT_EQ(last.end, ScanEnd::kClean);  // sync is a record boundary
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.back().head.seq, 2u);
}

}  // namespace
}  // namespace clash::storage
