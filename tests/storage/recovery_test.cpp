// Recovery-path coverage: snapshot round trips, snapshot + WAL-tail
// replay, drop records, damage handling, and the end-to-end recovery
// equivalence property — a ClashServer driven through real mutations,
// crashed, and recovered must come back with exactly its pre-crash
// group state and log head.
#include "storage/recovery.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "clash/server.hpp"
#include "common/rng.hpp"
#include "storage/backend.hpp"
#include "storage/snapshot.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace clash::storage {
namespace {

constexpr unsigned kWidth = 8;

repl::LogOp stream_op(std::uint64_t source, std::uint64_t key, double rate) {
  return repl::LogOp::put_stream(StreamInfo{ClientId{source},
                                            Key(key, kWidth), rate});
}

repl::LogOp query_op(std::uint64_t id, std::uint64_t key) {
  return repl::LogOp::put_query(QueryInfo{QueryId{id}, Key(key, kWidth)});
}

TEST(SnapshotCodec, RoundTripsFullImage) {
  SnapshotImage img;
  img.group = KeyGroup::of(Key(0x2A, kWidth), 5);
  img.head = repl::LogHead{7, 42};
  img.root = true;
  img.parent = ServerId{3};
  repl::GroupLog::apply(stream_op(1, 0x2A, 2.0), img.state);
  repl::GroupLog::apply(query_op(9, 0x2B), img.state);
  img.app_state = {1, 2, 3, 4};
  img.app_deltas = {{5}, {6, 7}};

  SnapshotImage out;
  ASSERT_TRUE(decode_snapshot(encode_snapshot(img), out));
  EXPECT_EQ(out.group, img.group);
  EXPECT_EQ(out.head, img.head);
  EXPECT_TRUE(out.root);
  EXPECT_EQ(out.parent, ServerId{3});
  EXPECT_EQ(out.state.streams.size(), 1u);
  EXPECT_EQ(out.state.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(out.state.stream_rate, 2.0);
  EXPECT_EQ(out.app_state, img.app_state);
  EXPECT_EQ(out.app_deltas, img.app_deltas);
}

TEST(SnapshotCodec, RejectsBitRot) {
  SnapshotImage img;
  img.group = KeyGroup::of(Key(0x2A, kWidth), 5);
  img.head = repl::LogHead{1, 1};
  auto bytes = encode_snapshot(img);
  bytes[bytes.size() / 2] ^= 0x04;
  SnapshotImage out;
  EXPECT_FALSE(decode_snapshot(bytes, out));
}

TEST(Recovery, ReplaysWalTailOntoSnapshot) {
  MemBackend backend;
  const KeyGroup g = KeyGroup::of(Key(0x10, kWidth), 4);

  SnapshotImage snap;
  snap.group = g;
  snap.head = repl::LogHead{2, 2};
  repl::GroupLog::apply(stream_op(1, 0x10, 1.0), snap.state);
  repl::GroupLog::apply(stream_op(2, 0x11, 2.0), snap.state);
  ASSERT_TRUE(backend.write_file_atomic(snapshot_path("snap", g),
                                        encode_snapshot(snap)));

  Wal wal(backend, Wal::Config{}, 0);
  // Pre-snapshot history must be skipped...
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{2, 1}, stream_op(1, 0x10, 1.0)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{2, 2}, stream_op(2, 0x11, 2.0)));
  // ...and the tail past it replayed.
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{2, 3}, query_op(5, 0x12)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{2, 4},
                            repl::LogOp::del_stream(ClientId{1})));
  ASSERT_TRUE(wal.append_op(
      g, repl::LogHead{2, 5}, repl::LogOp::app_delta_op({9, 9})));

  const auto image = recover_image(backend, "wal", "snap");
  ASSERT_EQ(image.groups.size(), 1u);
  const RecoveredGroup& rec = image.groups.at(g);
  EXPECT_EQ(rec.head, (repl::LogHead{2, 5}));
  EXPECT_EQ(rec.state.streams.size(), 1u);
  EXPECT_EQ(rec.state.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.state.stream_rate, 2.0);
  ASSERT_EQ(rec.app_deltas.size(), 1u);
  EXPECT_EQ(rec.app_deltas[0], (std::vector<std::uint8_t>{9, 9}));
  EXPECT_EQ(image.stats.records_replayed, 3u);
  EXPECT_EQ(image.stats.records_skipped, 2u);
  EXPECT_EQ(image.next_segment_index, 1u);
}

TEST(Recovery, DropRecordForgetsTheGroup) {
  MemBackend backend;
  const KeyGroup g = KeyGroup::of(Key(0x20, kWidth), 4);
  SnapshotImage snap;
  snap.group = g;
  snap.head = repl::LogHead{1, 0};
  ASSERT_TRUE(backend.write_file_atomic(snapshot_path("snap", g),
                                        encode_snapshot(snap)));
  Wal wal(backend, Wal::Config{}, 0);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 1}, stream_op(1, 0x20, 1.0)));
  ASSERT_TRUE(wal.append_drop(g, 1));

  const auto image = recover_image(backend, "wal", "snap");
  EXPECT_TRUE(image.groups.empty());
  EXPECT_EQ(image.stats.drops_applied, 1u);
}

TEST(Recovery, ReactivationAfterDropResurrectsUnderNewEpoch) {
  MemBackend backend;
  const KeyGroup g = KeyGroup::of(Key(0x20, kWidth), 4);
  Wal wal(backend, Wal::Config{}, 0);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 1}, stream_op(1, 0x20, 1.0)));
  ASSERT_TRUE(wal.append_drop(g, 1));
  // Re-adopted later: a fresh baseline under epoch 2 plus one op.
  SnapshotImage snap;
  snap.group = g;
  snap.head = repl::LogHead{2, 0};
  ASSERT_TRUE(backend.write_file_atomic(snapshot_path("snap", g),
                                        encode_snapshot(snap)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{2, 1}, stream_op(2, 0x21, 3.0)));

  const auto image = recover_image(backend, "wal", "snap");
  ASSERT_EQ(image.groups.size(), 1u);
  const RecoveredGroup& rec = image.groups.at(g);
  EXPECT_EQ(rec.head, (repl::LogHead{2, 1}));
  EXPECT_EQ(rec.state.streams.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.state.stream_rate, 3.0);
}

TEST(Recovery, SequenceGapFencesTheGroupSuffix) {
  MemBackend backend;
  const KeyGroup g = KeyGroup::of(Key(0x30, kWidth), 4);
  SnapshotImage snap;
  snap.group = g;
  snap.head = repl::LogHead{1, 0};
  ASSERT_TRUE(backend.write_file_atomic(snapshot_path("snap", g),
                                        encode_snapshot(snap)));
  Wal wal(backend, Wal::Config{}, 0);
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 1}, stream_op(1, 0x30, 1.0)));
  // seq 2 missing (lost write): 3 and 4 must not apply.
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 3}, stream_op(3, 0x31, 1.0)));
  ASSERT_TRUE(wal.append_op(g, repl::LogHead{1, 4}, stream_op(4, 0x32, 1.0)));

  const auto image = recover_image(backend, "wal", "snap");
  const RecoveredGroup& rec = image.groups.at(g);
  EXPECT_EQ(rec.head, (repl::LogHead{1, 1}));
  EXPECT_EQ(rec.state.streams.size(), 1u);
  EXPECT_EQ(image.stats.records_skipped, 2u);
}

// --- End-to-end recovery equivalence -----------------------------------

/// Minimal synchronous env: no peers, no replication — isolates the
/// storage path.
class NullEnv final : public ServerEnv {
 public:
  dht::LookupResult dht_lookup(dht::HashKey) override {
    return dht::LookupResult{ServerId{0}, 0};
  }
  void send(ServerId, const Message&) override {}
  [[nodiscard]] SimTime now() const override { return SimTime{0}; }
};

ClashConfig durable_config(ClashConfig::DurabilityMode mode) {
  ClashConfig cfg;
  cfg.key_width = kWidth;
  cfg.initial_depth = 0;
  cfg.capacity = 1e9;
  cfg.durability_mode = mode;
  cfg.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  cfg.log_compact_threshold = 16;  // force checkpoint snapshots
  return cfg;
}

TEST(Recovery, RecoveredImageMatchesPreCrashServerExactly) {
  for (const auto mode : {ClashConfig::DurabilityMode::kWal,
                          ClashConfig::DurabilityMode::kWalSnapshot}) {
    MemBackend backend;
    NullEnv env;
    const auto cfg = durable_config(mode);
    ClashServer server(ServerId{0}, cfg, env,
                       dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
    NodeStore store(backend, NodeStore::Config::from(cfg));
    server.set_storage(&store);

    ServerTableEntry entry;
    entry.group = KeyGroup::root(kWidth);
    entry.root = true;
    entry.active = true;
    server.install_entry(entry);

    // A few hundred random mutations — enough to cross several
    // compaction boundaries in kWalSnapshot mode.
    Rng rng(mode == ClashConfig::DurabilityMode::kWal ? 11 : 13);
    for (int i = 0; i < 300; ++i) {
      AcceptObject obj;
      obj.key = Key(rng.next() & 0xFF, kWidth);
      if (rng.below(4) == 0) {
        obj.kind = ObjectKind::kQuery;
        obj.query_id = QueryId{rng.below(64)};
      } else {
        obj.kind = ObjectKind::kData;
        obj.source = ClientId{rng.below(64)};
        obj.stream_rate = 1.0 + double(rng.below(8));
      }
      (void)server.handle_accept_object(obj);
      if (rng.below(8) == 0) {
        server.remove_stream(ClientId{rng.below(64)},
                             Key(rng.next() & 0xFF, kWidth));
      }
    }

    const GroupState* live = server.group_state(entry.group);
    ASSERT_NE(live, nullptr);
    const auto live_head = server.log_head(entry.group);
    ASSERT_TRUE(live_head.has_value());

    // Crash (per-append fsync: nothing unsynced) and recover.
    const auto image = recover_image(backend, "wal", "snap");
    ASSERT_EQ(image.groups.size(), 1u) << "mode " << int(mode);
    const RecoveredGroup& rec = image.groups.at(entry.group);
    EXPECT_EQ(rec.head, *live_head) << "replayed head == pre-crash head";
    EXPECT_TRUE(rec.root);
    EXPECT_EQ(rec.state.streams.size(), live->streams.size());
    EXPECT_EQ(rec.state.queries.size(), live->queries.size());
    EXPECT_DOUBLE_EQ(rec.state.stream_rate, live->stream_rate);
    for (const auto& [id, s] : live->streams) {
      const auto it = rec.state.streams.find(id);
      ASSERT_NE(it, rec.state.streams.end());
      EXPECT_EQ(it->second.key, s.key);
      EXPECT_DOUBLE_EQ(it->second.rate, s.rate);
    }
    for (const auto& [id, q] : live->queries) {
      EXPECT_EQ(rec.state.queries.count(id), 1u);
    }
    if (mode == ClashConfig::DurabilityMode::kWalSnapshot) {
      EXPECT_GT(store.stats().snapshots_written, 1u);  // checkpoints cut
    }
  }
}

TEST(Recovery, RestartedStoreReclaimsItsPredecessorsSegments) {
  // A restarted NodeStore adopts the surviving WAL segments as closed
  // and truncates them once checkpoints cover them — disk and replay
  // must stay bounded across repeated crash/restart cycles instead of
  // accumulating every previous run's log forever.
  MemBackend backend;
  NullEnv env;
  auto cfg = durable_config(ClashConfig::DurabilityMode::kWalSnapshot);
  cfg.wal_segment_bytes = 1024;
  std::size_t last_files = 0;
  std::uint64_t last_replayed = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    ClashServer server(ServerId{0}, cfg, env,
                       dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
    NodeStore store(backend, NodeStore::Config::from(cfg));
    server.set_storage(&store);
    const auto replayed = store.recovery_stats().records_replayed;
    if (cycle == 0) {
      ServerTableEntry entry;
      entry.group = KeyGroup::root(kWidth);
      entry.root = true;
      entry.active = true;
      server.install_entry(entry);
    } else {
      server.restore_from_storage();
      // Crash-without-evict: the restarted node re-owns its group.
      (void)server.promote_replica(KeyGroup::root(kWidth));
    }
    for (int i = 0; i < 200; ++i) {
      AcceptObject obj;
      obj.key = Key(std::uint64_t(i) & 0xFF, kWidth);
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{std::uint64_t(i) % 64};
      obj.stream_rate = 1.0;
      (void)server.handle_accept_object(obj);
    }
    const std::size_t files = backend.list("wal").size();
    if (cycle >= 2) {
      // Steady state: per-cycle load is constant, so segment count and
      // replay cost must plateau, not grow with cycle count.
      EXPECT_LE(files, last_files + 1) << "cycle " << cycle;
      EXPECT_LE(replayed, last_replayed + 64) << "cycle " << cycle;
      EXPECT_GT(store.wal_stats().segments_deleted, 0u);
    }
    last_files = files;
    last_replayed = replayed;
  }
}

TEST(Recovery, WalSnapshotTruncationBoundsReplay) {
  // Same load, two modes: the checkpointing store must replay far
  // fewer records at recovery (everything before the last snapshot is
  // covered).
  std::map<int, std::uint64_t> replayed;
  for (const auto mode : {ClashConfig::DurabilityMode::kWal,
                          ClashConfig::DurabilityMode::kWalSnapshot}) {
    MemBackend backend;
    NullEnv env;
    auto cfg = durable_config(mode);
    cfg.wal_segment_bytes = 2048;  // several segments under this load
    ClashServer server(ServerId{0}, cfg, env,
                       dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
    NodeStore store(backend, NodeStore::Config::from(cfg));
    server.set_storage(&store);
    ServerTableEntry entry;
    entry.group = KeyGroup::root(kWidth);
    entry.root = true;
    entry.active = true;
    server.install_entry(entry);
    for (int i = 0; i < 400; ++i) {
      AcceptObject obj;
      obj.key = Key(std::uint64_t(i) & 0xFF, kWidth);
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{std::uint64_t(i) % 96};
      obj.stream_rate = 1.0;
      (void)server.handle_accept_object(obj);
    }
    const auto image = recover_image(backend, "wal", "snap");
    replayed[int(mode)] = image.stats.records_replayed;
    ASSERT_EQ(image.groups.size(), 1u);
    EXPECT_EQ(image.groups.begin()->second.head,
              *server.log_head(entry.group));
  }
  EXPECT_LT(replayed[int(ClashConfig::DurabilityMode::kWalSnapshot)],
            replayed[int(ClashConfig::DurabilityMode::kWal)]);
}

}  // namespace
}  // namespace clash::storage
