// Fuzz-style codec robustness: for a representative message of every
// wire MsgType, every single-byte flip of the encoding and every
// truncation must either decode-fail cleanly or produce a value that
// re-encodes without incident — never crash, hang, or over-read
// (ASan/UBSan in CI turn any such slip into a hard failure). This is
// the floor under the corrupt fault mode: whatever the network does to
// a frame, the worst outcome is a rejected message.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "wire/codec.hpp"

namespace clash::wire {
namespace {

std::vector<Message> representative_messages() {
  const KeyGroup g = KeyGroup::parse("0110*", 24).value();
  const repl::LogHead head{7, 123};
  std::vector<Message> all;

  AcceptObject obj;
  obj.key = Key(0xABCDEF, 24);
  obj.depth = 9;
  obj.kind = ObjectKind::kQuery;
  obj.query_id = QueryId{424242};
  obj.stream_rate = 2.5;
  obj.source = ClientId{99};
  obj.trace_id = 0xFEEDFACE12345678ULL;
  all.emplace_back(obj);

  all.emplace_back(AcceptObjectOk{5});
  all.emplace_back(IncorrectDepth{4});

  AcceptKeyGroup akg;
  akg.group = g;
  akg.parent = ServerId{7};
  akg.root = true;
  akg.epoch = 17;
  akg.streams.push_back({ClientId{1}, Key(0x600000, 24), 1.5});
  akg.queries.push_back({QueryId{10}, Key(0x620000, 24)});
  all.emplace_back(akg);

  all.emplace_back(AcceptKeyGroupAck{g});
  all.emplace_back(LoadReport{g, 123.5, true});
  all.emplace_back(ReclaimKeyGroup{g});

  ReclaimAck rack;
  rack.group = g;
  rack.streams.push_back({ClientId{3}, Key(0x680000, 24), 0.5});
  all.emplace_back(rack);

  all.emplace_back(ReclaimRefused{g});

  ReplicateGroup rep;
  rep.group = g;
  rep.owner = ServerId{3};
  rep.root = true;
  rep.parent = ServerId{9};
  rep.streams.push_back({ClientId{5}, Key(0x601234, 24), 4.5});
  rep.queries.push_back({QueryId{77}, Key(0x609999, 24)});
  all.emplace_back(rep);

  all.emplace_back(DropReplica{g});

  Gossip gossip;
  gossip.kind = GossipKind::kPing;
  gossip.sequence = 41;
  gossip.target = ServerId{6};
  gossip.updates.push_back({ServerId{2}, MemberState::kSuspect, 3});
  gossip.updates.push_back({ServerId{4}, MemberState::kDead, 9});
  NodeCensusRecord census_rec;
  census_rec.node = ServerId{4};
  census_rec.incarnation = 9;
  census_rec.seq = 3;
  census_rec.load = 77.5;
  census_rec.active_groups = 2;
  census_rec.queries = 5;
  census_rec.totals.bytes_served = 512;
  census_rec.top_groups.push_back({g, GroupCost{1, 2, 3, 4, 5}});
  census_rec.checksum = census_record_crc(census_rec);
  gossip.census.push_back(census_rec);
  gossip.checksum = content_crc(gossip);
  all.emplace_back(gossip);

  ReplAppend app;
  app.group = g;
  app.owner = ServerId{3};
  app.epoch = 5;
  app.base_seq = 41;
  app.trace_id = 0xABCDEF99ULL;
  app.entries.push_back(
      repl::LogOp::put_stream({ClientId{9}, Key(0x601234, 24), 2.5}));
  app.entries.push_back(
      repl::LogOp::put_query(QueryInfo{QueryId{44}, Key(0x60AAAA, 24)}));
  app.entries.push_back(repl::LogOp::app_delta_op({1, 2, 3, 4}));
  app.checksum = content_crc(app);
  all.emplace_back(app);

  all.emplace_back(ReplAck{g, head, false});

  SnapshotOffer offer;
  offer.group = g;
  offer.owner = ServerId{2};
  offer.head = head;
  offer.root = true;
  offer.parent = ServerId{6};
  offer.total_chunks = 3;
  offer.trace_id = 0x1111222233334444ULL;
  all.emplace_back(offer);

  SnapshotChunk chunk;
  chunk.group = g;
  chunk.head = head;
  chunk.index = 1;
  chunk.total = 3;
  chunk.trace_id = 0x1111222233334444ULL;
  chunk.streams.push_back({ClientId{5}, Key(0x601234, 24), 4.5});
  chunk.queries.push_back({QueryId{77}, Key(0x609999, 24)});
  chunk.app_state = {9, 8, 7};
  chunk.app_deltas = {{1}, {2, 3}};
  chunk.checksum = content_crc(chunk);
  all.emplace_back(chunk);

  AntiEntropyProbe probe;
  probe.owner = ServerId{2};
  probe.heads.push_back({g, head});
  all.emplace_back(probe);

  AntiEntropyDiff diff;
  diff.behind.push_back({g, repl::LogHead{}});
  all.emplace_back(diff);

  return all;
}

std::vector<std::uint8_t> encode(const Message& msg) {
  Writer w;
  encode_message(w, msg);
  return w.take();
}

/// A decoded value (however it was obtained) must survive a re-encode
/// and a second decode — the codec never emits something it cannot
/// itself parse.
void expect_reencodable(const Message& msg) {
  const auto bytes = encode(msg);
  EXPECT_TRUE(decode_message(bytes).ok());
}

TEST(CodecFuzz, EveryMessageTypeIsCovered) {
  // The representative set must track the MsgType enum: a new wire
  // type without fuzz coverage fails here, not in production.
  const auto all = representative_messages();
  EXPECT_EQ(all.size(), 18u) << "add new MsgType representatives here";
}

TEST(CodecFuzz, SingleByteFlipsNeverCrashTheDecoder) {
  Rng rng(0xF1155EED);
  for (const auto& msg : representative_messages()) {
    const auto clean = encode(msg);
    for (std::size_t pos = 0; pos < clean.size(); ++pos) {
      // Three flip patterns per position: low bit, high bit, random.
      for (const std::uint8_t flip :
           {std::uint8_t(0x01), std::uint8_t(0x80),
            std::uint8_t(1 + rng.below(255))}) {
        auto mutated = clean;
        mutated[pos] ^= flip;
        const auto decoded = decode_message(mutated);
        if (decoded.ok()) expect_reencodable(decoded.value());
      }
    }
  }
}

TEST(CodecFuzz, EveryTruncationFailsCleanly) {
  for (const auto& msg : representative_messages()) {
    const auto clean = encode(msg);
    for (std::size_t len = 0; len < clean.size(); ++len) {
      const auto decoded =
          decode_message(std::span(clean.data(), len));
      // Prefixes of variable-length encodings may occasionally parse
      // (a shorter valid message); they must then re-encode cleanly.
      if (decoded.ok()) expect_reencodable(decoded.value());
    }
  }
}

TEST(CodecFuzz, FlippedFramesNeverCrashTheFrameDecoder) {
  Rng rng(0xF2255EED);
  for (const auto& msg : representative_messages()) {
    auto w = begin_frame(Envelope{FrameKind::kOneway, 7, ServerId{3}});
    encode_message(w, msg);
    const auto frame = finish_frame(std::move(w));
    // decode_frame takes the payload after the length prefix.
    const std::span<const std::uint8_t> body(frame.data() + 4,
                                             frame.size() - 4);
    for (std::size_t pos = 0; pos < body.size(); ++pos) {
      auto mutated = std::vector<std::uint8_t>(body.begin(), body.end());
      mutated[pos] ^= std::uint8_t(1 + rng.below(255));
      const auto decoded = decode_frame(mutated);
      if (decoded.ok()) {
        (void)decode_message(decoded.value().payload);
      }
    }
    for (std::size_t len = 0; len < body.size(); ++len) {
      (void)decode_frame(std::span(body.data(), len));
    }
  }
}

TEST(CodecFuzz, CorruptMessageNeverSlipsPastTheContentFence) {
  // The sim's corrupt fault: whatever corrupt_message produces must be
  // caught by either the codec (nullopt) or the receiver's content
  // CRC — a mutation that passes both must be byte-identical content
  // (the flips hit only the checksum slot, turning it to 0/itself).
  Rng rng(0xF3355EED);
  Gossip gossip;
  gossip.kind = GossipKind::kPing;
  gossip.sequence = 41;
  gossip.target = ServerId{6};
  gossip.updates.push_back({ServerId{2}, MemberState::kDead, 9});
  gossip.checksum = content_crc(gossip);
  const Message original{gossip};

  int fenced = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto mutated = corrupt_message(original, rng);
    if (!mutated) continue;  // codec fence
    const auto& out = std::get<Gossip>(*mutated);
    const bool fence_rejects =
        out.checksum != 0 && out.checksum != content_crc(out);
    if (!fence_rejects) {
      // Unfenced: the content must be untouched (checksum-slot-only
      // flips) — anything else is an installable corruption.
      EXPECT_EQ(content_crc(out), content_crc(gossip));
    } else {
      ++fenced;
    }
  }
  EXPECT_GT(fenced, 0) << "corrupt_message never produced a mutation "
                          "for the content fence to reject";
}

TEST(CodecFuzz, CensusRecordFenceCatchesWhatTheFrameFenceMisses) {
  // The census payload carries the publisher's own CRC per record, so
  // even a frame re-built by a relay (checksum slot zeroed, frame
  // fence vacuous) cannot smuggle a mutated record: every byte flip
  // that still decodes must either fail the record CRC or leave the
  // record byte-identical.
  const KeyGroup g = KeyGroup::parse("0110*", 24).value();
  Gossip gossip;
  gossip.kind = GossipKind::kPing;
  gossip.sequence = 41;
  gossip.target = ServerId{6};
  NodeCensusRecord rec;
  rec.node = ServerId{4};
  rec.incarnation = 9;
  rec.seq = 3;
  rec.load = 77.5;
  rec.totals.bytes_served = 512;
  rec.top_groups.push_back({g, GroupCost{1, 2, 3, 4, 5}});
  rec.checksum = census_record_crc(rec);
  gossip.census.push_back(rec);
  gossip.checksum = 0;  // unfenced frame: relays and tests build these

  Rng rng(0xF5555EED);
  Writer w;
  encode_message(w, Message(gossip));
  const auto clean = w.take();
  int record_fenced = 0;
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    auto mutated = clean;
    mutated[pos] ^= std::uint8_t(1 + rng.below(255));
    const auto decoded = decode_message(mutated);
    if (!decoded.ok()) continue;
    const auto* out = std::get_if<Gossip>(&decoded.value());
    if (out == nullptr) continue;
    for (const auto& out_rec : out->census) {
      if (out_rec.checksum != 0 &&
          out_rec.checksum != census_record_crc(out_rec)) {
        ++record_fenced;
        continue;  // the membership driver drops exactly these
      }
      // Record CRC verifies: the record content must be untouched
      // (the flip landed outside it, or inside its checksum turning
      // it to 0 — which un-fences but cannot alter the gauges).
      if (out_rec.checksum != 0) {
        EXPECT_EQ(census_record_crc(out_rec), census_record_crc(rec));
      }
    }
  }
  EXPECT_GT(record_fenced, 0)
      << "no flip ever exercised the per-record CRC fence";
}

TEST(CodecFuzz, NonCorruptibleTypesPassThroughUntouched) {
  Rng rng(0xF4455EED);
  const Message msg{AcceptObjectOk{5}};
  const auto out = corrupt_message(msg, rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<AcceptObjectOk>(*out).depth, 5u);
  EXPECT_FALSE(corruptible(msg));
  EXPECT_TRUE(corruptible(Message{Gossip{}}));
}

}  // namespace
}  // namespace clash::wire
