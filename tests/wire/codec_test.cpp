#include "wire/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace clash::wire {
namespace {

Message round_trip(const Message& msg) {
  Writer w;
  encode_message(w, msg);
  auto decoded = decode_message(w.data());
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error().message);
  return decoded.ok() ? decoded.value() : Message(AcceptObjectOk{});
}

TEST(Codec, AcceptObjectRoundTrip) {
  AcceptObject m;
  m.key = Key(0xABCDEF, 24);
  m.depth = 9;
  m.kind = ObjectKind::kQuery;
  m.query_id = QueryId{424242};
  m.stream_rate = 2.5;
  m.source = ClientId{99};
  m.probe_only = true;
  m.trace_id = 0xFEEDFACE12345678ULL;

  const auto out = std::get<AcceptObject>(round_trip(Message(m)));
  EXPECT_EQ(out.key, m.key);
  EXPECT_EQ(out.depth, m.depth);
  EXPECT_EQ(out.kind, m.kind);
  EXPECT_EQ(out.query_id, m.query_id);
  EXPECT_DOUBLE_EQ(out.stream_rate, m.stream_rate);
  EXPECT_EQ(out.source, m.source);
  EXPECT_TRUE(out.probe_only);
  EXPECT_EQ(out.trace_id, m.trace_id);
}

TEST(Codec, AcceptKeyGroupWithStateRoundTrip) {
  AcceptKeyGroup m;
  m.group = KeyGroup::parse("0110*", 24).value();
  m.parent = ServerId{7};
  m.streams.push_back({ClientId{1}, Key(0x600000, 24), 1.5});
  m.streams.push_back({ClientId{2}, Key(0x610000, 24), 2.5});
  m.queries.push_back({QueryId{10}, Key(0x620000, 24)});

  const auto out = std::get<AcceptKeyGroup>(round_trip(Message(m)));
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.parent, m.parent);
  ASSERT_EQ(out.streams.size(), 2u);
  EXPECT_EQ(out.streams[1].source, ClientId{2});
  EXPECT_DOUBLE_EQ(out.streams[1].rate, 2.5);
  ASSERT_EQ(out.queries.size(), 1u);
  EXPECT_EQ(out.queries[0].id, QueryId{10});
}

TEST(Codec, AllSimpleVariantsRoundTrip) {
  const KeyGroup g = KeyGroup::parse("01101*", 24).value();
  EXPECT_EQ(std::get<AcceptObjectOk>(round_trip(Message(AcceptObjectOk{5})))
                .depth,
            5u);
  EXPECT_EQ(
      std::get<IncorrectDepth>(round_trip(Message(IncorrectDepth{4}))).dmin,
      4u);
  EXPECT_EQ(std::get<AcceptKeyGroupAck>(
                round_trip(Message(AcceptKeyGroupAck{g})))
                .group,
            g);
  const auto report = std::get<LoadReport>(
      round_trip(Message(LoadReport{g, 123.5, true})));
  EXPECT_EQ(report.group, g);
  EXPECT_DOUBLE_EQ(report.load, 123.5);
  EXPECT_TRUE(report.is_leaf);
  EXPECT_EQ(std::get<ReclaimKeyGroup>(
                round_trip(Message(ReclaimKeyGroup{g})))
                .group,
            g);
  EXPECT_EQ(std::get<ReclaimRefused>(
                round_trip(Message(ReclaimRefused{g})))
                .group,
            g);
  ReclaimAck ack;
  ack.group = g;
  ack.streams.push_back({ClientId{3}, Key(0x680000, 24), 0.5});
  const auto ack_out = std::get<ReclaimAck>(round_trip(Message(ack)));
  ASSERT_EQ(ack_out.streams.size(), 1u);
}

TEST(Codec, ReplicationMessagesRoundTrip) {
  ReplicateGroup m;
  m.group = KeyGroup::parse("0110*", 24).value();
  m.owner = ServerId{3};
  m.root = true;
  m.parent = ServerId{9};
  m.streams.push_back({ClientId{5}, Key(0x601234, 24), 4.5});
  m.queries.push_back({QueryId{77}, Key(0x609999, 24)});

  const auto out = std::get<ReplicateGroup>(round_trip(Message(m)));
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.owner, m.owner);
  EXPECT_TRUE(out.root);
  EXPECT_EQ(out.parent, m.parent);
  ASSERT_EQ(out.streams.size(), 1u);
  EXPECT_DOUBLE_EQ(out.streams[0].rate, 4.5);
  ASSERT_EQ(out.queries.size(), 1u);

  const auto drop = std::get<DropReplica>(
      round_trip(Message(DropReplica{m.group})));
  EXPECT_EQ(drop.group, m.group);
}

TEST(Codec, AcceptKeyGroupCarriesRootAndEpoch) {
  AcceptKeyGroup m;
  m.group = KeyGroup::parse("1010*", 24).value();
  m.parent = ServerId{4};
  m.root = true;
  m.epoch = 17;
  const auto out = std::get<AcceptKeyGroup>(round_trip(Message(m)));
  EXPECT_TRUE(out.root);
  EXPECT_EQ(out.epoch, 17u);
}

TEST(Codec, ReplAppendRoundTrip) {
  ReplAppend m;
  m.group = KeyGroup::parse("0110*", 24).value();
  m.owner = ServerId{3};
  m.epoch = 5;
  m.base_seq = 41;
  m.trace_id = 0xABCDEF99ULL;
  m.entries.push_back(
      repl::LogOp::put_stream({ClientId{9}, Key(0x601234, 24), 2.5}));
  m.entries.push_back(repl::LogOp::del_stream(ClientId{9}));
  m.entries.push_back(
      repl::LogOp::put_query(QueryInfo{QueryId{44}, Key(0x60AAAA, 24)}));
  m.entries.push_back(repl::LogOp::del_query(QueryId{44}));
  m.entries.push_back(repl::LogOp::app_delta_op({1, 2, 3, 4}));

  const auto out = std::get<ReplAppend>(round_trip(Message(m)));
  EXPECT_EQ(out.group, m.group);
  EXPECT_EQ(out.owner, m.owner);
  EXPECT_EQ(out.epoch, 5u);
  EXPECT_EQ(out.base_seq, 41u);
  EXPECT_EQ(out.trace_id, 0xABCDEF99ULL);
  ASSERT_EQ(out.entries.size(), 5u);
  EXPECT_EQ(out.entries[0].kind, repl::OpKind::kPutStream);
  EXPECT_DOUBLE_EQ(out.entries[0].stream.rate, 2.5);
  EXPECT_EQ(out.entries[1].kind, repl::OpKind::kDelStream);
  EXPECT_EQ(out.entries[1].source, ClientId{9});
  EXPECT_EQ(out.entries[2].kind, repl::OpKind::kPutQuery);
  EXPECT_EQ(out.entries[2].query.id, QueryId{44});
  EXPECT_EQ(out.entries[3].kind, repl::OpKind::kDelQuery);
  EXPECT_EQ(out.entries[3].query_id, QueryId{44});
  EXPECT_EQ(out.entries[4].kind, repl::OpKind::kAppDelta);
  EXPECT_EQ(out.entries[4].app_delta,
            (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Codec, SnapshotAndAntiEntropyRoundTrip) {
  const KeyGroup g = KeyGroup::parse("0110*", 24).value();
  const repl::LogHead head{7, 123};

  const auto ack =
      std::get<ReplAck>(round_trip(Message(ReplAck{g, head, false})));
  EXPECT_EQ(ack.group, g);
  EXPECT_EQ(ack.head, head);
  EXPECT_FALSE(ack.ok);

  SnapshotOffer offer;
  offer.group = g;
  offer.owner = ServerId{2};
  offer.head = head;
  offer.root = true;
  offer.parent = ServerId{6};
  offer.total_chunks = 3;
  offer.trace_id = 0x1111222233334444ULL;
  const auto offer_out = std::get<SnapshotOffer>(round_trip(Message(offer)));
  EXPECT_EQ(offer_out.head, head);
  EXPECT_TRUE(offer_out.root);
  EXPECT_EQ(offer_out.total_chunks, 3u);
  EXPECT_EQ(offer_out.trace_id, offer.trace_id);

  SnapshotChunk chunk;
  chunk.group = g;
  chunk.head = head;
  chunk.index = 1;
  chunk.total = 3;
  chunk.trace_id = 0x1111222233334444ULL;
  chunk.streams.push_back({ClientId{5}, Key(0x601234, 24), 4.5});
  chunk.queries.push_back({QueryId{77}, Key(0x609999, 24)});
  chunk.app_state = {9, 8, 7};
  chunk.app_deltas = {{1}, {2, 3}};
  const auto chunk_out = std::get<SnapshotChunk>(round_trip(Message(chunk)));
  EXPECT_EQ(chunk_out.index, 1u);
  EXPECT_EQ(chunk_out.trace_id, chunk.trace_id);
  ASSERT_EQ(chunk_out.streams.size(), 1u);
  EXPECT_EQ(chunk_out.app_state, (std::vector<std::uint8_t>{9, 8, 7}));
  ASSERT_EQ(chunk_out.app_deltas.size(), 2u);
  EXPECT_EQ(chunk_out.app_deltas[1], (std::vector<std::uint8_t>{2, 3}));

  AntiEntropyProbe probe;
  probe.owner = ServerId{2};
  probe.heads.push_back({g, head});
  probe.heads.push_back({KeyGroup::parse("111*", 24).value(),
                         repl::LogHead{1, 0}});
  const auto probe_out =
      std::get<AntiEntropyProbe>(round_trip(Message(probe)));
  ASSERT_EQ(probe_out.heads.size(), 2u);
  EXPECT_EQ(probe_out.heads[0].head, head);

  AntiEntropyDiff diff;
  diff.behind.push_back({g, repl::LogHead{}});
  const auto diff_out = std::get<AntiEntropyDiff>(round_trip(Message(diff)));
  ASSERT_EQ(diff_out.behind.size(), 1u);
  EXPECT_EQ(diff_out.behind[0].head, (repl::LogHead{0, 0}));
}

TEST(Codec, SnapshotFramesRejectTruncationAtEveryBoundary) {
  // A partially received frame must never decode into a plausible
  // offer/chunk — every strict prefix of the encoding is an error
  // (the transfer-restart logic depends on corrupt frames dying in
  // the codec, not in the assembly).
  SnapshotOffer offer;
  offer.group = KeyGroup::parse("0110*", 24).value();
  offer.owner = ServerId{2};
  offer.head = repl::LogHead{7, 123};
  offer.root = true;
  offer.parent = ServerId{6};
  offer.total_chunks = 3;
  Writer wo;
  encode_message(wo, Message(offer));
  const auto offer_bytes = wo.take();
  for (std::size_t len = 0; len < offer_bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_message(std::span(offer_bytes.data(), len)).ok())
        << "offer prefix of " << len << " bytes decoded";
  }

  SnapshotChunk chunk;
  chunk.group = KeyGroup::parse("0110*", 24).value();
  chunk.head = repl::LogHead{7, 123};
  chunk.index = 1;
  chunk.total = 3;
  chunk.streams.push_back({ClientId{5}, Key(0x601234, 24), 4.5});
  chunk.queries.push_back({QueryId{77}, Key(0x609999, 24)});
  chunk.app_state = {9, 8, 7};
  chunk.app_deltas = {{1}, {2, 3}};
  Writer wc;
  encode_message(wc, Message(chunk));
  const auto chunk_bytes = wc.take();
  for (std::size_t len = 0; len < chunk_bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_message(std::span(chunk_bytes.data(), len)).ok())
        << "chunk prefix of " << len << " bytes decoded";
  }
}

TEST(Codec, SnapshotFramesRejectDuplicatedPayloads) {
  // Two concatenated encodings in one frame (a framing bug or a
  // malicious duplicate) must be rejected as trailing garbage, not
  // silently decoded as the first message.
  SnapshotOffer offer;
  offer.group = KeyGroup::parse("01*", 24).value();
  offer.head = repl::LogHead{1, 4};
  offer.total_chunks = 2;
  Writer wo;
  encode_message(wo, Message(offer));
  auto doubled = wo.take();
  const auto copy = doubled;
  doubled.insert(doubled.end(), copy.begin(), copy.end());
  EXPECT_FALSE(decode_message(doubled).ok());

  SnapshotChunk chunk;
  chunk.group = KeyGroup::parse("01*", 24).value();
  chunk.head = repl::LogHead{1, 4};
  chunk.total = 2;
  chunk.streams.push_back({ClientId{1}, Key(0x400000, 24), 1.0});
  Writer wc;
  encode_message(wc, Message(chunk));
  auto doubled_chunk = wc.take();
  const auto chunk_copy = doubled_chunk;
  doubled_chunk.insert(doubled_chunk.end(), chunk_copy.begin(),
                       chunk_copy.end());
  EXPECT_FALSE(decode_message(doubled_chunk).ok());
}

TEST(Codec, ReplAppendRejectsBadOpKind) {
  ReplAppend m;
  m.group = KeyGroup::parse("0*", 24).value();
  m.owner = ServerId{1};
  m.entries.push_back(repl::LogOp::del_stream(ClientId{1}));
  Writer w;
  encode_message(w, Message(m));
  auto bytes = w.take();
  // The op kind byte sits right after type(1) + checksum(4) +
  // group(10) + owner(8) + epoch(8) + base_seq(8) + trace_id(8) +
  // count(4) = 51 bytes.
  bytes[51] = 0xEE;
  EXPECT_FALSE(decode_message(bytes).ok());
}

TEST(Codec, GossipRoundTrip) {
  Gossip m;
  m.kind = GossipKind::kPingReq;
  m.sequence = 0x8000000000000042ULL;  // relay-tagged sequences survive
  m.target = ServerId{12};
  m.updates.push_back({ServerId{3}, MemberState::kSuspect, 7});
  m.updates.push_back({ServerId{9}, MemberState::kDead, 0});
  m.updates.push_back({ServerId{12}, MemberState::kAlive, 8});

  // A census record piggybacks beside the membership rumours.
  NodeCensusRecord rec;
  rec.node = ServerId{3};
  rec.incarnation = 7;
  rec.seq = 22;
  rec.load = 123.5;
  rec.active_groups = 4;
  rec.replica_records = 9;
  rec.queries = 17;
  rec.streams = 33;
  rec.totals.bytes_served = 1000;
  rec.totals.repl_bytes = 200;
  rec.top_groups.push_back(
      {KeyGroup::parse("0110*", 24).value(), GroupCost{1, 2, 3, 4, 5}});
  rec.checksum = census_record_crc(rec);
  m.census.push_back(rec);

  const auto out = std::get<Gossip>(round_trip(Message(m)));
  EXPECT_EQ(out.kind, m.kind);
  EXPECT_EQ(out.sequence, m.sequence);
  EXPECT_EQ(out.target, m.target);
  ASSERT_EQ(out.updates.size(), 3u);
  EXPECT_EQ(out.updates[0].subject, ServerId{3});
  EXPECT_EQ(out.updates[0].state, MemberState::kSuspect);
  EXPECT_EQ(out.updates[0].incarnation, 7u);
  EXPECT_EQ(out.updates[1].state, MemberState::kDead);
  EXPECT_EQ(out.updates[2].state, MemberState::kAlive);
  ASSERT_EQ(out.census.size(), 1u);
  const auto& crec = out.census[0];
  EXPECT_EQ(crec.node, rec.node);
  EXPECT_EQ(crec.incarnation, 7u);
  EXPECT_EQ(crec.seq, 22u);
  EXPECT_DOUBLE_EQ(crec.load, 123.5);
  EXPECT_EQ(crec.active_groups, 4u);
  EXPECT_EQ(crec.replica_records, 9u);
  EXPECT_EQ(crec.queries, 17u);
  EXPECT_EQ(crec.streams, 33u);
  EXPECT_EQ(crec.totals.bytes_served, 1000u);
  ASSERT_EQ(crec.top_groups.size(), 1u);
  EXPECT_EQ(crec.top_groups[0].group, rec.top_groups[0].group);
  EXPECT_EQ(crec.top_groups[0].cost.storage_bytes, 5u);
  // The per-record CRC survives the round trip and still verifies.
  EXPECT_EQ(crec.checksum, rec.checksum);
  EXPECT_EQ(census_record_crc(crec), crec.checksum);

  // An empty piggyback batch is fine.
  Gossip bare;
  bare.kind = GossipKind::kAck;
  bare.sequence = 5;
  bare.target = ServerId{1};
  const auto bare_out = std::get<Gossip>(round_trip(Message(bare)));
  EXPECT_TRUE(bare_out.updates.empty());
  EXPECT_TRUE(bare_out.census.empty());
}

TEST(Codec, CensusRecordRejectsMalformedPayloads) {
  Gossip m;
  m.kind = GossipKind::kPing;
  m.sequence = 1;
  m.target = ServerId{2};
  NodeCensusRecord rec;
  rec.node = ServerId{3};
  rec.incarnation = 1;
  rec.seq = 1;
  rec.load = 0.5;
  rec.top_groups.push_back(
      {KeyGroup::parse("01*", 24).value(), GroupCost{1, 1, 1, 1, 1}});
  rec.checksum = census_record_crc(rec);
  m.census.push_back(rec);

  Writer w;
  encode_message(w, Message(m));
  const auto bytes = w.take();

  // Every strict prefix of the frame is an error — truncation can
  // never surface a plausible census record.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_message(std::span(bytes.data(), len)).ok())
        << "prefix of " << len << " bytes decoded";
  }

  // A non-finite or negative load is rejected structurally (it would
  // poison every view() fold downstream of one bad frame).
  auto poison = rec;
  poison.load = -1.0;
  Gossip bad;
  bad.kind = GossipKind::kPing;
  bad.sequence = 1;
  bad.target = ServerId{2};
  bad.census.push_back(poison);
  Writer wb;
  encode_message(wb, Message(bad));
  EXPECT_FALSE(decode_message(wb.data()).ok());

  // Adversarial census count: more records than bytes remain.
  Writer wc;
  wc.u8(12);  // MsgType::kGossip
  wc.u32(0);  // checksum slot
  wc.u8(0);   // kPing
  wc.u64(1);
  wc.u64(2);
  wc.u32(0);         // zero membership updates
  wc.u32(0xFFFFFF);  // absurd census count
  EXPECT_FALSE(decode_message(wc.data()).ok());
}

TEST(Codec, CensusRecordCrcDetectsFieldTampering) {
  NodeCensusRecord rec;
  rec.node = ServerId{5};
  rec.incarnation = 2;
  rec.seq = 9;
  rec.load = 1.25;
  rec.totals.bytes_served = 4096;
  rec.checksum = census_record_crc(rec);
  EXPECT_EQ(census_record_crc(rec), rec.checksum);
  // Any gauge flip invalidates the publisher's proof.
  auto tampered = rec;
  tampered.totals.bytes_served = 4097;
  EXPECT_NE(census_record_crc(tampered), rec.checksum);
  auto reseq = rec;
  reseq.seq = 10;
  EXPECT_NE(census_record_crc(reseq), rec.checksum);
}

TEST(Codec, GossipRejectsMalformedPayloads) {
  // Bad gossip kind.
  Writer w;
  w.u8(12);  // MsgType::kGossip
  w.u8(9);   // invalid kind
  w.u64(1);
  w.u64(2);
  w.u32(0);
  EXPECT_FALSE(decode_message(w.data()).ok());

  // Bad member state inside an update.
  Writer w2;
  w2.u8(12);
  w2.u8(0);  // kPing
  w2.u64(1);
  w2.u64(2);
  w2.u32(1);   // one update...
  w2.u64(4);   // subject
  w2.u8(7);    // invalid state
  w2.u64(0);   // incarnation
  EXPECT_FALSE(decode_message(w2.data()).ok());

  // Adversarial count: more updates than bytes remain.
  Writer w3;
  w3.u8(12);
  w3.u8(0);
  w3.u64(1);
  w3.u64(2);
  w3.u32(0xFFFFFF);
  EXPECT_FALSE(decode_message(w3.data()).ok());
}

TEST(Codec, ReplyRoundTrip) {
  Writer w;
  encode_reply(w, AcceptObjectReply(AcceptObjectOk{7}));
  const auto ok = decode_reply(w.data());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(std::get<AcceptObjectOk>(ok.value()).depth, 7u);

  Writer w2;
  encode_reply(w2, AcceptObjectReply(IncorrectDepth{3}));
  const auto bad = decode_reply(w2.data());
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(std::get<IncorrectDepth>(bad.value()).dmin, 3u);
}

TEST(Codec, ReplyRejectsNonReplyMessage) {
  Writer w;
  encode_message(w, Message(ReclaimKeyGroup{KeyGroup::root(24)}));
  EXPECT_FALSE(decode_reply(w.data()).ok());
}

TEST(Codec, RejectsMalformedInput) {
  EXPECT_FALSE(decode_message({}).ok());
  const std::uint8_t junk[] = {0xFF, 0x01, 0x02};
  EXPECT_FALSE(decode_message(std::span(junk, 3)).ok());
  // Truncated AcceptObject.
  Writer w;
  encode_message(w, Message(AcceptObject{}));
  auto bytes = w.data();
  EXPECT_FALSE(
      decode_message(std::span(bytes.data(), bytes.size() - 3)).ok());
  // Trailing garbage.
  Writer w2;
  encode_message(w2, Message(AcceptObjectOk{1}));
  auto padded = w2.take();
  padded.push_back(0);
  EXPECT_FALSE(decode_message(padded).ok());
}

TEST(Codec, RejectsNonCanonicalGroup) {
  // Virtual key with non-zero suffix bits below the depth.
  Writer w;
  w.u8(std::uint8_t(MsgType::kReclaimKeyGroup));
  w.u8(24);            // key width
  w.u64(0xABCDEF);     // value with low bits set
  w.u8(4);             // depth 4 -> suffix must be zero
  EXPECT_FALSE(decode_message(w.data()).ok());
}

TEST(Codec, RejectsOversizedKeyValue) {
  Writer w;
  w.u8(std::uint8_t(MsgType::kAcceptObjectOk));
  // AcceptObjectOk payload is one byte; craft a bad key through
  // ReclaimKeyGroup instead.
  Writer w2;
  w2.u8(std::uint8_t(MsgType::kReclaimKeyGroup));
  w2.u8(8);                  // 8-bit key...
  w2.u64(0x1FF);             // ...with a 9-bit value
  w2.u8(2);
  EXPECT_FALSE(decode_message(w2.data()).ok());
}

TEST(Codec, RejectsAbsurdVectorCounts) {
  Writer w;
  w.u8(std::uint8_t(MsgType::kAcceptKeyGroup));
  encode_group(w, KeyGroup::parse("01*", 24).value());
  w.u64(1);           // parent
  w.u32(0xFFFFFFFF);  // stream count far beyond remaining bytes
  EXPECT_FALSE(decode_message(w.data()).ok());
}

TEST(Codec, FrameRoundTrip) {
  Writer payload;
  encode_message(payload, Message(AcceptObjectOk{9}));
  const Envelope env{FrameKind::kResponse, 77, ServerId{5}};
  const auto frame = encode_frame(env, payload.data());

  const auto decoded = decode_frame(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().envelope.kind, FrameKind::kResponse);
  EXPECT_EQ(decoded.value().envelope.request_id, 77u);
  EXPECT_EQ(decoded.value().envelope.sender, ServerId{5});
  const auto msg = decode_message(decoded.value().payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(std::get<AcceptObjectOk>(msg.value()).depth, 9u);
}

TEST(Codec, FrameRejectsBadVersionAndKind) {
  Writer payload;
  encode_message(payload, Message(AcceptObjectOk{1}));
  auto frame = encode_frame(Envelope{}, payload.data());
  frame[0] = 99;  // version
  EXPECT_FALSE(decode_frame(frame).ok());
  frame[0] = kProtocolVersion;
  frame[1] = 7;  // kind
  EXPECT_FALSE(decode_frame(frame).ok());
  EXPECT_FALSE(decode_frame({}).ok());
}

// Property: random valid messages survive encode/decode byte-exactly.
TEST(Codec, FuzzRoundTripRandomMessages) {
  Rng rng(777);
  for (int i = 0; i < 500; ++i) {
    Message msg;
    switch (rng.below(5)) {
      case 0: {
        AcceptObject m;
        m.key = Key(rng.next() & 0xFFFFFF, 24);
        m.depth = unsigned(rng.below(25));
        m.kind = rng.bernoulli(0.5) ? ObjectKind::kData : ObjectKind::kQuery;
        m.query_id = QueryId{rng.next()};
        m.stream_rate = rng.uniform01() * 100;
        m.source = ClientId{rng.next()};
        m.probe_only = rng.bernoulli(0.5);
        msg = m;
        break;
      }
      case 1: {
        AcceptKeyGroup m;
        m.group = KeyGroup::of(Key(rng.next() & 0xFFFFFF, 24),
                               unsigned(rng.below(25)));
        m.parent = ServerId{rng.below(1000)};
        const auto n = rng.below(8);
        for (std::uint64_t s = 0; s < n; ++s) {
          m.streams.push_back({ClientId{rng.next()},
                               Key(rng.next() & 0xFFFFFF, 24),
                               rng.uniform01()});
        }
        msg = m;
        break;
      }
      case 2:
        msg = LoadReport{KeyGroup::of(Key(rng.next() & 0xFFFFFF, 24),
                                      unsigned(rng.below(25))),
                         rng.uniform01() * 1e4, rng.bernoulli(0.5)};
        break;
      case 3:
        msg = IncorrectDepth{unsigned(rng.below(25))};
        break;
      default:
        msg = AcceptObjectOk{unsigned(rng.below(25))};
        break;
    }
    Writer w;
    encode_message(w, msg);
    const auto decoded = decode_message(w.data());
    ASSERT_TRUE(decoded.ok()) << i;
    Writer w2;
    encode_message(w2, decoded.value());
    EXPECT_EQ(w.data(), w2.data()) << "re-encode mismatch at " << i;
  }
}

// Property: decoding random byte soup never crashes and never yields a
// message that re-encodes to different bytes.
TEST(Codec, FuzzDecodeGarbageIsSafe) {
  Rng rng(999);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = std::uint8_t(rng.next());
    const auto decoded = decode_message(junk);
    if (decoded.ok()) {
      Writer w;
      encode_message(w, decoded.value());
      EXPECT_EQ(w.data(), junk) << "accepted non-canonical bytes at " << i;
    }
  }
}

}  // namespace
}  // namespace clash::wire
