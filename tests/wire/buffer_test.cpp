#include "wire/buffer.hpp"

#include <gtest/gtest.h>

namespace clash::wire {
namespace {

TEST(Buffer, RoundTripsScalars) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.14159);
  w.boolean(true);
  w.str("hello");

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, ReaderLatchesOutOfBounds) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  (void)r.u32();  // needs 4 bytes, only 2 present
  EXPECT_FALSE(r.ok());
  // All subsequent reads stay failed and return zero.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, StringBoundsChecked) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes, none follow
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, ExplicitFail) {
  Writer w;
  w.u8(1);
  Reader r(w.data());
  r.fail();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, NegativeAndSpecialDoubles) {
  Writer w;
  w.f64(-0.0);
  w.f64(1e300);
  w.f64(-1e-300);
  Reader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), 1e300);
  EXPECT_DOUBLE_EQ(r.f64(), -1e-300);
}

TEST(Buffer, EmptyString) {
  Writer w;
  w.str("");
  Reader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace clash::wire
