// BufferPool recycling, the little-endian framing helpers, and the
// pooled Writer fast path (begin_frame/finish_frame single-encode).
#include "wire/buffer_pool.hpp"

#include <gtest/gtest.h>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace clash::wire {
namespace {

TEST(LittleEndian, StoreLoadRoundTrip) {
  std::uint8_t buf[4];
  for (const std::uint32_t v :
       {0u, 1u, 0x12345678u, 0xFFFFFFFFu, 0x80000000u}) {
    store_u32_le(buf, v);
    EXPECT_EQ(load_u32_le(buf), v);
  }
  store_u32_le(buf, 0x0A0B0C0D);
  // Explicit byte order: least-significant byte first.
  EXPECT_EQ(buf[0], 0x0D);
  EXPECT_EQ(buf[1], 0x0C);
  EXPECT_EQ(buf[2], 0x0B);
  EXPECT_EQ(buf[3], 0x0A);
}

TEST(BufferPool, RecyclesCapacity) {
  BufferPool pool;
  auto buf = pool.acquire();
  EXPECT_TRUE(buf.empty());
  buf.resize(1000);
  const auto* data = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);

  auto again = pool.acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 1000u);
  EXPECT_EQ(again.data(), data);  // same allocation came back
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, DoesNotRetainOversizedOrEmptyBuffers) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>{});  // no capacity: dropped
  EXPECT_EQ(pool.pooled(), 0u);
  std::vector<std::uint8_t> huge;
  huge.reserve(8u << 20);  // above the retention cap: dropped
  pool.release(std::move(huge));
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(PooledWriter, SteadyStateEncodingReusesOneBuffer) {
  auto& pool = BufferPool::local();
  // Warm up: one encode/release cycle seeds the pool.
  {
    Writer w;
    w.u64(1);
    pool.release(w.take());
  }
  const auto reuses_before = pool.reuses();
  for (int i = 0; i < 10; ++i) {
    Writer w;
    w.u64(std::uint64_t(i));
    w.str("steady state");
    pool.release(w.take());
  }
  EXPECT_GE(pool.reuses(), reuses_before + 10);
}

TEST(FramePath, BeginFinishMatchesLegacyEncoding) {
  const Envelope env{FrameKind::kRequest, 1234, ServerId{77}};

  auto w = begin_frame(env);
  w.str("identical payload");
  const auto fast = finish_frame(std::move(w));

  Writer payload;
  payload.str("identical payload");
  const auto legacy = encode_frame(env, payload.data());

  // Byte-for-byte the same frame on the wire: LE length prefix, then
  // the legacy encoding.
  ASSERT_EQ(fast.size(), legacy.size() + 4);
  EXPECT_EQ(load_u32_le(fast.data()), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), fast.begin() + 4));

  const auto decoded = decode_frame(
      std::span<const std::uint8_t>(fast).subspan(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().envelope.kind, FrameKind::kRequest);
  EXPECT_EQ(decoded.value().envelope.request_id, 1234u);
  EXPECT_EQ(decoded.value().envelope.sender.value, 77u);
}

TEST(FramePath, PatchU32OverwritesInPlace) {
  Writer w;
  w.u32(0);
  w.str("body");
  w.patch_u32(0, std::uint32_t(w.size() - 4));
  EXPECT_EQ(load_u32_le(w.data().data()), w.size() - 4);
}

}  // namespace
}  // namespace clash::wire
