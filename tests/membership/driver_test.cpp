// MembershipDriver protocol tests over an in-memory network with
// controllable link failures: detection, indirection, refutation, and
// the rejoin handshake.
#include "membership/driver.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

namespace clash::membership {
namespace {

// A tiny synchronous network: messages queue up and are delivered in
// order; individual directed links can be cut and whole nodes crashed.
struct LoopbackNet {
  struct Node : MembershipEnv {
    LoopbackNet* net = nullptr;
    ServerId id{};
    bool alive = true;
    std::unique_ptr<MembershipDriver> driver;
    std::vector<ServerId> deaths;
    std::vector<ServerId> joins;

    void gossip_send(ServerId to, const Gossip& msg) override {
      net->queue.emplace_back(id, to, msg);
    }
    void on_member_dead(ServerId dead) override { deaths.push_back(dead); }
    void on_member_joined(ServerId joined) override {
      joins.push_back(joined);
    }
  };

  explicit LoopbackNet(std::size_t n, MembershipConfig cfg = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      node->net = this;
      node->id = ServerId{i};
      node->driver = std::make_unique<MembershipDriver>(ServerId{i}, cfg,
                                                        *node, 1000 + i);
      nodes.push_back(std::move(node));
    }
    for (auto& node : nodes) {
      for (std::size_t j = 0; j < n; ++j) node->driver->add_seed(ServerId{j});
    }
  }

  void cut(ServerId a, ServerId b) {  // cut both directions
    cuts.insert({a.value, b.value});
    cuts.insert({b.value, a.value});
  }
  void heal(ServerId a, ServerId b) {
    cuts.erase({a.value, b.value});
    cuts.erase({b.value, a.value});
  }

  void deliver_all() {
    while (!queue.empty()) {
      auto [from, to, msg] = queue.front();
      queue.pop_front();
      if (!nodes[to.value]->alive) continue;
      if (cuts.count({from.value, to.value}) > 0) continue;
      nodes[to.value]->driver->handle(from, msg);
    }
  }

  /// One protocol period everywhere, then full message delivery.
  void tick_all() {
    for (auto& node : nodes) {
      if (node->alive) node->driver->tick();
    }
    deliver_all();
  }

  [[nodiscard]] MemberState state(std::size_t observer,
                                  std::size_t subject) const {
    return nodes[observer]->driver->view().state_of(ServerId{subject});
  }

  std::vector<std::unique_ptr<Node>> nodes;
  std::deque<std::tuple<ServerId, ServerId, Gossip>> queue;
  std::set<std::pair<std::uint64_t, std::uint64_t>> cuts;
};

TEST(MembershipDriver, HealthyClusterStaysFullyAlive) {
  LoopbackNet net(5);
  for (int period = 0; period < 20; ++period) net.tick_all();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(net.nodes[i]->deaths.empty());
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(net.state(i, j), MemberState::kAlive) << i << "->" << j;
    }
  }
}

TEST(MembershipDriver, CrashedNodeIsDeclaredDeadEverywhere) {
  LoopbackNet net(5);
  for (int period = 0; period < 3; ++period) net.tick_all();

  net.nodes[2]->alive = false;
  // Worst case: rotation (4) + ping timeout (1) + indirect (1) +
  // suspicion (3) + dissemination; 20 periods is a generous bound.
  int converged_at = -1;
  for (int period = 0; period < 20 && converged_at < 0; ++period) {
    net.tick_all();
    bool all = true;
    for (std::size_t i = 0; i < 5; ++i) {
      if (i == 2 || !net.nodes[i]->alive) continue;
      all = all && net.state(i, 2) == MemberState::kDead;
    }
    if (all) converged_at = period;
  }
  ASSERT_GE(converged_at, 0) << "survivors never converged on the death";

  // Each survivor fired the death callback exactly once.
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    ASSERT_EQ(net.nodes[i]->deaths.size(), 1u) << "survivor " << i;
    EXPECT_EQ(net.nodes[i]->deaths[0], ServerId{2});
  }
}

TEST(MembershipDriver, PingReqIndirectionAvoidsFalsePositive) {
  MembershipConfig cfg;
  cfg.detector.ping_req_fanout = 2;
  LoopbackNet net(3, cfg);
  // 0 cannot talk to 1 directly, but 2 relays both ways.
  net.cut(ServerId{0}, ServerId{1});

  for (int period = 0; period < 30; ++period) net.tick_all();
  EXPECT_EQ(net.state(0, 1), MemberState::kAlive);
  EXPECT_EQ(net.state(1, 0), MemberState::kAlive);
  EXPECT_TRUE(net.nodes[0]->deaths.empty());
  EXPECT_TRUE(net.nodes[1]->deaths.empty());
}

TEST(MembershipDriver, SuspectRefutesWithIncarnationBump) {
  MembershipConfig cfg;
  cfg.suspicion_periods = 8;  // long fuse: give the refutation room
  cfg.detector.ping_req_fanout = 1;
  LoopbackNet net(3, cfg);

  // Fully isolate node 1 until someone suspects it.
  net.cut(ServerId{0}, ServerId{1});
  net.cut(ServerId{2}, ServerId{1});
  bool suspected = false;
  for (int period = 0; period < 12 && !suspected; ++period) {
    net.tick_all();
    suspected = net.state(0, 1) == MemberState::kSuspect ||
                net.state(2, 1) == MemberState::kSuspect;
  }
  ASSERT_TRUE(suspected);

  // Reconnect: the suspicion rumour reaches node 1, which refutes.
  net.heal(ServerId{0}, ServerId{1});
  net.heal(ServerId{2}, ServerId{1});
  for (int period = 0; period < 12; ++period) net.tick_all();

  EXPECT_EQ(net.state(0, 1), MemberState::kAlive);
  EXPECT_EQ(net.state(2, 1), MemberState::kAlive);
  EXPECT_GE(net.nodes[1]->driver->view().self_incarnation(), 1u);
  EXPECT_TRUE(net.nodes[0]->deaths.empty());
  EXPECT_TRUE(net.nodes[2]->deaths.empty());
}

TEST(MembershipDriver, DeadNodeRejoinsByRefutingItsDeath) {
  LoopbackNet net(4);
  net.nodes[3]->alive = false;
  for (int period = 0; period < 20; ++period) net.tick_all();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(net.state(i, 3), MemberState::kDead) << i;
  }

  // Restart node 3 with a fresh driver (it lost all state, including
  // its incarnation). It learns of its own death from the survivors'
  // regossip and refutes with a bumped incarnation.
  auto& node = *net.nodes[3];
  node.driver = std::make_unique<MembershipDriver>(ServerId{3},
                                                   MembershipConfig{}, node,
                                                   999);
  for (std::size_t j = 0; j < 4; ++j) node.driver->add_seed(ServerId{j});
  node.alive = true;

  for (int period = 0; period < 20; ++period) net.tick_all();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(net.state(i, 3), MemberState::kAlive) << i;
    // The rejoin surfaced as a join event exactly once.
    EXPECT_EQ(std::count(net.nodes[i]->joins.begin(),
                         net.nodes[i]->joins.end(), ServerId{3}),
              1);
  }
}

TEST(MembershipDriver, GossipCarriesBoundedUpdateBatches) {
  MembershipConfig cfg;
  cfg.gossip_max_updates = 2;
  LoopbackNet net(6, cfg);
  net.nodes[1]->alive = false;
  net.nodes[2]->alive = false;

  std::size_t max_batch = 0;
  for (int period = 0; period < 15; ++period) {
    for (auto& node : net.nodes) {
      if (node->alive) node->driver->tick();
    }
    for (const auto& [from, to, msg] : net.queue) {
      max_batch = std::max(max_batch, msg.updates.size());
    }
    net.deliver_all();
  }
  EXPECT_LE(max_batch, 2u);
}

}  // namespace
}  // namespace clash::membership
