// MembershipView: SWIM rumour precedence, refutation, dissemination
// budgets, and join/death event reporting.
#include "membership/view.hpp"

#include <gtest/gtest.h>

namespace clash::membership {
namespace {

MembershipView seeded_view(std::size_t n, ServerId self = ServerId{0}) {
  MembershipView view(self);
  for (std::size_t i = 0; i < n; ++i) view.add_seed(ServerId{i});
  return view;
}

TEST(MembershipView, SeedsStartAliveAndSilent) {
  auto view = seeded_view(4);
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kAlive);
  EXPECT_EQ(view.incarnation_of(ServerId{1}), 0u);
  EXPECT_EQ(view.pending_rumours(), 0u);  // everyone already has the seeds
  EXPECT_EQ(view.probe_candidates().size(), 3u);  // excludes self
  EXPECT_EQ(view.living_members().size(), 4u);    // includes self
}

TEST(MembershipView, AliveNeedsStrictlyNewerIncarnation) {
  auto view = seeded_view(3);
  view.suspect(ServerId{1});
  ASSERT_EQ(view.state_of(ServerId{1}), MemberState::kSuspect);

  // Same incarnation cannot refute a suspicion.
  EXPECT_FALSE(view.apply({ServerId{1}, MemberState::kAlive, 0}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kSuspect);

  // A bumped incarnation does.
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kAlive, 1}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kAlive);
  EXPECT_EQ(view.incarnation_of(ServerId{1}), 1u);
}

TEST(MembershipView, SuspectBeatsAliveAtSameIncarnation) {
  auto view = seeded_view(3);
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kSuspect, 0}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kSuspect);
  // But a stale suspicion cannot reinstate itself after a refutation.
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kAlive, 1}));
  EXPECT_FALSE(view.apply({ServerId{1}, MemberState::kSuspect, 0}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kAlive);
}

TEST(MembershipView, DeadIsIncarnationGated) {
  auto view = seeded_view(3);
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kAlive, 7}));
  // A stale dead rumour (older incarnation) lost to the refutation at
  // incarnation 7 and must not re-kill the member.
  EXPECT_FALSE(view.apply({ServerId{1}, MemberState::kDead, 6}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kAlive);

  // A current one does kill it.
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kDead, 7}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kDead);
  const auto died = view.take_died();
  ASSERT_EQ(died.size(), 1u);
  EXPECT_EQ(died[0], ServerId{1});

  // Only a strictly newer alive (a restart that learned of its own
  // death) resurrects.
  EXPECT_FALSE(view.apply({ServerId{1}, MemberState::kAlive, 7}));
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kAlive, 8}));
  EXPECT_EQ(view.state_of(ServerId{1}), MemberState::kAlive);
  const auto joined = view.take_joined();
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], ServerId{1});
}

TEST(MembershipView, SelfSuspicionIsRefutedWithBump) {
  auto view = seeded_view(3);
  EXPECT_TRUE(view.apply({ServerId{0}, MemberState::kSuspect, 0}));
  EXPECT_EQ(view.self_incarnation(), 1u);
  EXPECT_EQ(view.state_of(ServerId{0}), MemberState::kAlive);

  // The refutation is queued for dissemination.
  const auto updates = view.pick_updates(8);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].subject, ServerId{0});
  EXPECT_EQ(updates[0].state, MemberState::kAlive);
  EXPECT_EQ(updates[0].incarnation, 1u);
}

TEST(MembershipView, SelfDeathRumourIsRefutedToo) {
  auto view = seeded_view(3);
  EXPECT_TRUE(view.apply({ServerId{0}, MemberState::kDead, 4}));
  EXPECT_EQ(view.self_incarnation(), 5u);
  EXPECT_EQ(view.state_of(ServerId{0}), MemberState::kAlive);
}

TEST(MembershipView, UnknownAliveMemberJoins) {
  auto view = seeded_view(2);
  EXPECT_TRUE(view.apply({ServerId{9}, MemberState::kAlive, 0}));
  EXPECT_TRUE(view.knows(ServerId{9}));
  const auto joined = view.take_joined();
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], ServerId{9});
  // A rumour about an unknown dead member is recorded but not a join.
  EXPECT_TRUE(view.apply({ServerId{11}, MemberState::kDead, 0}));
  EXPECT_TRUE(view.take_joined().empty());
  EXPECT_EQ(view.state_of(ServerId{11}), MemberState::kDead);
}

TEST(MembershipView, DisseminationBudgetExhausts) {
  auto view = seeded_view(8);
  view.suspect(ServerId{1});
  std::size_t transmissions = 0;
  while (!view.pick_updates(4).empty()) {
    ++transmissions;
    ASSERT_LT(transmissions, 100u) << "budget never exhausted";
  }
  // ceil(3 * log2(9)) = 10 transmissions for an 8-member view.
  EXPECT_GE(transmissions, 5u);
  EXPECT_LE(transmissions, 16u);
}

TEST(MembershipView, SupersedingRumourResetsBudgetAndState) {
  auto view = seeded_view(4);
  view.suspect(ServerId{1});
  (void)view.pick_updates(4);
  // Refutation replaces the queued suspicion outright.
  EXPECT_TRUE(view.apply({ServerId{1}, MemberState::kAlive, 1}));
  const auto updates = view.pick_updates(4);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].state, MemberState::kAlive);
  EXPECT_EQ(updates[0].incarnation, 1u);
}

TEST(MembershipView, PickUpdatesPrefersLeastTransmitted) {
  auto view = seeded_view(6);
  view.suspect(ServerId{1});
  (void)view.pick_updates(1);  // the suspicion has now been sent once
  view.suspect(ServerId{2});   // fresh rumour
  const auto updates = view.pick_updates(1);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].subject, ServerId{2});
}

TEST(MembershipView, RegossipRequeuesCurrentState) {
  auto view = seeded_view(4);
  view.declare_dead(ServerId{2});
  (void)view.take_died();
  while (!view.pick_updates(4).empty()) {
  }
  EXPECT_EQ(view.pending_rumours(), 0u);
  view.regossip(ServerId{2});
  const auto updates = view.pick_updates(4);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].subject, ServerId{2});
  EXPECT_EQ(updates[0].state, MemberState::kDead);
}

}  // namespace
}  // namespace clash::membership
