// FailureDetector: randomized round-robin probe scheduling, ping-req
// escalation, and probe expiry.
#include "membership/detector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace clash::membership {
namespace {

std::vector<ServerId> ids(std::initializer_list<std::uint64_t> values) {
  std::vector<ServerId> out;
  for (const auto v : values) out.emplace_back(v);
  return out;
}

TEST(FailureDetector, RoundRobinCoversEveryMemberPerRotation) {
  FailureDetector det(ServerId{0}, DetectorConfig{}, 42);
  const auto candidates = ids({1, 2, 3, 4, 5});

  std::set<std::uint64_t> probed;
  for (int tick = 0; tick < 5; ++tick) {
    const auto actions = det.tick(candidates);
    ASSERT_EQ(actions.pings.size(), 1u);
    probed.insert(actions.pings[0].target.value);
    det.acknowledge(actions.pings[0].sequence);  // all healthy
    EXPECT_TRUE(actions.ping_reqs.empty());
    EXPECT_TRUE(actions.unresponsive.empty());
  }
  EXPECT_EQ(probed.size(), 5u) << "one full rotation must probe everyone";
}

TEST(FailureDetector, SilentTargetEscalatesThenExpires) {
  DetectorConfig cfg;
  cfg.ping_timeout_periods = 1;
  cfg.indirect_timeout_periods = 1;
  cfg.ping_req_fanout = 2;
  FailureDetector det(ServerId{0}, cfg, 7);
  const auto candidates = ids({1, 2, 3, 4});

  const auto first = det.tick(candidates);
  ASSERT_EQ(first.pings.size(), 1u);
  const ServerId victim = first.pings[0].target;
  EXPECT_TRUE(det.awaiting(victim));

  // No ack: next period escalates to ping-req through 2 proxies that
  // are neither self nor the victim.
  const auto second = det.tick(candidates);
  std::size_t reqs_for_victim = 0;
  for (const auto& [proxy, probe] : second.ping_reqs) {
    if (probe.target == victim) {
      ++reqs_for_victim;
      EXPECT_NE(proxy, victim);
      EXPECT_NE(proxy, ServerId{0});
      EXPECT_EQ(probe.sequence, first.pings[0].sequence);
    }
  }
  EXPECT_EQ(reqs_for_victim, 2u);

  // Still no ack: the victim is handed over as unresponsive.
  const auto third = det.tick(candidates);
  EXPECT_TRUE(std::count(third.unresponsive.begin(), third.unresponsive.end(),
                         victim) == 1);
  EXPECT_FALSE(det.awaiting(victim));
}

TEST(FailureDetector, AckStopsEscalation) {
  FailureDetector det(ServerId{0}, DetectorConfig{}, 7);
  const auto candidates = ids({1, 2, 3});

  const auto first = det.tick(candidates);
  ASSERT_EQ(first.pings.size(), 1u);
  det.acknowledge(first.pings[0].sequence);
  EXPECT_FALSE(det.awaiting(first.pings[0].target));

  for (int tick = 0; tick < 4; ++tick) {
    const auto actions = det.tick(candidates);
    for (const auto& ping : actions.pings) det.acknowledge(ping.sequence);
    EXPECT_TRUE(actions.unresponsive.empty());
  }
}

TEST(FailureDetector, ForgetDropsPendingProbe) {
  DetectorConfig cfg;
  cfg.ping_timeout_periods = 1;
  cfg.indirect_timeout_periods = 1;
  FailureDetector det(ServerId{0}, cfg, 3);
  const auto candidates = ids({1, 2});

  const auto first = det.tick(candidates);
  ASSERT_EQ(first.pings.size(), 1u);
  det.forget(first.pings[0].target);
  EXPECT_FALSE(det.awaiting(first.pings[0].target));
}

TEST(FailureDetector, DepartedMemberIsNeverReportedUnresponsive) {
  DetectorConfig cfg;
  cfg.ping_timeout_periods = 1;
  cfg.indirect_timeout_periods = 1;
  FailureDetector det(ServerId{0}, cfg, 9);

  const auto first = det.tick(ids({1, 2}));
  ASSERT_EQ(first.pings.size(), 1u);
  const ServerId target = first.pings[0].target;
  // The target leaves the membership (declared dead via gossip) before
  // the probe expires: no stale verdict may surface.
  const auto remaining =
      target == ServerId{1} ? ids({2}) : ids({1});
  for (int tick = 0; tick < 4; ++tick) {
    const auto actions = det.tick(remaining);
    EXPECT_TRUE(std::count(actions.unresponsive.begin(),
                           actions.unresponsive.end(), target) == 0);
    for (const auto& ping : actions.pings) det.acknowledge(ping.sequence);
  }
}

TEST(FailureDetector, EmptyCandidateSetIsQuiet) {
  FailureDetector det(ServerId{0}, DetectorConfig{}, 1);
  const auto actions = det.tick({});
  EXPECT_TRUE(actions.pings.empty());
  EXPECT_TRUE(actions.ping_reqs.empty());
  EXPECT_TRUE(actions.unresponsive.empty());
}

}  // namespace
}  // namespace clash::membership
