#!/usr/bin/env bash
# Proves clang's thread-safety analysis is live over the project's
# annotation macros:
#   1. the positive control (correctly locked) compiles clean, and
#   2. the negative case (unlocked guarded access) is REJECTED with a
#      thread-safety diagnostic.
# Skipped (exit 77) under compilers without the analysis (GCC).
#
# Usage: run_negative_compile.sh <c++-compiler> <repo-root>
set -u

CXX="${1:?usage: run_negative_compile.sh <cxx> <repo-root>}"
ROOT="${2:?usage: run_negative_compile.sh <cxx> <repo-root>}"

if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "thread-safety negative test: $CXX is not clang; skipping"
  exit 77
fi

ERR=$(mktemp)
trap 'rm -f "$ERR"' EXIT
FLAGS="-std=c++20 -I$ROOT/src -Wthread-safety -Werror=thread-safety -fsyntax-only"

# shellcheck disable=SC2086
if ! "$CXX" $FLAGS "$ROOT/tests/static/thread_safety_positive.cpp"; then
  echo "FAIL: positive control does not compile — harness broken" >&2
  exit 1
fi

# shellcheck disable=SC2086
if "$CXX" $FLAGS "$ROOT/tests/static/thread_safety_negative.cpp" 2>"$ERR"; then
  echo "FAIL: unlocked guarded access was NOT rejected" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$ERR"; then
  echo "FAIL: negative case rejected, but not by the analysis:" >&2
  cat "$ERR" >&2
  exit 1
fi
echo "thread-safety negative test: OK"
