// POSITIVE control for the negative compile test: identical shape to
// thread_safety_negative.cpp but correctly locked, so it must compile
// clean under clang -Wthread-safety -Werror=thread-safety. If this
// file fails, the harness flags are broken and the negative result
// proves nothing.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    const clash::common::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() {
    const clash::common::MutexLock lock(mu_);
    return balance_;
  }

 private:
  clash::common::Mutex mu_;
  int balance_ CLASH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
