// NEGATIVE compile test — this file must NOT compile under
// clang -Wthread-safety -Werror=thread-safety (and is never built by
// the normal tree). It accesses a CLASH_GUARDED_BY member without
// holding the mutex; tests/static/run_negative_compile.sh asserts the
// analysis rejects it, proving the annotation macros are live (not
// compiled away) in thread-safety CI builds.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // unlocked access: the analysis must reject
  }

  int balance() {
    const clash::common::MutexLock lock(mu_);
    return balance_;
  }

 private:
  clash::common::Mutex mu_;
  int balance_ CLASH_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
