#include "common/argparse.hpp"

#include <gtest/gtest.h>

namespace clash {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return ArgParser(int(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  const auto p = parse({"prog", "--servers=100", "--scale=0.5"});
  EXPECT_EQ(p.get_int("servers", 0), 100);
  EXPECT_DOUBLE_EQ(p.get_double("scale", 0), 0.5);
}

TEST(ArgParser, SpaceForm) {
  const auto p = parse({"prog", "--name", "clash"});
  EXPECT_EQ(p.get("name", ""), "clash");
}

TEST(ArgParser, BooleanFlag) {
  const auto p = parse({"prog", "--full"});
  EXPECT_TRUE(p.get_bool("full", false));
  EXPECT_FALSE(p.get_bool("absent", false));
  EXPECT_TRUE(p.get_bool("absent", true));
}

TEST(ArgParser, Fallbacks) {
  const auto p = parse({"prog"});
  EXPECT_EQ(p.get("missing", "dflt"), "dflt");
  EXPECT_EQ(p.get_int("missing", 9), 9);
}

TEST(ArgParser, Positional) {
  const auto p = parse({"prog", "input.txt", "--flag", "output.txt"});
  // "--flag output.txt" binds output.txt as the flag's value.
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.get("flag", ""), "output.txt");
}

TEST(ArgParser, ProgramName) {
  const auto p = parse({"prog"});
  EXPECT_EQ(p.program(), "prog");
}

TEST(ArgParser, BoolSpellings) {
  const auto p = parse({"prog", "--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(p.get_bool("a", false));
  EXPECT_TRUE(p.get_bool("b", false));
  EXPECT_TRUE(p.get_bool("c", false));
  EXPECT_FALSE(p.get_bool("d", true));
}

}  // namespace
}  // namespace clash
