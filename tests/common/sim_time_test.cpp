#include "common/sim_time.hpp"

#include <gtest/gtest.h>

namespace clash {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::from_seconds(1.5).usec, 1'500'000);
  EXPECT_EQ(SimTime::from_minutes(2).usec, 120'000'000);
  EXPECT_EQ(SimTime::from_hours(1).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(SimTime::from_minutes(30).minutes(), 30.0);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(6).hours(), 6.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_seconds(10);
  const SimTime b = SimTime::from_seconds(4);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
}

TEST(SimTime, Comparisons) {
  const SimTime a = SimTime::from_seconds(1);
  const SimTime b = SimTime::from_seconds(2);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= b);
  EXPECT_TRUE(a == SimTime::from_seconds(1));
}

}  // namespace
}  // namespace clash
