#include "common/crc32.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace clash {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, SeedChainsSplitBuffers) {
  const auto whole = bytes_of("hello, durable world");
  const auto full = crc32(whole);
  const std::span<const std::uint8_t> span(whole);
  const auto chained = crc32(span.subspan(7), crc32(span.first(7)));
  EXPECT_EQ(chained, full);

  Crc32 acc;
  acc.update(span.first(3));
  acc.update(span.subspan(3, 9));
  acc.update(span.subspan(12));
  EXPECT_EQ(acc.value(), full);
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = bytes_of("the record payload");
  const auto clean = crc32(data);
  data[5] ^= 0x10;
  EXPECT_NE(crc32(data), clean);
}

}  // namespace
}  // namespace clash
