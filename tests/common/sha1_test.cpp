#include "common/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace clash {
namespace {

// FIPS 180-1 reference vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hex(Sha1::hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(Sha1::hex(Sha1::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(Sha1::hex(s.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 s;
  s.update("hello ");
  s.update("world");
  EXPECT_EQ(Sha1::hex(s.finish()), Sha1::hex(Sha1::hash("hello world")));
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 s;
  s.update("garbage");
  (void)s.finish();
  s.reset();
  s.update("abc");
  EXPECT_EQ(Sha1::hex(s.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Hash64IsPrefixOfDigest) {
  const auto d = Sha1::hash("abc");
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | d[std::size_t(i)];
  const std::uint8_t bytes[] = {'a', 'b', 'c'};
  EXPECT_EQ(Sha1::hash64(std::span<const std::uint8_t>(bytes, 3)), expect);
}

TEST(Sha1, Hash64DiffersAcrossInputs) {
  EXPECT_NE(Sha1::hash64(std::uint64_t{1}), Sha1::hash64(std::uint64_t{2}));
}

TEST(Sha1, BoundaryLengths) {
  // Exercise the padding edge cases around the 64-byte block boundary.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    const std::string msg(len, 'x');
    Sha1 a;
    a.update(msg);
    Sha1 b;
    for (const char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(Sha1::hex(a.finish()), Sha1::hex(b.finish())) << len;
  }
}

}  // namespace
}  // namespace clash
