#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace clash {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(-1), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Error::invalid("bad"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, Error::Code::kInvalidArgument);
  EXPECT_EQ(e.error().message, "bad");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
  ASSERT_TRUE(e.ok());
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 7);
}

TEST(Expected, BoolConversion) {
  const Expected<std::string> good(std::string("x"));
  const Expected<std::string> bad(Error::not_found("y"));
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_FALSE(static_cast<bool>(bad));
}

TEST(Expected, ErrorFactories) {
  EXPECT_EQ(Error::invalid("a").code, Error::Code::kInvalidArgument);
  EXPECT_EQ(Error::not_found("b").code, Error::Code::kNotFound);
  EXPECT_EQ(Error::protocol("c").code, Error::Code::kProtocol);
}

}  // namespace
}  // namespace clash
