// common::AffinityToken (the runtime half of the loop-affinity
// capability) and common::Mutex/MutexLock (the annotated lock
// primitives): unbound tokens are inert, bound tokens trap violations,
// and the annotated mutex still behaves like a mutex.
#include "common/affinity.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/mutex.hpp"

namespace clash::common {
namespace {

bool always_true(const void*) { return true; }
bool always_false(const void*) { return false; }
bool ctx_is_self(const void* ctx) {
  return *static_cast<const bool*>(ctx);
}

TEST(AffinityToken, UnboundTokenChecksNothing) {
  const AffinityToken token;
  token.assert_held();  // must not abort: sim/unit-test hosts never bind
}

TEST(AffinityToken, BoundTokenPassesWhenProbeHolds) {
  AffinityToken token;
  token.bind(&always_true, nullptr, "test");
  token.assert_held();
}

TEST(AffinityToken, ProbeReceivesTheBoundContext) {
  bool ok = true;
  AffinityToken token;
  token.bind(&ctx_is_self, &ok, "test");
  token.assert_held();
}

#if CLASH_LOOP_CHECKS
using AffinityDeathTest = ::testing::Test;

TEST(AffinityDeathTest, BoundTokenAbortsWhenProbeFails) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AffinityToken token;
  token.bind(&always_false, nullptr, "DeathTestState");
  EXPECT_DEATH(token.assert_held(), "affinity violation: DeathTestState");
}
#else
TEST(AffinityDeathTest, SkippedWithoutLoopChecks) {
  GTEST_SKIP() << "CLASH_LOOP_CHECKS is off in this build";
}
#endif

TEST(AnnotatedMutex, ExcludesConcurrentCriticalSections) {
  Mutex mu;
  int shared = 0;
  std::thread a([&] {
    for (int i = 0; i < 10000; ++i) {
      const MutexLock lock(mu);
      ++shared;
    }
  });
  for (int i = 0; i < 10000; ++i) {
    const MutexLock lock(mu);
    ++shared;
  }
  a.join();
  const MutexLock lock(mu);
  EXPECT_EQ(shared, 20000);
}

TEST(AnnotatedMutex, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace clash::common
