#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace clash::bits {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, Field) {
  const std::uint64_t v = 0b1011'0110;
  EXPECT_EQ(field(v, 3, 0), 0b0110u);
  EXPECT_EQ(field(v, 7, 4), 0b1011u);
  EXPECT_EQ(field(v, 7, 0), v);
  EXPECT_EQ(field(v, 5, 5), 1u);
}

TEST(Bits, Width) {
  EXPECT_EQ(width(0), 0u);
  EXPECT_EQ(width(1), 1u);
  EXPECT_EQ(width(2), 2u);
  EXPECT_EQ(width(255), 8u);
  EXPECT_EQ(width(256), 9u);
  EXPECT_EQ(width(~std::uint64_t{0}), 64u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(1000), 10u);
}

TEST(Bits, Reverse) {
  EXPECT_EQ(reverse(0b001, 3), 0b100u);
  EXPECT_EQ(reverse(0b1011, 4), 0b1101u);
  EXPECT_EQ(reverse(0xFF, 8), 0xFFu);
  EXPECT_EQ(reverse(0, 8), 0u);
}

TEST(Bits, ReverseIsInvolution) {
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(reverse(reverse(v, 8), 8), v);
  }
}

TEST(Bits, Interleave) {
  // a = 0b10, b = 0b01 -> pairs (1,0) then (0,1) -> 0b1001.
  EXPECT_EQ(interleave(0b10, 0b01, 2), 0b1001u);
  EXPECT_EQ(interleave(0b11, 0b11, 2), 0b1111u);
  EXPECT_EQ(interleave(0b00, 0b11, 2), 0b0101u);
}

TEST(Bits, InterleaveRoundTrip) {
  // De-interleaving even/odd bit positions recovers the inputs.
  const std::uint64_t a = 0b10110;
  const std::uint64_t b = 0b01101;
  const std::uint64_t z = interleave(a, b, 5);
  std::uint64_t ra = 0, rb = 0;
  for (unsigned i = 0; i < 5; ++i) {
    ra = (ra << 1) | ((z >> (2 * (4 - i) + 1)) & 1);
    rb = (rb << 1) | ((z >> (2 * (4 - i))) & 1);
  }
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
}

}  // namespace
}  // namespace clash::bits
