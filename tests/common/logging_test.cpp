// Leveled logging: level-name parsing (the CLASH_LOG grammar) and the
// explicit set_level() threshold. The environment path itself is
// consulted once per process, so it is exercised by running any binary
// under CLASH_LOG rather than from inside this suite.
#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace clash::log {
namespace {

TEST(Logging, LevelFromNameParsesEveryLevel) {
  EXPECT_EQ(level_from_name("trace", Level::kOff), Level::kTrace);
  EXPECT_EQ(level_from_name("debug", Level::kOff), Level::kDebug);
  EXPECT_EQ(level_from_name("info", Level::kOff), Level::kInfo);
  EXPECT_EQ(level_from_name("warn", Level::kOff), Level::kWarn);
  EXPECT_EQ(level_from_name("warning", Level::kOff), Level::kWarn);
  EXPECT_EQ(level_from_name("error", Level::kOff), Level::kError);
  EXPECT_EQ(level_from_name("off", Level::kInfo), Level::kOff);
  EXPECT_EQ(level_from_name("none", Level::kInfo), Level::kOff);
}

TEST(Logging, LevelFromNameIsCaseInsensitive) {
  EXPECT_EQ(level_from_name("DEBUG", Level::kOff), Level::kDebug);
  EXPECT_EQ(level_from_name("Warn", Level::kOff), Level::kWarn);
  EXPECT_EQ(level_from_name("ERROR", Level::kOff), Level::kError);
}

TEST(Logging, LevelFromNameFallsBackOnGarbage) {
  EXPECT_EQ(level_from_name("", Level::kWarn), Level::kWarn);
  EXPECT_EQ(level_from_name("verbose", Level::kError), Level::kError);
  EXPECT_EQ(level_from_name("2", Level::kInfo), Level::kInfo);
}

TEST(Logging, SetLevelGatesEnabled) {
  const Level saved = level();
  set_level(Level::kError);
  EXPECT_FALSE(enabled(Level::kDebug));
  EXPECT_FALSE(enabled(Level::kWarn));
  EXPECT_TRUE(enabled(Level::kError));

  set_level(Level::kTrace);
  EXPECT_TRUE(enabled(Level::kTrace));
  EXPECT_TRUE(enabled(Level::kError));

  set_level(Level::kOff);
  EXPECT_FALSE(enabled(Level::kError));

  set_level(saved);
}

TEST(Logging, StatementsBelowThresholdAreDiscarded) {
  const Level saved = level();
  set_level(Level::kOff);
  // The macro must short-circuit: the streamed expression never runs.
  bool evaluated = false;
  auto touch = [&evaluated] {
    evaluated = true;
    return "x";
  };
  CLASH_ERROR << touch();
  EXPECT_FALSE(evaluated);
  set_level(saved);
}

}  // namespace
}  // namespace clash::log
