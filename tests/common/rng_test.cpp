#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace clash {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.below(10)]++;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, 4 * std::sqrt(n / 10.0));
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  const double mean = 40.0;
  double total = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.exponential(mean);
  // Standard error = mean / sqrt(n) ~ 0.09; allow 5 sigma.
  EXPECT_NEAR(total / n, mean, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, SplitIndependence) {
  Rng parent(21);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> w = {1, 2, 3, 4};
  DiscreteSampler sampler(w);
  Rng rng(5);
  std::array<int, 4> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[sampler.sample(rng)]++;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(double(counts[i]) / n, w[i] / 10.0, 0.01) << "index " << i;
    EXPECT_NEAR(sampler.probability(i), w[i] / 10.0, 1e-12);
  }
}

TEST(DiscreteSampler, SingleElement) {
  const std::vector<double> w = {3.0};
  DiscreteSampler sampler(w);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> w = {1, 0, 1};
  DiscreteSampler sampler(w);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, RejectsInvalid) {
  EXPECT_THROW(DiscreteSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(std::vector<double>{1, -1}),
               std::invalid_argument);
}

TEST(ZipfSampler, HeadHeavierThanTail) {
  ZipfSampler zipf(100, 1.2);
  Rng rng(31);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) head += (zipf.sample(rng) < 10);
  EXPECT_GT(head, n / 2);  // top 10 % of ranks carry most mass
  EXPECT_GT(zipf.probability(0), zipf.probability(50));
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler zipf(64, 0.8);
  double total = 0;
  for (std::size_t i = 0; i < 64; ++i) total += zipf.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace clash
