// Range queries (Section 7 future work): resolve_range must partition
// any key range into the prefix-free active groups covering it, and
// CLASH's clustering must beat fine-grained hashing on server contacts.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

struct RangeFixture : ::testing::Test {
  RangeFixture()
      : cluster(testing::small_cluster_config(16, 8, 3, 1e9)) {
    cluster.bootstrap();
  }

  void split_at(const Key& k) {
    const auto group = cluster.find_active_group(k);
    ASSERT_TRUE(group.has_value());
    ASSERT_TRUE(
        cluster.server(*cluster.find_owner(k)).force_split(*group));
  }

  ClashClient make_client() {
    return ClashClient(cluster.clash_config(),
                       cluster.client_env(ServerId{0}), cluster.hasher());
  }

  sim::SimCluster cluster;
};

TEST_F(RangeFixture, FullSpaceAtBootstrapYieldsAllRoots) {
  auto client = make_client();
  const auto out = client.resolve_range(Key(0, 8), Key(255, 8));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.segments.size(), 8u);  // the 2^3 bootstrap groups
  for (const auto& [group, server] : out.segments) {
    EXPECT_EQ(group.depth(), 3u);
    EXPECT_EQ(server, cluster.owner_index().at(group));
  }
}

TEST_F(RangeFixture, SegmentsPartitionTheRange) {
  // Make the tree irregular, then check exact partition on many ranges.
  Rng rng(11);
  for (int i = 0; i < 10; ++i) split_at(Key(rng.next() & 0xFF, 8));

  auto client = make_client();
  for (int trial = 0; trial < 60; ++trial) {
    std::uint64_t a = rng.next() & 0xFF;
    std::uint64_t b = rng.next() & 0xFF;
    if (a > b) std::swap(a, b);
    const auto out = client.resolve_range(Key(a, 8), Key(b, 8));
    ASSERT_TRUE(out.ok);
    // Consecutive segments tile [first_group_start, >= b] without gaps.
    std::uint64_t expect_start =
        out.segments.front().first.virtual_key().value();
    EXPECT_LE(expect_start, a);
    for (const auto& [group, server] : out.segments) {
      EXPECT_EQ(group.virtual_key().value(), expect_start);
      expect_start += group.cardinality();
      EXPECT_EQ(server, cluster.owner_index().at(group));
    }
    EXPECT_GT(expect_start, b);
  }
}

TEST_F(RangeFixture, SingleKeyRangeIsOneSegment) {
  auto client = make_client();
  const auto out = client.resolve_range(Key(0x42, 8), Key(0x42, 8));
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.segments.size(), 1u);
  EXPECT_TRUE(out.segments[0].first.contains(Key(0x42, 8)));
}

TEST_F(RangeFixture, ScopeConvenienceMatchesRange) {
  auto client = make_client();
  const auto scope = KeyGroup::parse("01*", 8).value();
  const auto by_scope = client.resolve_scope(scope);
  const auto by_range = client.resolve_range(Key(0x40, 8), Key(0x7F, 8));
  ASSERT_TRUE(by_scope.ok);
  ASSERT_EQ(by_scope.segments.size(), by_range.segments.size());
  for (std::size_t i = 0; i < by_scope.segments.size(); ++i) {
    EXPECT_EQ(by_scope.segments[i].first, by_range.segments[i].first);
  }
}

TEST_F(RangeFixture, DeepHotspotOnlyAddsLocalSegments) {
  // Split one subtree down to full depth; a range elsewhere is still a
  // single segment, while the hotspot range fans out.
  const Key hot(0b11100000, 8);
  for (int i = 0; i < 5; ++i) split_at(hot);
  auto client = make_client();

  const auto cold = client.resolve_scope(KeyGroup::parse("000*", 8).value());
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cold.segments.size(), 1u);

  const auto hot_range =
      client.resolve_scope(KeyGroup::parse("111*", 8).value());
  ASSERT_TRUE(hot_range.ok);
  EXPECT_GT(hot_range.segments.size(), 4u);
}

// The paper's claim: "For range queries, the CLASH overhead vis-a-vis
// DHT will decrease, since CLASH will cluster ranges of objects on a
// common server and thus incur lower query replication overhead."
TEST_F(RangeFixture, FewerServerContactsThanFineGrainedHashing) {
  auto client = make_client();
  const auto scope = KeyGroup::parse("01*", 8).value();  // 64 keys
  const auto out = client.resolve_scope(scope);
  ASSERT_TRUE(out.ok);
  // CLASH: the range is covered by a handful of clustered groups.
  EXPECT_LE(out.distinct_servers(), 4u);

  // Fine-grained DHT(8): every key hashes independently.
  std::set<std::uint64_t> dht_servers;
  for (std::uint64_t v = 0x40; v <= 0x7F; ++v) {
    dht_servers.insert(
        cluster.ring().map(cluster.hasher().hash_key(Key(v, 8))).value);
  }
  EXPECT_GT(dht_servers.size(), 2 * out.distinct_servers());
}

}  // namespace
}  // namespace clash
