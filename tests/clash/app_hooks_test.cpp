// The application API (Section 7's game-middleware extension):
// app-contributed load, application-signalled overload, and opaque
// state distribution across splits and merges.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "clash/server.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

using testing::MockServerEnv;
using testing::group;
using testing::key;

ClashConfig cfg7() {
  ClashConfig cfg;
  cfg.key_width = 7;
  cfg.initial_depth = 2;
  cfg.capacity = 100;
  return cfg;
}

/// A toy game world: one blob of state per zone (key group), exported
/// and imported as CLASH moves zones between servers.
class WorldState final : public AppHooks {
 public:
  std::map<std::string, std::string> zones;  // group label -> payload
  double extra_load = 0;

  double app_load(const KeyGroup& g) override {
    return zones.count(g.label()) > 0 ? extra_load : 0;
  }

  std::vector<std::uint8_t> export_state(const KeyGroup& g,
                                         ServerId) override {
    // Ship every zone whose label sits under g's prefix.
    std::string shipped;
    for (auto it = zones.begin(); it != zones.end();) {
      const auto zone = KeyGroup::parse(it->first, 7);
      if (zone.ok() && g.covers(zone.value())) {
        shipped += it->first + "=" + it->second + ";";
        it = zones.erase(it);
      } else {
        ++it;
      }
    }
    return {shipped.begin(), shipped.end()};
  }

  void import_state(const KeyGroup&,
                    const std::vector<std::uint8_t>& state) override {
    std::string text(state.begin(), state.end());
    while (!text.empty()) {
      const auto semi = text.find(';');
      const auto item = text.substr(0, semi);
      const auto eq = item.find('=');
      if (eq != std::string::npos) {
        zones[item.substr(0, eq)] = item.substr(eq + 1);
      }
      text.erase(0, semi == std::string::npos ? text.size() : semi + 1);
    }
  }
};

AcceptObject data_obj(const Key& k, ClientId src, double rate) {
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = src;
  obj.stream_rate = rate;
  return obj;
}

TEST(AppHooks, AppLoadContributesToGroupLoad) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg7(), env, dht::KeyHasher(32));
  WorldState world;
  world.zones["011*"] = "castle";
  world.extra_load = 50;
  s.set_app_hooks(&world);
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});

  EXPECT_DOUBLE_EQ(s.load_of(group("011*", 7)), 50.0);
  (void)s.handle_accept_object(data_obj(key("0110000"), ClientId{1}, 45));
  EXPECT_DOUBLE_EQ(s.server_load(), 95.0);

  // 95 > 90: the app load tips the server into splitting.
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{2}, 1}; };
  s.run_load_check();
  EXPECT_EQ(s.stats().splits, 1u);
}

TEST(AppHooks, StateShipsWithSplitAndBack) {
  MockServerEnv env0, env1;
  ClashServer s0(ServerId{0}, cfg7(), env0, dht::KeyHasher(32));
  ClashServer s1(ServerId{1}, cfg7(), env1, dht::KeyHasher(32));
  WorldState w0, w1;
  s0.set_app_hooks(&w0);
  s1.set_app_hooks(&w1);

  s0.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  w0.zones["0111*"] = "arena";   // lives in the right half
  w0.zones["0110*"] = "market";  // stays local

  env0.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{1}, 1}; };
  ASSERT_TRUE(s0.force_split(group("011*", 7)));
  const auto* transfer = env0.last_as<AcceptKeyGroup>();
  ASSERT_NE(transfer, nullptr);
  EXPECT_FALSE(transfer->app_state.empty());
  s1.deliver(ServerId{0}, *transfer);

  // The arena moved; the market stayed.
  EXPECT_EQ(w1.zones.count("0111*"), 1u);
  EXPECT_EQ(w1.zones.at("0111*"), "arena");
  EXPECT_EQ(w0.zones.count("0111*"), 0u);
  EXPECT_EQ(w0.zones.count("0110*"), 1u);

  // Consolidation ships it back: drive the reclaim exchange by hand.
  env1.sent.clear();
  s1.deliver(ServerId{0}, ReclaimKeyGroup{group("0111*", 7)});
  const auto* ack = env1.last_as<ReclaimAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_FALSE(ack->app_state.empty());
  s0.deliver(ServerId{1}, *ack);
  EXPECT_EQ(w0.zones.count("0111*"), 1u);
  EXPECT_EQ(w1.zones.count("0111*"), 0u);
  EXPECT_EQ(s0.stats().merges, 1u);
}

TEST(AppHooks, SignalOverloadShedsImmediately) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{3}, 1}; };
  ClashServer s(ServerId{0}, cfg7(), env, dht::KeyHasher(32));
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0110000"), ClientId{1}, 10));

  // Well below the load threshold, but the game knows better.
  EXPECT_TRUE(s.signal_overload());
  EXPECT_EQ(s.stats().splits, 1u);
  EXPECT_FALSE(s.table().find(group("011*", 7))->active);
}

TEST(AppHooks, SignalOverloadFailsWithNothingToSplit) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg7(), env, dht::KeyHasher(32));
  EXPECT_FALSE(s.signal_overload());  // empty table
  s.install_entry({group("0110101", 7), true, ServerId{}, ServerId{}, true});
  EXPECT_FALSE(s.signal_overload());  // only a max-depth group
}

TEST(AppHooks, ServerWorksWithoutHooks) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{2}, 1}; };
  ClashServer s(ServerId{0}, cfg7(), env, dht::KeyHasher(32));
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0110000"), ClientId{1}, 95));
  s.run_load_check();
  EXPECT_EQ(s.stats().splits, 1u);
  const auto* msg = env.last_as<AcceptKeyGroup>();
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->app_state.empty());
}

}  // namespace
}  // namespace clash
