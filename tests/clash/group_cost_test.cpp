// Group-cost lifecycle: the per-group cost map follows its group. A
// split, handoff, or replica drop must evict the departed group's cost
// record — before this was enforced, a long-lived server under churn
// accumulated cost entries for every group it had EVER owned or
// replicated, and the census (and its scrape-time gauges) grew without
// bound. The one exception: a replica drop for a group the server
// still actively owns keeps the live owner metering intact.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

sim::SimCluster::Config replicated_config() {
  auto cfg = testing::small_cluster_config(16, 10, 3, /*capacity=*/500.0);
  cfg.clash.replication_factor = 2;
  cfg.clash.enable_consolidation = false;
  return cfg;
}

TEST(GroupCostLifecycle, SplitEvictsTheParentsCostRecord) {
  sim::SimCluster cluster(replicated_config());
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key hot(0b1010000000, 10);
  testing::add_stream(cluster, client, ClientId{1}, hot, 3.0);

  const KeyGroup parent = cluster.find_active_group(hot).value();
  const ServerId owner = *cluster.find_owner(hot);
  ASSERT_GT(cluster.server(owner).group_costs().count(parent), 0u)
      << "the accepted stream should have metered a put";

  ASSERT_TRUE(cluster.server(owner).force_split(parent));
  EXPECT_EQ(cluster.server(owner).group_costs().count(parent), 0u)
      << "split left the dead parent's cost record behind";
  // The child meters from zero at its (possibly different) owner.
  const KeyGroup child = cluster.find_active_group(hot).value();
  ASSERT_GT(child.depth(), parent.depth());
}

TEST(GroupCostLifecycle, HandoffEvictsTheOldOwnersCostRecord) {
  sim::SimCluster cluster(replicated_config());
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b0110000000, 10);
  testing::add_stream(cluster, client, ClientId{2}, key, 2.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const KeyGroup group = cluster.find_active_group(key).value();
  const ServerId owner = *cluster.find_owner(key);
  ASSERT_GT(cluster.server(owner).group_costs().count(group), 0u);

  // Fail the owner over; the heir now owns the group but starts with a
  // clean cost sheet (metering history does not transfer — each server
  // records only the traffic it served itself).
  ASSERT_GE(cluster.fail_server(owner), 1u);
  const ServerId heir = *cluster.find_owner(key);
  ASSERT_NE(heir, owner);
  cluster.server(heir).meter_repl_bytes(group, 512);
  ASSERT_GT(cluster.server(heir).group_costs().count(group), 0u);

  // Bring the original owner back: revive runs the rejoin handoff (the
  // group's ring hash maps to the rejoined server again), and the heir
  // must drop its cost record for the departed group.
  cluster.revive_server(owner);
  ASSERT_EQ(*cluster.find_owner(key), owner) << "rejoin handoff didn't run";
  EXPECT_EQ(cluster.server(heir).group_costs().count(group), 0u)
      << "handoff left the departed group's cost record on the old owner";
}

TEST(GroupCostLifecycle, DropReplicaEvictsCostButSparesTheActiveOwner) {
  sim::SimCluster cluster(replicated_config());
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b1100000000, 10);
  testing::add_stream(cluster, client, ClientId{3}, key, 2.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const KeyGroup group = cluster.find_active_group(key).value();
  const ServerId owner = *cluster.find_owner(key);

  // Find a replica holder and give it a synthetic cost record (repl
  // bytes it metered while serving the replication stream).
  ServerId holder{};  // default-constructed = invalid
  for (std::size_t i = 0; i < 16; ++i) {
    const ServerId id{i};
    if (id != owner && cluster.server(id).has_replica(group)) {
      holder = id;
      break;
    }
  }
  ASSERT_TRUE(holder.valid());
  cluster.server(holder).meter_repl_bytes(group, 1000);
  ASSERT_GT(cluster.server(holder).group_costs().count(group), 0u);

  // A DropReplica at the holder evicts both the replica and its cost.
  cluster.server(holder).deliver(owner, Message(DropReplica{group}));
  EXPECT_FALSE(cluster.server(holder).has_replica(group));
  EXPECT_EQ(cluster.server(holder).group_costs().count(group), 0u);

  // But the same message at the ACTIVE OWNER (stale drop from an old
  // replication round) must not wipe the live metering.
  ASSERT_GT(cluster.server(owner).group_costs().count(group), 0u);
  cluster.server(owner).deliver(holder, Message(DropReplica{group}));
  EXPECT_GT(cluster.server(owner).group_costs().count(group), 0u)
      << "a stale DropReplica erased the active owner's cost record";
}

TEST(GroupCostLifecycle, FoldCensusRanksTopGroupsByTotalBytes) {
  testing::MockServerEnv env;
  ClashConfig cfg;
  cfg.key_width = 8;
  ClashServer server(ServerId{0}, cfg, env,
                     dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
  const KeyGroup cold = testing::group("00*", 8);
  const KeyGroup warm = testing::group("01*", 8);
  const KeyGroup hot = testing::group("10*", 8);
  server.meter_repl_bytes(cold, 10);
  server.meter_repl_bytes(warm, 100);
  server.meter_repl_bytes(hot, 1000);

  NodeCensusRecord rec;
  server.fold_census(rec, /*top_k=*/2);
  ASSERT_EQ(rec.top_groups.size(), 2u);  // truncated to K
  EXPECT_EQ(rec.top_groups[0].group, hot);
  EXPECT_EQ(rec.top_groups[1].group, warm);
  EXPECT_EQ(rec.totals.repl_bytes, 1110u);  // totals span ALL groups
}

}  // namespace
}  // namespace clash
