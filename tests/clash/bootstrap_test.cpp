// The pure bootstrap computation must agree exactly with the state the
// simulator reaches by running the administrative split cascade.
#include "clash/bootstrap.hpp"

#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

struct BootstrapParam {
  std::size_t servers;
  unsigned key_width;
  unsigned initial_depth;
};

struct BootstrapSweep : ::testing::TestWithParam<BootstrapParam> {};

TEST_P(BootstrapSweep, MatchesSimulatorBootstrap) {
  const auto p = GetParam();
  auto cfg = testing::small_cluster_config(p.servers, p.key_width,
                                           p.initial_depth);
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();

  const auto computed = compute_bootstrap_entries(
      cluster.ring(), cluster.hasher(), cfg.clash);

  // Same entries on every server, field by field.
  std::size_t computed_total = 0;
  for (const auto& [server_id, entries] : computed) {
    computed_total += entries.size();
    const auto& table = cluster.server(server_id).table();
    for (const auto& expect : entries) {
      const auto* actual = table.find(expect.group);
      ASSERT_NE(actual, nullptr)
          << to_string(server_id) << " missing " << expect.group.label();
      EXPECT_EQ(actual->active, expect.active) << expect.group.label();
      EXPECT_EQ(actual->root, expect.root) << expect.group.label();
      EXPECT_EQ(actual->right_child, expect.right_child)
          << expect.group.label();
      if (!expect.root) {
        EXPECT_EQ(actual->parent, expect.parent) << expect.group.label();
      }
    }
  }
  // ... and no extras anywhere.
  std::size_t actual_total = 0;
  for (std::size_t i = 0; i < p.servers; ++i) {
    actual_total += cluster.server(ServerId{i}).table().size();
  }
  EXPECT_EQ(actual_total, computed_total);

  // Exactly 2^d active leaves and 2^d - 1 lineage entries in total.
  const std::size_t leaves = std::size_t{1} << p.initial_depth;
  EXPECT_EQ(cluster.owner_index().size(), leaves);
  EXPECT_EQ(computed_total, 2 * leaves - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BootstrapSweep,
    ::testing::Values(BootstrapParam{4, 8, 0}, BootstrapParam{4, 8, 1},
                      BootstrapParam{16, 8, 3}, BootstrapParam{16, 24, 6},
                      BootstrapParam{64, 24, 6}, BootstrapParam{8, 16, 5}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.servers) + "w" +
             std::to_string(info.param.key_width) + "d" +
             std::to_string(info.param.initial_depth);
    });

}  // namespace
}  // namespace clash
