#include "clash/load.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace clash {
namespace {

ClashConfig base() {
  ClashConfig cfg;
  cfg.capacity = 1000;
  cfg.overload_frac = 0.9;
  cfg.underload_frac = 0.54;
  cfg.load_alpha = 1.0;
  cfg.load_beta = 8.0;
  return cfg;
}

TEST(LoadModel, LinearInDataRate) {
  const auto cfg = base();
  EXPECT_DOUBLE_EQ(group_load(cfg, 100, 0), 100.0);
  EXPECT_DOUBLE_EQ(group_load(cfg, 200, 0), 200.0);
  EXPECT_DOUBLE_EQ(group_load(cfg, 0, 0), 0.0);
}

TEST(LoadModel, LogarithmicInQueries) {
  const auto cfg = base();
  const double one = group_load(cfg, 0, 1);
  const double k = group_load(cfg, 0, 1023);
  EXPECT_DOUBLE_EQ(one, 8.0 * std::log2(2.0));
  EXPECT_DOUBLE_EQ(k, 8.0 * 10.0);
  // Doubling queries adds a constant, not a factor.
  EXPECT_NEAR(group_load(cfg, 0, 2047) - k, 8.0, 0.02);
}

TEST(LoadModel, Thresholds) {
  const auto cfg = base();
  EXPECT_EQ(classify_load(cfg, 950), LoadVerdict::kOverloaded);
  EXPECT_EQ(classify_load(cfg, 900), LoadVerdict::kNormal);  // not strict >
  EXPECT_EQ(classify_load(cfg, 700), LoadVerdict::kNormal);
  EXPECT_EQ(classify_load(cfg, 500), LoadVerdict::kUnderloaded);
  EXPECT_EQ(classify_load(cfg, 540), LoadVerdict::kNormal);
}

TEST(LoadModel, FixedDepthConfigNeverTriggers) {
  ClashConfig cfg = base();
  cfg.overload_frac = std::numeric_limits<double>::infinity();
  cfg.underload_frac = 0.0;
  EXPECT_EQ(classify_load(cfg, 1e12), LoadVerdict::kNormal);
  EXPECT_EQ(classify_load(cfg, 0), LoadVerdict::kNormal);
}

TEST(RateEstimator, ConvergesToSteadyRate) {
  RateEstimator est(SimTime::from_seconds(10));
  // 50 events/sec for 60 seconds.
  for (int ms = 0; ms < 60000; ms += 20) {
    est.record(SimTime::from_seconds(ms / 1000.0));
  }
  EXPECT_NEAR(est.rate(SimTime::from_seconds(60)), 50.0, 5.0);
}

TEST(RateEstimator, DecaysWhenIdle) {
  RateEstimator est(SimTime::from_seconds(10));
  for (int ms = 0; ms < 20000; ms += 20) {
    est.record(SimTime::from_seconds(ms / 1000.0));
  }
  const double busy = est.rate(SimTime::from_seconds(20));
  const double later = est.rate(SimTime::from_seconds(40));
  EXPECT_LT(later, busy / 3);           // two half-lives later
  EXPECT_NEAR(later, busy / 4, busy / 8);
}

TEST(RateEstimator, ZeroBeforeFirstEvent) {
  const RateEstimator est;
  EXPECT_DOUBLE_EQ(est.rate(SimTime::from_seconds(5)), 0.0);
}

TEST(RateEstimator, ResetClears) {
  RateEstimator est(SimTime::from_seconds(1));
  est.record(SimTime::from_seconds(1));
  est.reset();
  EXPECT_DOUBLE_EQ(est.rate(SimTime::from_seconds(2)), 0.0);
}

}  // namespace
}  // namespace clash
