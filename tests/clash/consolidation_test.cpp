// Bottom-up consolidation (Section 4): cold leaf siblings merge back
// into the parent entry; roots are a floor; busy children refuse.
#include <gtest/gtest.h>

#include "clash/server.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

using testing::MockServerEnv;
using testing::group;
using testing::key;

ClashConfig cfg7() {
  ClashConfig cfg;
  cfg.key_width = 7;
  cfg.initial_depth = 2;
  cfg.capacity = 100;         // underload below 54
  cfg.merge_target_frac = 0.45;
  return cfg;
}

dht::KeyHasher hasher() { return dht::KeyHasher(32); }

AcceptObject data_obj(const Key& k, ClientId src, double rate) {
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = src;
  obj.stream_rate = rate;
  return obj;
}

/// Parent (s0) that split 011* and handed 0111* to s1.
struct SplitPair {
  MockServerEnv env0, env1;
  ClashServer s0, s1;

  SplitPair()
      : s0(ServerId{0}, cfg7(), env0, hasher()),
        s1(ServerId{1}, cfg7(), env1, hasher()) {
    env0.lookup_fn = [](dht::HashKey) {
      return dht::LookupResult{ServerId{1}, 1};
    };
    s0.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  }

  void do_split(double left_rate, double right_rate) {
    (void)s0.handle_accept_object(data_obj(key("0110000"), ClientId{10},
                                           left_rate));
    (void)s0.handle_accept_object(data_obj(key("0111000"), ClientId{11},
                                           right_rate));
    EXPECT_TRUE(s0.force_split(group("011*", 7)));
    const auto* m = env0.last_as<AcceptKeyGroup>();
    ASSERT_NE(m, nullptr);
    s1.deliver(ServerId{0}, *m);
    env0.sent.clear();
    env1.sent.clear();
  }

  /// One protocol round: child load-checks (sends report), parent
  /// load-checks (may send reclaim), then messages are ferried.
  void pump_round() {
    s1.run_load_check();
    deliver_all(env1, s0, ServerId{1});
    s0.run_load_check();
    deliver_all(env0, s1, ServerId{0});
    deliver_all(env1, s0, ServerId{1});
  }

  static void deliver_all(MockServerEnv& env, ClashServer& to,
                          ServerId from) {
    auto pending = std::move(env.sent);
    env.sent.clear();
    for (const auto& [dest, msg] : pending) {
      ASSERT_EQ(dest, to.id());
      to.deliver(from, msg);
    }
  }
};

TEST(Consolidation, ColdSiblingsMergeBack) {
  SplitPair pair;
  pair.do_split(10, 10);  // both halves cold (total 20 << 45)

  pair.pump_round();

  // The parent reclaimed 0111*: entry active again, child erased.
  const auto* parent = pair.s0.table().find(group("011*", 7));
  ASSERT_NE(parent, nullptr);
  EXPECT_TRUE(parent->active);
  EXPECT_FALSE(parent->right_child.valid());
  EXPECT_EQ(pair.s0.table().find(group("0110*", 7)), nullptr);
  EXPECT_EQ(pair.s1.table().find(group("0111*", 7)), nullptr);
  EXPECT_EQ(pair.s0.stats().merges, 1u);

  // State (both streams) lives at the parent again.
  EXPECT_EQ(pair.s0.total_streams(), 2u);
  EXPECT_EQ(pair.s1.total_streams(), 0u);
  EXPECT_EQ(pair.s0.table().check_invariants(), std::nullopt);
  EXPECT_EQ(pair.s1.table().check_invariants(), std::nullopt);
}

TEST(Consolidation, HotCombinedLoadBlocksMerge) {
  SplitPair pair;
  pair.do_split(30, 30);  // combined 60 > merge target 45

  pair.pump_round();

  EXPECT_EQ(pair.s0.stats().merges, 0u);
  EXPECT_FALSE(pair.s0.table().find(group("011*", 7))->active);
  EXPECT_NE(pair.s1.table().find(group("0111*", 7)), nullptr);
}

TEST(Consolidation, BusyChildRefuses) {
  SplitPair pair;
  pair.do_split(10, 10);

  // Child splits its group further before the parent's reclaim lands.
  pair.env1.lookup_fn = [](dht::HashKey) {
    return dht::LookupResult{ServerId{2}, 1};
  };
  ASSERT_TRUE(pair.s1.force_split(group("0111*", 7)));
  pair.env1.sent.clear();

  // Parent still believes the child is a cold leaf (stale report from
  // an earlier round): drive a reclaim directly.
  ReclaimKeyGroup reclaim{group("0111*", 7)};
  pair.s1.deliver(ServerId{0}, reclaim);
  ASSERT_EQ(pair.env1.sent.size(), 1u);
  EXPECT_NE(std::get_if<ReclaimRefused>(&pair.env1.sent[0].second), nullptr);
  EXPECT_EQ(pair.s1.stats().merge_refusals, 1u);

  // Parent handles the refusal gracefully.
  pair.s0.deliver(ServerId{1}, ReclaimRefused{group("0111*", 7)});
  EXPECT_EQ(pair.s0.stats().merges, 0u);
  EXPECT_EQ(pair.s0.table().check_invariants(), std::nullopt);
}

TEST(Consolidation, RootEntriesAreAFloor) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg7(), env, hasher());
  // Two local sibling roots under a local inactive parent: without the
  // root flag this would merge immediately (all cold, all local).
  s.install_entry({group("01*", 7), false, ServerId{}, ServerId{0}, false});
  s.install_entry({group("010*", 7), false, ServerId{0}, ServerId{}, true});
  s.install_entry({group("011*", 7), false, ServerId{0}, ServerId{}, true});
  ASSERT_TRUE(s.mark_group_root(group("010*", 7)));
  ASSERT_TRUE(s.mark_group_root(group("011*", 7)));

  s.run_load_check();  // zero load => underloaded
  EXPECT_EQ(s.stats().merges, 0u);
  EXPECT_TRUE(s.table().find(group("010*", 7))->active);
  EXPECT_TRUE(s.table().find(group("011*", 7))->active);
}

TEST(Consolidation, LocalSiblingsMergeWithoutMessages) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg7(), env, hasher());
  s.install_entry({group("01*", 7), false, ServerId{}, ServerId{0}, false});
  s.install_entry({group("010*", 7), false, ServerId{0}, ServerId{}, true});
  s.install_entry({group("011*", 7), false, ServerId{0}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0100000"), ClientId{1}, 5));
  (void)s.handle_accept_object(data_obj(key("0110000"), ClientId{2}, 5));

  s.run_load_check();
  EXPECT_EQ(s.stats().merges, 1u);
  EXPECT_TRUE(s.table().find(group("01*", 7))->active);
  EXPECT_EQ(s.table().find(group("010*", 7)), nullptr);
  EXPECT_EQ(s.table().find(group("011*", 7)), nullptr);
  EXPECT_EQ(s.total_streams(), 2u);
  EXPECT_TRUE(env.sent.empty());  // purely local
  EXPECT_EQ(s.table().check_invariants(), std::nullopt);
}

TEST(Consolidation, DisabledByConfig) {
  auto cfg = cfg7();
  cfg.enable_consolidation = false;
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg, env, hasher());
  s.install_entry({group("01*", 7), false, ServerId{}, ServerId{0}, false});
  s.install_entry({group("010*", 7), false, ServerId{0}, ServerId{}, true});
  s.install_entry({group("011*", 7), false, ServerId{0}, ServerId{}, true});
  s.run_load_check();
  EXPECT_EQ(s.stats().merges, 0u);
}

TEST(Consolidation, MergedGroupCanMergeFurtherUp) {
  // After 011* is reclaimed at the parent owner, the parent's own
  // lineage (01* -> 011* remote at us? here all local) allows another
  // round of consolidation to roll up again.
  MockServerEnv env;
  ClashServer s(ServerId{0}, cfg7(), env, hasher());
  s.install_entry({group("0*", 7), false, ServerId{}, ServerId{0}, false});
  s.install_entry({group("00*", 7), false, ServerId{0}, ServerId{}, true});
  s.install_entry({group("01*", 7), false, ServerId{0}, ServerId{0}, false});
  s.install_entry({group("010*", 7), false, ServerId{0}, ServerId{}, true});
  s.install_entry({group("011*", 7), false, ServerId{0}, ServerId{}, true});

  s.run_load_check();  // merges 010*/011* -> 01*
  EXPECT_EQ(s.stats().merges, 1u);
  s.run_load_check();  // merges 00*/01* -> 0*
  EXPECT_EQ(s.stats().merges, 2u);
  EXPECT_TRUE(s.table().find(group("0*", 7))->active);
  EXPECT_EQ(s.table().size(), 1u);
  EXPECT_EQ(s.table().check_invariants(), std::nullopt);
}

}  // namespace
}  // namespace clash
