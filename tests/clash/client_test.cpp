// Client depth resolution (Section 5): the modified binary search, its
// convergence bound, and the per-stream cache.
#include <gtest/gtest.h>

#include <cmath>

#include "clash/client.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

using sim::SimCluster;

struct ClientFixture : ::testing::Test {
  ClientFixture()
      : cluster(testing::small_cluster_config(/*servers=*/16,
                                              /*key_width=*/8,
                                              /*initial_depth=*/3,
                                              /*capacity=*/1e9)) {
    cluster.bootstrap();
  }

  /// Split the active group containing `k` (wherever it lives).
  void split_at(const Key& k) {
    const auto group = cluster.find_active_group(k);
    ASSERT_TRUE(group.has_value());
    const auto owner = cluster.find_owner(k);
    ASSERT_TRUE(owner.has_value());
    ASSERT_TRUE(cluster.server(*owner).force_split(*group));
  }

  ClashClient make_client(ClashClient::Options opts = ClashClient::Options(),
                          std::uint64_t seed = 7) {
    return ClashClient(cluster.clash_config(), cluster.client_env(ServerId{0}),
                       cluster.hasher(), opts, seed);
  }

  SimCluster cluster;
};

TEST_F(ClientFixture, ResolvesAtBootstrapDepth) {
  auto client = make_client();
  const Key k(0b10110011, 8);
  const auto out = client.resolve(k);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.depth, 3u);
  EXPECT_EQ(out.server, cluster.find_owner(k).value());
  // The hint starts at initial_depth, so the first probe lands.
  EXPECT_EQ(out.probes, 1u);
}

TEST_F(ClientFixture, ResolvesAfterDeepSplits) {
  const Key k(0b10110011, 8);
  for (int i = 0; i < 4; ++i) split_at(k);  // depth 3 -> 7
  ASSERT_EQ(cluster.find_active_group(k)->depth(), 7u);

  auto client = make_client();
  const auto out = client.resolve(k);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.depth, 7u);
  EXPECT_EQ(out.server, cluster.find_owner(k).value());
  EXPECT_EQ(out.restarts, 0u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST_F(ClientFixture, ProbesBoundedByBinarySearch) {
  const Key hot(0b11100001, 8);
  for (int i = 0; i < 5; ++i) split_at(hot);  // depth 8 leaf
  auto client = make_client();
  ClashClient::Options opts;
  opts.use_cache = false;
  opts.guess = ClashClient::Options::Guess::kMidpoint;
  auto fresh = make_client(opts);
  for (std::uint64_t v = 0; v < 256; v += 5) {
    const auto out = fresh.resolve(Key(v, 8));
    ASSERT_TRUE(out.ok) << v;
    // Pure binary search over (0, 8]: at most ceil(log2(9)) + 1 probes.
    EXPECT_LE(out.probes, 5u) << v;
  }
}

TEST_F(ClientFixture, CacheHitCostsOneProbeNoLookup) {
  auto client = make_client();
  const Key k(0b01010101, 8);
  (void)client.resolve(k);
  const auto out = client.resolve(k);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.probes, 1u);
  EXPECT_EQ(out.dht_lookups, 0u);  // the paper's cached fast path
}

TEST_F(ClientFixture, CacheCoversWholeGroup) {
  auto client = make_client();
  (void)client.resolve(Key(0b01010000, 8));
  // Another key in the same depth-3 group: still a cache hit.
  const auto out = client.resolve(Key(0b01011111, 8));
  EXPECT_TRUE(out.cache_hit);
  EXPECT_EQ(out.dht_lookups, 0u);
}

TEST_F(ClientFixture, StaleCacheSelfCorrects) {
  auto client = make_client();
  const Key k(0b01010101, 8);
  (void)client.resolve(k);

  split_at(k);  // the cached binding may now be wrong
  const auto out = client.resolve(k);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.depth, 4u);
  EXPECT_EQ(out.server, cluster.find_owner(k).value());

  // And the refreshed binding works again.
  const auto again = client.resolve(k);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.depth, 4u);
}

TEST_F(ClientFixture, WrongDepthRightServerIsCorrected) {
  // Case (b): force the client to probe the right server with the wrong
  // depth by splitting so the left child stays on the same server.
  const Key k(0b01010101, 8);
  const auto owner_before = cluster.find_owner(k).value();
  split_at(k);
  // Left child keys stay on the same server (same virtual key).
  const Key left_key = shape(k, 4);  // in the left half after split at 3
  if (cluster.find_owner(left_key).value() == owner_before) {
    auto client = make_client();
    ClashClient::Options opts;  // hint = initial depth (3) is now wrong
    auto c = make_client(opts);
    const auto out = c.resolve(left_key);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.depth, 4u);
    EXPECT_EQ(out.probes, 1u);  // single probe: OK with corrected depth
  }
}

TEST_F(ClientFixture, InsertStoresQuery) {
  auto client = make_client();
  AcceptObject obj;
  obj.key = Key(0b11001100, 8);
  obj.kind = ObjectKind::kQuery;
  obj.query_id = QueryId{42};
  const auto out = client.insert(obj);
  ASSERT_TRUE(out.ok);
  const auto owner = cluster.find_owner(obj.key).value();
  EXPECT_EQ(cluster.server(owner).total_queries(), 1u);
}

TEST_F(ClientFixture, ProbeOnlyDoesNotStore) {
  auto client = make_client();
  const Key k(0b11001100, 8);
  (void)client.resolve(k);
  const auto owner = cluster.find_owner(k).value();
  EXPECT_EQ(cluster.server(owner).total_queries(), 0u);
  EXPECT_EQ(cluster.server(owner).total_streams(), 0u);
}

// Property sweep: random trees, random keys, three guess policies —
// resolution always lands on the true owner within the probe budget.
struct SearchSweep
    : ClientFixture,
      ::testing::WithParamInterface<ClashClient::Options::Guess> {};

TEST_P(SearchSweep, AlwaysFindsTrueOwner) {
  Rng rng(99);
  // Random irregular tree: ~24 splits across the key space.
  for (int i = 0; i < 24; ++i) {
    const Key k(rng.next() & 0xFF, 8);
    const auto g = cluster.find_active_group(k);
    ASSERT_TRUE(g.has_value());
    if (g->depth() >= 8) continue;
    const auto owner = cluster.find_owner(k).value();
    ASSERT_TRUE(cluster.server(owner).force_split(*g));
  }
  ASSERT_EQ(cluster.check_invariants(), std::nullopt);

  ClashClient::Options opts;
  opts.guess = GetParam();
  opts.use_cache = false;
  auto client = make_client(opts, /*seed=*/5);
  for (std::uint64_t v = 0; v < 256; ++v) {
    const Key k(v, 8);
    const auto out = client.resolve(k);
    ASSERT_TRUE(out.ok) << v;
    EXPECT_EQ(out.server, cluster.find_owner(k).value()) << v;
    EXPECT_EQ(out.depth, cluster.find_active_group(k)->depth()) << v;
    EXPECT_LE(out.probes, 6u) << v;  // <= ~log2(N)+2 for N=8
  }
}

INSTANTIATE_TEST_SUITE_P(
    GuessPolicies, SearchSweep,
    ::testing::Values(ClashClient::Options::Guess::kHint,
                      ClashClient::Options::Guess::kMidpoint,
                      ClashClient::Options::Guess::kRandom),
    [](const auto& info) {
      switch (info.param) {
        case ClashClient::Options::Guess::kHint:
          return "Hint";
        case ClashClient::Options::Guess::kMidpoint:
          return "Midpoint";
        case ClashClient::Options::Guess::kRandom:
          return "Random";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace clash
