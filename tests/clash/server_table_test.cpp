#include "clash/server_table.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace clash {
namespace {

KeyGroup g(const char* label, unsigned width = 7) {
  return KeyGroup::parse(label, width).value();
}

// Build exactly the table of Figure 2 (server s25): entries
// 011* (root, inactive), 01011* (parent s22, right child s26, inactive),
// 010110* (active), 0110* (parent self, right child s11, inactive),
// 01100* (active).
ServerTable figure2_table() {
  ServerTable t(7);
  const ServerId self{25};
  t.insert({g("011*"), /*root=*/true, ServerId{}, ServerId{45}, false});
  t.insert({g("01011*"), false, ServerId{22}, ServerId{26}, false});
  t.insert({g("010110*"), false, self, ServerId{}, true});
  t.insert({g("0110*"), false, self, ServerId{11}, false});
  t.insert({g("01100*"), false, self, ServerId{}, true});
  return t;
}

TEST(ServerTable, Figure2InvariantsHold) {
  const auto t = figure2_table();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.active_count(), 2u);
  EXPECT_EQ(t.check_invariants(), std::nullopt);
}

// Section 5 case (a)/(b): key 0110001 belongs to the active entry
// 01100* regardless of the client's claimed depth.
TEST(ServerTable, ActiveEntryLookup) {
  auto t = figure2_table();
  const auto* e = t.active_entry_for(Key::parse("0110001").value());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->group.label(), "01100*");
  EXPECT_EQ(e->group.depth(), 5u);
}

// Section 5 case (c): for key 0101010 the longest prefix match across
// the Figure 2 entries is 4 (against the 01011*/010110* entries).
TEST(ServerTable, PaperIncorrectDepthExample) {
  const auto t = figure2_table();
  EXPECT_EQ(t.longest_prefix_match(Key::parse("0101010").value()), 4u);
}

TEST(ServerTable, LongestPrefixVariants) {
  const auto t = figure2_table();
  // Fully matching an active leaf: full depth of that entry.
  EXPECT_EQ(t.longest_prefix_match(Key::parse("0110011").value()), 5u);
  // Key under an inactive lineage entry only.
  EXPECT_EQ(t.longest_prefix_match(Key::parse("0111111").value()), 3u);
  // Nothing matches: 0 bits.
  EXPECT_EQ(t.longest_prefix_match(Key::parse("1000000").value()), 0u);
}

TEST(ServerTable, NoActiveEntryForForeignKey) {
  auto t = figure2_table();
  EXPECT_EQ(t.active_entry_for(Key::parse("0111111").value()), nullptr);
  EXPECT_EQ(t.active_entry_for(Key::parse("0101111").value()), nullptr);
}

TEST(ServerTable, DuplicateInsertThrows) {
  auto t = figure2_table();
  EXPECT_THROW(
      t.insert({g("01100*"), false, ServerId{25}, ServerId{}, true}),
      std::invalid_argument);
}

TEST(ServerTable, WidthMismatchThrows) {
  ServerTable t(7);
  EXPECT_THROW(t.insert({KeyGroup::parse("01*", 8).value(), false,
                         ServerId{1}, ServerId{}, true}),
               std::invalid_argument);
}

TEST(ServerTable, OverlappingActiveGroupsDetected) {
  ServerTable t(7);
  t.insert({g("011*"), false, ServerId{1}, ServerId{}, true});
  t.insert({g("0110*"), false, ServerId{1}, ServerId{}, true});
  const auto err = t.check_invariants();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overlap"), std::string::npos);
}

TEST(ServerTable, InactiveWithoutChildDetected) {
  ServerTable t(7);
  t.insert({g("011*"), false, ServerId{1}, ServerId{}, false});
  ASSERT_TRUE(t.check_invariants().has_value());
}

TEST(ServerTable, EraseRemovesEntry) {
  auto t = figure2_table();
  t.erase(g("01100*"));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.find(g("01100*")), nullptr);
  EXPECT_EQ(t.active_entry_for(Key::parse("0110001").value()), nullptr);
}

TEST(ServerTable, ActiveEntriesList) {
  const auto t = figure2_table();
  const auto active = t.active_entries();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0]->group.label(), "010110*");
  EXPECT_EQ(active[1]->group.label(), "01100*");
}

TEST(ServerTable, ToStringRendersFigure2Style) {
  const auto t = figure2_table();
  const auto s = t.to_string();
  EXPECT_NE(s.find("011*"), std::string::npos);
  EXPECT_NE(s.find("-1"), std::string::npos);   // root ParentID
  EXPECT_NE(s.find("s26"), std::string::npos);  // right child id
}

// Property: longest_prefix_match agrees with a brute-force computation
// on random tables (prefix-free active sets plus random lineage).
TEST(ServerTable, LongestPrefixMatchesBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    ServerTable t(10);
    const int entries = 1 + int(rng.below(12));
    for (int i = 0; i < entries; ++i) {
      const unsigned depth = 1 + unsigned(rng.below(10));
      const Key vk = shape(Key(rng.next() & 0x3FF, 10), depth);
      const KeyGroup grp = KeyGroup::of(vk, depth);
      if (t.find(grp) != nullptr) continue;
      // All entries inactive (with fake child) to sidestep the
      // prefix-free requirement: LPM considers every entry anyway.
      t.insert({grp, false, ServerId{0}, ServerId{1}, false});
    }
    for (int probe = 0; probe < 40; ++probe) {
      const Key k(rng.next() & 0x3FF, 10);
      unsigned expect = 0;
      for (const auto* e : t.all_entries()) {
        expect = std::max(expect,
                          std::min(e->group.virtual_key().common_prefix_len(k),
                                   e->group.depth()));
      }
      EXPECT_EQ(t.longest_prefix_match(k), expect);
    }
  }
}

}  // namespace
}  // namespace clash
