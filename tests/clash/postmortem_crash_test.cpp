// Acceptance test for the postmortem plane: a server killed in the
// middle of an inbound snapshot transfer must leave a postmortem dump
// whose in-flight table names the transfer — which group, which peer,
// how far it got, and when it last made progress. The child process
// assembles a real partial transfer through ClashServer::deliver, then
// abort()s with the crash handler installed; the parent reads the
// black box the corpse left behind.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "clash/server.hpp"
#include "obs/postmortem.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

constexpr unsigned kWidth = 8;

std::string fresh_dir() {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/clash_pm_crash_%d",
                int(::getpid()));
  ::mkdir(buf, 0755);
  return buf;
}

std::vector<std::string> dump_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("postmortem-", 0) == 0) out.push_back(dir + "/" + name);
  }
  ::closedir(d);
  return out;
}

ClashConfig log_config() {
  ClashConfig cfg;
  cfg.key_width = kWidth;
  cfg.initial_depth = 0;
  cfg.capacity = 1e9;
  cfg.replication_factor = 2;
  cfg.replication_mode = ClashConfig::ReplicationMode::kLog;
  return cfg;
}

TEST(PostmortemCrash, KilledMidSnapshotTransferNamesTheTransfer) {
  const std::string dir = fresh_dir();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- Child: die mid-transfer. ---
    obs::Postmortem& pm = obs::Postmortem::global();
    pm.set_dir(dir);

    testing::MockServerEnv env;  // obs() -> Hub::global()
    ClashServer server(ServerId{9}, log_config(), env,
                       dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
    obs::register_hub_source(pm, obs::Hub::global(), "node9",
                             [&env] { return env.t.usec; });
    pm.install_crash_handler();

    const KeyGroup group = testing::group("0110*", kWidth);
    const repl::LogHead head{1, 5};

    SnapshotOffer offer;
    offer.group = group;
    offer.owner = ServerId{3};
    offer.head = head;
    offer.root = true;
    offer.total_chunks = 3;
    env.t = SimTime{1'000};
    server.deliver(ServerId{3}, Message(offer));

    SnapshotChunk chunk;
    chunk.group = group;
    chunk.head = head;
    chunk.index = 0;
    chunk.total = 3;
    chunk.streams.push_back(
        StreamInfo{ClientId{1}, Key(0x11, kWidth), 2.0});
    env.t = SimTime{4'000};
    server.deliver(ServerId{3}, Message(chunk));

    // Chunks 1 and 2 never arrive — the transfer is wedged in flight
    // when the process dies.
    std::abort();
  }

  // --- Parent: read the black box. ---
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const auto dumps = dump_files(dir);
  ASSERT_EQ(dumps.size(), 1u);
  std::ifstream in(dumps[0]);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();

  // The in-flight table names the wedged transfer: direction, group,
  // peer, how far it got, and the clock of its last progress.
  EXPECT_NE(body.find("\"kind\":\"snapshot_in\""), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"group\":\"0110*\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"peer\":3"), std::string::npos) << body;
  EXPECT_NE(body.find("\"start_us\":1000"), std::string::npos) << body;
  EXPECT_NE(body.find("\"last_progress_us\":4000"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"progress\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"target\":3"), std::string::npos) << body;

  // The flight ring recorded the offer arriving before the crash.
  EXPECT_NE(body.find("\"kind\":\"snapshot_offer_recv\""),
            std::string::npos)
      << body;
}

}  // namespace
}  // namespace clash
