// Shared helpers for CLASH protocol tests.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "clash/messages.hpp"
#include "clash/server.hpp"
#include "keys/key_group.hpp"
#include "sim/cluster.hpp"

namespace clash::testing {

/// Records outbound messages and lets the test script DHT answers, so
/// split/merge mechanics can be asserted message by message.
class MockServerEnv final : public ServerEnv {
 public:
  std::vector<std::pair<ServerId, Message>> sent;
  std::function<dht::LookupResult(dht::HashKey)> lookup_fn =
      [](dht::HashKey) { return dht::LookupResult{ServerId{1}, 3}; };
  SimTime t{0};

  dht::LookupResult dht_lookup(dht::HashKey h) override {
    return lookup_fn(h);
  }
  void send(ServerId to, const Message& msg) override {
    sent.emplace_back(to, msg);
  }
  [[nodiscard]] SimTime now() const override { return t; }

  template <typename T>
  [[nodiscard]] const T* last_as() const {
    if (sent.empty()) return nullptr;
    return std::get_if<T>(&sent.back().second);
  }
};

inline Key key(const char* bits) { return Key::parse(bits).value(); }

inline KeyGroup group(const char* label, unsigned width) {
  return KeyGroup::parse(label, width).value();
}

/// A small cluster with a deterministic seed for integration tests.
inline sim::SimCluster::Config small_cluster_config(
    std::size_t servers = 16, unsigned key_width = 8,
    unsigned initial_depth = 2, double capacity = 100.0) {
  sim::SimCluster::Config cfg;
  cfg.num_servers = servers;
  cfg.seed = 1234;
  cfg.clash.key_width = key_width;
  cfg.clash.initial_depth = initial_depth;
  cfg.clash.capacity = capacity;
  return cfg;
}

/// Registers a data stream through the full client path.
inline ResolveOutcome add_stream(sim::SimCluster& cluster, ClashClient& client,
                                 ClientId id, const Key& k, double rate) {
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = id;
  obj.stream_rate = rate;
  (void)cluster;
  return client.insert(obj);
}

}  // namespace clash::testing
