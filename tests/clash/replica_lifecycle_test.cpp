// Replica lifecycle coverage (fault-tolerance extension): replicas
// form on ring successors, retire when their group stops being active,
// promotion recovers the exact state, and the empty-root fallback
// covers the key space when no replica exists.
#include <gtest/gtest.h>

#include <algorithm>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

sim::SimCluster::Config replicated_config(unsigned factor) {
  auto cfg = testing::small_cluster_config(16, 10, 3, /*capacity=*/500.0);
  cfg.clash.replication_factor = factor;
  return cfg;
}

TEST(ReplicaLifecycle, ReplicasLandOnRingSuccessors) {
  sim::SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  for (std::size_t i = 0; i < 40; ++i) {
    testing::add_stream(cluster, client, ClientId{i},
                        Key((i * 37) & 0x3FF, 10), 1.0);
  }
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  // Every active group's replicas sit on exactly the 2 ring successors
  // after the owner.
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto ring_set = cluster.ring().successors(
        cluster.hasher().hash_key(group.virtual_key()), 3);
    ASSERT_GE(ring_set.size(), 3u);
    ASSERT_EQ(ring_set[0], owner);
    for (std::size_t r = 1; r < 3; ++r) {
      EXPECT_TRUE(cluster.server(ring_set[r]).has_replica(group))
          << group.label() << " missing on successor " << r;
    }
    // And nowhere else.
    for (std::size_t i = 0; i < 16; ++i) {
      const ServerId id{i};
      if (id == owner || id == ring_set[1] || id == ring_set[2]) continue;
      EXPECT_FALSE(cluster.server(id).has_replica(group))
          << group.label() << " leaked to " << to_string(id);
    }
  }
}

TEST(ReplicaLifecycle, SplitRetiresStaleParentReplicas) {
  auto cfg = replicated_config(2);
  // Keep the forced split in place: consolidation would merge the cold
  // children straight back before the second replication round.
  cfg.clash.enable_consolidation = false;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key hot(0b1010000000, 10);
  testing::add_stream(cluster, client, ClientId{1}, hot, 3.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const KeyGroup parent = cluster.find_active_group(hot).value();
  std::size_t holders_before = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    holders_before += cluster.server(ServerId{i}).has_replica(parent) ? 1 : 0;
  }
  ASSERT_EQ(holders_before, 2u);

  // Splitting deactivates the parent: its replicas must be dropped so
  // no stale copy can ever be promoted over the children.
  ASSERT_TRUE(cluster.server(*cluster.find_owner(hot)).force_split(parent));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(cluster.server(ServerId{i}).has_replica(parent))
        << "stale replica of " << parent.label() << " on s" << i;
  }
  EXPECT_GT(cluster.total_stats().replica_drops, 0u);

  // The children replicate at the next check.
  cluster.set_now(SimTime::from_minutes(10));
  cluster.run_all_load_checks();
  const KeyGroup child = cluster.find_active_group(hot).value();
  ASSERT_GT(child.depth(), parent.depth());
  std::size_t child_holders = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    child_holders += cluster.server(ServerId{i}).has_replica(child) ? 1 : 0;
  }
  EXPECT_EQ(child_holders, 2u);
}

TEST(ReplicaLifecycle, PromotionRecoversExactState) {
  sim::SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b0110000000, 10);
  testing::add_stream(cluster, client, ClientId{10}, key, 2.5);
  testing::add_stream(cluster, client, ClientId{11}, Key(0b0110000001, 10),
                      1.5);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const KeyGroup group = cluster.find_active_group(key).value();
  const ServerId owner = *cluster.find_owner(key);
  const auto recovered = cluster.fail_server(owner);
  EXPECT_GE(recovered, 1u);

  const ServerId heir = *cluster.find_owner(key);
  ASSERT_NE(heir, owner);
  const GroupState* state = cluster.server(heir).group_state(group);
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->streams.size(), 2u);
  EXPECT_DOUBLE_EQ(state->streams.at(ClientId{10}).rate, 2.5);
  EXPECT_DOUBLE_EQ(state->streams.at(ClientId{11}).rate, 1.5);
  EXPECT_DOUBLE_EQ(state->stream_rate, 4.0);
  // The promoted entry keeps the root flag of the original.
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(ReplicaLifecycle, FreshSplitGroupsAreProtectedImmediately) {
  // Children born from a split must be replicated at activation, not
  // at the next load check: an owner crash inside that window would
  // otherwise lose them outright (and in the deployed layer no
  // survivor would even know the group existed).
  sim::SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b0011000000, 10);
  testing::add_stream(cluster, client, ClientId{40}, key, 2.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  // Split the group; no load check runs before the owner dies.
  const KeyGroup parent = cluster.find_active_group(key).value();
  ASSERT_TRUE(cluster.server(*cluster.find_owner(key)).force_split(parent));
  const KeyGroup child = cluster.find_active_group(key).value();
  ASSERT_GT(child.depth(), parent.depth());

  const ServerId owner = *cluster.find_owner(key);
  ASSERT_GE(cluster.fail_server(owner), 1u);
  EXPECT_EQ(cluster.total_stats().groups_lost, 0u);
  const GroupState* state =
      cluster.server(*cluster.find_owner(key)).group_state(child);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->streams.count(ClientId{40}), 1u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(ReplicaLifecycle, BackToBackOwnerDeathsWithinOnePeriod) {
  // Promotion must re-replicate under the new owner immediately: if it
  // waited for the next periodic refresh, the holders' records would
  // still name the first dead owner and a second failure inside the
  // window would strand a perfectly good replica.
  sim::SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b1100000000, 10);
  testing::add_stream(cluster, client, ClientId{30}, key, 2.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const ServerId first_owner = *cluster.find_owner(key);
  ASSERT_GE(cluster.fail_server(first_owner), 1u);
  const ServerId second_owner = *cluster.find_owner(key);
  ASSERT_NE(second_owner, first_owner);

  // The holders' records must already name the new owner — that is
  // the exact lookup (replicas_owned_by) the TCP death handler does.
  const KeyGroup group = cluster.find_active_group(key).value();
  std::size_t holders_naming_new_owner = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const ServerId id{i};
    if (!cluster.is_alive(id) || id == second_owner) continue;
    const auto owned = cluster.server(id).replicas_owned_by(second_owner);
    holders_naming_new_owner +=
        std::count(owned.begin(), owned.end(), group);
  }
  EXPECT_EQ(holders_naming_new_owner, 2u)
      << "promotion did not refresh the replica ownership records";

  // No load check in between: the second death relies entirely on the
  // promotion-time re-replication.
  ASSERT_GE(cluster.fail_server(second_owner), 1u);
  const ServerId third_owner = *cluster.find_owner(key);
  const GroupState* state = cluster.server(third_owner)
                                .group_state(*cluster.find_active_group(key));
  ASSERT_NE(state, nullptr);
  ASSERT_EQ(state->streams.size(), 1u);
  EXPECT_DOUBLE_EQ(state->streams.at(ClientId{30}).rate, 2.0);
  EXPECT_EQ(cluster.total_stats().groups_lost, 0u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(ReplicaLifecycle, EmptyRootFallbackWithoutReplicas) {
  sim::SimCluster cluster(replicated_config(0));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key key(0b0001000000, 10);
  testing::add_stream(cluster, client, ClientId{20}, key, 2.0);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const KeyGroup group = cluster.find_active_group(key).value();
  const ServerId owner = *cluster.find_owner(key);
  const auto recovered = cluster.fail_server(owner);
  EXPECT_EQ(recovered, 0u);  // nothing to promote from
  EXPECT_GT(cluster.total_stats().groups_lost, 0u);

  // Coverage is healed through an empty root entry: resolvable, no
  // state, lineage unknown so it must be a root.
  const ServerId heir = *cluster.find_owner(key);
  const GroupState* state = cluster.server(heir).group_state(group);
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->empty());
  const auto* entry = cluster.server(heir).table().find(group);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->active);
  EXPECT_TRUE(entry->root);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(ReplicaLifecycle, PromotionIsIdempotentAndRefusesOverlap) {
  testing::MockServerEnv env;
  ClashConfig cfg;
  cfg.key_width = 8;
  ClashServer server(ServerId{0}, cfg, env,
                     dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));

  const KeyGroup group = testing::group("0110*", 8);
  // No replica, no entry: fallback adoption, reported as not recovered.
  EXPECT_FALSE(server.promote_replica(group));
  EXPECT_TRUE(server.table().find(group)->active);
  // A duplicate promotion of an already-active group is a no-op "ok".
  EXPECT_TRUE(server.promote_replica(group));
  EXPECT_EQ(server.stats().failovers, 1u);

  // A promotion that would overlap an existing active group is refused
  // outright -- it would corrupt the prefix-free table.
  EXPECT_FALSE(server.promote_replica(testing::group("01101*", 8)));
  EXPECT_EQ(server.table().find(testing::group("01101*", 8)), nullptr);
}

}  // namespace
}  // namespace clash
