// Binary splitting (Sections 4-5): message-level unit tests with a
// scripted environment plus cluster-level checks.
#include <gtest/gtest.h>

#include "clash/server.hpp"
#include "tests/clash/test_util.hpp"

namespace clash {
namespace {

using testing::MockServerEnv;
using testing::group;
using testing::key;

ClashConfig small_config(unsigned width = 7) {
  ClashConfig cfg;
  cfg.key_width = width;
  cfg.initial_depth = 3;
  cfg.capacity = 100;
  return cfg;
}

dht::KeyHasher hasher() { return dht::KeyHasher(32); }

AcceptObject data_obj(const Key& k, ClientId src, double rate) {
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = src;
  obj.stream_rate = rate;
  obj.depth = 0;
  return obj;
}

TEST(Split, ShedsRightHalfToPeer) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{7}, 2}; };
  ClashServer s(ServerId{0}, small_config(), env, hasher());
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});

  // Streams on both sides of the split point (bit 3).
  (void)s.handle_accept_object(data_obj(key("0110000"), ClientId{1}, 10));
  (void)s.handle_accept_object(data_obj(key("0110111"), ClientId{2}, 10));
  (void)s.handle_accept_object(data_obj(key("0111000"), ClientId{3}, 10));

  ASSERT_TRUE(s.force_split(group("011*", 7)));

  // Table: 011* inactive pointing at s7; 0110* active here.
  const auto* parent = s.table().find(group("011*", 7));
  ASSERT_NE(parent, nullptr);
  EXPECT_FALSE(parent->active);
  EXPECT_EQ(parent->right_child, ServerId{7});
  const auto* left = s.table().find(group("0110*", 7));
  ASSERT_NE(left, nullptr);
  EXPECT_TRUE(left->active);
  EXPECT_EQ(left->parent, ServerId{0});
  EXPECT_EQ(s.table().check_invariants(), std::nullopt);

  // The ACCEPT_KEYGROUP carries exactly the right-half state.
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].first, ServerId{7});
  const auto* msg = std::get_if<AcceptKeyGroup>(&env.sent[0].second);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->group, group("0111*", 7));
  EXPECT_EQ(msg->parent, ServerId{0});
  ASSERT_EQ(msg->streams.size(), 1u);
  EXPECT_EQ(msg->streams[0].source, ClientId{3});

  // Local state kept the left half.
  const auto* left_state = s.group_state(group("0110*", 7));
  ASSERT_NE(left_state, nullptr);
  EXPECT_EQ(left_state->streams.size(), 2u);
  EXPECT_DOUBLE_EQ(left_state->stream_rate, 20.0);
  EXPECT_EQ(s.stats().splits, 1u);
  EXPECT_EQ(s.stats().self_remaps, 0u);
}

TEST(Split, SelfRemapIncreasesDepthAgain) {
  MockServerEnv env;
  int calls = 0;
  // First right-child lookup maps back to self; the retry finds a peer.
  env.lookup_fn = [&](dht::HashKey) {
    ++calls;
    return dht::LookupResult{calls == 1 ? ServerId{0} : ServerId{9}, 1};
  };
  ClashServer s(ServerId{0}, small_config(), env, hasher());
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  // Overload the group (capacity 100, threshold 90): the load-shedding
  // path retries the randomized choice on a self-map.
  (void)s.handle_accept_object(data_obj(key("0111100"), ClientId{1}, 80));
  (void)s.handle_accept_object(data_obj(key("0111000"), ClientId{2}, 40));

  s.run_load_check();
  ASSERT_EQ(s.stats().splits, 1u);

  // 011* -> {0110* local} + 0111* self-remapped ->
  //   {01110* local} + 01111* shed to s9.
  EXPECT_FALSE(s.table().find(group("011*", 7))->active);
  EXPECT_TRUE(s.table().find(group("0110*", 7))->active);
  const auto* mid = s.table().find(group("0111*", 7));
  ASSERT_NE(mid, nullptr);
  EXPECT_FALSE(mid->active);
  EXPECT_EQ(mid->right_child, ServerId{9});
  EXPECT_TRUE(s.table().find(group("01110*", 7))->active);
  EXPECT_EQ(s.table().check_invariants(), std::nullopt);
  EXPECT_EQ(s.stats().self_remaps, 1u);

  const auto* msg = env.last_as<AcceptKeyGroup>();
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->group, group("01111*", 7));
  ASSERT_EQ(msg->streams.size(), 1u);
  EXPECT_EQ(msg->streams[0].source, ClientId{1});
  // 0111000 (40 units) stayed local under 01110*.
  const auto* kept = s.group_state(group("01110*", 7));
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->streams.size(), 1u);
  EXPECT_DOUBLE_EQ(s.server_load(), 40.0);
}

TEST(Split, MaxDepthGroupCannotSplit) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, small_config(), env, hasher());
  s.install_entry({group("0110101", 7), true, ServerId{}, ServerId{}, true});
  EXPECT_FALSE(s.force_split(group("0110101", 7)));
  EXPECT_TRUE(env.sent.empty());
}

TEST(Split, InactiveGroupCannotSplit) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, small_config(), env, hasher());
  s.install_entry({group("011*", 7), true, ServerId{}, ServerId{7}, false});
  EXPECT_FALSE(s.force_split(group("011*", 7)));
}

TEST(Split, QueriesMigrateWithRightHalf) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{3}, 1}; };
  ClashConfig cfg = small_config();
  cfg.state_batch = 1;
  ClashServer s(ServerId{0}, cfg, env, hasher());
  s.install_entry({group("01*", 7), true, ServerId{}, ServerId{}, true});

  AcceptObject q1;
  q1.key = key("0111111");
  q1.kind = ObjectKind::kQuery;
  q1.query_id = QueryId{100};
  (void)s.handle_accept_object(q1);
  AcceptObject q2 = q1;
  q2.key = key("0100000");
  q2.query_id = QueryId{200};
  (void)s.handle_accept_object(q2);

  ASSERT_TRUE(s.force_split(group("01*", 7)));
  const auto* msg = env.last_as<AcceptKeyGroup>();
  ASSERT_NE(msg, nullptr);
  ASSERT_EQ(msg->queries.size(), 1u);
  EXPECT_EQ(msg->queries[0].id, QueryId{100});
  EXPECT_EQ(s.stats().state_transfer_msgs, 1u);
  EXPECT_EQ(s.total_queries(), 1u);
}

TEST(Split, ReceiverMustAcceptAndAck) {
  MockServerEnv env;
  ClashServer s(ServerId{5}, small_config(), env, hasher());
  AcceptKeyGroup m;
  m.group = group("0111*", 7);
  m.parent = ServerId{0};
  m.streams.push_back({ClientId{9}, key("0111100"), 4.0});
  m.queries.push_back({QueryId{1}, key("0111000")});
  s.deliver(ServerId{0}, m);

  const auto* e = s.table().find(group("0111*", 7));
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->active);
  EXPECT_EQ(e->parent, ServerId{0});
  EXPECT_EQ(s.total_streams(), 1u);
  EXPECT_EQ(s.total_queries(), 1u);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].first, ServerId{0});
  EXPECT_NE(std::get_if<AcceptKeyGroupAck>(&env.sent[0].second), nullptr);
}

TEST(Split, OverloadTriggersHottestGroupSplit) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{2}, 1}; };
  ClashConfig cfg = small_config();
  cfg.capacity = 100;  // overload above 90
  ClashServer s(ServerId{0}, cfg, env, hasher());
  s.install_entry({group("00*", 7), true, ServerId{}, ServerId{}, true});
  s.install_entry({group("01*", 7), true, ServerId{}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0000000"), ClientId{1}, 30));
  (void)s.handle_accept_object(data_obj(key("0100000"), ClientId{2}, 80));

  s.run_load_check();
  EXPECT_EQ(s.stats().splits, 1u);
  // The hottest group (01*) was the one split.
  EXPECT_FALSE(s.table().find(group("01*", 7))->active);
  EXPECT_TRUE(s.table().find(group("00*", 7))->active);
}

TEST(Split, NormalLoadDoesNothing) {
  MockServerEnv env;
  ClashServer s(ServerId{0}, small_config(), env, hasher());
  s.install_entry({group("01*", 7), true, ServerId{}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0100000"), ClientId{1}, 70));
  s.run_load_check();
  EXPECT_EQ(s.stats().splits, 0u);
  EXPECT_TRUE(s.table().find(group("01*", 7))->active);
}

TEST(Split, RespectsMaxSplitsPerCheck) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{2}, 1}; };
  ClashConfig cfg = small_config();
  cfg.max_splits_per_check = 3;
  ClashServer s(ServerId{0}, cfg, env, hasher());
  s.install_entry({group("0*", 7), true, ServerId{}, ServerId{}, true});
  // One extremely hot stream on a single key: splitting sheds half the
  // key space repeatedly but the hot key stays, so up to 3 splits run.
  (void)s.handle_accept_object(data_obj(key("0000000"), ClientId{1}, 500));
  s.run_load_check();
  EXPECT_EQ(s.stats().splits + s.stats().self_remaps, 3u);
}

// The Figure 1 walk-through: "011*" splits at s0 (right child to s12),
// s12 splits "0111*" (right to s5), then splits "01110*" again (right
// to s7). We script the DHT to reproduce the exact server assignments.
TEST(Split, Figure1Scenario) {
  MockServerEnv env0, env12;
  ClashServer s0(ServerId{0}, small_config(), env0, hasher());
  ClashServer s12(ServerId{12}, small_config(), env12, hasher());

  env0.lookup_fn = [](dht::HashKey) {
    return dht::LookupResult{ServerId{12}, 2};
  };
  s0.install_entry({group("011*", 7), true, ServerId{}, ServerId{}, true});
  ASSERT_TRUE(s0.force_split(group("011*", 7)));
  // s0 keeps 0110*, hands 0111* to s12.
  EXPECT_TRUE(s0.table().find(group("0110*", 7))->active);
  const auto* transfer = env0.last_as<AcceptKeyGroup>();
  ASSERT_NE(transfer, nullptr);
  s12.deliver(ServerId{0}, *transfer);

  // s12 splits 0111* with right child s5.
  env12.lookup_fn = [](dht::HashKey) {
    return dht::LookupResult{ServerId{5}, 2};
  };
  ASSERT_TRUE(s12.force_split(group("0111*", 7)));
  EXPECT_TRUE(s12.table().find(group("01110*", 7))->active);
  EXPECT_EQ(env12.last_as<AcceptKeyGroup>()->group, group("01111*", 7));

  // s12 splits 01110* with right child s7.
  env12.lookup_fn = [](dht::HashKey) {
    return dht::LookupResult{ServerId{7}, 2};
  };
  ASSERT_TRUE(s12.force_split(group("01110*", 7)));
  EXPECT_TRUE(s12.table().find(group("011100*", 7))->active);
  EXPECT_EQ(env12.last_as<AcceptKeyGroup>()->group, group("011101*", 7));

  // Final tables are consistent and reflect the Figure 1 leaves.
  EXPECT_EQ(s0.table().check_invariants(), std::nullopt);
  EXPECT_EQ(s12.table().check_invariants(), std::nullopt);
  EXPECT_EQ(s12.table().find(group("0111*", 7))->right_child, ServerId{5});
  EXPECT_EQ(s12.table().find(group("01110*", 7))->right_child, ServerId{7});
}

// Splitting a zero-load group is pointless; the picker skips it even
// under overload pressure from an unsplittable group.
TEST(Split, ZeroLoadGroupNotSplit) {
  MockServerEnv env;
  env.lookup_fn = [](dht::HashKey) { return dht::LookupResult{ServerId{2}, 1}; };
  ClashConfig cfg = small_config();
  ClashServer s(ServerId{0}, cfg, env, hasher());
  // The hot group is a single full-depth key (unsplittable); the cold
  // group has zero load.
  s.install_entry({group("0110101", 7), true, ServerId{}, ServerId{}, true});
  s.install_entry({group("1*", 7), true, ServerId{}, ServerId{}, true});
  (void)s.handle_accept_object(data_obj(key("0110101"), ClientId{1}, 500));
  s.run_load_check();
  EXPECT_EQ(s.stats().splits, 0u);
  EXPECT_TRUE(s.table().find(group("1*", 7))->active);
}

}  // namespace
}  // namespace clash
