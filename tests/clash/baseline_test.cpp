#include "clash/baseline.hpp"

#include <gtest/gtest.h>

#include "clash/load.hpp"

namespace clash {
namespace {

TEST(FixedDepthConfig, DisablesAdaptation) {
  ClashConfig base;
  base.key_width = 24;
  const auto cfg = fixed_depth_config(base, 12);
  EXPECT_EQ(cfg.initial_depth, 12u);
  EXPECT_FALSE(cfg.enable_consolidation);
  EXPECT_EQ(cfg.max_splits_per_check, 0u);
  EXPECT_TRUE(cfg.ephemeral_groups);
  EXPECT_EQ(classify_load(cfg, 1e15), LoadVerdict::kNormal);
  EXPECT_EQ(classify_load(cfg, 0.0), LoadVerdict::kNormal);
}

TEST(FixedDepthConfig, PreservesBaseParameters) {
  ClashConfig base;
  base.key_width = 24;
  base.capacity = 1234;
  const auto cfg = fixed_depth_config(base, 6);
  EXPECT_EQ(cfg.key_width, 24u);
  EXPECT_DOUBLE_EQ(cfg.capacity, 1234.0);
}

TEST(PowerOfDChoices, CandidatesAreDeterministic) {
  const PowerOfDChoices po2(6, 2, 32, dht::KeyHasher::Algo::kMix64, 99);
  const Key k(0x123456, 24);
  const auto a = po2.candidates(k);
  const auto b = po2.candidates(k);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
}

TEST(PowerOfDChoices, CandidatesDiffer) {
  const PowerOfDChoices po2(6, 2, 32, dht::KeyHasher::Algo::kMix64, 99);
  int same = 0;
  for (std::uint64_t v = 0; v < 100; ++v) {
    const auto c = po2.candidates(Key(v << 16, 24));
    same += (c[0] == c[1]);
  }
  EXPECT_LT(same, 3);
}

TEST(PowerOfDChoices, SameGroupSameCandidates) {
  // Keys sharing the fixed-depth prefix share candidates (placement is
  // per group, not per key).
  const PowerOfDChoices po2(6, 2, 32, dht::KeyHasher::Algo::kMix64, 7);
  const Key a(0b110101'000000000000000000, 24);
  const Key b(0b110101'111111111111111111, 24);
  EXPECT_EQ(po2.candidates(a)[0], po2.candidates(b)[0]);
  EXPECT_EQ(po2.candidates(a)[1], po2.candidates(b)[1]);
}

TEST(PowerOfDChoices, SupportsMoreChoices) {
  const PowerOfDChoices po4(8, 4, 32, dht::KeyHasher::Algo::kMix64, 1);
  EXPECT_EQ(po4.choices(), 4u);
  EXPECT_EQ(po4.candidates(Key(1, 24)).size(), 4u);
}

}  // namespace
}  // namespace clash
