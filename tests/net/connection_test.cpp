// Framing behaviour of the non-blocking Connection over a real socket
// pair: reassembly of fragmented frames, batching of multiple frames,
// oversized-frame rejection, close notification.
#include "net/connection.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace clash::net {
namespace {

struct ConnFixture : ::testing::Test {
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_peer = fds[1];
    conn = Connection::adopt(
        loop, Fd(fds[0]),
        [this](std::span<const std::uint8_t> frame) {
          frames.emplace_back(frame.begin(), frame.end());
        },
        [this] { closed = true; });
  }

  void TearDown() override {
    if (raw_peer >= 0) ::close(raw_peer);
  }

  /// Drive the loop until it goes idle.
  void pump(int ms = 50) {
    loop.call_after(std::chrono::milliseconds(ms), [this] { loop.stop(); });
    loop.run();
  }

  void send_raw(const void* data, std::size_t n) {
    ASSERT_EQ(::write(raw_peer, data, n), ssize_t(n));
  }

  EventLoop loop;
  std::shared_ptr<Connection> conn;
  int raw_peer = -1;
  std::vector<std::vector<std::uint8_t>> frames;
  bool closed = false;
};

std::vector<std::uint8_t> frame_bytes(const std::string& payload) {
  std::vector<std::uint8_t> out(4 + payload.size());
  const auto len = std::uint32_t(payload.size());
  std::memcpy(out.data(), &len, 4);
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

TEST_F(ConnFixture, ReceivesWholeFrame) {
  const auto bytes = frame_bytes("hello");
  send_raw(bytes.data(), bytes.size());
  pump();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()), "hello");
}

TEST_F(ConnFixture, ReassemblesFragmentedFrame) {
  const auto bytes = frame_bytes("fragmented payload");
  // Dribble the frame one byte at a time.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    send_raw(bytes.data() + i, 1);
    pump(5);
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()),
            "fragmented payload");
}

TEST_F(ConnFixture, SplitsBatchedFrames) {
  auto a = frame_bytes("first");
  const auto b = frame_bytes("second");
  a.insert(a.end(), b.begin(), b.end());
  send_raw(a.data(), a.size());
  pump();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()), "first");
  EXPECT_EQ(std::string(frames[1].begin(), frames[1].end()), "second");
}

TEST_F(ConnFixture, OversizedFrameClosesConnection) {
  const std::uint32_t huge = Connection::kMaxFrame + 1;
  send_raw(&huge, 4);
  pump();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(conn->closed());
  EXPECT_TRUE(frames.empty());
}

TEST_F(ConnFixture, PeerShutdownNotifies) {
  ::close(raw_peer);
  raw_peer = -1;
  pump();
  EXPECT_TRUE(closed);
}

TEST_F(ConnFixture, SendFrameRoundTrip) {
  const std::string payload = "pong";
  ASSERT_TRUE(loop.post([&] {
    conn->send_frame(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size()));
  }));
  pump();
  std::uint8_t buf[64];
  const auto n = ::read(raw_peer, buf, sizeof(buf));
  ASSERT_EQ(n, 8);  // 4-byte prefix + 4 bytes
  std::uint32_t len = 0;
  std::memcpy(&len, buf, 4);
  EXPECT_EQ(len, 4u);
  EXPECT_EQ(std::string(buf + 4, buf + 8), "pong");
}

TEST_F(ConnFixture, LargeFrameRoundTrip) {
  // Larger than one read() chunk (16 KiB) to exercise buffered reads.
  std::string big(100'000, 'x');
  const auto bytes = frame_bytes(big);
  send_raw(bytes.data(), bytes.size());
  pump();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].size(), big.size());
}

}  // namespace
}  // namespace clash::net
