// Framing behaviour of the non-blocking Connection over a real socket
// pair: reassembly of fragmented frames (split at every possible read
// boundary, including inside the length header), batching, writev
// coalescing, send-side oversize rejection, slow-reader backpressure
// with EPOLLOUT re-arming, and close notification.
#include "net/connection.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace clash::net {
namespace {

struct ConnFixture : ::testing::Test {
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_peer = fds[1];
    conn = Connection::adopt(
        loop, Fd(fds[0]),
        [this](std::span<const std::uint8_t> frame) {
          frames.emplace_back(frame.begin(), frame.end());
        },
        [this] { closed = true; });
  }

  void TearDown() override {
    if (raw_peer >= 0) ::close(raw_peer);
  }

  /// Drive the loop until it goes idle.
  void pump(int ms = 50) {
    CLASH_ASSERT_ON_LOOP(loop);  // idle between run()s: we hold affinity
    loop.call_after(std::chrono::milliseconds(ms), [this] { loop.stop(); });
    loop.run();
  }

  void send_raw(const void* data, std::size_t n) {
    ASSERT_EQ(::write(raw_peer, data, n), ssize_t(n));
  }

  EventLoop loop;
  std::shared_ptr<Connection> conn;
  int raw_peer = -1;
  std::vector<std::vector<std::uint8_t>> frames;
  bool closed = false;
};

std::vector<std::uint8_t> frame_bytes(const std::string& payload) {
  std::vector<std::uint8_t> out(4 + payload.size());
  wire::store_u32_le(out.data(), std::uint32_t(payload.size()));
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

TEST_F(ConnFixture, ReceivesWholeFrame) {
  const auto bytes = frame_bytes("hello");
  send_raw(bytes.data(), bytes.size());
  pump();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()), "hello");
}

TEST_F(ConnFixture, ReassemblesFragmentedFrame) {
  const auto bytes = frame_bytes("fragmented payload");
  // Dribble the frame one byte at a time.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    send_raw(bytes.data() + i, 1);
    pump(5);
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()),
            "fragmented payload");
}

TEST_F(ConnFixture, SplitsBatchedFrames) {
  auto a = frame_bytes("first");
  const auto b = frame_bytes("second");
  a.insert(a.end(), b.begin(), b.end());
  send_raw(a.data(), a.size());
  pump();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(std::string(frames[0].begin(), frames[0].end()), "first");
  EXPECT_EQ(std::string(frames[1].begin(), frames[1].end()), "second");
}

TEST_F(ConnFixture, OversizedFrameClosesConnection) {
  const std::uint32_t huge = Connection::kMaxFrame + 1;
  send_raw(&huge, 4);
  pump();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(conn->closed());
  EXPECT_TRUE(frames.empty());
}

TEST_F(ConnFixture, PeerShutdownNotifies) {
  ::close(raw_peer);
  raw_peer = -1;
  pump();
  EXPECT_TRUE(closed);
}

TEST_F(ConnFixture, SendFrameRoundTrip) {
  const std::string payload = "pong";
  ASSERT_TRUE(loop.post([&] {
    conn->send_frame(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size()));
  }));
  pump();
  std::uint8_t buf[64];
  const auto n = ::read(raw_peer, buf, sizeof(buf));
  ASSERT_EQ(n, 8);  // 4-byte prefix + 4 bytes
  const std::uint32_t len = wire::load_u32_le(buf);
  EXPECT_EQ(len, 4u);
  EXPECT_EQ(std::string(buf + 4, buf + 8), "pong");
}

TEST_F(ConnFixture, LargeFrameRoundTrip) {
  // Larger than one read() chunk (64 KiB) to exercise buffered reads.
  std::string big(100'000, 'x');
  const auto bytes = frame_bytes(big);
  send_raw(bytes.data(), bytes.size());
  pump();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].size(), big.size());
}

// A batch of frames must reassemble identically no matter where the
// byte stream is cut — including splits inside a 4-byte length header
// and across frame boundaries.
TEST(ConnFraming, ReassemblesAcrossEverySplitPoint) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::string> payloads = {"a", "four", "longer payload"};
  for (const auto& p : payloads) {
    const auto f = frame_bytes(p);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  for (std::size_t split = 1; split < stream.size(); ++split) {
    EventLoop loop;
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::vector<std::string> got;
    auto conn = Connection::adopt(
        loop, Fd(fds[0]),
        [&](std::span<const std::uint8_t> frame) {
          got.emplace_back(frame.begin(), frame.end());
        },
        [] {});
    ASSERT_EQ(::write(fds[1], stream.data(), split), ssize_t(split));
    CLASH_ASSERT_ON_LOOP(loop);  // loop not started yet
    loop.call_after(std::chrono::milliseconds(5), [&] {
      ASSERT_EQ(::write(fds[1], stream.data() + split, stream.size() - split),
                ssize_t(stream.size() - split));
    });
    loop.call_after(std::chrono::milliseconds(25), [&] { loop.stop(); });
    loop.run();
    ASSERT_EQ(got.size(), payloads.size()) << "split at " << split;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(got[i], payloads[i]) << "split at " << split;
    }
    EXPECT_EQ(conn->stats().frames_received, payloads.size());
    ::close(fds[1]);
  }
}

TEST_F(ConnFixture, CoalescesTickBatchIntoOneWritev) {
  // All frames queued during one loop tick must leave in one syscall.
  constexpr std::size_t kFrames = 100;
  const std::string payload = "gossip-sized frame";
  ASSERT_TRUE(loop.post([&] {
    for (std::size_t i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(conn->send_frame(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size())));
    }
  }));
  pump();
  EXPECT_EQ(conn->stats().frames_sent, kFrames);
  // 100 frames > kMaxIov (64): two writev calls, not one hundred writes.
  EXPECT_LE(conn->stats().flush_syscalls, 2u);
  std::vector<std::uint8_t> received(kFrames * (4 + payload.size()));
  std::size_t got = 0;
  while (got < received.size()) {
    const auto n = ::read(raw_peer, received.data() + got,
                          received.size() - got);
    ASSERT_GT(n, 0);
    got += std::size_t(n);
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto* p = received.data() + i * (4 + payload.size());
    EXPECT_EQ(wire::load_u32_le(p), payload.size());
  }
}

TEST_F(ConnFixture, OversizedSendRejectedAtSender) {
  const std::vector<std::uint8_t> huge(Connection::kMaxFrame + 1, 0);
  bool accepted = true;
  ASSERT_TRUE(loop.post([&] { accepted = conn->send_frame(huge); }));
  pump(10);
  EXPECT_FALSE(accepted);
  EXPECT_EQ(conn->stats().send_oversized, 1u);
  EXPECT_EQ(conn->stats().frames_sent, 0u);
  EXPECT_FALSE(conn->closed());
  // Nothing went out on the wire.
  std::uint8_t buf[16];
  EXPECT_EQ(::recv(raw_peer, buf, sizeof(buf), MSG_DONTWAIT), -1);
}

TEST_F(ConnFixture, SendWireFrameIsFramedCorrectly) {
  auto w = wire::begin_frame(
      wire::Envelope{wire::FrameKind::kOneway, 7, ServerId{42}});
  w.str("payload");
  ASSERT_TRUE(
      loop.post([&] { conn->send_wire_frame(wire::finish_frame(std::move(w))); }));
  pump();
  std::uint8_t buf[128];
  const auto n = ::read(raw_peer, buf, sizeof(buf));
  ASSERT_GT(n, 4);
  const std::uint32_t len = wire::load_u32_le(buf);
  ASSERT_EQ(len, std::size_t(n) - 4);
  const auto decoded =
      wire::decode_frame(std::span<const std::uint8_t>(buf + 4, len));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().envelope.kind, wire::FrameKind::kOneway);
  EXPECT_EQ(decoded.value().envelope.request_id, 7u);
  EXPECT_EQ(decoded.value().envelope.sender.value, 42u);
}

TEST_F(ConnFixture, MalformedWireFrameDropped) {
  std::vector<std::uint8_t> bogus(16, 0xFF);  // prefix disagrees with size
  bool accepted = true;
  ASSERT_TRUE(
      loop.post([&] { accepted = conn->send_wire_frame(std::move(bogus)); }));
  pump(10);
  EXPECT_FALSE(accepted);
  EXPECT_EQ(conn->stats().frames_sent, 0u);
}

TEST_F(ConnFixture, SlowReaderBackpressureReArmsEpollout) {
  // Shrink both socket buffers so the kernel accepts only part of the
  // queue, forcing partial writev progress and EPOLLOUT re-arming.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(conn->fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  ASSERT_EQ(::setsockopt(raw_peer, SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  constexpr std::size_t kFrames = 40;
  const std::vector<std::uint8_t> payload(64 * 1024, 0x5A);
  ASSERT_TRUE(loop.post([&] {
    for (std::size_t i = 0; i < kFrames; ++i) {
      ASSERT_TRUE(conn->send_frame(payload));
    }
  }));
  pump(20);
  // The reader hasn't consumed a byte: most of the queue must still be
  // buffered, and the connection must be alive awaiting EPOLLOUT.
  // (The loop is parked between pumps, so reading from this thread is
  // safe.)
  EXPECT_FALSE(conn->closed());
  EXPECT_GT(conn->send_queue_bytes(), 0u);

  // Drain slowly; every pump gives the loop a chance to continue the
  // flush from where the partial writev stopped.
  const std::size_t total = kFrames * (4 + payload.size());
  std::vector<std::uint8_t> sink(256 * 1024);
  std::size_t got = 0;
  for (int rounds = 0; got < total && rounds < 2000; ++rounds) {
    const auto n = ::recv(raw_peer, sink.data(), sink.size(), MSG_DONTWAIT);
    if (n > 0) {
      got += std::size_t(n);
    } else {
      pump(2);
    }
  }
  EXPECT_EQ(got, total);
  EXPECT_EQ(conn->send_queue_bytes(), 0u);
  EXPECT_FALSE(conn->closed());
  EXPECT_EQ(conn->stats().bytes_sent, total);
}

}  // namespace
}  // namespace clash::net
