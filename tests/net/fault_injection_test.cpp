// net::FaultInjector on the TCP transport: deterministic frame drops,
// exact drop_next scripting, and delayed delivery at the Connection
// level; and end-to-end snapshot-chunk pacing — a replica behind a
// deliberately tiny pace window still converges because the drain
// callback keeps resuming the transfer.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "clash/bootstrap.hpp"
#include "net/blocking_client.hpp"
#include "net/connection.hpp"
#include "net/fault.hpp"
#include "net/node.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace clash::net {
namespace {

struct FaultConnFixture : ::testing::Test {
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    raw_peer = fds[1];
    conn = Connection::adopt(
        loop, Fd(fds[0]), [](std::span<const std::uint8_t>) {}, [] {});
    injector = std::make_shared<FaultInjector>();
    conn->set_fault_injector(injector);
  }

  void TearDown() override {
    if (raw_peer >= 0) ::close(raw_peer);
  }

  void pump(int ms = 50) {
    CLASH_ASSERT_ON_LOOP(loop);  // idle between run()s: we hold affinity
    loop.call_after(std::chrono::milliseconds(ms), [this] { loop.stop(); });
    loop.run();
  }

  /// Frames fully received on the raw peer socket so far.
  std::size_t drain_raw_frames() {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(raw_peer, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) break;
      received.insert(received.end(), buf, buf + n);
    }
    std::size_t frames = 0;
    std::size_t pos = 0;
    while (received.size() - pos >= 4) {
      const auto len = wire::load_u32_le(received.data() + pos);
      if (received.size() - pos - 4 < len) break;
      pos += 4 + len;
      ++frames;
    }
    return frames;
  }

  EventLoop loop;
  std::shared_ptr<Connection> conn;
  std::shared_ptr<FaultInjector> injector;
  std::vector<std::uint8_t> received;
  int raw_peer = -1;
};

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST_F(FaultConnFixture, CutDropsEveryFrameSilently) {
  FaultInjector::Config cfg;
  cfg.cut = true;
  injector->configure(cfg);
  for (int i = 0; i < 3; ++i) {
    const auto p = payload_of(16, std::uint8_t(i));
    EXPECT_TRUE(conn->send_frame(p));  // the sender cannot tell
  }
  pump();
  EXPECT_EQ(drain_raw_frames(), 0u);
  EXPECT_EQ(conn->stats().faults_dropped, 3u);
  EXPECT_EQ(conn->stats().frames_sent, 0u);

  // Healing the link restores clean delivery on the same connection.
  injector->configure(FaultInjector::Config{});
  EXPECT_TRUE(conn->send_frame(payload_of(16, 0xEE)));
  pump();
  EXPECT_EQ(drain_raw_frames(), 1u);
}

TEST_F(FaultConnFixture, DropNextEatsExactlyTheScriptedFrames) {
  injector->drop_next(2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(conn->send_frame(payload_of(8, std::uint8_t(i))));
  }
  pump();
  EXPECT_EQ(drain_raw_frames(), 2u);
  EXPECT_EQ(conn->stats().faults_dropped, 2u);
  EXPECT_EQ(conn->stats().frames_sent, 2u);
}

TEST_F(FaultConnFixture, DelayHoldsFramesUntilTheTimerFires) {
  FaultInjector::Config cfg;
  cfg.delay_usec = 60'000;
  injector->configure(cfg);
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0x42)));
  pump(20);
  EXPECT_EQ(drain_raw_frames(), 0u) << "frame leaked ahead of its delay";
  pump(80);
  EXPECT_EQ(drain_raw_frames(), 1u);
  EXPECT_EQ(conn->stats().faults_delayed, 1u);
}

TEST_F(FaultConnFixture, HealingMidDelayNeverReordersFrames) {
  // A frame parked in a delay timer must not be overtaken by frames
  // sent after the injector is cleared — snapshot assembly depends on
  // in-order chunks, so the healed link keeps the delayed frame's
  // horizon.
  FaultInjector::Config cfg;
  cfg.delay_usec = 60'000;
  injector->configure(cfg);
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0xAA)));  // delayed
  conn->set_fault_injector(nullptr);                   // link heals
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0xBB)));  // must not pass it
  pump(20);
  EXPECT_EQ(drain_raw_frames(), 0u) << "late frame overtook a delayed one";
  pump(100);
  ASSERT_EQ(drain_raw_frames(), 2u);
  // First frame on the wire is the delayed 0xAA, not the healed 0xBB.
  ASSERT_GE(received.size(), 5u);
  EXPECT_EQ(received[4], 0xAA);
}

TEST_F(FaultConnFixture, DuplicationSendsTheFrameTwice) {
  FaultInjector::Config cfg;
  cfg.dup_prob = 1.0;
  injector->configure(cfg);
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0x11)));
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0x22)));
  pump();
  EXPECT_EQ(drain_raw_frames(), 4u);
  EXPECT_EQ(conn->stats().faults_duplicated, 2u);
  // Both copies of each frame, in send order.
  ASSERT_GE(received.size(), 24u);
  EXPECT_EQ(received[4], 0x11);
  EXPECT_EQ(received[16], 0x11);
}

TEST_F(FaultConnFixture, ReorderedFrameIsOvertakenByLaterSends) {
  FaultInjector::Config cfg;
  cfg.reorder_prob = 1.0;
  cfg.reorder_window_usec = 60'000;
  injector->configure(cfg);
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0xAA)));  // jittered
  conn->set_fault_injector(nullptr);                   // link heals
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0xBB)));  // sails past
  pump(150);
  ASSERT_EQ(drain_raw_frames(), 2u);
  // Unlike plain delay (which keeps FIFO), reordering lets the later
  // frame arrive first.
  ASSERT_GE(received.size(), 5u);
  EXPECT_EQ(received[4], 0xBB);
  EXPECT_EQ(conn->stats().faults_reordered, 1u);
}

TEST_F(FaultConnFixture, SlowFactorStretchesTheConfiguredLatency) {
  // Fail-slow link: the same 20ms base latency, multiplied 4x. The
  // frame must still be absent well after the un-stretched deadline.
  FaultInjector::Config cfg;
  cfg.delay_usec = 20'000;
  cfg.slow_factor = 4.0;  // effective 80ms
  injector->configure(cfg);
  EXPECT_TRUE(conn->send_frame(payload_of(8, 0x42)));
  pump(45);
  EXPECT_EQ(drain_raw_frames(), 0u)
      << "frame arrived at 1x speed despite the slow factor";
  pump(100);
  EXPECT_EQ(drain_raw_frames(), 1u);
  EXPECT_EQ(conn->stats().faults_delayed, 1u);
}

TEST_F(FaultConnFixture, CorruptionFlipsBytesOnlyInsideChecksummedFrames) {
  FaultInjector::Config cfg;
  cfg.corrupt_prob = 1.0;
  injector->configure(cfg);

  // A checksummed kind (Gossip) gets a byte flipped inside its content
  // region — header and type byte stay intact, so the frame still
  // parses and dies at the receiver's content-CRC fence instead.
  Gossip gossip;
  gossip.kind = GossipKind::kPing;
  gossip.sequence = 7;
  gossip.target = ServerId{1};
  gossip.updates.push_back({ServerId{2}, MemberState::kSuspect, 3});
  gossip.checksum = wire::content_crc(gossip);
  auto w = begin_frame(wire::Envelope{wire::FrameKind::kOneway, 1, ServerId{0}});
  wire::encode_message(w, Message{gossip});
  const auto clean = wire::finish_frame(std::move(w));
  auto copy = clean;
  EXPECT_TRUE(conn->send_wire_frame(std::move(copy)));
  pump();
  ASSERT_EQ(drain_raw_frames(), 1u);
  EXPECT_EQ(conn->stats().faults_corrupted, 1u);
  ASSERT_EQ(received.size(), clean.size());
  // Header + type byte untouched...
  EXPECT_TRUE(std::equal(clean.begin(), clean.begin() + 23, received.begin()));
  // ...but the content differs somewhere.
  EXPECT_FALSE(std::equal(clean.begin(), clean.end(), received.begin()));

  // A non-checksummed kind passes through byte-identical even with the
  // corrupt fault live: there is no fence to catch the damage, so the
  // injector refuses to create it.
  received.clear();
  auto w2 = begin_frame(wire::Envelope{wire::FrameKind::kOneway, 2, ServerId{0}});
  wire::encode_message(w2, Message{AcceptObjectOk{5}});
  const auto plain = wire::finish_frame(std::move(w2));
  auto copy2 = plain;
  EXPECT_TRUE(conn->send_wire_frame(std::move(copy2)));
  pump();
  ASSERT_EQ(drain_raw_frames(), 1u);
  EXPECT_EQ(conn->stats().faults_corrupted, 1u) << "non-checksummed frame "
                                                   "was mutated";
  ASSERT_EQ(received.size(), plain.size());
  EXPECT_TRUE(std::equal(plain.begin(), plain.end(), received.begin()));
}

// --- End-to-end snapshot pacing over TCP ------------------------------

constexpr unsigned kWidth = 8;

TEST(SnapshotPacing, PacedTransferConvergesThroughDrainCallbacks) {
  // Two nodes, log replication factor 1, and a deliberately tiny pace
  // window (one chunk per burst, pause at 64 queued bytes): every
  // compaction snapshot must trickle chunk by chunk, resumed by the
  // connection's drain callback — if the resume path broke, the
  // replica would stall behind the owner forever.
  ClashConfig clash;
  clash.key_width = kWidth;
  clash.initial_depth = 0;
  clash.capacity = 1e9;
  clash.replication_factor = 1;
  clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  clash.log_compact_threshold = 8;  // frequent snapshots
  clash.snapshot_chunk_objects = 1;  // one object per chunk

  std::vector<NodeConfig> configs(2);
  std::map<ServerId, Endpoint> members;
  for (std::size_t i = 0; i < 2; ++i) {
    configs[i].id = ServerId{i};
    configs[i].listen = Endpoint{"127.0.0.1", 0};
    configs[i].members[configs[i].id] = configs[i].listen;
    configs[i].clash = clash;
    configs[i].ring_salt = 99;
    configs[i].load_check_interval = std::chrono::milliseconds(25);
    configs[i].protocol_period = std::chrono::milliseconds(20);
    configs[i].snapshot_pace_bytes = 64;
    configs[i].snapshot_burst_chunks = 1;
    auto probe = std::make_unique<ClashNode>(configs[i]);
    probe->start();
    members[ServerId{i}] = Endpoint{"127.0.0.1", probe->port()};
    probe->stop();
    configs[i].listen = members[ServerId{i}];
  }
  for (auto& cfg : configs) cfg.members = members;

  dht::ChordRing ring(
      dht::ChordRing::Config{32, 8, dht::KeyHasher::Algo::kSha1, 99});
  ring.add_server(ServerId{0});
  ring.add_server(ServerId{1});

  std::vector<std::unique_ptr<ClashNode>> nodes;
  const auto entries = compute_bootstrap_entries(ring, ring.hasher(), clash);
  for (std::size_t i = 0; i < 2; ++i) {
    nodes.push_back(std::make_unique<ClashNode>(configs[i]));
    const auto it = entries.find(nodes[i]->id());
    if (it != entries.end()) nodes[i]->install_entries(it->second);
    nodes[i]->start();
  }

  BlockingClient::Config ccfg;
  ccfg.members = members;
  ccfg.ring_salt = 99;
  BlockingClient env(ccfg);
  ClashClient client(clash, env, env.hasher());
  constexpr std::size_t kStreams = 40;
  for (std::size_t i = 0; i < kStreams; ++i) {
    AcceptObject obj;
    obj.key = Key((0x37 * (i + 1)) & 0xFF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    ASSERT_TRUE(client.insert(obj).ok);
  }

  const KeyGroup root = KeyGroup::root(kWidth);
  const auto owner_idx = std::size_t(
      ring.map(ring.hasher().hash_key(root.virtual_key())).value);
  const auto holder_idx = 1 - owner_idx;
  bool converged = false;
  for (int round = 0; round < 400 && !converged; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto owner_head = nodes[owner_idx]->run_on_loop(
        [&](ClashServer& s) { return s.log_head(root); });
    const auto state = nodes[holder_idx]->run_on_loop([&](ClashServer& s) {
      const GroupState* st = s.replica_state(root);
      return std::make_pair(s.replica_head(root),
                            st != nullptr ? st->streams.size() : 0u);
    });
    converged = owner_head.has_value() && state.first == owner_head &&
                state.second == kStreams;
  }
  EXPECT_TRUE(converged) << "paced snapshot transfer never converged";
  // All transfers drained: nothing is stuck behind backpressure.
  EXPECT_TRUE(nodes[owner_idx]->run_on_loop(
      [](ClashServer& s) { return !s.has_pending_snapshots(); }));
  for (auto& node : nodes) node->stop();
}

}  // namespace
}  // namespace clash::net
