// Replication & recovery over real TCP (log mode): continuous queries
// survive the owner's death — SWIM detects it, the heir holds the
// promotion open for the recovery-grace window while peers stream the
// missing log suffix, and matches keep firing on the promoted node's
// stream engine. A stopped node restarted in place is re-admitted via
// incarnation refutation and receives its groups back with state
// (the rejoin-gap fix) instead of serving them empty.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "clash/bootstrap.hpp"
#include "cq/engine_hooks.hpp"
#include "net/blocking_client.hpp"
#include "net/node.hpp"

namespace clash::net {
namespace {

constexpr unsigned kWidth = 16;
constexpr unsigned kInitialDepth = 3;
constexpr std::size_t kNodes = 4;

struct RecoveryNetCluster {
  RecoveryNetCluster() {
    ClashConfig clash;
    clash.key_width = kWidth;
    clash.initial_depth = kInitialDepth;
    clash.capacity = 10000;  // no load-driven splits
    clash.replication_factor = 2;
    clash.replication_mode = ClashConfig::ReplicationMode::kLog;

    std::map<ServerId, Endpoint> members;
    for (std::size_t i = 0; i < kNodes; ++i) {
      NodeConfig cfg;
      cfg.id = ServerId{i};
      cfg.listen = Endpoint{"127.0.0.1", 0};
      cfg.members[cfg.id] = cfg.listen;
      cfg.clash = clash;
      cfg.ring_salt = 77;
      cfg.load_check_interval = std::chrono::milliseconds(25);
      cfg.protocol_period = std::chrono::milliseconds(20);
      cfg.recovery_grace = std::chrono::milliseconds(60);
      configs.push_back(cfg);
    }
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto probe = std::make_unique<ClashNode>(configs[i]);
      probe->start();
      members[ServerId{i}] = Endpoint{"127.0.0.1", probe->port()};
      probe->stop();
      configs[i].listen = members[ServerId{i}];
    }
    for (auto& cfg : configs) cfg.members = members;

    ring = std::make_unique<dht::ChordRing>(dht::ChordRing::Config{
        32, 8, dht::KeyHasher::Algo::kSha1, 77});
    for (std::size_t i = 0; i < kNodes; ++i) ring->add_server(ServerId{i});
    const auto entries =
        compute_bootstrap_entries(*ring, ring->hasher(), clash);
    for (std::size_t i = 0; i < kNodes; ++i) {
      boot(i);
      const auto it = entries.find(nodes[i]->id());
      if (it != entries.end()) nodes[i]->install_entries(it->second);
      nodes[i]->start();
    }
  }

  ~RecoveryNetCluster() {
    for (auto& node : nodes) {
      if (node != nullptr) node->stop();
    }
  }

  /// (Re)create node `i` with a fresh engine + hooks and bind them.
  void boot(std::size_t i) {
    engines.resize(kNodes);
    hooks.resize(kNodes);
    nodes.resize(kNodes);
    engines[i] = std::make_unique<cq::StreamEngine>(kWidth);
    hooks[i] = std::make_unique<cq::EngineHooks>(*engines[i]);
    nodes[i] = std::make_unique<ClashNode>(configs[i]);
    (void)nodes[i]->run_on_loop([&, i](ClashServer& s) {
      hooks[i]->bind(&s);
      s.set_app_hooks(hooks[i].get());
      return true;
    });
  }

  template <typename Pred>
  bool eventually(Pred pred, int rounds = 400) {
    for (int i = 0; i < rounds; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// Fire a record on node `i`'s engine, serialised onto its loop.
  std::size_t fire(std::size_t i, const Key& key) {
    return nodes[i]->run_on_loop([&, i](ClashServer&) {
      return engines[i]->process(cq::Record{key, {}});
    });
  }

  /// The live node whose table actively covers `key` (SIZE_MAX: none).
  std::size_t owner_of(const Key& key, std::size_t skip = SIZE_MAX) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (i == skip || nodes[i] == nullptr || !nodes[i]->running()) continue;
      const bool active = nodes[i]->run_on_loop([&](ClashServer& s) {
        return s.table().active_entry_for(key) != nullptr;
      });
      if (active) return i;
    }
    return SIZE_MAX;
  }

  std::vector<NodeConfig> configs;
  std::vector<std::unique_ptr<ClashNode>> nodes;
  std::vector<std::unique_ptr<cq::StreamEngine>> engines;
  std::vector<std::unique_ptr<cq::EngineHooks>> hooks;
  std::unique_ptr<dht::ChordRing> ring;
};

TEST(RecoveryNet, QueriesSurviveOwnerDeathAndKeepFiring) {
  RecoveryNetCluster cluster;

  // Register continuous queries through real sockets, and mirror each
  // into the owner's stream engine (app delta through the log).
  BlockingClient::Config ccfg;
  ccfg.members = cluster.configs[0].members;
  ccfg.ring_salt = 77;
  BlockingClient env(ccfg);
  ClashClient client(cluster.configs[0].clash, env, env.hasher());
  constexpr std::size_t kQueries = 12;
  std::vector<Key> keys;
  for (std::size_t i = 0; i < kQueries; ++i) {
    AcceptObject obj;
    obj.key = Key((0x1357 * (i + 1)) & 0xFFFF, kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    ASSERT_TRUE(client.insert(obj).ok);
    keys.push_back(obj.key);
    const std::size_t owner = cluster.owner_of(obj.key);
    ASSERT_NE(owner, SIZE_MAX);
    const bool registered =
        cluster.nodes[owner]->run_on_loop([&](ClashServer&) {
          cq::ContinuousQuery q;
          q.id = QueryId{i};
          q.scope = KeyGroup::of(obj.key, kWidth);
          return cluster.hooks[owner]->register_query(q);
        });
    ASSERT_TRUE(registered) << "query " << i;
  }
  // Let appends/snapshots reach the replica sets.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const ServerId victim = cluster.ring->map(
      cluster.ring->hasher().hash_key(shape(keys[0], kInitialDepth)));
  ASSERT_GT(cluster.fire(victim.value, keys[0]), 0u);  // fires pre-kill
  cluster.nodes[victim.value]->stop();

  // Survivors converge, promote with recovery, and every query
  // reappears on a live node.
  const bool recovered = cluster.eventually([&] {
    std::size_t total = 0;
    for (auto& node : cluster.nodes) {
      if (node->id() == victim) continue;
      if (node->member_state(victim) != MemberState::kDead) return false;
      total +=
          node->run_on_loop([](ClashServer& s) { return s.total_queries(); });
    }
    return total == kQueries;
  });
  ASSERT_TRUE(recovered) << "queries lost in failover";

  // The app-level query state came along: the promoted owner's engine
  // still matches the record.
  const std::size_t heir = cluster.owner_of(keys[0], victim.value);
  ASSERT_NE(heir, SIZE_MAX);
  EXPECT_GT(cluster.fire(heir, keys[0]), 0u)
      << "promoted owner lost the app query state";
  std::uint64_t lost = 0;
  for (auto& node : cluster.nodes) {
    if (node->id() == victim) continue;
    lost += node->run_on_loop(
        [](ClashServer& s) { return s.stats().groups_lost; });
  }
  EXPECT_EQ(lost, 0u);
}

TEST(RecoveryNet, RestartedNodeIsHandedItsGroupsBackWithState) {
  RecoveryNetCluster cluster;

  BlockingClient::Config ccfg;
  ccfg.members = cluster.configs[0].members;
  ccfg.ring_salt = 77;
  BlockingClient env(ccfg);
  ClashClient client(cluster.configs[0].clash, env, env.hasher());
  constexpr std::size_t kStreams = 16;
  for (std::size_t i = 0; i < kStreams; ++i) {
    AcceptObject obj;
    obj.key = Key((0x2222 * (i + 1)) & 0xFFFF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    ASSERT_TRUE(client.insert(obj).ok);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Stop one node and wait for eviction + failover.
  const ServerId victim{1};
  cluster.nodes[victim.value]->stop();
  ASSERT_TRUE(cluster.eventually([&] {
    std::size_t total = 0;
    for (auto& node : cluster.nodes) {
      if (node->id() == victim) continue;
      if (node->member_state(victim) != MemberState::kDead) return false;
      total +=
          node->run_on_loop([](ClashServer& s) { return s.total_streams(); });
    }
    return total == kStreams;
  })) << "survivors never absorbed the victim's groups";

  // Restart it in place: fresh process, same identity and address. It
  // refutes its death rumour, rejoins the ring, and the current owners
  // hand its mapped groups back with full state.
  cluster.boot(victim.value);
  cluster.nodes[victim.value]->start();
  const bool handed_back = cluster.eventually([&] {
    for (auto& node : cluster.nodes) {
      if (node->member_state(victim) != MemberState::kAlive) return false;
      if (node->ring_server_count() != kNodes) return false;
    }
    const auto streams = cluster.nodes[victim.value]->run_on_loop(
        [](ClashServer& s) { return s.total_streams(); });
    return streams > 0;
  });
  EXPECT_TRUE(handed_back)
      << "rejoined node still serves empty state (rejoin gap)";

  // Nothing was lost end to end.
  std::size_t total = 0;
  for (auto& node : cluster.nodes) {
    total +=
        node->run_on_loop([](ClashServer& s) { return s.total_streams(); });
  }
  EXPECT_EQ(total, kStreams);
}

}  // namespace
}  // namespace clash::net
