// SWIM membership over real TCP: survivors detect a stopped node via
// missed pings, shrink their rings, and promote their replicas of the
// dead node's groups (automatic failover) — plus the run_on_loop/stop
// race regression test.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "clash/bootstrap.hpp"
#include "net/blocking_client.hpp"
#include "net/node.hpp"

namespace clash::net {
namespace {

constexpr unsigned kWidth = 16;
constexpr unsigned kInitialDepth = 3;
constexpr std::size_t kNodes = 4;

struct MemberNetCluster {
  explicit MemberNetCluster(unsigned replication = 2) {
    ClashConfig clash;
    clash.key_width = kWidth;
    clash.initial_depth = kInitialDepth;
    clash.capacity = 10000;  // no load-driven splits in these tests
    clash.replication_factor = replication;

    std::map<ServerId, Endpoint> members;
    for (std::size_t i = 0; i < kNodes; ++i) {
      NodeConfig cfg;
      cfg.id = ServerId{i};
      cfg.listen = Endpoint{"127.0.0.1", 0};
      cfg.members[cfg.id] = cfg.listen;
      cfg.clash = clash;
      cfg.ring_salt = 77;
      cfg.load_check_interval = std::chrono::milliseconds(25);
      cfg.protocol_period = std::chrono::milliseconds(20);
      configs.push_back(cfg);
    }
    // Bind pass to learn ports, then rebuild with the full book.
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto probe = std::make_unique<ClashNode>(configs[i]);
      probe->start();
      members[ServerId{i}] = Endpoint{"127.0.0.1", probe->port()};
      probe->stop();
      configs[i].listen = members[ServerId{i}];
    }
    for (auto& cfg : configs) cfg.members = members;
    for (const auto& cfg : configs) {
      nodes.push_back(std::make_unique<ClashNode>(cfg));
    }

    ring = std::make_unique<dht::ChordRing>(dht::ChordRing::Config{
        32, 8, dht::KeyHasher::Algo::kSha1, 77});
    for (std::size_t i = 0; i < kNodes; ++i) ring->add_server(ServerId{i});
    const auto entries =
        compute_bootstrap_entries(*ring, ring->hasher(), clash);
    for (auto& node : nodes) {
      const auto it = entries.find(node->id());
      if (it != entries.end()) node->install_entries(it->second);
      node->start();
    }
  }

  ~MemberNetCluster() {
    for (auto& node : nodes) node->stop();
  }

  /// Poll until `pred` holds or ~5 s pass.
  template <typename Pred>
  bool eventually(Pred pred) {
    for (int i = 0; i < 250; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::vector<NodeConfig> configs;
  std::vector<std::unique_ptr<ClashNode>> nodes;
  std::unique_ptr<dht::ChordRing> ring;
};

TEST(MembershipNet, HealthyClusterSeesEveryoneAlive) {
  MemberNetCluster cluster(/*replication=*/0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (auto& node : cluster.nodes) {
    EXPECT_EQ(node->ring_server_count(), kNodes);
    for (std::size_t j = 0; j < kNodes; ++j) {
      EXPECT_EQ(node->member_state(ServerId{j}), MemberState::kAlive)
          << to_string(node->id()) << " -> " << j;
    }
  }
}

TEST(MembershipNet, StoppedNodeIsDetectedEvictedAndFailedOver) {
  MemberNetCluster cluster(/*replication=*/2);

  // Register streams across the key space through real sockets.
  BlockingClient::Config ccfg;
  ccfg.members = cluster.configs[0].members;
  ccfg.ring_salt = 77;
  BlockingClient env(ccfg);
  ClashClient client(cluster.configs[0].clash, env, env.hasher());
  constexpr std::size_t kStreams = 12;
  for (std::size_t i = 0; i < kStreams; ++i) {
    AcceptObject obj;
    obj.key = Key((0x1111 * (i + 1)) & 0xFFFF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    ASSERT_TRUE(client.insert(obj).ok);
  }
  // A few load-check rounds so every group is lease-replicated.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Kill the owner of the first key.
  const ServerId victim = cluster.ring->map(
      cluster.ring->hasher().hash_key(shape(Key(0x1111, kWidth),
                                            kInitialDepth)));
  const std::size_t victim_streams =
      cluster.nodes[victim.value]->run_on_loop(
          [](ClashServer& s) { return s.total_streams(); });
  ASSERT_GT(victim_streams, 0u);
  cluster.nodes[victim.value]->stop();

  // Survivors declare it dead and shrink their rings.
  const bool converged = cluster.eventually([&] {
    for (auto& node : cluster.nodes) {
      if (node->id() == victim) continue;
      if (node->member_state(victim) != MemberState::kDead) return false;
      if (node->ring_server_count() != kNodes - 1) return false;
    }
    return true;
  });
  ASSERT_TRUE(converged) << "survivors never declared " << to_string(victim)
                         << " dead";

  // Automatic failover: every stream survived on some live node.
  const bool recovered = cluster.eventually([&] {
    std::size_t total = 0;
    std::uint64_t failovers = 0;
    for (auto& node : cluster.nodes) {
      if (node->id() == victim) continue;
      total += node->run_on_loop(
          [](ClashServer& s) { return s.total_streams(); });
      failovers += node->run_on_loop(
          [](ClashServer& s) { return s.stats().failovers; });
    }
    return total == kStreams && failovers > 0;
  });
  EXPECT_TRUE(recovered) << "streams were not promoted onto survivors";
}

TEST(MembershipNet, DisabledMembershipKeepsStaticView) {
  ClashConfig clash;
  clash.key_width = kWidth;
  NodeConfig cfg;
  cfg.id = ServerId{0};
  cfg.listen = Endpoint{"127.0.0.1", 0};
  cfg.members[cfg.id] = cfg.listen;
  cfg.members[ServerId{1}] = Endpoint{"127.0.0.1", 1};  // never started
  cfg.clash = clash;
  cfg.enable_membership = false;
  cfg.protocol_period = std::chrono::milliseconds(10);
  ClashNode node(cfg);
  node.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // No detector runs: the unreachable peer stays in the static view.
  EXPECT_EQ(node.ring_server_count(), 2u);
  EXPECT_EQ(node.member_state(ServerId{1}), MemberState::kAlive);
  node.stop();
}

TEST(MembershipNet, RunOnLoopNeverHangsAcrossStop) {
  // Regression for the stop() race: a run_on_loop whose posted lambda
  // lands after the loop's last iteration used to wait forever on the
  // promise. Hammer run_on_loop from another thread while stopping.
  for (int round = 0; round < 20; ++round) {
    NodeConfig cfg;
    cfg.id = ServerId{0};
    cfg.listen = Endpoint{"127.0.0.1", 0};
    cfg.members[cfg.id] = cfg.listen;
    cfg.enable_membership = false;
    ClashNode node(cfg);
    node.start();

    std::thread prober([&] {
      for (int i = 0; i < 200; ++i) {
        (void)node.run_on_loop(
            [](ClashServer& s) { return s.total_streams(); });
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    node.stop();
    prober.join();  // hangs here if the race regresses
  }
  SUCCEED();
}

}  // namespace
}  // namespace clash::net
