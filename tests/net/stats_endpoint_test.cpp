// Live stats endpoint: a ClashNode configured with stats_port serves
// its metrics registry as Prometheus text exposition over plain HTTP,
// and the document round-trips through obs::parse_exposition — the
// same parser the registry tests use.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <string>

#include "net/node.hpp"
#include "obs/expose.hpp"

namespace clash::net {
namespace {

NodeConfig single_node_config() {
  NodeConfig cfg;
  cfg.id = ServerId{0};
  cfg.listen = Endpoint{"127.0.0.1", 0};
  cfg.members[cfg.id] = cfg.listen;
  cfg.clash.key_width = 16;
  cfg.clash.initial_depth = 2;
  cfg.enable_membership = false;  // one node, nothing to gossip with
  cfg.stats_port = 0;             // auto-pick
  return cfg;
}

/// Blocking HTTP/1.0 GET against the stats endpoint; returns the full
/// wire response (headers + body) or fails the test.
std::string http_get(std::uint16_t port, const std::string& path = "/metrics") {
  auto fd = connect_tcp(Endpoint{"127.0.0.1", port});
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return {};
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd.value().get(), request.data() + sent,
                             request.size() - sent, 0);
    EXPECT_GT(n, 0);
    if (n <= 0) return {};
    sent += std::size_t(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd.value().get(), buf, sizeof(buf), 0);
    if (n <= 0) break;  // Connection: close terminates the document
    response.append(buf, std::size_t(n));
  }
  return response;
}

/// Splits a response into (status+headers, body) at the blank line.
std::pair<std::string, std::string> split_http(const std::string& resp) {
  const std::size_t gap = resp.find("\r\n\r\n");
  if (gap == std::string::npos) return {resp, ""};
  return {resp.substr(0, gap), resp.substr(gap + 4)};
}

TEST(StatsEndpoint, ServesRegistryAsParsableExposition) {
  ClashNode node(single_node_config());
  node.start();
  ASSERT_NE(node.stats_port(), 0);

  const std::string response = http_get(node.stats_port());
  const auto [headers, body] = split_http(response);

  EXPECT_NE(headers.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(headers.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(headers.find("Connection: close"), std::string::npos);
  const std::size_t cl = headers.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  EXPECT_EQ(std::stoul(headers.substr(cl + 16)), body.size());

  // The acceptance round trip: the served document parses with the
  // registry tests' parser and carries every node-level series.
  const auto parsed = obs::parse_exposition(body);
  ASSERT_FALSE(parsed.empty());
  ASSERT_TRUE(parsed.count("clash_node_ring_servers"));
  EXPECT_EQ(parsed.at("clash_node_ring_servers"), 1.0);
  ASSERT_TRUE(parsed.count("clash_node_peer_connections"));
  EXPECT_EQ(parsed.at("clash_node_peer_connections"), 0.0);
  EXPECT_TRUE(parsed.count("clash_node_active_groups"));
  EXPECT_TRUE(parsed.count("clash_loop_tick_usec_count"));
  // One X-macro'd MessageStats field, spot-checked by name.
  EXPECT_TRUE(parsed.count("clash_msgs_splits"));

  // The HTTP document and the in-process scrape expose the same series
  // (values may differ between scrapes — the loop keeps ticking).
  const auto direct = obs::parse_exposition(node.scrape_text());
  std::set<std::string> http_names;
  std::set<std::string> direct_names;
  for (const auto& [name, value] : parsed) http_names.insert(name);
  for (const auto& [name, value] : direct) direct_names.insert(name);
  EXPECT_EQ(http_names, direct_names);

  node.stop();
}

TEST(StatsEndpoint, ServesRepeatedAndPipelinedClients) {
  ClashNode node(single_node_config());
  node.start();
  ASSERT_NE(node.stats_port(), 0);

  // Sequential scrapes each get a complete document.
  for (int i = 0; i < 3; ++i) {
    const auto [headers, body] = split_http(http_get(node.stats_port()));
    EXPECT_NE(headers.find("200 OK"), std::string::npos);
    EXPECT_FALSE(obs::parse_exposition(body).empty());
  }

  // Two clients connected at once; both served off the single loop.
  auto a = connect_tcp(Endpoint{"127.0.0.1", node.stats_port()});
  auto b = connect_tcp(Endpoint{"127.0.0.1", node.stats_port()});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(b.value().get(), req.data(), req.size(), 0),
            ssize_t(req.size()));
  ASSERT_EQ(::send(a.value().get(), req.data(), req.size(), 0),
            ssize_t(req.size()));
  for (auto* fd : {&a, &b}) {
    std::string resp;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd->value().get(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      resp.append(buf, std::size_t(n));
    }
    const auto [headers, body] = split_http(resp);
    EXPECT_NE(headers.find("200 OK"), std::string::npos);
    EXPECT_FALSE(obs::parse_exposition(body).empty());
  }

  node.stop();
}

TEST(StatsEndpoint, ServesClusterGaugesFromTheCensus) {
  // Membership on (self-only): the driver's tick refreshes the local
  // census record, so the clash_cluster_* gauges fold a one-node view.
  NodeConfig cfg = single_node_config();
  cfg.enable_membership = true;
  cfg.protocol_period = std::chrono::milliseconds(20);
  ClashNode node(cfg);
  node.start();
  ASSERT_NE(node.stats_port(), 0);

  // Wait for the first census refresh to land (loop-thread tick).
  for (int i = 0; i < 200 && node.cluster_view().nodes.empty(); ++i) {
    usleep(10'000);
  }
  ASSERT_EQ(node.cluster_view().nodes.size(), 1u);

  const auto [headers, body] = split_http(http_get(node.stats_port()));
  EXPECT_NE(headers.find("200 OK"), std::string::npos);
  const auto parsed = obs::parse_exposition(body);
  ASSERT_TRUE(parsed.count("clash_cluster_nodes"));
  EXPECT_EQ(parsed.at("clash_cluster_nodes"), 1.0);
  EXPECT_TRUE(parsed.count("clash_cluster_total_load"));
  EXPECT_TRUE(parsed.count("clash_cluster_active_groups"));
  EXPECT_TRUE(parsed.count("clash_cluster_census_age_periods"));
  EXPECT_TRUE(parsed.count("clash_census_absorbed"));

  node.stop();
}

TEST(StatsEndpoint, ServesTraceAndHealthzDocuments) {
  NodeConfig cfg = single_node_config();
  cfg.enable_membership = true;
  cfg.protocol_period = std::chrono::milliseconds(20);
  ClashNode node(cfg);
  node.start();
  ASSERT_NE(node.stats_port(), 0);
  for (int i = 0; i < 200 && node.cluster_view().nodes.empty(); ++i) {
    usleep(10'000);
  }

  // /trace serves a Chrome trace_event document (possibly empty).
  const auto [trace_headers, trace_body] =
      split_http(http_get(node.stats_port(), "/trace"));
  EXPECT_NE(trace_headers.find("200 OK"), std::string::npos);
  EXPECT_NE(trace_headers.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(trace_body.find("\"traceEvents\""), std::string::npos);

  // /healthz reports ring size and census freshness as JSON.
  const auto [hz_headers, hz_body] =
      split_http(http_get(node.stats_port(), "/healthz"));
  EXPECT_NE(hz_headers.find("200 OK"), std::string::npos);
  EXPECT_NE(hz_headers.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(hz_body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(hz_body.find("\"ring_servers\":1"), std::string::npos);
  EXPECT_NE(hz_body.find("\"census_nodes\":1"), std::string::npos);
  EXPECT_NE(hz_body.find("\"census_max_age_periods\""), std::string::npos);

  // The default path still serves the metrics document.
  const auto [m_headers, m_body] = split_http(http_get(node.stats_port()));
  EXPECT_NE(m_headers.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_FALSE(obs::parse_exposition(m_body).empty());

  node.stop();
}

TEST(StatsEndpoint, ServesTheFlightRecorderDocument) {
  ClashNode node(single_node_config());
  node.start();
  ASSERT_NE(node.stats_port(), 0);

  // /flightrec serves the live black box: the flight-event ring and
  // the in-flight op table, in the same shape a postmortem dump would
  // carry for this node.
  const auto [headers, body] =
      split_http(http_get(node.stats_port(), "/flightrec"));
  EXPECT_NE(headers.find("200 OK"), std::string::npos);
  EXPECT_NE(headers.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(body.find("\"node\":0"), std::string::npos);
  EXPECT_NE(body.find("\"now_us\":"), std::string::npos);
  EXPECT_NE(body.find("\"schema\":\"clash-flightrec-v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"schema\":\"clash-inflight-v1\""),
            std::string::npos);
  // Balanced braces: the concatenated document stays one JSON value.
  EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
            std::count(body.begin(), body.end(), '}'));

  node.stop();
}

TEST(StatsEndpoint, DisabledByDefault) {
  NodeConfig cfg = single_node_config();
  cfg.stats_port = -1;
  ClashNode node(cfg);
  node.start();
  EXPECT_EQ(node.stats_port(), 0);
  node.stop();
}

}  // namespace
}  // namespace clash::net
