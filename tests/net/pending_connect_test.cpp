// Non-blocking peer connects: the async connect API at the socket
// level, and the ClashNode pending-connect state — a peer whose TCP
// handshake never completes (SYN-dropped via a full accept backlog)
// must not stall the event loop, which keeps servicing other peers.
#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <sys/select.h>
#include <sys/socket.h>

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/node.hpp"
#include "net/socket.hpp"

namespace clash::net {
namespace {

using namespace std::chrono_literals;

TEST(AsyncConnect, CompletesAgainstLiveListener) {
  auto listener = listen_tcp(Endpoint{"127.0.0.1", 0}).value();
  const auto port = bound_port(listener).value();

  auto res = connect_tcp_async(Endpoint{"127.0.0.1", port});
  ASSERT_TRUE(res.ok());
  if (res.value().in_progress) {
    EventLoop loop;
    int err = -1;
    CLASH_ASSERT_ON_LOOP(loop);  // loop idle until run()
    loop.add_fd(res.value().fd.get(), EPOLLOUT, [&](std::uint32_t) {
      err = connect_result(res.value().fd);
      loop.stop();
    });
    loop.call_after(2s, [&] { loop.stop(); });
    loop.run();
    EXPECT_EQ(err, 0);
  }
}

TEST(AsyncConnect, ReportsRefusedConnection) {
  // Grab a port that is then closed again: connecting must surface a
  // non-zero connect_result via EPOLLOUT/EPOLLERR, not hang.
  std::uint16_t dead_port = 0;
  {
    auto listener = listen_tcp(Endpoint{"127.0.0.1", 0}).value();
    dead_port = bound_port(listener).value();
  }
  auto res = connect_tcp_async(Endpoint{"127.0.0.1", dead_port});
  ASSERT_TRUE(res.ok());
  if (!res.value().in_progress) {
    // Refusal can complete synchronously; either way it must not block.
    return;
  }
  EventLoop loop;
  int err = 0;
  CLASH_ASSERT_ON_LOOP(loop);  // loop idle until run()
  loop.add_fd(res.value().fd.get(), EPOLLOUT, [&](std::uint32_t) {
    err = connect_result(res.value().fd);
    loop.stop();
  });
  loop.call_after(2s, [&] { loop.stop(); });
  loop.run();
  EXPECT_NE(err, 0);
}

/// A listening socket whose backlog is pre-filled, so further SYNs are
/// dropped and a connect stays in SYN_SENT indefinitely — the closest
/// loopback approximation of a blackholed peer.
struct BlackholeEndpoint {
  Fd trap;
  std::vector<Fd> fillers;
  Endpoint endpoint;
  bool ready = false;

  BlackholeEndpoint() {
    auto listener = listen_tcp(Endpoint{"127.0.0.1", 0}, /*backlog=*/0);
    if (!listener.ok()) return;
    trap = std::move(listener).value();
    endpoint = Endpoint{"127.0.0.1", bound_port(trap).value()};
    // Fill the backlog: keep opening connections until one stays in
    // SYN_SENT, i.e. the kernel started dropping SYNs for this socket.
    for (int i = 0; i < 16 && !ready; ++i) {
      auto res = connect_tcp_async(endpoint);
      if (!res.ok()) break;
      if (res.value().in_progress) {
        std::this_thread::sleep_for(100ms);
        ready = !probe_writable(res.value().fd);
      }
      fillers.push_back(std::move(res.value().fd));
    }
  }

  static bool probe_writable(const Fd& fd) {
    fd_set wfds;
    FD_ZERO(&wfds);
    FD_SET(fd.get(), &wfds);
    timeval tv{0, 0};
    return ::select(fd.get() + 1, nullptr, &wfds, nullptr, &tv) > 0;
  }
};

TEST(PendingConnect, BlackholedPeerNeverStallsTheLoop) {
  BlackholeEndpoint blackhole;
  if (!blackhole.ready) {
    GTEST_SKIP() << "could not build a SYN-dropping endpoint";
  }

  // Two real nodes plus a phantom member behind the blackhole. SWIM
  // probes the phantom every period; with the old blocking connect the
  // loop would stall for the OS connect timeout on every probe.
  ClashConfig clash;
  clash.key_width = 16;
  clash.capacity = 10000;

  std::map<ServerId, Endpoint> members;
  std::vector<NodeConfig> configs(2);
  for (std::size_t i = 0; i < 2; ++i) {
    configs[i].id = ServerId{i};
    configs[i].listen = Endpoint{"127.0.0.1", 0};
    configs[i].members[configs[i].id] = configs[i].listen;
    configs[i].clash = clash;
    configs[i].protocol_period = std::chrono::milliseconds(20);
    configs[i].connect_timeout = std::chrono::milliseconds(150);
    configs[i].load_check_interval = std::chrono::milliseconds(50);
  }
  for (auto& cfg : configs) {
    ClashNode probe(cfg);
    probe.start();
    members[cfg.id] = Endpoint{"127.0.0.1", probe.port()};
    probe.stop();
    cfg.listen = members[cfg.id];
  }
  const ServerId phantom{9};
  members[phantom] = blackhole.endpoint;
  for (auto& cfg : configs) cfg.members = members;

  ClashNode a(configs[0]);
  ClashNode b(configs[1]);
  a.start();
  b.start();

  // While connects to the phantom are pending/aborting, the loop must
  // stay responsive: every introspection round-trip finishes fast.
  const auto deadline = std::chrono::steady_clock::now() + 1500ms;
  std::chrono::microseconds worst{0};
  while (std::chrono::steady_clock::now() < deadline) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)a.ring_server_count();
    (void)b.ring_server_count();
    const auto rtt = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0);
    worst = std::max(worst, rtt);
    std::this_thread::sleep_for(10ms);
  }
  // Generous bound: far below one SYN retransmit (1 s), far above any
  // healthy loop round-trip.
  EXPECT_LT(worst, 500ms) << "event loop stalled on a blackholed connect";

  // And the two live nodes kept talking: both declare the phantom dead
  // and keep each other alive.
  for (int i = 0; i < 250; ++i) {
    if (a.member_state(phantom) == MemberState::kDead &&
        b.member_state(phantom) == MemberState::kDead) {
      break;
    }
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_EQ(a.member_state(phantom), MemberState::kDead);
  EXPECT_EQ(b.member_state(phantom), MemberState::kDead);
  EXPECT_EQ(a.member_state(ServerId{1}), MemberState::kAlive);
  EXPECT_EQ(b.member_state(ServerId{0}), MemberState::kAlive);
  EXPECT_EQ(a.ring_server_count(), 2u);
  EXPECT_EQ(b.ring_server_count(), 2u);

  a.stop();
  b.stop();
}

}  // namespace
}  // namespace clash::net
