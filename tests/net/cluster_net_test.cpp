// End-to-end integration over real TCP on localhost: a cluster of
// ClashNodes bootstraps the paper's tree, an unmodified ClashClient
// resolves keys through BlockingClient, overload triggers splits whose
// ACCEPT_KEYGROUP traffic crosses real sockets, and the client chases
// the moved group.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "clash/bootstrap.hpp"
#include "net/blocking_client.hpp"
#include "net/node.hpp"

namespace clash::net {
namespace {

constexpr unsigned kWidth = 16;
constexpr unsigned kInitialDepth = 3;

struct NetCluster {
  static constexpr std::size_t kNodes = 5;

  NetCluster() {
    ClashConfig clash;
    clash.key_width = kWidth;
    clash.initial_depth = kInitialDepth;
    clash.capacity = 100;

    // Start every node on an auto-assigned port, then share the final
    // address book (members are needed before traffic, not before bind).
    std::map<ServerId, Endpoint> members;
    for (std::size_t i = 0; i < kNodes; ++i) {
      NodeConfig cfg;
      cfg.id = ServerId{i};
      cfg.listen = Endpoint{"127.0.0.1", 0};
      cfg.members[cfg.id] = cfg.listen;  // placeholder; fixed below
      cfg.clash = clash;
      cfg.ring_salt = 99;
      cfg.load_check_interval = std::chrono::milliseconds(25);
      configs.push_back(cfg);
    }
    // Bind pass: create and start with placeholder member lists, ports
    // resolve on start. Nodes are then rebuilt with the full book.
    for (std::size_t i = 0; i < kNodes; ++i) {
      auto probe = std::make_unique<ClashNode>(configs[i]);
      probe->start();
      members[ServerId{i}] =
          Endpoint{"127.0.0.1", probe->port()};
      probe->stop();
      configs[i].listen = members[ServerId{i}];
    }
    for (auto& cfg : configs) cfg.members = members;
    for (const auto& cfg : configs) {
      nodes.push_back(std::make_unique<ClashNode>(cfg));
    }

    // Paper bootstrap: computed once, installed everywhere.
    const auto& ring_view = *static_ring();
    const auto entries =
        compute_bootstrap_entries(ring_view, ring_view.hasher(), clash);
    for (auto& node : nodes) {
      const auto it = entries.find(node->id());
      if (it != entries.end()) node->install_entries(it->second);
      node->start();
    }

    BlockingClient::Config ccfg;
    ccfg.members = members;
    ccfg.ring_salt = 99;
    client_env = std::make_unique<BlockingClient>(ccfg);
    client = std::make_unique<ClashClient>(clash, *client_env,
                                           client_env->hasher());
  }

  ~NetCluster() {
    for (auto& node : nodes) node->stop();
  }

  /// Ring view identical to every node's (same ids, salt, params).
  const dht::ChordRing* static_ring() {
    if (!ring) {
      ring = std::make_unique<dht::ChordRing>(dht::ChordRing::Config{
          32, 8, dht::KeyHasher::Algo::kSha1, 99});
      for (std::size_t i = 0; i < kNodes; ++i) ring->add_server(ServerId{i});
    }
    return ring.get();
  }

  std::vector<NodeConfig> configs;
  std::vector<std::unique_ptr<ClashNode>> nodes;
  std::unique_ptr<dht::ChordRing> ring;
  std::unique_ptr<BlockingClient> client_env;
  std::unique_ptr<ClashClient> client;
};

TEST(NetCluster, ResolveAndInsertOverTcp) {
  NetCluster cluster;

  AcceptObject obj;
  obj.key = Key(0xBEEF, kWidth);
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{1};
  obj.stream_rate = 5;
  const auto out = cluster.client->insert(obj);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.depth, kInitialDepth);
  EXPECT_EQ(cluster.client_env->transport_errors(), 0u);

  // The stream landed on the node the ring designates.
  const auto owner = cluster.static_ring()->map(
      cluster.static_ring()->hasher().hash_key(shape(obj.key,
                                                     kInitialDepth)));
  const auto streams = cluster.nodes[owner.value]->run_on_loop(
      [](ClashServer& s) { return s.total_streams(); });
  EXPECT_EQ(streams, 1u);
}

TEST(NetCluster, OverloadSplitsAcrossRealSockets) {
  NetCluster cluster;

  // Saturate one depth-3 group well past capacity (100): 40 streams x 5,
  // all under the "101*" prefix (0xA000..0xA9C0).
  for (int i = 0; i < 40; ++i) {
    AcceptObject obj;
    obj.key = Key(0xA000 + std::uint64_t(i) * 0x40, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{std::uint64_t(100 + i)};
    obj.stream_rate = 5;
    ASSERT_TRUE(cluster.client->insert(obj).ok);
  }

  // Load checks run every 25 ms on every node; give the cascade time.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  std::uint64_t total_splits = 0;
  double max_load = 0;
  for (auto& node : cluster.nodes) {
    total_splits += node->run_on_loop(
        [](ClashServer& s) { return s.stats().splits; });
    max_load = std::max(max_load, node->run_on_loop([](ClashServer& s) {
      return s.server_load();
    }));
  }
  EXPECT_GT(total_splits, 0u);
  EXPECT_LE(max_load, 100.0);

  // Tables stay consistent on every node.
  for (auto& node : cluster.nodes) {
    const auto err = node->run_on_loop([](ClashServer& s) {
      const auto violation = s.table().check_invariants();
      return violation ? *violation : std::string();
    });
    EXPECT_TRUE(err.empty()) << err;
  }

  // A fresh client still resolves every hot key to a real owner.
  BlockingClient::Config ccfg;
  ccfg.members = cluster.configs[0].members;
  ccfg.ring_salt = 99;
  BlockingClient fresh_env(ccfg);
  ClashClient fresh(cluster.configs[0].clash, fresh_env, fresh_env.hasher());
  for (int i = 0; i < 40; i += 7) {
    const Key k(0xA000 + std::uint64_t(i) * 0x40, kWidth);
    const auto out = fresh.resolve(k);
    EXPECT_TRUE(out.ok) << i;
  }
}

TEST(NetCluster, QueryStateMigratesOnSplit) {
  NetCluster cluster;

  // A query plus enough data load to force its group to split.
  AcceptObject query;
  query.key = Key(0xC0DE, kWidth);
  query.kind = ObjectKind::kQuery;
  query.query_id = QueryId{31337};
  ASSERT_TRUE(cluster.client->insert(query).ok);

  for (int i = 0; i < 30; ++i) {
    AcceptObject obj;
    obj.key = Key((0xC000 | (std::uint64_t(i) * 0x80)) & 0xFFFF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{std::uint64_t(500 + i)};
    obj.stream_rate = 6;
    ASSERT_TRUE(cluster.client->insert(obj).ok);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // The query survives somewhere, exactly once.
  std::size_t total_queries = 0;
  for (auto& node : cluster.nodes) {
    total_queries += node->run_on_loop(
        [](ClashServer& s) { return s.total_queries(); });
  }
  EXPECT_EQ(total_queries, 1u);

  // And the client can still reach its group.
  const auto out = cluster.client->resolve(query.key);
  EXPECT_TRUE(out.ok);
}

}  // namespace
}  // namespace clash::net
