// Runtime enforcement of the loop-affinity capability: every
// loop-affine entry point carries an assert_held() witness, so
// touching loop-owned state from the wrong thread aborts with a
// diagnostic in CLASH_LOOP_CHECKS builds instead of racing silently.
// The off-loop scrape test is the regression test for a real race this
// layer flushed out: ClashNode::hub() is public, and a direct
// registry.render_text() from a test/operator thread used to run the
// node's gauge callbacks — which walk peers_, server_, ring_ —
// concurrently with the loop mutating them. The sanctioned routes
// (scrape_text(), the stats endpoint) hop onto the loop; the direct
// route now traps.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/node.hpp"

namespace clash::net {
namespace {

NodeConfig single_node_config() {
  NodeConfig cfg;
  cfg.id = ServerId{0};
  cfg.listen = Endpoint{"127.0.0.1", 0};
  cfg.members[cfg.id] = cfg.listen;
  cfg.clash.key_width = 16;
  cfg.clash.capacity = 1000;
  cfg.enable_membership = false;
  return cfg;
}

TEST(LoopAffinity, RoutedScrapeWorksWhileTheLoopRuns) {
  ClashNode node(single_node_config());
  node.start();
  // scrape_text() hops onto the loop, so every gauge-callback witness
  // passes; this is the sanctioned off-thread read path.
  const auto text = node.scrape_text();
  EXPECT_NE(text.find("clash_node_peer_connections"), std::string::npos);
  node.stop();
}

TEST(LoopAffinity, IdleLoopTreatsAnyThreadAsHome) {
  // Setup and teardown run off the (not yet / no longer running) loop
  // by design; the probe accepts any thread while the loop is idle.
  EventLoop loop;
  CLASH_ASSERT_ON_LOOP(loop);
  loop.call_after(std::chrono::milliseconds(1), [&] { loop.stop(); });
  loop.run();
  CLASH_ASSERT_ON_LOOP(loop);  // after run(): idle again
}

#if CLASH_LOOP_CHECKS

void touch_running_loop_off_thread() {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  while (!loop.running()) std::this_thread::yield();
  loop.assert_on_loop();  // off-loop while running: must abort
  loop.stop();
  runner.join();
}

TEST(LoopAffinityDeathTest, OffThreadLoopAccessAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(touch_running_loop_off_thread(),
               "affinity violation: EventLoop");
}

void touch_connection_off_thread() {
  EventLoop loop;
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  auto conn = Connection::adopt(
      loop, Fd(fds[0]), [](std::span<const std::uint8_t>) {}, [] {});
  std::thread runner([&] { loop.run(); });
  while (!loop.running()) std::this_thread::yield();
  (void)conn->stats();  // Connection state is loop-affine: must abort
  loop.stop();
  runner.join();
  ::close(fds[1]);
}

TEST(LoopAffinityDeathTest, OffThreadConnectionAccessAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(touch_connection_off_thread(),
               "affinity violation: EventLoop");
}

void scrape_node_registry_off_loop() {
  ClashNode node(single_node_config());
  node.start();
  // The unsanctioned direct scrape: runs this node's gauge callbacks
  // (which read peers_/server_/ring_) on this thread while the loop
  // owns them — the exact race the affinity layer exists to catch.
  // Retried briefly: until the spawned loop thread actually enters
  // run() the probe still counts the loop as idle and lets the scrape
  // through; the first scrape against the live loop aborts.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    (void)node.hub().registry.render_text();
  }
  node.stop();
}

TEST(LoopAffinityDeathTest, OffLoopRegistryScrapeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Whichever guarded gauge the scrape reaches first traps (the
  // registry walks callbacks in name order, so the census gauges go
  // first); any token's diagnostic proves the race is caught.
  EXPECT_DEATH(scrape_node_registry_off_loop(), "affinity violation");
}

#else

TEST(LoopAffinityDeathTest, SkippedWithoutLoopChecks) {
  GTEST_SKIP() << "CLASH_LOOP_CHECKS is off in this build";
}

#endif  // CLASH_LOOP_CHECKS

}  // namespace
}  // namespace clash::net
