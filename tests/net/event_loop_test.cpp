#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <thread>

namespace clash::net {
namespace {

TEST(EventLoop, TimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  CLASH_ASSERT_ON_LOOP(loop);  // loop idle until run(): we hold affinity
  loop.call_after(std::chrono::milliseconds(30), [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.call_after(std::chrono::milliseconds(10), [&] { order.push_back(1); });
  loop.call_after(std::chrono::milliseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerDoesNotFire) {
  EventLoop loop;
  bool fired = false;
  CLASH_ASSERT_ON_LOOP(loop);
  const auto id = loop.call_after(std::chrono::milliseconds(5),
                                  [&] { fired = true; });
  loop.cancel_timer(id);
  loop.call_after(std::chrono::milliseconds(20), [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, PostFromAnotherThread) {
  EventLoop loop;
  bool ran = false;
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(loop.post([&] {
      ran = true;
      loop.stop();
    }));
  });
  loop.run();
  poster.join();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, PostAfterFinalDrainReturnsFalse) {
  EventLoop loop;
  CLASH_ASSERT_ON_LOOP(loop);
  loop.call_after(std::chrono::milliseconds(1), [&] { loop.stop(); });
  loop.run();
  // The loop has finished: a post can never run, and says so instead of
  // silently dropping the task (which would hang a waiting caller).
  EXPECT_FALSE(loop.post([] {}));
}

TEST(EventLoop, AcceptedPostsAlwaysRunDespiteStopRace) {
  // Every post() that returned true must execute, even when it races
  // with stop(): run() drains the queue once more after exiting.
  for (int round = 0; round < 50; ++round) {
    EventLoop loop;
    std::thread runner([&] { loop.run(); });
    while (!loop.running()) {
      std::this_thread::yield();
    }

    std::atomic<int> executed{0};
    int accepted = 0;
    std::thread stopper([&] { loop.stop(); });
    for (int i = 0; i < 100; ++i) {
      if (loop.post([&] { executed++; })) ++accepted;
    }
    stopper.join();
    runner.join();
    EXPECT_EQ(executed.load(), accepted) << "round " << round;
    // Anything posted after the final drain is refused, not dropped.
    EXPECT_FALSE(loop.post([] {}));
  }
}

TEST(EventLoop, FdReadiness) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string received;
  CLASH_ASSERT_ON_LOOP(loop);  // held before run() and again after it
  loop.add_fd(fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[16];
    const auto n = ::read(fds[0], buf, sizeof(buf));
    if (n > 0) received.assign(buf, std::size_t(n));
    loop.stop();
  });
  loop.call_after(std::chrono::milliseconds(5), [&] {
    [[maybe_unused]] const auto n = ::write(fds[1], "ping", 4);
  });
  loop.run();
  loop.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(received, "ping");
}

TEST(EventLoop, TimerCanRescheduleItself) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    CLASH_ASSERT_ON_LOOP(loop);  // timers fire on the loop thread
    if (++ticks >= 3) {
      loop.stop();
    } else {
      loop.call_after(std::chrono::milliseconds(2), tick);
    }
  };
  CLASH_ASSERT_ON_LOOP(loop);
  loop.call_after(std::chrono::milliseconds(2), tick);
  loop.run();
  EXPECT_EQ(ticks, 3);
}

}  // namespace
}  // namespace clash::net
