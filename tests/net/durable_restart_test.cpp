// Durable storage over real TCP: a ClashNode restarted against its
// data directory recovers its groups from local disk — WAL + snapshot
// files through storage::FileBackend — instead of pulling them over
// the network, and reconciles with the surviving replica set through
// anti-entropy only.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "clash/bootstrap.hpp"
#include "net/blocking_client.hpp"
#include "net/node.hpp"

namespace clash::net {
namespace {

constexpr unsigned kWidth = 16;

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/clash_durable_%s_%d_%d", tag,
                int(::getpid()), counter++);
  return buf;
}

ClashConfig durable_clash(unsigned factor) {
  ClashConfig clash;
  clash.key_width = kWidth;
  clash.initial_depth = 2;
  clash.capacity = 10000;
  clash.replication_factor = factor;
  clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  clash.durability_mode = ClashConfig::DurabilityMode::kWalSnapshot;
  clash.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  return clash;
}

template <typename Pred>
bool eventually(Pred pred, int rounds = 300) {
  for (int i = 0; i < rounds; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(DurableRestartNet, SingleNodeRecoversEverythingFromItsDataDir) {
  const std::string dir = fresh_dir("single");
  NodeConfig cfg;
  cfg.id = ServerId{0};
  cfg.listen = Endpoint{"127.0.0.1", 0};
  cfg.members[cfg.id] = cfg.listen;
  cfg.clash = durable_clash(0);
  cfg.storage_dir = dir;
  cfg.load_check_interval = std::chrono::milliseconds(25);
  cfg.enable_membership = false;

  constexpr std::size_t kStreams = 24;
  constexpr std::size_t kQueries = 6;
  std::uint16_t port = 0;
  {
    ClashNode node(cfg);
    dht::ChordRing ring(dht::ChordRing::Config{
        32, cfg.virtual_servers, cfg.hash_algo, cfg.ring_salt});
    ring.add_server(cfg.id);
    const auto entries =
        compute_bootstrap_entries(ring, ring.hasher(), cfg.clash);
    const auto it = entries.find(cfg.id);
    ASSERT_NE(it, entries.end());
    node.install_entries(it->second);
    node.start();
    port = node.port();

    BlockingClient::Config ccfg;
    ccfg.members = {{cfg.id, Endpoint{"127.0.0.1", port}}};
    ccfg.ring_salt = cfg.ring_salt;
    BlockingClient env(ccfg);
    ClashClient client(cfg.clash, env, env.hasher());
    for (std::size_t i = 0; i < kStreams; ++i) {
      AcceptObject obj;
      obj.key = Key((0x1111 * (i + 3)) & 0xFFFF, kWidth);
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{i};
      obj.stream_rate = 1;
      ASSERT_TRUE(client.insert(obj).ok);
    }
    for (std::size_t i = 0; i < kQueries; ++i) {
      AcceptObject obj;
      obj.key = Key((0x0731 * (i + 1)) & 0xFFFF, kWidth);
      obj.kind = ObjectKind::kQuery;
      obj.query_id = QueryId{i};
      ASSERT_TRUE(client.insert(obj).ok);
    }
    node.stop();  // per-append fsync: everything already on disk
  }

  // A fresh process over the same data directory: no bootstrap
  // entries installed — every group must come off the disk.
  ClashNode node(cfg);
  node.start();
  EXPECT_TRUE(eventually([&] {
    return node.run_on_loop([](ClashServer& s) {
             return s.total_streams() + s.total_queries();
           }) == kStreams + kQueries;
  })) << "restart did not recover the stored groups";
  const auto streams =
      node.run_on_loop([](ClashServer& s) { return s.total_streams(); });
  const auto queries =
      node.run_on_loop([](ClashServer& s) { return s.total_queries(); });
  EXPECT_EQ(streams, kStreams);
  EXPECT_EQ(queries, kQueries);

  // And it serves reads again through a real socket.
  BlockingClient::Config ccfg;
  ccfg.members = {{cfg.id, Endpoint{"127.0.0.1", node.port()}}};
  ccfg.ring_salt = cfg.ring_salt;
  BlockingClient env(ccfg);
  ClashClient client(cfg.clash, env, env.hasher());
  AcceptObject probe;
  probe.key = Key((0x1111 * 3) & 0xFFFF, kWidth);
  probe.kind = ObjectKind::kData;
  probe.source = ClientId{99};
  probe.stream_rate = 1;
  probe.probe_only = true;
  EXPECT_TRUE(client.insert(probe).ok);
  node.stop();
}

TEST(DurableRestartNet, QuickRestartKeepsOwnershipWithoutSnapshotPull) {
  // Two nodes, replica factor 1: node 1's groups replicate to node 0.
  // Node 1 restarts faster than SWIM's suspicion timeout, so it is
  // never evicted; it must re-own its groups straight from disk — the
  // recovery probes find the replica set at the same heads and stream
  // nothing.
  std::vector<NodeConfig> configs(2);
  std::map<ServerId, Endpoint> members;
  const std::string dirs[2] = {fresh_dir("quick0"), fresh_dir("quick1")};
  for (std::size_t i = 0; i < 2; ++i) {
    auto& cfg = configs[i];
    cfg.id = ServerId{i};
    cfg.listen = Endpoint{"127.0.0.1", 0};
    cfg.members[cfg.id] = cfg.listen;
    cfg.clash = durable_clash(1);
    cfg.storage_dir = dirs[i];
    cfg.ring_salt = 99;
    cfg.load_check_interval = std::chrono::milliseconds(25);
    cfg.protocol_period = std::chrono::milliseconds(50);
    cfg.recovery_grace = std::chrono::milliseconds(80);
    // A quick restart must beat the death verdict.
    cfg.membership.suspicion_periods = 40;
  }
  for (std::size_t i = 0; i < 2; ++i) {
    ClashNode probe(configs[i]);
    probe.start();
    members[ServerId{i}] = Endpoint{"127.0.0.1", probe.port()};
    probe.stop();
    configs[i].listen = members[ServerId{i}];
  }
  for (auto& cfg : configs) cfg.members = members;

  dht::ChordRing ring(dht::ChordRing::Config{32, 8,
                                             dht::KeyHasher::Algo::kSha1,
                                             99});
  ring.add_server(ServerId{0});
  ring.add_server(ServerId{1});
  const auto entries =
      compute_bootstrap_entries(ring, ring.hasher(), configs[0].clash);

  std::unique_ptr<ClashNode> nodes[2];
  for (std::size_t i = 0; i < 2; ++i) {
    nodes[i] = std::make_unique<ClashNode>(configs[i]);
    const auto it = entries.find(ServerId{i});
    if (it != entries.end()) nodes[i]->install_entries(it->second);
    nodes[i]->start();
  }

  BlockingClient::Config ccfg;
  ccfg.members = members;
  ccfg.ring_salt = 99;
  BlockingClient env(ccfg);
  ClashClient client(configs[0].clash, env, env.hasher());
  constexpr std::size_t kStreams = 20;
  for (std::size_t i = 0; i < kStreams; ++i) {
    AcceptObject obj;
    obj.key = Key((0x3131 * (i + 1)) & 0xFFFF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    ASSERT_TRUE(client.insert(obj).ok);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto before = nodes[1]->run_on_loop(
      [](ClashServer& s) { return s.total_streams(); });
  ASSERT_GT(before, 0u) << "node 1 owns nothing; pick different keys";

  // Quick restart: stop, new process over the same data dir.
  nodes[1]->stop();
  nodes[1] = std::make_unique<ClashNode>(configs[1]);
  nodes[1]->start();

  EXPECT_TRUE(eventually([&] {
    return nodes[1]->run_on_loop(
               [](ClashServer& s) { return s.total_streams(); }) == before;
  })) << "restarted node did not re-own its groups from disk";

  // Local disk, not a peer snapshot, carried the state.
  const auto pulled = nodes[1]->run_on_loop([](ClashServer& s) {
    return s.recovery_stats().snapshots_pulled;
  });
  EXPECT_EQ(pulled, 0u);
  const auto lost = nodes[1]->run_on_loop(
      [](ClashServer& s) { return s.stats().groups_lost; });
  EXPECT_EQ(lost, 0u);

  // Nothing lost cluster-wide.
  std::size_t total = 0;
  for (auto& node : nodes) {
    total += node->run_on_loop(
        [](ClashServer& s) { return s.total_streams(); });
  }
  EXPECT_EQ(total, kStreams);
  for (auto& node : nodes) node->stop();
}

}  // namespace
}  // namespace clash::net
