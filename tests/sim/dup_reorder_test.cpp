// Duplication + reordering link faults (the remaining ROADMAP fault
// modes): LinkMatrix verdicts, and regression coverage that the
// replication paths stay idempotent under them — duplicated ReplAppend
// frames must not double-apply, duplicated/reordered SnapshotChunks
// must not corrupt an assembly (worst case they nack-restart it), and
// a whole cluster under dup+reorder links converges with nothing lost.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/link_matrix.hpp"

namespace clash::sim {
namespace {

TEST(LinkMatrixDupReorder, VerdictsAndStats) {
  LinkMatrix links(7);
  const ServerId a{0};
  const ServerId b{1};
  links.set_duplication(a, b, 1.0);
  auto v = links.judge(a, b);
  EXPECT_TRUE(v.deliver);
  EXPECT_TRUE(v.duplicate);
  EXPECT_EQ(links.stats().duplicated, 1u);

  links.heal(a, b);
  links.set_reordering(a, b, 1.0, SimDuration{500});
  v = links.judge(a, b);
  EXPECT_TRUE(v.deliver);
  EXPECT_FALSE(v.duplicate);
  EXPECT_GT(v.delay.usec, 0);
  EXPECT_LE(v.delay.usec, 500);
  EXPECT_EQ(links.stats().reordered, 1u);

  // benign() must account for the new modes, or quiet() would skip
  // the judge entirely.
  LinkMatrix::Fault f;
  f.dup_prob = 0.5;
  EXPECT_FALSE(f.benign());
  f = LinkMatrix::Fault{};
  f.reorder_prob = 0.5;
  EXPECT_FALSE(f.benign());
  EXPECT_TRUE(LinkMatrix::Fault{}.benign());
}

struct DelayedCluster {
  explicit DelayedCluster(SimCluster::Config cfg)
      : cluster(std::move(cfg)) {
    cluster.set_delay_sink(
        [this](SimDuration delay, std::function<void()> deliver) {
          events.after(delay, std::move(deliver));
        });
  }

  void drain() {
    // Delayed deliveries can schedule further delayed deliveries
    // (nack -> restart -> more chunks); run to quiescence.
    while (!events.empty()) {
      events.run_until(SimTime{events.now().usec + 10'000'000});
    }
  }

  SimCluster cluster;
  EventQueue events;
};

SimCluster::Config replicated_config() {
  SimCluster::Config cfg;
  cfg.num_servers = 12;
  cfg.seed = 42;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 3;
  cfg.clash.capacity = 1e9;
  cfg.clash.replication_factor = 2;
  cfg.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.clash.snapshot_chunk_objects = 4;  // multi-chunk snapshots
  return cfg;
}

TEST(DupReorderReplication, DuplicatedAppendsApplyOnce) {
  DelayedCluster sim(replicated_config());
  SimCluster& cluster = sim.cluster;
  cluster.bootstrap();

  // Every link duplicates aggressively from the start.
  LinkMatrix::Fault f;
  f.dup_prob = 0.7;
  cluster.links().set_default_fault(f);

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(3);
  double expected_rate = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2.0;
    expected_rate += 2.0;
    ASSERT_TRUE(client.insert(obj).ok);
  }
  sim.drain();
  ASSERT_GT(cluster.links().stats().duplicated, 0u);

  // Replica-side rates must equal the originals exactly: a re-applied
  // duplicate would double-count stream_rate.
  double replica_rate = 0;
  std::size_t replica_streams = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    const auto& server = cluster.server(ServerId{i});
    for (const auto& [group, owner] : cluster.owner_index()) {
      if (owner.value == i) continue;
      const GroupState* st = server.replica_state(group);
      if (st == nullptr) continue;
      replica_rate += st->stream_rate;
      replica_streams += st->streams.size();
    }
  }
  ASSERT_GT(replica_streams, 0u);
  EXPECT_DOUBLE_EQ(replica_rate / 2.0, expected_rate);
  EXPECT_EQ(replica_streams, 2u * 300u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(DupReorderReplication, SnapshotAssemblySurvivesDupAndReorder) {
  DelayedCluster sim(replicated_config());
  SimCluster& cluster = sim.cluster;
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(5);
  for (std::size_t i = 0; i < 400; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = i % 4 == 0 ? ObjectKind::kQuery : ObjectKind::kData;
    obj.source = ClientId{i};
    obj.query_id = QueryId{i};
    obj.stream_rate = 1.0;
    ASSERT_TRUE(client.insert(obj).ok);
  }
  sim.drain();

  // Now make every link duplicate AND reorder, and force full
  // snapshot refreshes through it (log mode replicates activations
  // and compactions as chunked snapshots).
  LinkMatrix::Fault f;
  f.dup_prob = 0.4;
  f.reorder_prob = 0.4;
  f.reorder_window_usec = 2000;
  cluster.links().set_default_fault(f);

  for (int round = 1; round <= 6; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
    sim.drain();
  }
  ASSERT_GT(cluster.links().stats().reordered, 0u);

  // Heal and give anti-entropy a clean round to settle stragglers.
  cluster.links().clear();
  cluster.set_now(SimTime::from_minutes(40));
  cluster.run_all_load_checks();
  sim.drain();

  // Every replica of every group sits exactly at its owner's head,
  // with the owner's exact object counts — reordered chunks at worst
  // nacked and restarted transfers, never installed a torn image.
  std::size_t verified = 0;
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto owner_head = cluster.server(owner).log_head(group);
    ASSERT_TRUE(owner_head.has_value());
    const GroupState* truth = cluster.server(owner).group_state(group);
    ASSERT_NE(truth, nullptr);
    for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
      if (i == owner.value) continue;
      const auto head = cluster.server(ServerId{i}).replica_head(group);
      if (!head.has_value()) continue;
      EXPECT_EQ(*head, *owner_head) << "group " << group.label();
      const GroupState* st =
          cluster.server(ServerId{i}).replica_state(group);
      ASSERT_NE(st, nullptr);
      EXPECT_EQ(st->streams.size(), truth->streams.size());
      EXPECT_EQ(st->queries.size(), truth->queries.size());
      EXPECT_DOUBLE_EQ(st->stream_rate, truth->stream_rate);
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

}  // namespace
}  // namespace clash::sim
