// Clock skew: every server runs its SWIM protocol periods and load
// checks off its own local clock, skewed up to ±30% from true time.
// Suspicion timeouts count local ticks, so a fast node suspects
// eagerly and a slow node lazily — membership must stay correct
// anyway: no false evictions when everyone is healthy, real crashes
// still converge (within a bound scaled for the slowest clock), and
// refutation still wins for revived nodes.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
/// The un-skewed ceiling is 30 periods; the slowest clock here runs at
/// 0.7x, so scale the bound by ~1/0.7 and round up generously.
constexpr int kSkewedConvergenceBound = 60;

ChurnSim::Config config(unsigned replication) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 5150;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 2000.0;
  cfg.cluster.clash.replication_factor = replication;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 31;
  return cfg;
}

/// Deterministic ±30% spread across the cluster: rates cycle through
/// {0.7, 0.85, 1.0, 1.15, 1.3}.
void skew_everyone(ChurnSim& sim) {
  constexpr double kRates[] = {0.7, 0.85, 1.0, 1.15, 1.3};
  for (std::size_t i = 0; i < kServers; ++i) {
    sim.set_clock_rate(ServerId{i}, kRates[i % 5]);
  }
}

TEST(ClockSkew, HealthyClusterHasNoFalseEvictions) {
  ChurnSim sim(config(/*replication=*/0));
  sim.start();
  skew_everyone(sim);
  sim.run_for(SimTime::from_minutes(3));  // 126..240 local periods each

  for (std::size_t i = 0; i < kServers; ++i) {
    ASSERT_TRUE(sim.cluster().is_alive(ServerId{i})) << i;
    for (std::size_t j = 0; j < kServers; ++j) {
      EXPECT_EQ(sim.view_of(ServerId{i}).state_of(ServerId{j}),
                MemberState::kAlive)
          << i << " -> " << j;
    }
  }
  EXPECT_TRUE(sim.ring_matches_membership());
  EXPECT_EQ(sim.cluster().total_stats().slow_evictions, 0u);
}

TEST(ClockSkew, CrashStillConvergesUnderSkew) {
  ChurnSim sim(config(/*replication=*/2));
  sim.start();
  skew_everyone(sim);

  // Load a few streams so eviction exercises failover too.
  {
    ClashClient client(sim.cluster().clash_config(),
                       sim.cluster().client_env(ServerId{0}),
                       sim.cluster().hasher());
    Rng rng(7);
    for (std::size_t i = 0; i < 32; ++i) {
      AcceptObject obj;
      obj.key = Key(rng.next() & 0x3FF, kWidth);
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{i};
      obj.stream_rate = 2;
      ASSERT_TRUE(client.insert(obj).ok);
    }
  }
  sim.run_for(SimTime::from_minutes(11));

  const ServerId victim{4};  // a 1.3x fast clock, for what it's worth
  sim.kill(victim);
  int converged = -1;
  for (int period = 1; period <= kSkewedConvergenceBound; ++period) {
    sim.run_for(sim.protocol_period());
    if (sim.all_survivors_see_dead(victim) && sim.ring_matches_membership()) {
      converged = period;
      break;
    }
  }
  ASSERT_GE(converged, 0) << "skewed survivors never converged within "
                          << kSkewedConvergenceBound << " true periods";
  EXPECT_FALSE(sim.cluster().ring().contains(victim));
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);

  // Refutation beats skew too: the revived node (its fast clock kept)
  // re-announces itself and everyone re-admits it.
  sim.revive(victim);
  bool rejoined = false;
  for (int period = 0; period < kSkewedConvergenceBound && !rejoined;
       ++period) {
    sim.run_for(sim.protocol_period());
    rejoined = sim.all_survivors_see_alive(victim) &&
               sim.cluster().ring().contains(victim);
  }
  EXPECT_TRUE(rejoined) << "revived server never re-admitted under skew";
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

}  // namespace
}  // namespace clash::sim
