// Payload corruption: with a cluster-wide corrupt fault flipping bytes
// inside delivered messages, every mangled payload must die at one of
// the two fences — the codec (structurally invalid -> corrupt_drops)
// or the receiver's content CRC (decoded-valid but mutated ->
// corrupt_rejected) — and never be installed. Queries registered
// before and during the fault must all survive, and the cluster must
// settle back to a clean, converged state once the fault clears.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;

ChurnSim::Config config() {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 777;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 2000.0;
  cfg.cluster.clash.replication_factor = 2;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 11;
  return cfg;
}

std::vector<QueryId> register_queries(ChurnSim& sim, std::size_t n,
                                      std::size_t first_id) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(13 + first_id);
  std::vector<QueryId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{first_id + i};
    obj.source = ClientId{first_id + i};
    EXPECT_TRUE(client.insert(obj).ok);
    ids.push_back(obj.query_id);
  }
  return ids;
}

std::size_t live_queries(ChurnSim& sim) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) continue;
    total += sim.cluster().server(ServerId{i}).total_queries();
  }
  return total;
}

TEST(Corruption, FencesRejectEveryMangledPayloadUnderFault) {
  ChurnSim sim(config());
  sim.start();
  const auto before = register_queries(sim, 24, 0);
  sim.run_for(SimTime::from_minutes(11));  // groups lease-replicated
  ASSERT_EQ(live_queries(sim), before.size());

  // 5% of every message on every link gets 1-3 byte flips — gossip,
  // replication appends, snapshots, client traffic alike.
  LinkMatrix::Fault f;
  f.corrupt_prob = 0.05;
  sim.links().set_default_fault(f);

  sim.run_for(SimTime::from_minutes(3));
  const auto during = register_queries(sim, 24, 1000);
  sim.run_for(SimTime::from_minutes(3));

  // Both fences fired: the codec on structurally-broken frames, the
  // content CRC on decoded-valid-but-mutated ones.
  const auto mid = sim.cluster().total_stats();
  EXPECT_GT(sim.links().stats().corrupted, 0u);
  EXPECT_GT(mid.corrupt_drops, 0u) << "codec fence never fired";
  EXPECT_GT(mid.corrupt_rejected + sim.gossip_corrupt_rejected(), 0u)
      << "content-CRC fence never fired";

  // Clear the fault and let anti-entropy repair whatever the drops
  // stalled; membership may have fenced a node whose refutations kept
  // getting mangled — revive any such casualty.
  sim.links().clear();
  for (std::size_t i = 0; i < kServers; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) sim.revive(ServerId{i});
  }
  bool settled = false;
  for (int period = 0; period < 240 && !settled; ++period) {
    sim.run_for(sim.protocol_period());
    settled = sim.cluster().alive_count() == kServers &&
              sim.ring_matches_membership() &&
              live_queries(sim) == before.size() + during.size();
  }
  ASSERT_TRUE(settled) << "cluster never settled after the fault: alive="
                       << sim.cluster().alive_count()
                       << " queries=" << live_queries(sim);
  sim.run_for(SimTime::from_minutes(6));  // one more repair round

  // No corruption was ever installed: invariants clean, nothing lost.
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_EQ(live_queries(sim), before.size() + during.size());
}

}  // namespace
}  // namespace clash::sim
