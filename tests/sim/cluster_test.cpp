#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <set>

#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

TEST(Cluster, BootstrapCreatesInitialDepthRoots) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3));
  cluster.bootstrap();

  // 2^3 = 8 active root groups, prefix-free, covering the key space.
  EXPECT_EQ(cluster.owner_index().size(), 8u);
  for (const auto& [group, owner] : cluster.owner_index()) {
    EXPECT_EQ(group.depth(), 3u);
    EXPECT_TRUE(owner.valid());
    const auto* entry = cluster.server(owner).table().find(group);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->root);
  }
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);

  // Every key has exactly one owner.
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_TRUE(cluster.find_owner(Key(v, 8)).has_value());
  }
}

TEST(Cluster, BootstrapLineageSupportsShallowProbes) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3));
  cluster.bootstrap();
  // For every depth d < initial_depth, the server owning Map(shape(k,d))
  // holds a lineage entry whose prefix matches k to >= d bits, so a
  // client probing too shallow always gets dmin >= d (search soundness).
  for (std::uint64_t v = 0; v < 256; v += 7) {
    const Key k(v, 8);
    for (unsigned d = 0; d < 3; ++d) {
      const auto h = cluster.hasher().hash_key(shape(k, d));
      const ServerId owner = cluster.ring().map(h);
      EXPECT_GE(cluster.server(owner).table().longest_prefix_match(k), d);
    }
  }
}

TEST(Cluster, BootstrapResetsStats) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3));
  cluster.bootstrap();
  const auto stats = cluster.total_stats();
  EXPECT_EQ(stats.total_messages(), 0u);
  EXPECT_EQ(stats.splits, 0u);
}

TEST(Cluster, OwnerIndexTracksSplits) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3));
  cluster.bootstrap();
  const Key k(0b10110000, 8);
  const auto group_before = cluster.find_active_group(k).value();
  const auto owner = cluster.find_owner(k).value();
  ASSERT_TRUE(cluster.server(owner).force_split(group_before));

  const auto group_after = cluster.find_active_group(k).value();
  EXPECT_EQ(group_after.depth(), group_before.depth() + 1);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
  // 8 roots -> 9 leaves after one split.
  EXPECT_EQ(cluster.owner_index().size(), 9u);
}

TEST(Cluster, WithdrawStreamRemovesRate) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const Key k(0b11100000, 8);
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{5};
  obj.stream_rate = 12;
  ASSERT_TRUE(client.insert(obj).ok);

  const auto owner = cluster.find_owner(k).value();
  EXPECT_DOUBLE_EQ(cluster.server(owner).server_load(), 12.0);
  cluster.withdraw_stream(ClientId{5}, k);
  EXPECT_DOUBLE_EQ(cluster.server(owner).server_load(), 0.0);
}

TEST(Cluster, SnapshotReflectsLoadAndDepths) {
  SimCluster cluster(testing::small_cluster_config(16, 8, 3, 100.0));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  AcceptObject obj;
  obj.key = Key(0b11100000, 8);
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{1};
  obj.stream_rate = 50;
  ASSERT_TRUE(client.insert(obj).ok);

  const auto snap = cluster.snapshot();
  EXPECT_DOUBLE_EQ(snap.max_load_frac, 0.5);
  EXPECT_EQ(snap.active_servers, 1u);  // only one loaded server
  EXPECT_EQ(snap.active_groups, 8u);
  EXPECT_EQ(snap.min_depth, 3u);
  EXPECT_EQ(snap.max_depth, 3u);
  EXPECT_DOUBLE_EQ(snap.avg_depth, 3.0);
}

TEST(Cluster, EnsureGroupInstallsLazily) {
  auto cfg = testing::small_cluster_config(16, 8, 4);
  cfg.clash.ephemeral_groups = true;
  SimCluster cluster(cfg);  // no bootstrap: fixed-depth style
  const Key k(0b10101010, 8);
  const KeyGroup g = KeyGroup::of(k, 4);
  EXPECT_FALSE(cluster.find_owner(k).has_value());
  cluster.ensure_group(g);
  EXPECT_TRUE(cluster.find_owner(k).has_value());
  cluster.ensure_group(g);  // idempotent
  EXPECT_EQ(cluster.owner_index().size(), 1u);

  // Ephemeral: the entry disappears when its last object leaves.
  const auto owner = cluster.find_owner(k).value();
  AcceptObject obj;
  obj.key = k;
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{1};
  obj.stream_rate = 1;
  obj.depth = 4;
  (void)cluster.server(owner).handle_accept_object(obj);
  cluster.withdraw_stream(ClientId{1}, k);
  EXPECT_FALSE(cluster.find_owner(k).has_value());
}

TEST(Cluster, LoadChecksSplitHotspotAcrossServers) {
  // One very hot base region: repeated load checks must spread it until
  // no server exceeds the overload threshold (the paper's core claim).
  auto cfg = testing::small_cluster_config(32, 10, 2, /*capacity=*/100.0);
  SimCluster cluster(cfg);
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(5);
  // 400 units of load, all inside the top-left quarter of key space:
  // one root group holds 4x a server's capacity.
  for (int i = 0; i < 100; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFF, 10);  // prefix 00
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{std::uint64_t(i)};
    obj.stream_rate = 4;
    ASSERT_TRUE(client.insert(obj).ok);
  }

  for (int round = 0; round < 12; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * (round + 1)));
    cluster.run_all_load_checks();
  }
  const auto snap = cluster.snapshot();
  EXPECT_LE(snap.max_load_frac, 0.90 + 1e-9);
  EXPECT_GT(snap.active_servers, 3u);  // hotspot spread across servers
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
  EXPECT_GT(cluster.total_stats().splits, 0u);
}

TEST(Cluster, ConsolidationShrinksTreeWhenLoadLeaves) {
  auto cfg = testing::small_cluster_config(32, 10, 2, /*capacity=*/100.0);
  SimCluster cluster(cfg);
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(6);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFF, 10);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{std::uint64_t(i)};
    obj.stream_rate = 4;
    keys.push_back(obj.key);
    ASSERT_TRUE(client.insert(obj).ok);
  }
  for (int round = 0; round < 12; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * (round + 1)));
    cluster.run_all_load_checks();
  }
  const auto peak_groups = cluster.owner_index().size();
  ASSERT_GT(peak_groups, 4u);

  // Load vanishes: the tree consolidates back toward the 4 roots.
  for (int i = 0; i < 100; ++i) {
    cluster.withdraw_stream(ClientId{std::uint64_t(i)}, keys[std::size_t(i)]);
  }
  for (int round = 12; round < 40; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * (round + 1)));
    cluster.run_all_load_checks();
  }
  EXPECT_EQ(cluster.owner_index().size(), 4u);  // back to the root floor
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
  EXPECT_GT(cluster.total_stats().merges, 0u);
}

}  // namespace
}  // namespace clash::sim
