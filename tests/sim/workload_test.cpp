#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace clash::sim {
namespace {

TEST(Workload, SpecsMatchPaperParameters) {
  const auto a = workload_a();
  const auto b = workload_b();
  const auto c = workload_c();
  EXPECT_EQ(a.base_weights.size(), 256u);
  EXPECT_DOUBLE_EQ(a.source_rate, 1.0);  // A: 1 pkt/s
  EXPECT_DOUBLE_EQ(b.source_rate, 2.0);  // B, C: 2 pkt/s
  EXPECT_DOUBLE_EQ(c.source_rate, 2.0);
}

TEST(Workload, SkewOrderingAIsBelowBIsBelowC) {
  const double a = workload_a().hottest_group_mass(6);
  const double b = workload_b().hottest_group_mass(6);
  const double c = workload_c().hottest_group_mass(6);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

// DESIGN.md calibration: workload C's hottest 6-bit group carries ~30 %
// of the mass, which is what makes DHT(6) peak at ~25x capacity.
TEST(Workload, CHotGroupMassCalibrated) {
  const double mass = workload_c().hottest_group_mass(6);
  EXPECT_GE(mass, 0.25);
  EXPECT_LE(mass, 0.35);
}

TEST(Workload, AIsNearUniform) {
  const auto a = workload_a();
  const double total =
      std::accumulate(a.base_weights.begin(), a.base_weights.end(), 0.0);
  const double mean = total / 256.0;
  for (const double w : a.base_weights) {
    EXPECT_NEAR(w, mean, 0.15 * mean);
  }
  EXPECT_EQ(a.support_size(), 256u);
}

TEST(Workload, CSupportIsNarrow) {
  // Effective support ~ a few dozen base values (DHT(12) only touches a
  // few hundred servers under C, per Figure 4).
  const auto c = workload_c();
  EXPECT_LT(c.support_size(1e-3), 80u);
  EXPECT_GT(c.support_size(1e-3), 10u);
}

TEST(Workload, ByNameDispatch) {
  EXPECT_EQ(workload_by_name('A').name, "A");
  EXPECT_EQ(workload_by_name('b').name, "B");
  EXPECT_EQ(workload_by_name('C').name, "C");
  EXPECT_THROW(workload_by_name('x'), std::invalid_argument);
}

TEST(KeyGen, SampledBaseFollowsWeights) {
  const auto c = workload_c();
  KeyGenerator gen(c, 24);
  Rng rng(1);
  std::vector<int> counts(256, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[gen.sample(rng).prefix_value(8)]++;
  }
  // The hottest sampled base value must be near the spec's peak.
  const auto peak_spec = std::max_element(c.base_weights.begin(),
                                          c.base_weights.end()) -
                         c.base_weights.begin();
  const auto peak_seen =
      std::max_element(counts.begin(), counts.end()) - counts.begin();
  EXPECT_NEAR(double(peak_seen), double(peak_spec), 2.0);
  // Empirical hot-group mass matches the analytic one.
  double hot4 = 0;
  const std::size_t start = (std::size_t(peak_spec) / 4) * 4;
  for (std::size_t i = start; i < start + 4; ++i) hot4 += counts[i];
  EXPECT_NEAR(hot4 / n, c.hottest_group_mass(6), 0.02);
}

TEST(KeyGen, SampleHasCorrectWidth) {
  KeyGenerator gen(workload_a(), 24);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.sample(rng).width(), 24u);
  }
}

TEST(KeyGen, LocalMoveKeepsPrefix) {
  KeyGenerator gen(workload_a(), 24);
  Rng rng(3);
  const Key k = gen.sample(rng);
  for (int i = 0; i < 50; ++i) {
    const Key moved = gen.local_move(k, 8, rng);
    EXPECT_EQ(moved.prefix_value(16), k.prefix_value(16));
  }
}

TEST(KeyGen, LocalMoveActuallyMoves) {
  KeyGenerator gen(workload_a(), 24);
  Rng rng(4);
  const Key k = gen.sample(rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i) changed += (gen.local_move(k, 8, rng) != k);
  EXPECT_GT(changed, 40);
}

TEST(KeyGen, RejectsBadConfig) {
  auto spec = workload_a();
  EXPECT_THROW(KeyGenerator(spec, 4), std::invalid_argument);  // base > width
  spec.base_weights.pop_back();
  EXPECT_THROW(KeyGenerator(spec, 24), std::invalid_argument);
}

}  // namespace
}  // namespace clash::sim
