// End-to-end experiment runtime tests on scaled-down paper scenarios.
#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace clash::sim {
namespace {

Scale tiny_scale() {
  // 128 servers, 2000 sources, 1000 query clients, 30 min per phase.
  // Enough servers that workload C's hot group (30 % of total load)
  // meaningfully exceeds one server's scaled capacity.
  Scale s;
  s.servers = 0.128;
  s.clients = 0.02;
  s.duration = 0.25;
  return s;
}

TEST(Runtime, ClashRunCompletesCleanly) {
  RuntimeConfig rc = fig4_config(Mode::kClash, 0, tiny_scale(), 7);
  rc.paranoid = true;
  Runtime rt(std::move(rc));
  const RunResult r = rt.run();

  EXPECT_TRUE(r.invariant_violation.empty()) << r.invariant_violation;
  EXPECT_EQ(r.failed_resolves, 0u);
  EXPECT_GT(r.events_processed, 1000u);
  EXPECT_EQ(r.phase_stats.size(), 3u);
  EXPECT_EQ(r.phase_stats[0].workload, "A");
  EXPECT_EQ(r.phase_stats[2].workload, "C");
  EXPECT_FALSE(r.max_load_pct.empty());
  EXPECT_GT(r.searches, 2000u);
  // Depth search converges fast (Section 5: faster than log2(N) ~ 4.6).
  EXPECT_LT(r.probes_per_search.mean(), 4.6);
}

TEST(Runtime, ClashKeepsMaxLoadBounded) {
  RuntimeConfig rc = fig4_config(Mode::kClash, 0, tiny_scale(), 11);
  rc.phases = {{'C', SimTime::from_minutes(60)}};  // worst skew only
  Runtime rt(std::move(rc));
  const RunResult r = rt.run();
  // Once the initial ramp has been split away (the paper's "small
  // transient period"), max load settles near the 90 % threshold; the
  // one-split-per-check policy leaves some overshoot between checks.
  const auto late_max = r.max_load_pct.max_between(
      SimTime::from_minutes(40), SimTime::from_minutes(61));
  EXPECT_LT(late_max, 130.0);
  // And the tree actually adapted.
  EXPECT_GT(r.totals.splits, 0u);
}

TEST(Runtime, FixedDepthNeverAdapts) {
  RuntimeConfig rc = fig4_config(Mode::kFixedDepth, 6, tiny_scale(), 7);
  Runtime rt(std::move(rc));
  const RunResult r = rt.run();
  EXPECT_EQ(r.totals.splits, 0u);
  EXPECT_EQ(r.totals.merges, 0u);
  EXPECT_EQ(r.totals.keygroup_transfers, 0u);
  EXPECT_EQ(r.totals.load_reports, 0u);
  EXPECT_EQ(r.failed_resolves, 0u);
  EXPECT_TRUE(r.invariant_violation.empty()) << r.invariant_violation;
}

TEST(Runtime, SkewHurtsFixedDepthMoreThanClash) {
  // Under the heavily skewed workload C, DHT(6)'s max load blows past
  // CLASH's (the paper's headline comparison).
  Scale s = tiny_scale();
  RuntimeConfig clash_rc = fig4_config(Mode::kClash, 0, s, 7);
  clash_rc.phases = {{'C', SimTime::from_minutes(30)}};
  RuntimeConfig dht_rc = fig4_config(Mode::kFixedDepth, 6, s, 7);
  dht_rc.phases = {{'C', SimTime::from_minutes(30)}};

  Runtime clash_rt(std::move(clash_rc));
  Runtime dht_rt(std::move(dht_rc));
  const auto clash_r = clash_rt.run();
  const auto dht_r = dht_rt.run();

  const auto from = SimTime::from_minutes(20);
  const auto to = SimTime::from_minutes(31);
  EXPECT_LT(clash_r.max_load_pct.max_between(from, to),
            0.5 * dht_r.max_load_pct.max_between(from, to));
}

TEST(Runtime, QueryClientsAddStateTransferOverhead) {
  Scale s = tiny_scale();
  RuntimeConfig no_queries = fig5_config(1000, 0, s, 7);
  no_queries.phases = {{'B', SimTime::from_minutes(15)}};
  RuntimeConfig with_queries = fig5_config(1000, 1000, s, 7);
  with_queries.phases = {{'B', SimTime::from_minutes(15)}};

  Runtime rt_a(std::move(no_queries));
  Runtime rt_b(std::move(with_queries));
  const auto ra = rt_a.run();
  const auto rb = rt_b.run();

  EXPECT_EQ(ra.totals.state_transfer_msgs, 0u);  // nothing stored: case A
  EXPECT_GT(rb.totals.total_messages(), ra.totals.total_messages());
}

TEST(Runtime, ShorterStreamsCostMoreMessagesPerSecond) {
  Scale s = tiny_scale();
  RuntimeConfig long_streams = fig5_config(1000, 0, s, 7);
  long_streams.phases = {{'A', SimTime::from_minutes(15)}};
  RuntimeConfig short_streams = fig5_config(50, 0, s, 7);
  short_streams.phases = {{'A', SimTime::from_minutes(15)}};

  Runtime rt_long(std::move(long_streams));
  Runtime rt_short(std::move(short_streams));
  const auto rl = rt_long.run();
  const auto rs = rt_short.run();

  const auto servers = std::size_t(128);
  EXPECT_GT(rs.phase_stats[0].msgs_per_sec_per_server(servers, false),
            2.0 * rl.phase_stats[0].msgs_per_sec_per_server(servers, false));
}

TEST(Runtime, PowerOfTwoRunsAndBalancesServerChoice) {
  RuntimeConfig rc = fig4_config(Mode::kPowerOfTwo, 6, tiny_scale(), 7);
  rc.phases = {{'B', SimTime::from_minutes(12)}};
  Runtime rt(std::move(rc));
  const RunResult r = rt.run();
  EXPECT_EQ(r.failed_resolves, 0u);
  EXPECT_EQ(r.totals.splits, 0u);
  EXPECT_FALSE(r.max_load_pct.empty());
}

TEST(Runtime, DeterministicForSameSeed) {
  RuntimeConfig a = fig4_config(Mode::kClash, 0, tiny_scale(), 99);
  a.phases = {{'B', SimTime::from_minutes(10)}};
  RuntimeConfig b = fig4_config(Mode::kClash, 0, tiny_scale(), 99);
  b.phases = {{'B', SimTime::from_minutes(10)}};
  Runtime rt_a(std::move(a));
  Runtime rt_b(std::move(b));
  const auto ra = rt_a.run();
  const auto rb = rt_b.run();
  EXPECT_EQ(ra.totals.total_messages(), rb.totals.total_messages());
  EXPECT_EQ(ra.totals.splits, rb.totals.splits);
  EXPECT_EQ(ra.events_processed, rb.events_processed);
}

TEST(Runtime, ActiveServersFarBelowTotalForClash) {
  RuntimeConfig rc = fig4_config(Mode::kClash, 0, tiny_scale(), 7);
  rc.phases = {{'A', SimTime::from_minutes(20)}};
  Runtime rt(std::move(rc));
  const auto r = rt.run();
  // The on-demand property: CLASH concentrates load on a fraction of
  // the pool (paper: ~70-80 of 1000). Here: <= the ~50 distinct owners
  // of the 64 bootstrap groups, out of 128 servers.
  const double servers_used = r.active_servers.mean_between(
      SimTime::from_minutes(10), SimTime::from_minutes(21));
  EXPECT_LT(servers_used, 128.0 * 0.5);
  EXPECT_GT(servers_used, 4.0);
}

}  // namespace
}  // namespace clash::sim
