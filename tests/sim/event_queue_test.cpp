#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace clash::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  q.at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  q.at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  q.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(1);
  for (int i = 0; i < 5; ++i) {
    q.at(t, [&order, i] { order.push_back(i); });
  }
  q.run_until(t);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, StopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.at(SimTime::from_seconds(1), [&] { ++ran; });
  q.at(SimTime::from_seconds(5), [&] { ++ran; });
  q.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.now(), SimTime::from_seconds(2));
  q.run_until(SimTime::from_seconds(5));  // inclusive boundary
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.after(SimTime::from_seconds(1), tick);
  };
  q.at(SimTime::from_seconds(1), tick);
  q.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReserveDoesNotDisturbOrdering) {
  EventQueue q;
  q.reserve(1024);
  std::vector<int> order;
  // Interleave ties and distinct times across a regrowth-free bulk
  // schedule; dispatch order must stay (time, insertion) sorted.
  for (int i = 0; i < 100; ++i) {
    q.at(SimTime(std::int64_t(i % 7)), [&order, i] { order.push_back(i); });
  }
  q.run_until(SimTime(7));
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto ta = order[i - 1] % 7, tb = order[i] % 7;
    EXPECT_TRUE(ta < tb || (ta == tb && order[i - 1] < order[i]))
        << "out of order at " << i;
  }
  EXPECT_EQ(q.processed(), 100u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MovesEventsOutDuringDispatch) {
  // A handler owning a uniquely-held resource must be destroyed after
  // its single dispatch — a copying dispatch would leave a second
  // owner alive in the heap until run_until returns.
  EventQueue q;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  long uses_at_dispatch = -1;
  q.at(SimTime(1), [token = std::move(token), &watch, &uses_at_dispatch] {
    uses_at_dispatch = watch.use_count();
  });
  q.run_until(SimTime(1));
  EXPECT_EQ(uses_at_dispatch, 1);  // the moved-out event is the only owner
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, NowAdvancesDuringRun) {
  EventQueue q;
  SimTime seen{0};
  q.at(SimTime::from_seconds(7), [&] { seen = q.now(); });
  q.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(seen, SimTime::from_seconds(7));
}

}  // namespace
}  // namespace clash::sim
