#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace clash::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  q.at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  q.at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  q.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(1);
  for (int i = 0; i < 5; ++i) {
    q.at(t, [&order, i] { order.push_back(i); });
  }
  q.run_until(t);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, StopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.at(SimTime::from_seconds(1), [&] { ++ran; });
  q.at(SimTime::from_seconds(5), [&] { ++ran; });
  q.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.now(), SimTime::from_seconds(2));
  q.run_until(SimTime::from_seconds(5));  // inclusive boundary
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.after(SimTime::from_seconds(1), tick);
  };
  q.at(SimTime::from_seconds(1), tick);
  q.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NowAdvancesDuringRun) {
  EventQueue q;
  SimTime seen{0};
  q.at(SimTime::from_seconds(7), [&] { seen = q.now(); });
  q.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(seen, SimTime::from_seconds(7));
}

}  // namespace
}  // namespace clash::sim
