// Partition acceptance for the replication subsystem under live SWIM
// churn: split-brain, asymmetric one-way cuts, flap schedules, and
// lossy links — in every scenario the cluster must refuse to evict
// anyone who is merely unreachable, keep serving, and after the heal
// converge every replica to the owner's exact (epoch, seq) head with
// zero lost continuous queries at replication factor >= 2.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
constexpr int kConvergenceBound = 40;

ChurnSim::Config partition_config() {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 4321;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 4000.0;  // no load-driven splits
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 17;
  return cfg;
}

std::vector<ServerId> minority_side() {
  return {ServerId{1}, ServerId{4}, ServerId{7}, ServerId{11}};
}

std::size_t register_queries(ChurnSim& sim, std::size_t n,
                             std::uint64_t first_id) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(7 + first_id);
  std::size_t registered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{first_id + i};
    EXPECT_TRUE(client.insert(obj).ok);
    ++registered;
  }
  return registered;
}

std::size_t live_protocol_queries(const SimCluster& cluster) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    if (cluster.is_alive(ServerId{i})) {
      n += cluster.server(ServerId{i}).total_queries();
    }
  }
  return n;
}

/// Every replica of every active group sits at exactly the owner's
/// (epoch, seq) head; returns the first divergence found.
std::optional<std::string> heads_converged(const SimCluster& cluster) {
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto owner_head = cluster.server(owner).log_head(group);
    if (!owner_head) return "owner of " + group.label() + " has no log";
    for (std::size_t i = 0; i < kServers; ++i) {
      const ServerId id{i};
      if (!cluster.is_alive(id) || id == owner) continue;
      if (!cluster.server(id).has_replica(group)) continue;
      const auto head = cluster.server(id).replica_head(group);
      if (head != owner_head) {
        return group.label() + ": replica on s" + std::to_string(i) +
               " at " + head->to_string() + " != owner " +
               owner_head->to_string();
      }
    }
  }
  return std::nullopt;
}

TEST(Partition, SplitBrainNeverEvictsAndConvergesAfterHeal) {
  ChurnSim sim(partition_config());
  sim.start();
  std::size_t total = register_queries(sim, 40, 0);
  sim.run_for(SimTime::from_minutes(11));  // replication settles

  sim.partition(minority_side());
  // Mutations keep landing while the cluster is split (client RPCs
  // model retries and get through): replicas across the cut diverge.
  total += register_queries(sim, 20, 1000);
  sim.run_for(SimTime::from_minutes(3));

  // Unreachable is not dead: every server is alive, so the eviction
  // gate (unanimity among live views) can never fire and the ring must
  // not shrink.
  EXPECT_TRUE(sim.ring_matches_membership());
  EXPECT_EQ(sim.cluster().alive_count(), kServers);
  EXPECT_EQ(sim.cluster().total_stats().failovers, 0u);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_GT(sim.cluster().total_stats().link_drops, 0u);

  sim.heal_partitions();
  // Suspicions refute and anti-entropy repairs the diverged holders
  // over the next load-check rounds.
  sim.run_for(SimTime::from_minutes(11));
  EXPECT_EQ(heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(live_protocol_queries(sim.cluster()), total);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(Partition, AsymmetricOneWayCutConvergesAfterHeal) {
  ChurnSim sim(partition_config());
  sim.start();
  std::size_t total = register_queries(sim, 40, 0);
  sim.run_for(SimTime::from_minutes(11));

  // The minority can hear the majority but is never heard: its acks,
  // diffs, refutations, and replica appends all vanish one-way.
  sim.one_way_partition(minority_side());
  total += register_queries(sim, 20, 2000);
  sim.run_for(SimTime::from_minutes(3));
  EXPECT_EQ(sim.cluster().alive_count(), kServers);
  EXPECT_EQ(sim.cluster().total_stats().failovers, 0u);
  EXPECT_TRUE(sim.ring_matches_membership());

  sim.heal_partitions();
  sim.run_for(SimTime::from_minutes(11));
  EXPECT_EQ(heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(live_protocol_queries(sim.cluster()), total);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(Partition, FlapScheduleConvergesAfterFinalHeal) {
  ChurnSim sim(partition_config());
  sim.start();
  std::size_t total = register_queries(sim, 30, 0);
  sim.run_for(SimTime::from_minutes(6));

  // Three cut/heal cycles, 30 s apart, with writes landing mid-flap.
  sim.schedule_flaps(minority_side(), SimTime::from_seconds(30), 3);
  total += register_queries(sim, 15, 3000);
  sim.run_for(SimTime::from_minutes(4));  // flaps done: last event heals
  total += register_queries(sim, 15, 4000);
  sim.run_for(SimTime::from_minutes(11));

  EXPECT_EQ(sim.cluster().alive_count(), kServers);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_EQ(heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(live_protocol_queries(sim.cluster()), total);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(Partition, LossyLinksConvergeOnceClean) {
  ChurnSim sim(partition_config());
  sim.start();
  std::size_t total = register_queries(sim, 40, 0);
  sim.run_for(SimTime::from_minutes(6));

  sim.set_loss_rate(0.05);  // every link drops 5% of messages
  total += register_queries(sim, 30, 5000);
  sim.run_for(SimTime::from_minutes(11));  // anti-entropy fights the loss
  EXPECT_GT(sim.cluster().total_stats().link_drops, 0u);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);

  sim.heal_partitions();  // clears the default fault too
  sim.run_for(SimTime::from_minutes(11));
  EXPECT_EQ(heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(live_protocol_queries(sim.cluster()), total);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(Partition, DeathDuringSplitStillFailsOverWithZeroLoss) {
  ChurnSim sim(partition_config());
  sim.start();
  const std::size_t total = register_queries(sim, 40, 0);
  sim.run_for(SimTime::from_minutes(11));

  const auto side = minority_side();
  sim.partition(side);
  // A majority-side server dies mid-split. Both sides time the dead
  // node out independently (direct probes go unanswered either way),
  // so unanimity IS reachable for a genuinely dead node — only the
  // merely-unreachable survivors are protected by the gate. The
  // failover must complete with zero loss even while the cluster is
  // split, and no live server may be evicted alongside it.
  const ServerId victim{2};
  sim.kill(victim);
  bool evicted = false;
  for (int period = 0; period < kConvergenceBound && !evicted; ++period) {
    sim.run_for(sim.protocol_period());
    evicted = sim.all_survivors_see_dead(victim) &&
              !sim.cluster().ring().contains(victim);
  }
  ASSERT_TRUE(evicted) << "dead node never evicted during the split";
  for (std::size_t i = 0; i < kServers; ++i) {
    const ServerId id{i};
    if (id == victim) continue;
    EXPECT_TRUE(sim.cluster().ring().contains(id))
        << "live s" << i << " evicted through the partition";
  }
  EXPECT_GT(sim.cluster().total_stats().failovers, 0u);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);

  sim.heal_partitions();
  sim.run_for(SimTime::from_minutes(11));
  EXPECT_EQ(heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(live_protocol_queries(sim.cluster()), total);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

}  // namespace
}  // namespace clash::sim
