// Failure injection for the replication extension: crash servers and
// verify that replicated groups fail over with their state, the key
// space stays fully resolvable, and invariants hold.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

SimCluster::Config replicated_config(unsigned factor) {
  auto cfg = testing::small_cluster_config(24, 10, 3, /*capacity=*/200.0);
  cfg.clash.replication_factor = factor;
  return cfg;
}

/// Registers `n` streams with deterministic keys; returns their keys.
std::vector<Key> load_streams(SimCluster& cluster, ClashClient& client,
                              std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, 10);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2;
    EXPECT_TRUE(client.insert(obj).ok);
    keys.push_back(obj.key);
  }
  (void)cluster;
  return keys;
}

TEST(Failover, ReplicasFormAfterLoadChecks) {
  SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  (void)load_streams(cluster, client, 50, 7);

  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  std::size_t replicas = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    replicas += cluster.server(ServerId{i}).replica_count();
  }
  // 8 root groups x 2 replicas each.
  EXPECT_EQ(replicas, 16u);
  EXPECT_GT(cluster.total_stats().replications, 0u);
}

TEST(Failover, StateSurvivesServerCrash) {
  SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const auto keys = load_streams(cluster, client, 60, 11);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();  // replicas form

  // Crash the busiest server.
  ServerId victim{};
  double max_load = -1;
  for (std::size_t i = 0; i < 24; ++i) {
    const double load = cluster.server(ServerId{i}).server_load();
    if (load > max_load) {
      max_load = load;
      victim = ServerId{i};
    }
  }
  const auto victim_streams = cluster.server(victim).total_streams();
  ASSERT_GT(victim_streams, 0u);

  const auto recovered = cluster.fail_server(victim);
  EXPECT_GT(recovered, 0u);
  EXPECT_EQ(cluster.alive_count(), 23u);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);

  // Every stream is still registered somewhere (no state loss), and
  // every key resolves.
  std::size_t streams_found = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    if (!cluster.is_alive(ServerId{i})) continue;
    streams_found += cluster.server(ServerId{i}).total_streams();
  }
  EXPECT_EQ(streams_found, keys.size());
  EXPECT_EQ(cluster.total_stats().groups_lost, 0u);

  ClashClient fresh(cluster.clash_config(), cluster.client_env(ServerId{1}),
                    cluster.hasher());
  for (const auto& k : keys) {
    const auto out = fresh.resolve(k);
    ASSERT_TRUE(out.ok);
    EXPECT_NE(out.server, victim);
  }
}

TEST(Failover, WithoutReplicationGroupsComeBackEmpty) {
  SimCluster cluster(replicated_config(0));  // replication off
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const auto keys = load_streams(cluster, client, 60, 13);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  ServerId victim = *cluster.find_owner(keys[0]);
  const auto recovered = cluster.fail_server(victim);
  EXPECT_EQ(recovered, 0u);  // nothing to promote from
  EXPECT_GT(cluster.total_stats().groups_lost, 0u);

  // Coverage is healed (resolvable), but the state is gone.
  ClashClient fresh(cluster.clash_config(), cluster.client_env(ServerId{1}),
                    cluster.hasher());
  const auto out = fresh.resolve(keys[0]);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(Failover, CascadingFailuresStayConsistent) {
  SimCluster cluster(replicated_config(3));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const auto keys = load_streams(cluster, client, 80, 17);

  Rng rng(23);
  for (int round = 0; round < 6; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * (round + 1)));
    cluster.run_all_load_checks();  // refresh replicas between crashes
    // Crash a random live server.
    for (;;) {
      const ServerId victim{rng.below(24)};
      if (cluster.is_alive(victim)) {
        cluster.fail_server(victim);
        break;
      }
    }
    ASSERT_EQ(cluster.check_invariants(), std::nullopt) << "round " << round;
  }
  EXPECT_EQ(cluster.alive_count(), 18u);

  // The full key space still resolves through a fresh client.
  ClashClient fresh(cluster.clash_config(),
                    cluster.client_env(ServerId{23}), cluster.hasher());
  for (std::uint64_t v = 0; v < 1024; v += 31) {
    const auto out = fresh.resolve(Key(v, 10));
    ASSERT_TRUE(out.ok) << v;
  }
}

TEST(Failover, SplitGroupsFailOverToo) {
  // Force deep splits, replicate, crash the deep owner: the promoted
  // child keeps its lineage (parent pointer) so consolidation still
  // works later.
  SimCluster cluster(replicated_config(2));
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  (void)load_streams(cluster, client, 40, 29);

  const Key hot(0b1110000000, 10);
  for (int i = 0; i < 3; ++i) {
    const auto g = cluster.find_active_group(hot);
    ASSERT_TRUE(cluster.server(*cluster.find_owner(hot)).force_split(*g));
  }
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();  // replicate the deepened tree

  const auto deep_group = cluster.find_active_group(hot).value();
  ASSERT_EQ(deep_group.depth(), 6u);
  const ServerId owner = *cluster.find_owner(hot);
  cluster.fail_server(owner);

  const auto new_owner = cluster.find_owner(hot);
  ASSERT_TRUE(new_owner.has_value());
  EXPECT_NE(*new_owner, owner);
  EXPECT_EQ(cluster.find_active_group(hot).value(), deep_group);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

}  // namespace
}  // namespace clash::sim
