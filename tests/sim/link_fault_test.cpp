// Link-level fault matrix: unit coverage of sim::LinkMatrix verdicts
// (cuts, probabilistic drops, delays, partition helpers, deterministic
// scripts) and integration with SimCluster dispatch — a cut or lossy
// link starves replicas exactly until the matrix heals and the next
// anti-entropy round repairs them.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "sim/cluster.hpp"
#include "sim/link_matrix.hpp"
#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

TEST(LinkMatrix, QuietByDefaultAndDeliversClean) {
  LinkMatrix links;
  EXPECT_TRUE(links.quiet());
  const auto v = links.judge(ServerId{0}, ServerId{1});
  EXPECT_TRUE(v.deliver);
  EXPECT_EQ(v.delay.usec, 0);
  EXPECT_EQ(links.stats().dropped, 0u);
}

TEST(LinkMatrix, CutIsDirectionalAndHeals) {
  LinkMatrix links;
  links.cut(ServerId{0}, ServerId{1});
  EXPECT_FALSE(links.quiet());
  EXPECT_FALSE(links.judge(ServerId{0}, ServerId{1}).deliver);
  // The reverse direction stays up: asymmetric by construction.
  EXPECT_TRUE(links.judge(ServerId{1}, ServerId{0}).deliver);
  links.heal(ServerId{0}, ServerId{1});
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  EXPECT_TRUE(links.quiet());
  EXPECT_EQ(links.stats().dropped, 1u);
}

TEST(LinkMatrix, ProbabilisticDropIsSeededAndRoughlyCalibrated) {
  LinkMatrix a(42);
  LinkMatrix b(42);
  a.set_drop(ServerId{0}, ServerId{1}, 0.3);
  b.set_drop(ServerId{0}, ServerId{1}, 0.3);
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool da = !a.judge(ServerId{0}, ServerId{1}).deliver;
    const bool db = !b.judge(ServerId{0}, ServerId{1}).deliver;
    EXPECT_EQ(da, db) << "same seed must replay identically";
    dropped += da ? 1 : 0;
  }
  EXPECT_GT(dropped, 200);
  EXPECT_LT(dropped, 400);
}

TEST(LinkMatrix, DelayVerdictAndDefaultFault) {
  LinkMatrix links;
  links.set_delay(ServerId{0}, ServerId{1}, SimTime::from_seconds(0.5));
  const auto v = links.judge(ServerId{0}, ServerId{1});
  EXPECT_TRUE(v.deliver);
  EXPECT_EQ(v.delay, SimTime::from_seconds(0.5));
  EXPECT_EQ(links.stats().delayed, 1u);

  LinkMatrix::Fault lossy;
  lossy.drop_prob = 1.0;
  links.set_default_fault(lossy);
  // The default applies to pairs without an explicit entry...
  EXPECT_FALSE(links.judge(ServerId{3}, ServerId{4}).deliver);
  // ...while the explicit delay entry still wins for its pair.
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  links.clear();
  EXPECT_TRUE(links.quiet());
}

TEST(LinkMatrix, PartitionHelpersCutBothOrOneDirection) {
  LinkMatrix links;
  const std::vector<ServerId> left{ServerId{0}, ServerId{1}};
  const std::vector<ServerId> right{ServerId{2}, ServerId{3}};
  links.partition(left, right);
  EXPECT_FALSE(links.judge(ServerId{0}, ServerId{3}).deliver);
  EXPECT_FALSE(links.judge(ServerId{3}, ServerId{0}).deliver);
  // Intra-side links stay clean.
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  EXPECT_TRUE(links.judge(ServerId{2}, ServerId{3}).deliver);
  links.heal_all();

  links.one_way_partition(left, right);
  EXPECT_FALSE(links.judge(ServerId{1}, ServerId{2}).deliver);
  EXPECT_TRUE(links.judge(ServerId{2}, ServerId{1}).deliver);
}

TEST(LinkMatrix, ScriptDropsExactFramesThenResumesFault) {
  LinkMatrix links;
  links.script(ServerId{0}, ServerId{1}, {false, true, false});
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  EXPECT_FALSE(links.judge(ServerId{0}, ServerId{1}).deliver);
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  // Script drained: the (clean) configured fault takes over again.
  EXPECT_TRUE(links.judge(ServerId{0}, ServerId{1}).deliver);
  EXPECT_TRUE(links.quiet());
}

// --- SimCluster integration -------------------------------------------

SimCluster::Config log_cluster_config() {
  auto cfg = testing::small_cluster_config(8, 8, 2, /*capacity=*/1e9);
  cfg.clash.replication_factor = 2;
  cfg.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  return cfg;
}

/// The owner and replica head of the group holding `key`, for
/// divergence assertions.
struct GroupView {
  ServerId owner;
  KeyGroup group;
};

GroupView view_of(SimCluster& cluster, const Key& k) {
  return GroupView{*cluster.find_owner(k), *cluster.find_active_group(k)};
}

TEST(LinkFaultCluster, CutLinkStarvesReplicaUntilHealAndAntiEntropy) {
  SimCluster cluster(log_cluster_config());
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());

  AcceptObject obj;
  obj.key = Key(0x2A, 8);
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{1};
  obj.stream_rate = 2;
  ASSERT_TRUE(client.insert(obj).ok);
  const auto gv = view_of(cluster, obj.key);

  // Find a holder that tracked the first append.
  ServerId holder{};
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    const ServerId id{i};
    if (id != gv.owner && cluster.server(id).has_replica(gv.group)) {
      holder = id;
      break;
    }
  }
  ASSERT_TRUE(holder.valid());
  ASSERT_EQ(cluster.server(holder).replica_head(gv.group),
            cluster.server(gv.owner).log_head(gv.group));

  // Cut owner -> holder and register more streams: the holder misses
  // every append while the other replica keeps up.
  cluster.links().cut(gv.owner, holder);
  for (std::uint64_t i = 2; i <= 5; ++i) {
    AcceptObject more;
    more.key = Key(0x2A, 8);
    more.kind = ObjectKind::kData;
    more.source = ClientId{i};
    more.stream_rate = 1;
    ASSERT_TRUE(client.insert(more).ok);
  }
  EXPECT_LT(cluster.server(holder).replica_head(gv.group)->seq,
            cluster.server(gv.owner).log_head(gv.group)->seq);
  EXPECT_GT(cluster.total_stats().link_drops, 0u);

  // Heal; the next anti-entropy round repairs the exact suffix.
  cluster.links().heal(gv.owner, holder);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();
  EXPECT_EQ(cluster.server(holder).replica_head(gv.group),
            cluster.server(gv.owner).log_head(gv.group));
  const GroupState* st = cluster.server(holder).replica_state(gv.group);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->streams.size(), 5u);
}

TEST(LinkFaultCluster, ScriptedChunkLossNacksAndRestartsWithinTheCheck) {
  // Regression (bugfix 2, driven through the fault layer): drop one
  // SnapshotChunk mid-transfer. The out-of-sync successor chunk must
  // nack the sender and the restarted transfer must complete within
  // the same anti-entropy round — pre-fix the assembly died silently
  // and the replica stayed diverged until the NEXT round.
  auto cfg = log_cluster_config();
  cfg.clash.log_compact_threshold = 2;   // compact fast: force snapshots
  cfg.clash.snapshot_chunk_objects = 1;  // many chunks per snapshot
  SimCluster cluster(cfg);
  cluster.bootstrap();
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());

  AcceptObject obj;
  obj.key = Key(0x2A, 8);
  obj.kind = ObjectKind::kData;
  obj.source = ClientId{1};
  obj.stream_rate = 2;
  ASSERT_TRUE(client.insert(obj).ok);
  const auto gv = view_of(cluster, obj.key);
  ServerId holder{};
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    const ServerId id{i};
    if (id != gv.owner && cluster.server(id).has_replica(gv.group)) {
      holder = id;
      break;
    }
  }
  ASSERT_TRUE(holder.valid());

  // Starve the holder past the compaction floor so the next
  // anti-entropy diff needs a full multi-chunk snapshot.
  cluster.links().cut(gv.owner, holder);
  for (std::uint64_t i = 2; i <= 6; ++i) {
    AcceptObject more;
    more.key = Key(0x2A, 8);
    more.kind = ObjectKind::kData;
    more.source = ClientId{i};
    more.stream_rate = 1;
    ASSERT_TRUE(client.insert(more).ok);
  }
  ASSERT_GT(cluster.server(gv.owner).stats().log_compactions, 0u);
  cluster.links().heal(gv.owner, holder);

  // Next round, owner -> holder carries: AE probe, snapshot offer,
  // then the chunks. Script the loss of the first chunk.
  cluster.links().script(gv.owner, holder,
                         {false /*probe*/, false /*offer*/, true /*chunk0*/});
  cluster.set_now(SimTime::from_minutes(5));
  cluster.server(gv.owner).run_load_check();

  // The nack-driven restart converged the holder inside this check.
  EXPECT_GT(cluster.server(holder).stats().snapshot_aborts, 0u);
  EXPECT_EQ(cluster.server(holder).replica_head(gv.group),
            cluster.server(gv.owner).log_head(gv.group));
  EXPECT_EQ(cluster.server(holder).replica_state(gv.group)->streams.size(),
            6u);
}

}  // namespace
}  // namespace clash::sim
