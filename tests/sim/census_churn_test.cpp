// The gossiped cost census under membership churn: every live node's
// census table converges to the live set, death evicts records, a
// revival re-enters with a bumped incarnation, a healed partition
// reconciles both sides, and the converged view's totals match the
// cluster's ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
constexpr int kConvergenceBound = 40;

ChurnSim::Config census_config() {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 4321;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 2000.0;
  cfg.cluster.clash.replication_factor = 2;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.census.refresh_periods = 2;
  cfg.seed = 77;
  return cfg;
}

void load_streams(ChurnSim& sim, std::size_t n) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2;
    ASSERT_TRUE(client.insert(obj).ok);
  }
}

/// Every live node's census table holds exactly the live set.
bool census_converged(ChurnSim& sim) {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    if (sim.cluster().is_alive(ServerId{i})) ++alive;
  }
  for (std::size_t i = 0; i < kServers; ++i) {
    const ServerId id{i};
    if (!sim.cluster().is_alive(id)) continue;
    if (sim.census_of(id).table_size() != alive) return false;
    for (std::size_t j = 0; j < kServers; ++j) {
      const ServerId peer{j};
      const bool have = sim.census_of(id).record_of(peer) != nullptr;
      if (have != sim.cluster().is_alive(peer)) return false;
    }
  }
  return true;
}

int run_until_census_converged(ChurnSim& sim) {
  for (int period = 1; period <= kConvergenceBound; ++period) {
    sim.run_for(sim.protocol_period());
    if (census_converged(sim)) return period;
  }
  return -1;
}

TEST(CensusChurn, HealthyClusterConvergesToFullView) {
  ChurnSim sim(census_config());
  sim.start();
  load_streams(sim, 48);

  const int periods = run_until_census_converged(sim);
  ASSERT_GE(periods, 0) << "census never converged";

  // Give every node one more refresh so the stream/query gauges settle,
  // then check the folded view against ground truth on every node.
  sim.run_for(SimTime::from_seconds(8));
  std::uint64_t truth_streams = 0;
  std::uint64_t truth_groups = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    truth_streams += sim.cluster().server(ServerId{i}).total_streams();
    truth_groups += sim.cluster().server(ServerId{i}).table().active_count();
  }
  for (std::size_t i = 0; i < kServers; ++i) {
    const auto view = sim.census_of(ServerId{i}).view();
    EXPECT_EQ(view.nodes.size(), kServers) << "node " << i;
    EXPECT_EQ(view.total_streams, truth_streams) << "node " << i;
    EXPECT_EQ(view.total_groups, truth_groups) << "node " << i;
    EXPECT_GT(view.total_load, 0.0) << "node " << i;
  }
}

TEST(CensusChurn, DeathEvictsRecordEverywhere) {
  ChurnSim sim(census_config());
  sim.start();
  load_streams(sim, 32);
  ASSERT_GE(run_until_census_converged(sim), 0);

  const ServerId victim{5};
  sim.kill(victim);
  const int periods = run_until_census_converged(sim);
  ASSERT_GE(periods, 0) << "census never dropped the dead node";
  for (std::size_t i = 0; i < kServers; ++i) {
    const ServerId id{i};
    if (!sim.cluster().is_alive(id)) continue;
    EXPECT_EQ(sim.census_of(id).record_of(victim), nullptr) << "node " << i;
    EXPECT_EQ(sim.census_of(id).view().nodes.size(), kServers - 1);
  }
}

TEST(CensusChurn, RevivalReentersWithBumpedIncarnation) {
  ChurnSim sim(census_config());
  sim.start();
  load_streams(sim, 32);
  ASSERT_GE(run_until_census_converged(sim), 0);

  const ServerId victim{9};
  const auto* before = sim.census_of(ServerId{0}).record_of(victim);
  ASSERT_NE(before, nullptr);
  const std::uint64_t old_incarnation = before->incarnation;

  sim.kill(victim);
  ASSERT_GE(run_until_census_converged(sim), 0);
  sim.revive(victim);
  ASSERT_GE(run_until_census_converged(sim), 0);

  const auto* after = sim.census_of(ServerId{0}).record_of(victim);
  ASSERT_NE(after, nullptr);
  // Refuting its own death bumped the incarnation; the revived node's
  // census records carry it, so any stale pre-crash record loses.
  EXPECT_GT(after->incarnation, old_incarnation);
  // The revived node itself relearned the whole cluster from scratch.
  EXPECT_EQ(sim.census_of(victim).view().nodes.size(), kServers);
}

TEST(CensusChurn, PartitionHealReconcilesBothSides) {
  auto cfg = census_config();
  // A suspicion leash longer than the cut: both sides suspect each
  // other but neither declares deaths, so the censuses merely go stale
  // about the far side. (A cut that outlives the leash turns into the
  // death/revival scenarios covered above — and the post-heal rumour
  // storm can excommunicate slow refuters, which is the fail-slow
  // fencing path, not the census reconciliation under test here.)
  cfg.membership.suspicion_periods = 30;
  ChurnSim sim(cfg);
  sim.start();
  load_streams(sim, 32);
  ASSERT_GE(run_until_census_converged(sim), 0);

  const std::vector<ServerId> side{ServerId{0}, ServerId{1}, ServerId{2}};
  sim.partition(side);
  sim.run_for(SimTime::from_seconds(10));
  sim.heal_partitions();

  const int periods = run_until_census_converged(sim);
  ASSERT_GE(periods, 0) << "census never reconciled after the heal";
  // Nobody may have been excommunicated along the way: the leash held.
  for (std::size_t i = 0; i < kServers; ++i) {
    ASSERT_TRUE(sim.cluster().is_alive(ServerId{i})) << "node " << i;
  }
  // Reconciliation must be fresh on both sides: no record older than
  // the TTL leash, and sequence numbers advanced past the cut.
  for (std::size_t i = 0; i < kServers; ++i) {
    const auto view = sim.census_of(ServerId{i}).view();
    EXPECT_EQ(view.nodes.size(), kServers) << "node " << i;
    EXPECT_LT(view.max_age_periods, census_config().census.ttl_periods);
  }
}

TEST(CensusChurn, FlappingLinkStaysConvergedAfterSettle) {
  ChurnSim sim(census_config());
  sim.start();
  load_streams(sim, 32);
  ASSERT_GE(run_until_census_converged(sim), 0);

  sim.schedule_flaps({ServerId{4}, ServerId{8}}, SimTime::from_seconds(3),
                     /*cycles=*/4);
  sim.run_for(SimTime::from_seconds(30));  // ride out the flapping

  const int periods = run_until_census_converged(sim);
  ASSERT_GE(periods, 0) << "census never re-converged after flapping";
  EXPECT_TRUE(sim.ring_matches_membership());
}

TEST(CensusChurn, DisabledCensusSendsNoRecords) {
  auto cfg = census_config();
  cfg.enable_census = false;
  ChurnSim sim(cfg);
  sim.start();
  sim.run_for(SimTime::from_seconds(20));
  EXPECT_EQ(sim.cluster().total_stats().census_records, 0u);
  for (std::size_t i = 0; i < kServers; ++i) {
    EXPECT_EQ(sim.census_of(ServerId{i}).table_size(), 0u);
  }
}

}  // namespace
}  // namespace clash::sim
