// Fail-slow detection: a node that keeps answering but at 100x latency
// must be suspected, unanimously declared dead, and excommunicated
// (fenced out of the ring with its groups failed over) within a
// bounded window — while a mildly slow node (10x) stays a member. Also
// covers the per-node suspicion-timeout override: the leash is the
// knob trading fail-slow detection speed for tolerance.
#include <gtest/gtest.h>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
/// Excommunicating a fail-slow node takes longer than evicting a crash
/// (the victim's late refutations keep breaking unanimity for a few
/// rounds); 120 periods is the hard ceiling, ~20 the typical case.
constexpr int kSlowEvictBound = 120;

ChurnSim::Config config(unsigned replication) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 4321;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 2000.0;
  cfg.cluster.clash.replication_factor = replication;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 77;
  return cfg;
}

void load_streams(ChurnSim& sim, std::size_t n) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2;
    ASSERT_TRUE(client.insert(obj).ok);
  }
}

/// Periods until the victim is excommunicated (-1 on timeout).
int run_until_excommunicated(ChurnSim& sim, ServerId victim, int bound) {
  for (int period = 1; period <= bound; ++period) {
    sim.run_for(sim.protocol_period());
    if (!sim.cluster().is_alive(victim)) return period;
  }
  return -1;
}

TEST(FailSlow, HundredTimesSlowNodeIsExcommunicatedWithinBound) {
  ChurnSim sim(config(/*replication=*/2));
  sim.start();
  load_streams(sim, 48);
  sim.run_for(SimTime::from_minutes(11));  // groups replicated

  const ServerId victim{5};
  sim.set_slow(victim, 100.0);  // ~2s extra lag per message, each way

  const int periods = run_until_excommunicated(sim, victim,
                                               kSlowEvictBound);
  ASSERT_GE(periods, 0) << "fail-slow node never excommunicated within "
                        << kSlowEvictBound << " periods";

  // Fenced, not merely suspected: crashed, off the ring, its groups
  // failed over from replicas, and the event counted.
  EXPECT_FALSE(sim.cluster().is_alive(victim));
  EXPECT_FALSE(sim.cluster().ring().contains(victim));
  EXPECT_EQ(sim.cluster().total_stats().slow_evictions, 1u);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);

  // A revive brings it back as a fresh process (restart clears the
  // slowness: replacement hardware) and it rejoins the ring.
  sim.revive(victim);
  EXPECT_EQ(sim.cluster().node_slow(victim), 1.0);
  bool rejoined = false;
  for (int p = 0; p < 60 && !rejoined; ++p) {
    sim.run_for(sim.protocol_period());
    rejoined = sim.cluster().ring().contains(victim) &&
               sim.all_survivors_see_alive(victim);
  }
  EXPECT_TRUE(rejoined) << "excommunicated node never rejoined";
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(FailSlow, TenTimesSlowNodeStaysAMember) {
  ChurnSim sim(config(/*replication=*/0));
  sim.start();
  sim.run_for(SimTime::from_minutes(2));

  const ServerId victim{5};
  sim.set_slow(victim, 10.0);  // ~180ms lag per message: inside timeouts
  sim.run_for(SimTime::from_minutes(3));

  EXPECT_TRUE(sim.cluster().is_alive(victim));
  EXPECT_TRUE(sim.cluster().ring().contains(victim));
  EXPECT_EQ(sim.cluster().total_stats().slow_evictions, 0u);
  EXPECT_TRUE(sim.all_survivors_see_alive(victim));
}

TEST(FailSlow, PerNodeSuspicionLeashTunesTheVerdictWindow) {
  // Baseline: how fast does the default leash excommunicate?
  int baseline = 0;
  {
    ChurnSim sim(config(/*replication=*/0));
    sim.start();
    sim.run_for(SimTime::from_minutes(2));
    sim.set_slow(ServerId{5}, 100.0);
    baseline = run_until_excommunicated(sim, ServerId{5},
                                        kSlowEvictBound);
    ASSERT_GE(baseline, 0);
  }

  // A single long-leash survivor does NOT stall the cluster: the first
  // default-leash node to expire its suspicion gossips the dead rumour,
  // and everyone — the patient node included — adopts it. The per-node
  // leash governs a node's own suspicions, not rumours it hears.
  const unsigned kLongLeash = unsigned(baseline) + 30;
  {
    ChurnSim sim(config(/*replication=*/0));
    sim.start();
    sim.run_for(SimTime::from_minutes(2));
    sim.set_suspicion_periods(ServerId{2}, kLongLeash);
    sim.set_slow(ServerId{5}, 100.0);
    const int lone = run_until_excommunicated(sim, ServerId{5},
                                              kSlowEvictBound);
    ASSERT_GE(lone, 0)
        << "one patient observer must not veto the cluster's verdict";
  }

  // When EVERY survivor runs the longer leash there is no early
  // declarer left at all — and the leash now exceeds the slow node's
  // (late, ~2s) refutation latency, so every suspicion is refuted
  // before it expires: the cluster TOLERATES the fail-slow node. The
  // per-node leash is the knob trading detection speed for tolerance.
  ChurnSim sim(config(/*replication=*/0));
  sim.start();
  sim.run_for(SimTime::from_minutes(2));
  for (std::size_t i = 0; i < kServers; ++i) {
    if (i != 5) sim.set_suspicion_periods(ServerId{i}, kLongLeash);
  }
  sim.set_slow(ServerId{5}, 100.0);
  const int delayed = run_until_excommunicated(sim, ServerId{5},
                                               kSlowEvictBound);
  EXPECT_EQ(delayed, -1)
      << "observers on a refutation-sized leash must tolerate the slow "
         "node, not evict it";
  EXPECT_TRUE(sim.cluster().is_alive(ServerId{5}));
  EXPECT_EQ(sim.cluster().total_stats().slow_evictions, 0u);
}

}  // namespace
}  // namespace clash::sim
