// Acceptance scenarios for the replication & recovery subsystem under
// live SWIM churn (log-replication mode): a kill/revive cycle must end
// with zero lost continuous queries, matches still firing on the
// promoted owners' stream engines, replicas converged to identical
// (epoch, seq) heads per group, and a rejoined node actually serving
// its handed-back groups instead of empty state.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "cq/engine_hooks.hpp"
#include "sim/churn.hpp"
#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
constexpr int kConvergenceBound = 30;

ChurnSim::Config log_churn_config() {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 1234;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 4000.0;  // no load-driven splits
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 99;
  return cfg;
}

/// One StreamEngine + EngineHooks pair per simulated server, rebound
/// after every revival (a restarted process loses its engine too).
struct AppLayer {
  explicit AppLayer(ChurnSim& sim) : sim_(sim) {
    for (std::size_t i = 0; i < kServers; ++i) attach(ServerId{i});
  }

  void attach(ServerId id) {
    engines[id.value] = std::make_unique<cq::StreamEngine>(kWidth);
    hooks[id.value] = std::make_unique<cq::EngineHooks>(*engines[id.value]);
    ClashServer& server = sim_.cluster().server(id);
    hooks[id.value]->bind(&server);
    server.set_app_hooks(hooks[id.value].get());
  }

  /// Register an exact-key continuous query on the key's owner.
  bool register_on_owner(QueryId id, const Key& key) {
    const auto owner = sim_.cluster().find_owner(key);
    if (!owner) return false;
    cq::ContinuousQuery q;
    q.id = id;
    q.scope = KeyGroup::of(key, key.width());
    return hooks[owner->value]->register_query(q);
  }

  [[nodiscard]] std::size_t live_query_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kServers; ++i) {
      if (sim_.cluster().is_alive(ServerId{i})) {
        n += engines[i]->query_count();
      }
    }
    return n;
  }

  /// Matches fired when the key's current owner processes a record.
  std::size_t fire(const Key& key) {
    const auto owner = sim_.cluster().find_owner(key);
    if (!owner) return 0;
    return engines[owner->value]->process(cq::Record{key, {}});
  }

  ChurnSim& sim_;
  std::unique_ptr<cq::StreamEngine> engines[kServers];
  std::unique_ptr<cq::EngineHooks> hooks[kServers];
};

std::vector<Key> register_queries(ChurnSim& sim, AppLayer& app,
                                  std::size_t n) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(7);
  std::vector<Key> keys;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    EXPECT_TRUE(client.insert(obj).ok);
    // The same query also lives in the owner's stream engine, riding
    // the log as an app delta.
    EXPECT_TRUE(app.register_on_owner(QueryId{i}, obj.key));
    keys.push_back(obj.key);
  }
  return keys;
}

int run_until_converged(ChurnSim& sim, const std::vector<ServerId>& victims) {
  for (int period = 1; period <= kConvergenceBound; ++period) {
    sim.run_for(sim.protocol_period());
    bool all_dead = true;
    for (const ServerId v : victims) {
      all_dead = all_dead && sim.all_survivors_see_dead(v);
    }
    if (all_dead && sim.ring_matches_membership()) return period;
  }
  return -1;
}

/// Every replica of every active group sits at exactly the owner's
/// (epoch, seq) head. Returns the first divergence found.
std::optional<std::string> check_heads_converged(const SimCluster& cluster) {
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto owner_head = cluster.server(owner).log_head(group);
    if (!owner_head) {
      return "owner of " + group.label() + " has no log";
    }
    for (std::size_t i = 0; i < kServers; ++i) {
      const ServerId id{i};
      if (!cluster.is_alive(id) || id == owner) continue;
      if (!cluster.server(id).has_replica(group)) continue;
      const auto head = cluster.server(id).replica_head(group);
      if (head != owner_head) {
        return group.label() + ": replica on s" + std::to_string(i) +
               " at " + head->to_string() + " != owner " +
               owner_head->to_string();
      }
    }
  }
  return std::nullopt;
}

TEST(RecoveryChurn, KillReviveLosesNoQueriesAndConvergesHeads) {
  ChurnSim sim(log_churn_config());
  AppLayer app(sim);
  sim.start();
  // start() bootstraps fresh server tables; rebind the app layer to be
  // safe against any future re-ordering (hooks survive bootstrap).
  const auto keys = register_queries(sim, app, 48);
  ASSERT_EQ(app.live_query_count(), keys.size());
  sim.run_for(SimTime::from_minutes(11));  // replication settles

  // Matches fire before any failure.
  ASSERT_GT(app.fire(keys[0]), 0u);

  // --- Kill the owner of keys[0] plus one more server. ----------------
  const ServerId victim = *sim.cluster().find_owner(keys[0]);
  ServerId second{(victim.value + 5) % kServers};
  const std::vector<ServerId> victims{victim, second};
  for (const ServerId v : victims) sim.kill(v);
  ASSERT_GE(run_until_converged(sim, victims), 0);

  // Zero lost queries: protocol state and app state both survived.
  const auto stats = sim.cluster().total_stats();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(stats.groups_lost, 0u);
  std::size_t protocol_queries = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) continue;
    protocol_queries += sim.cluster().server(ServerId{i}).total_queries();
  }
  EXPECT_EQ(protocol_queries, keys.size());
  EXPECT_EQ(app.live_query_count(), keys.size());
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);

  // Matches keep firing on the promoted owner's engine.
  EXPECT_GT(app.fire(keys[0]), 0u);

  // --- Revive the first victim: restart -> refute -> rejoin -> catch
  // up through handed-back groups. --------------------------------------
  sim.revive(victim);
  app.attach(victim);  // the restarted process gets a fresh engine
  bool rejoined = false;
  for (int period = 0; period < kConvergenceBound && !rejoined; ++period) {
    sim.run_for(sim.protocol_period());
    rejoined = sim.all_survivors_see_alive(victim) &&
               sim.cluster().ring().contains(victim);
  }
  ASSERT_TRUE(rejoined);

  // The rejoined node serves its mapped groups WITH state: nothing was
  // lost in the handback, and a record owned by it still matches.
  EXPECT_EQ(app.live_query_count(), keys.size());
  std::size_t revived_owned = 0;
  for (const auto& [group, owner] : sim.cluster().owner_index()) {
    if (owner == victim) ++revived_owned;
  }
  EXPECT_GT(revived_owned, 0u)
      << "ring re-admission handed no groups back to the revived node";
  EXPECT_GT(sim.cluster().total_stats().handoffs, 0u);
  for (const auto& k : keys) {
    if (*sim.cluster().find_owner(k) == victim) {
      EXPECT_GT(app.fire(k), 0u) << "rejoined node serves empty state";
      break;
    }
  }

  // Let anti-entropy finish and the stale-replica lease GC sweep the
  // ex-holders (3 check periods), then demand fully converged heads.
  sim.run_for(SimTime::from_minutes(21));
  EXPECT_EQ(check_heads_converged(sim.cluster()), std::nullopt);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
  EXPECT_EQ(app.live_query_count(), keys.size());
}

TEST(RecoveryChurn, LogModeReplicationTrafficIsIncremental) {
  // Steady state in log mode must not re-ship full snapshots: after
  // the initial activation snapshots, periodic traffic is probes (and
  // the occasional diff), not per-period SnapshotChunks.
  ChurnSim sim(log_churn_config());
  AppLayer app(sim);
  sim.start();
  (void)register_queries(sim, app, 32);
  sim.run_for(SimTime::from_minutes(6));
  sim.cluster().reset_stats();

  sim.run_for(SimTime::from_minutes(10));  // two quiet check periods
  const auto stats = sim.cluster().total_stats();
  EXPECT_GT(stats.anti_entropy_probes, 0u);
  EXPECT_EQ(stats.replications, 0u);  // no legacy full-state leases
  // Quiet cluster: converged holders do not need snapshots.
  EXPECT_EQ(stats.snapshot_chunks, 0u);
  EXPECT_EQ(check_heads_converged(sim.cluster()), std::nullopt);
}

}  // namespace
}  // namespace clash::sim
