// Crash + restart with the durable storage subsystem under the
// simulator: a killed node must come back with its own groups from
// local disk (zero lost queries), a torn WAL tail must heal through
// the replica set's suffix repair, and the local-disk path must move
// strictly fewer bytes over the network than the in-memory pull path.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"
#include "sim/cluster.hpp"

namespace clash::sim {
namespace {

struct Loaded {
  std::size_t streams = 0;
  std::size_t queries = 0;
};

SimCluster::Config durable_cluster_config(ClashConfig::DurabilityMode mode,
                                          unsigned factor) {
  SimCluster::Config cfg;
  cfg.num_servers = 16;
  cfg.seed = 42;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 4;
  cfg.clash.capacity = 1e9;  // no splitting noise
  cfg.clash.replication_factor = factor;
  cfg.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.clash.durability_mode = mode;
  cfg.clash.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  return cfg;
}

Loaded load_cluster(SimCluster& cluster, std::size_t n_streams,
                    std::size_t n_queries, std::uint64_t seed) {
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_streams; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    EXPECT_TRUE(client.insert(obj).ok);
  }
  for (std::size_t i = 0; i < n_queries; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    EXPECT_TRUE(client.insert(obj).ok);
  }
  return Loaded{n_streams, n_queries};
}

std::pair<std::size_t, std::size_t> count_objects(SimCluster& cluster) {
  std::size_t streams = 0;
  std::size_t queries = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    const ServerId id{i};
    if (!cluster.is_alive(id)) continue;
    streams += cluster.server(id).total_streams();
    queries += cluster.server(id).total_queries();
  }
  return {streams, queries};
}

ServerId busiest_server(SimCluster& cluster) {
  std::map<std::uint64_t, std::size_t> groups_of;
  for (const auto& [group, owner] : cluster.owner_index()) {
    groups_of[owner.value]++;
  }
  ServerId victim{0};
  std::size_t best = 0;
  for (const auto& [id, n] : groups_of) {
    if (n > best) {
      best = n;
      victim = ServerId{id};
    }
  }
  return victim;
}

TEST(DurabilityRestart, KilledNodeRecoversItsGroupsFromLocalDisk) {
  auto cfg = durable_cluster_config(
      ClashConfig::DurabilityMode::kWalSnapshot, 2);
  SimCluster cluster(cfg);
  cluster.bootstrap();
  const auto loaded = load_cluster(cluster, 600, 150, 7);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const ServerId victim = busiest_server(cluster);
  const std::size_t victim_groups =
      cluster.server(victim).table().active_count();
  ASSERT_GT(victim_groups, 0u);
  const std::size_t victim_streams = cluster.server(victim).total_streams();
  const std::size_t victim_queries = cluster.server(victim).total_queries();

  const auto before = cluster.total_stats();
  cluster.crash_server(victim);
  cluster.restart_server(victim);
  const auto delta = cluster.total_stats() - before;

  // Every group is back on the victim, with its state, from disk.
  EXPECT_EQ(delta.groups_lost, 0u);
  EXPECT_EQ(cluster.server(victim).table().active_count(), victim_groups);
  EXPECT_EQ(cluster.server(victim).total_streams(), victim_streams);
  EXPECT_EQ(cluster.server(victim).total_queries(), victim_queries);
  const auto [streams, queries] = count_objects(cluster);
  EXPECT_EQ(streams, loaded.streams);
  EXPECT_EQ(queries, loaded.queries);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
  // Local recovery: no snapshot needed to flow INTO the victim (the
  // outbound re-replication after promotion is the only chunk
  // traffic, and the recovery pull repaired zero entries — the disk
  // was complete).
  EXPECT_EQ(cluster.server(victim).recovery_stats().snapshots_pulled, 0u);
  EXPECT_EQ(cluster.server(victim).recovery_stats().entries_repaired, 0u);
}

TEST(DurabilityRestart, TornWalTailHealsFromReplicaSuffix) {
  auto cfg = durable_cluster_config(
      ClashConfig::DurabilityMode::kWalSnapshot, 2);
  // No fsync at all: the crash drops every byte the OS never flushed,
  // plus a torn record — the worst disk the policy allows.
  cfg.clash.fsync_policy = ClashConfig::FsyncPolicy::kNever;
  SimCluster cluster(cfg);
  cluster.bootstrap();
  const auto loaded = load_cluster(cluster, 400, 100, 11);
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const ServerId victim = busiest_server(cluster);
  auto* backend = cluster.storage_backend(victim);
  ASSERT_NE(backend, nullptr);
  backend->set_crash_fault(storage::MemBackend::CrashFault{false, 37});

  const std::size_t victim_streams = cluster.server(victim).total_streams();
  const std::size_t victim_queries = cluster.server(victim).total_queries();
  cluster.crash_server(victim);
  cluster.restart_server(victim);

  // The disk lost a tail, but the synchronous recovery pull streamed
  // the missing suffix from the surviving holders before promotion.
  EXPECT_GT(cluster.server(victim).recovery_stats().entries_repaired +
                cluster.server(victim).recovery_stats().snapshots_pulled,
            0u);
  EXPECT_EQ(cluster.server(victim).total_streams(), victim_streams);
  EXPECT_EQ(cluster.server(victim).total_queries(), victim_queries);
  const auto [streams, queries] = count_objects(cluster);
  EXPECT_EQ(streams, loaded.streams);
  EXPECT_EQ(queries, loaded.queries);
  EXPECT_EQ(cluster.check_invariants(), std::nullopt);
}

TEST(DurabilityRestart, SurvivesRestartWithoutAnyReplicas) {
  // Replication off entirely: the disk is the only copy. kNone loses
  // every group; kWalSnapshot loses nothing.
  for (const auto mode : {ClashConfig::DurabilityMode::kNone,
                          ClashConfig::DurabilityMode::kWalSnapshot}) {
    auto cfg = durable_cluster_config(mode, 0);
    SimCluster cluster(cfg);
    cluster.bootstrap();
    const auto loaded = load_cluster(cluster, 300, 80, 23);
    cluster.set_now(SimTime::from_minutes(5));
    cluster.run_all_load_checks();

    const ServerId victim = busiest_server(cluster);
    cluster.crash_server(victim);
    cluster.restart_server(victim);
    const auto [streams, queries] = count_objects(cluster);
    if (mode == ClashConfig::DurabilityMode::kNone) {
      EXPECT_LT(streams, loaded.streams);
    } else {
      EXPECT_EQ(streams, loaded.streams);
      EXPECT_EQ(queries, loaded.queries);
    }
    EXPECT_EQ(cluster.check_invariants(), std::nullopt);
  }
}

TEST(DurabilityRestart, FullChurnLifecycleComposesWithStaleDiskImages) {
  // Kill -> detect -> evict -> promote -> revive under live SWIM, with
  // durability on: the revived node restores a now-stale disk image
  // (its groups were failed over at higher epochs while it was down)
  // and the handoff/anti-entropy machinery must supersede it cleanly.
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = 12;
  cfg.cluster.seed = 1234;
  cfg.cluster.clash.key_width = 16;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 1e9;
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.cluster.clash.durability_mode =
      ClashConfig::DurabilityMode::kWalSnapshot;
  cfg.cluster.clash.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  cfg.seed = 99;
  ChurnSim sim(cfg);
  sim.start();

  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(17);
  constexpr std::size_t kQueries = 120;
  for (std::size_t i = 0; i < kQueries; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFF, 16);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    ASSERT_TRUE(client.insert(obj).ok);
  }
  sim.run_for(SimTime::from_minutes(11));  // replication settles

  const ServerId victim{3};
  sim.kill(victim);
  for (int p = 0; p < 40 && !sim.all_survivors_see_dead(victim); ++p) {
    sim.run_for(sim.protocol_period());
  }
  ASSERT_TRUE(sim.all_survivors_see_dead(victim));
  sim.run_for(SimTime::from_minutes(6));  // failover re-replicates

  sim.revive(victim);
  for (int p = 0; p < 40 && !sim.all_survivors_see_alive(victim); ++p) {
    sim.run_for(sim.protocol_period());
  }
  sim.run_for(SimTime::from_minutes(11));  // handoffs + anti-entropy

  std::size_t queries = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) continue;
    queries += sim.cluster().server(ServerId{i}).total_queries();
  }
  EXPECT_EQ(queries, kQueries);
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);
}

TEST(DurabilityRestart, LocalRecoveryMovesFewerBytesThanNetworkPull) {
  std::map<int, std::uint64_t> bytes;
  for (const auto mode : {ClashConfig::DurabilityMode::kNone,
                          ClashConfig::DurabilityMode::kWalSnapshot}) {
    auto cfg = durable_cluster_config(mode, 2);
    SimCluster cluster(cfg);
    cluster.bootstrap();
    load_cluster(cluster, 600, 150, 7);
    cluster.set_now(SimTime::from_minutes(5));
    cluster.run_all_load_checks();

    const ServerId victim = busiest_server(cluster);
    cluster.set_wire_metering(true);
    const auto before = cluster.total_stats();
    cluster.crash_server(victim);
    cluster.restart_server(victim);
    const auto delta = cluster.total_stats() - before;
    bytes[int(mode)] = delta.wire_bytes;
    EXPECT_EQ(delta.groups_lost, 0u);  // factor 2 keeps state either way
  }
  // Strictly fewer network bytes when the state comes off local disk.
  EXPECT_LT(bytes[int(ClashConfig::DurabilityMode::kWalSnapshot)],
            bytes[int(ClashConfig::DurabilityMode::kNone)]);
}

}  // namespace
}  // namespace clash::sim
