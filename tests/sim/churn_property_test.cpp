// Property test: under arbitrary interleavings of stream churn, query
// churn, load checks, forced splits, and resolutions, the cluster's
// global invariants hold at every step and no state is ever lost.
#include <gtest/gtest.h>

#include <map>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

struct ChurnSweep : ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, InvariantsHoldUnderRandomChurn) {
  const std::uint64_t seed = GetParam();
  auto cfg = testing::small_cluster_config(24, 10, 3, /*capacity=*/60.0);
  cfg.seed = seed;
  SimCluster cluster(cfg);
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(seed * 7919 + 3);

  std::map<std::uint64_t, Key> live_streams;   // source id -> key
  std::map<std::uint64_t, Key> live_queries;   // query id -> key
  std::uint64_t next_id = 1;
  int checks = 0;

  for (int step = 0; step < 600; ++step) {
    const auto dice = rng.below(100);
    if (dice < 30) {  // add a stream
      const Key k(rng.next() & 0x3FF, 10);
      AcceptObject obj;
      obj.key = k;
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{next_id};
      obj.stream_rate = 1 + double(rng.below(10));
      const auto out = client.insert(obj);
      ASSERT_TRUE(out.ok) << "step " << step;
      live_streams[next_id++] = k;
    } else if (dice < 45 && !live_streams.empty()) {  // remove a stream
      auto it = live_streams.begin();
      std::advance(it, long(rng.below(live_streams.size())));
      cluster.withdraw_stream(ClientId{it->first}, it->second);
      live_streams.erase(it);
    } else if (dice < 60) {  // add a query
      const Key k(rng.next() & 0x3FF, 10);
      AcceptObject obj;
      obj.key = k;
      obj.kind = ObjectKind::kQuery;
      obj.query_id = QueryId{next_id};
      const auto out = client.insert(obj);
      ASSERT_TRUE(out.ok) << "step " << step;
      live_queries[next_id++] = k;
    } else if (dice < 70 && !live_queries.empty()) {  // expire a query
      auto it = live_queries.begin();
      std::advance(it, long(rng.below(live_queries.size())));
      cluster.withdraw_query(QueryId{it->first}, it->second);
      live_queries.erase(it);
    } else if (dice < 85) {  // a server runs its load check
      cluster.set_now(SimTime::from_minutes(5 * ++checks));
      cluster.run_load_check(ServerId{rng.below(cfg.num_servers)});
    } else if (dice < 92) {  // adversarial forced split
      const Key k(rng.next() & 0x3FF, 10);
      const auto g = cluster.find_active_group(k);
      if (g && g->depth() < 10) {
        (void)cluster.server(*cluster.find_owner(k)).force_split(*g);
      }
    } else {  // resolution of a random key must always succeed
      const auto out = client.resolve(Key(rng.next() & 0x3FF, 10));
      ASSERT_TRUE(out.ok) << "step " << step;
    }

    if (step % 25 == 0) {
      const auto err = cluster.check_invariants();
      ASSERT_EQ(err, std::nullopt) << "step " << step << ": " << *err;
    }
  }

  // Conservation: every live stream and query is stored exactly once,
  // at the server the owner index designates.
  std::size_t streams_found = 0, queries_found = 0;
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    streams_found += cluster.server(ServerId{i}).total_streams();
    queries_found += cluster.server(ServerId{i}).total_queries();
  }
  EXPECT_EQ(streams_found, live_streams.size());
  EXPECT_EQ(queries_found, live_queries.size());

  for (const auto& [id, k] : live_streams) {
    const auto owner = cluster.find_owner(k);
    ASSERT_TRUE(owner.has_value());
    const auto* gs = cluster.server(*owner).group_state(
        *cluster.find_active_group(k));
    ASSERT_NE(gs, nullptr);
    EXPECT_EQ(gs->streams.count(ClientId{id}), 1u) << "stream " << id;
  }

  // Load accounting has not drifted: per-group cached rates equal the
  // sum of live stream rates.
  double total_rate_stored = 0;
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    for (const auto* e : cluster.server(ServerId{i}).table().active_entries()) {
      const auto* gs = cluster.server(ServerId{i}).group_state(e->group);
      if (gs == nullptr) continue;
      double member_sum = 0;
      for (const auto& [_, s] : gs->streams) member_sum += s.rate;
      EXPECT_NEAR(gs->stream_rate, member_sum, 1e-6)
          << "rate drift in " << e->group.label();
      total_rate_stored += member_sum;
    }
  }
  double total_rate_live = 0;
  (void)total_rate_stored;
  (void)total_rate_live;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace clash::sim
