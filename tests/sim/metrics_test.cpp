#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace clash::sim {
namespace {

TEST(TimeSeries, MaxAndMean) {
  TimeSeries ts;
  ts.add(SimTime::from_seconds(1), 10);
  ts.add(SimTime::from_seconds(2), 30);
  ts.add(SimTime::from_seconds(3), 20);
  EXPECT_DOUBLE_EQ(ts.max(), 30);
  EXPECT_DOUBLE_EQ(ts.mean(), 20);
}

TEST(TimeSeries, WindowedQueries) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.add(SimTime::from_seconds(i), double(i));
  }
  // [from, to): samples 2, 3, 4.
  EXPECT_DOUBLE_EQ(ts.mean_between(SimTime::from_seconds(2),
                                   SimTime::from_seconds(5)),
                   3.0);
  EXPECT_DOUBLE_EQ(ts.max_between(SimTime::from_seconds(2),
                                  SimTime::from_seconds(5)),
                   4.0);
  // Empty window.
  EXPECT_DOUBLE_EQ(ts.mean_between(SimTime::from_seconds(100),
                                   SimTime::from_seconds(200)),
                   0.0);
}

TEST(TimeSeries, EmptyBehaviour) {
  const TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
}

TEST(Summary, Moments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Summary, DegenerateCases) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(7);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);  // single sample
}

}  // namespace
}  // namespace clash::sim
