// The ISSUE's acceptance scenario: a 16-node simulated cluster under
// churn. Four servers are killed mid-run; SWIM detection (not the
// oracle) must converge within a bounded number of protocol periods,
// the Chord ring must end up reflecting exactly the surviving set, and
// every previously-active key group must be reachable again through
// promoted replicas with no state loss.
#include <gtest/gtest.h>

#include <algorithm>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"
#include "tests/clash/test_util.hpp"

namespace clash::sim {
namespace {

constexpr std::size_t kServers = 16;
constexpr unsigned kWidth = 10;
/// Detection + dissemination bound asserted by the churn tests:
/// rotation (<= 15) is bypassed by gossip, so convergence in practice
/// takes ~10 periods; 30 is the hard ceiling.
constexpr int kConvergenceBound = 30;

ChurnSim::Config churn_config(unsigned replication) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = kServers;
  cfg.cluster.seed = 1234;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 2000.0;  // loads stay well below split
  cfg.cluster.clash.replication_factor = replication;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = 99;
  return cfg;
}

std::vector<Key> load_streams(ChurnSim& sim, std::size_t n) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(7);
  std::vector<Key> keys;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0x3FF, kWidth);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2;
    EXPECT_TRUE(client.insert(obj).ok);
    keys.push_back(obj.key);
  }
  return keys;
}

/// Steps the simulation one protocol period at a time until every
/// victim is seen dead by all survivors and the ring matches the
/// alive set; returns the number of periods it took (-1 on timeout).
int run_until_converged(ChurnSim& sim, const std::vector<ServerId>& victims) {
  for (int period = 1; period <= kConvergenceBound; ++period) {
    sim.run_for(sim.protocol_period());
    const bool all_dead =
        std::all_of(victims.begin(), victims.end(), [&](ServerId v) {
          return sim.all_survivors_see_dead(v);
        });
    if (all_dead && sim.ring_matches_membership()) return period;
  }
  return -1;
}

TEST(MembershipChurn, KillFourServersConvergesAndFailsOver) {
  ChurnSim sim(churn_config(/*replication=*/2));
  sim.start();
  const auto keys = load_streams(sim, 64);
  // Two load-check rounds so every active group is lease-replicated.
  sim.run_for(SimTime::from_minutes(11));
  ASSERT_GT(sim.cluster().total_stats().replications, 0u);

  const std::vector<ServerId> victims{ServerId{1}, ServerId{5}, ServerId{9},
                                      ServerId{13}};
  for (const ServerId v : victims) sim.kill(v);

  const int periods = run_until_converged(sim, victims);
  ASSERT_GE(periods, 0) << "survivors never converged within "
                        << kConvergenceBound << " protocol periods";

  // The ring reflects exactly the surviving set.
  EXPECT_EQ(sim.cluster().alive_count(), kServers - victims.size());
  EXPECT_EQ(sim.cluster().ring().server_count(), kServers - victims.size());
  for (const ServerId v : victims) {
    EXPECT_FALSE(sim.cluster().ring().contains(v));
  }

  // Failover promoted replicas: no group lost its state, and the
  // global invariants hold again.
  const auto stats = sim.cluster().total_stats();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(stats.groups_lost, 0u);
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);

  // Every stream survived somewhere alive...
  std::size_t streams_found = 0;
  for (std::size_t i = 0; i < kServers; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) continue;
    streams_found += sim.cluster().server(ServerId{i}).total_streams();
  }
  EXPECT_EQ(streams_found, keys.size());

  // ...and every key group is reachable again through a live owner.
  ClashClient fresh(sim.cluster().clash_config(),
                    sim.cluster().client_env(ServerId{2}),
                    sim.cluster().hasher());
  for (const auto& k : keys) {
    const auto out = fresh.resolve(k);
    ASSERT_TRUE(out.ok) << k.to_string();
    EXPECT_TRUE(sim.cluster().is_alive(out.server));
  }
}

TEST(MembershipChurn, SequentialKillsStayConsistent) {
  ChurnSim sim(churn_config(/*replication=*/3));
  sim.start();
  (void)load_streams(sim, 48);
  sim.run_for(SimTime::from_minutes(11));

  const std::vector<ServerId> victims{ServerId{3}, ServerId{7},
                                      ServerId{11}, ServerId{14}};
  for (const ServerId v : victims) {
    sim.kill(v);
    const int periods = run_until_converged(sim, {v});
    ASSERT_GE(periods, 0) << "no convergence on " << to_string(v);
    ASSERT_EQ(sim.cluster().check_invariants(), std::nullopt)
        << "after killing " << to_string(v);
    // Let replication re-spread before the next failure.
    sim.run_for(SimTime::from_minutes(6));
  }
  EXPECT_EQ(sim.cluster().alive_count(), kServers - victims.size());
  EXPECT_EQ(sim.cluster().total_stats().groups_lost, 0u);
}

TEST(MembershipChurn, RevivedServerRefutesAndRejoinsRing) {
  ChurnSim sim(churn_config(/*replication=*/2));
  sim.start();
  (void)load_streams(sim, 32);
  sim.run_for(SimTime::from_minutes(11));

  const ServerId victim{6};
  sim.kill(victim);
  ASSERT_GE(run_until_converged(sim, {victim}), 0);
  ASSERT_FALSE(sim.cluster().ring().contains(victim));

  sim.revive(victim);
  bool rejoined = false;
  for (int period = 0; period < kConvergenceBound && !rejoined; ++period) {
    sim.run_for(sim.protocol_period());
    rejoined = sim.all_survivors_see_alive(victim) &&
               sim.cluster().ring().contains(victim);
  }
  ASSERT_TRUE(rejoined) << "revived server never re-admitted";
  EXPECT_TRUE(sim.ring_matches_membership());
  EXPECT_EQ(sim.cluster().check_invariants(), std::nullopt);

  // The rejoined (empty) server participates again: the full key space
  // still resolves with it back on the ring.
  ClashClient fresh(sim.cluster().clash_config(),
                    sim.cluster().client_env(victim),
                    sim.cluster().hasher());
  for (std::uint64_t v = 0; v < 1024; v += 37) {
    const auto out = fresh.resolve(Key(v, kWidth));
    ASSERT_TRUE(out.ok) << v;
  }
}

TEST(MembershipChurn, NoFalsePositivesInHealthyCluster) {
  ChurnSim sim(churn_config(/*replication=*/0));
  sim.start();
  sim.run_for(SimTime::from_minutes(2));  // ~120 protocol periods
  for (std::size_t i = 0; i < kServers; ++i) {
    for (std::size_t j = 0; j < kServers; ++j) {
      EXPECT_EQ(sim.view_of(ServerId{i}).state_of(ServerId{j}),
                MemberState::kAlive)
          << i << " -> " << j;
    }
  }
  EXPECT_TRUE(sim.ring_matches_membership());
  EXPECT_GT(sim.gossip_messages(), 0u);
}

}  // namespace
}  // namespace clash::sim
