#include "membership/detector.hpp"

#include <algorithm>

namespace clash::membership {

FailureDetector::FailureDetector(ServerId self, DetectorConfig cfg,
                                 std::uint64_t seed)
    : self_(self), cfg_(cfg), rng_(seed) {}

void FailureDetector::acknowledge(std::uint64_t sequence) {
  pending_.erase(sequence);
}

void FailureDetector::forget(ServerId id) {
  std::erase_if(pending_,
                [&](const auto& kv) { return kv.second.target == id; });
}

bool FailureDetector::awaiting(ServerId id) const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [&](const auto& kv) { return kv.second.target == id; });
}

std::optional<ServerId> FailureDetector::next_target(
    const std::vector<ServerId>& candidates) {
  // Randomized round-robin (SWIM 4.3): shuffle once per rotation and
  // walk the list, so the worst-case time to first-probe any member is
  // one full rotation, not unbounded as with pure random choice.
  for (std::size_t attempts = 0; attempts < candidates.size() + 1;
       ++attempts) {
    if (rotation_pos_ >= rotation_.size()) {
      rotation_ = candidates;
      std::shuffle(rotation_.begin(), rotation_.end(), rng_);
      rotation_pos_ = 0;
      if (rotation_.empty()) return std::nullopt;
    }
    const ServerId candidate = rotation_[rotation_pos_++];
    const bool still_member =
        std::find(candidates.begin(), candidates.end(), candidate) !=
        candidates.end();
    if (still_member && candidate != self_ && !awaiting(candidate)) {
      return candidate;
    }
  }
  return std::nullopt;
}

FailureDetector::Actions FailureDetector::tick(
    const std::vector<ServerId>& candidates) {
  Actions actions;

  // Age pending probes; escalate to indirection at the ping timeout and
  // hand the target over as unresponsive when both stages expire.
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    const bool gone = std::find(candidates.begin(), candidates.end(),
                                p.target) == candidates.end();
    if (gone) {
      it = pending_.erase(it);
      continue;
    }
    ++p.age;
    if (p.age >= cfg_.ping_timeout_periods + cfg_.indirect_timeout_periods) {
      actions.unresponsive.push_back(p.target);
      it = pending_.erase(it);
      continue;
    }
    if (p.age >= cfg_.ping_timeout_periods && !p.indirect_sent) {
      p.indirect_sent = true;
      // k random proxies, excluding self and the silent target.
      std::vector<ServerId> proxies;
      for (const ServerId c : candidates) {
        if (c != p.target && c != self_) proxies.push_back(c);
      }
      std::shuffle(proxies.begin(), proxies.end(), rng_);
      if (proxies.size() > cfg_.ping_req_fanout) {
        proxies.resize(cfg_.ping_req_fanout);
      }
      for (const ServerId proxy : proxies) {
        actions.ping_reqs.emplace_back(proxy, Probe{p.target, it->first});
      }
    }
    ++it;
  }

  if (const auto target = next_target(candidates)) {
    const std::uint64_t seq = next_sequence_++;
    pending_[seq] = Pending{*target, 0, false};
    actions.pings.push_back(Probe{*target, seq});
  }
  return actions;
}

}  // namespace clash::membership
