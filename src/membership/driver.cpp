#include "membership/driver.hpp"

#include "wire/codec.hpp"

namespace clash::membership {

MembershipDriver::MembershipDriver(ServerId self, MembershipConfig cfg,
                                   MembershipEnv& env, std::uint64_t seed)
    : self_(self),
      cfg_(cfg),
      env_(env),
      view_(self, cfg.view),
      detector_(self, cfg.detector, seed) {}

void MembershipDriver::send(ServerId to, GossipKind kind,
                            std::uint64_t sequence, ServerId target) {
  Gossip msg;
  msg.kind = kind;
  msg.sequence = sequence;
  msg.target = target;
  msg.updates = view_.pick_updates(cfg_.gossip_max_updates);
  if (census_ != nullptr) {
    msg.census = census_->pick_records(cfg_.census_max_records);
  }
  msg.checksum = wire::content_crc(msg);  // covers the census too
  env_.gossip_send(to, msg);
}

void MembershipDriver::drain_view_events() {
  for (const ServerId id : view_.take_died()) {
    detector_.forget(id);
    if (census_ != nullptr) census_->forget(id);
    if (const auto it = suspected_at_.find(id);
        it != suspected_at_.end()) {
      detect_periods_.record(period_ - it->second);
      suspected_at_.erase(it);
    }
    env_.on_member_dead(id);
  }
  for (const ServerId id : view_.take_joined()) {
    env_.on_member_joined(id);
  }
}

void MembershipDriver::tick() {
  affinity_.assert_held();
  ++period_;
  if (census_ != nullptr) census_->tick(view_.self_incarnation());

  // Relays whose target never acked are dead weight; the requester has
  // long since timed out on its own schedule.
  std::erase_if(relays_, [&](const auto& kv) {
    return period_ - kv.second.created_period >
           cfg_.detector.ping_timeout_periods +
               cfg_.detector.indirect_timeout_periods + 1;
  });

  // Start / expire suspicion timers. A member entering suspect state
  // (locally or via gossip) gets suspicion_periods to refute before it
  // is declared dead.
  for (const ServerId id : view_.probe_candidates()) {
    if (view_.state_of(id) == MemberState::kSuspect) {
      const auto [it, fresh] = suspected_at_.try_emplace(id, period_);
      if (fresh) {
        env_.on_member_suspected(id);
      } else if (period_ - it->second >= cfg_.suspicion_periods) {
        view_.declare_dead(id);
      }
    } else {
      suspected_at_.erase(id);
    }
  }
  drain_view_events();

  const auto actions = detector_.tick(view_.probe_candidates());
  for (const ServerId target : actions.unresponsive) {
    view_.suspect(target);
    if (suspected_at_.try_emplace(target, period_).second) {
      env_.on_member_suspected(target);
    }
  }
  for (const auto& ping : actions.pings) {
    send(ping.target, GossipKind::kPing, ping.sequence, ping.target);
  }
  for (const auto& [proxy, probe] : actions.ping_reqs) {
    send(proxy, GossipKind::kPingReq, probe.sequence, probe.target);
  }
}

void MembershipDriver::handle(ServerId from, const Gossip& msg) {
  affinity_.assert_held();
  // Corruption fence: a rumour batch damaged in flight but still
  // structurally valid could suspect (or kill) an arbitrary member at
  // an arbitrary incarnation — the worst possible garbage to install.
  // Reject the whole message on checksum mismatch; SWIM's probe
  // redundancy re-delivers the news on the next period.
  if (msg.checksum != 0 && msg.checksum != wire::content_crc(msg)) {
    ++corrupt_rejected_;
    corrupt_rejected_c_.inc();
    return;
  }

  // A message from a member we hold suspect or dead contradicts the
  // view; re-queue the rumour so our reply tells them and they can
  // refute with a bumped incarnation (the revival path rides on this).
  if (from != self_ && view_.state_of(from) != MemberState::kAlive) {
    view_.regossip(from);
  }

  // Piggybacked rumours first: even a bare ack carries news.
  for (const MemberUpdate& update : msg.updates) {
    view_.apply(update);
  }
  // Then the census payload, each record against its own CRC fence —
  // the frame fence above already passed, but a record relayed from a
  // third node carries the original publisher's proof, which survives
  // re-framing (and hand-built unchecksummed frames in tests).
  if (census_ != nullptr) {
    for (const NodeCensusRecord& rec : msg.census) {
      if (rec.checksum != 0 &&
          rec.checksum != wire::census_record_crc(rec)) {
        census_->count_crc_reject();
        continue;
      }
      // Death fence: a record for a member this view holds dead is an
      // echo still circulating in the epidemic. Without this check the
      // echoes re-install the tombstoned entry (each relay resets its
      // age), so a dead node's record would never leave the census.
      // Once the member refutes with a bumped incarnation it turns
      // alive here first, and its fresh records absorb normally.
      if (rec.node != self_ &&
          view_.state_of(rec.node) == MemberState::kDead) {
        continue;
      }
      census_->absorb(rec);
    }
  }
  drain_view_events();

  switch (msg.kind) {
    case GossipKind::kPing:
      send(from, GossipKind::kAck, msg.sequence, self_);
      break;
    case GossipKind::kPingReq: {
      // Probe the target on the requester's behalf; the relay entry
      // routes the target's ack back with the requester's sequence.
      const std::uint64_t relay_seq = kRelayBit | next_relay_sequence_++;
      relays_[relay_seq] = Relay{from, msg.sequence, period_};
      send(msg.target, GossipKind::kPing, relay_seq, msg.target);
      break;
    }
    case GossipKind::kAck: {
      const auto relay = relays_.find(msg.sequence);
      if (relay != relays_.end()) {
        send(relay->second.origin, GossipKind::kAck,
             relay->second.origin_sequence, msg.target);
        relays_.erase(relay);
        break;
      }
      detector_.acknowledge(msg.sequence);
      break;
    }
  }
}

}  // namespace clash::membership
