#include "membership/view.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace clash::membership {

MembershipView::MembershipView(ServerId self, ViewConfig cfg)
    : self_(self), cfg_(cfg) {}

void MembershipView::add_seed(ServerId id) {
  if (id == self_ || !id.valid()) return;
  members_.try_emplace(id);
}

unsigned MembershipView::transmit_budget() const {
  const double n = double(members_.size() + 1);
  const double budget =
      std::ceil(cfg_.dissemination_factor * std::log2(n + 1.0));
  return std::max(1u, unsigned(budget));
}

void MembershipView::enqueue(const MemberUpdate& update) {
  for (auto& r : queue_) {
    if (r.update.subject == update.subject) {
      r.update = update;
      r.transmits_left = transmit_budget();
      return;
    }
  }
  queue_.push_back(Rumour{update, transmit_budget()});
}

void MembershipView::record_transition(ServerId id, MemberState before,
                                       MemberState after) {
  if (before != MemberState::kDead && after == MemberState::kDead) {
    died_.push_back(id);
  } else if (before == MemberState::kDead && after != MemberState::kDead) {
    joined_.push_back(id);
  }
}

bool MembershipView::apply(const MemberUpdate& update) {
  if (!update.subject.valid()) return false;

  // Rumours about self: alive at <= our incarnation is stale noise;
  // suspect/dead at >= our incarnation must be refuted with a fresher
  // alive (SWIM's incarnation bump), or routing would drop a live node.
  if (update.subject == self_) {
    if (update.state != MemberState::kAlive &&
        update.incarnation >= self_inc_) {
      self_inc_ = update.incarnation + 1;
      enqueue(MemberUpdate{self_, MemberState::kAlive, self_inc_});
      return true;
    }
    return false;
  }

  const auto it = members_.find(update.subject);
  if (it == members_.end()) {
    // Unknown subject: alive/suspect introduces a join; a dead rumour
    // is still worth recording (and spreading) so late joiners do not
    // resurrect the member by accident.
    members_[update.subject] =
        MemberInfo{update.state, update.incarnation};
    if (update.state != MemberState::kDead) joined_.push_back(update.subject);
    enqueue(update);
    return true;
  }

  MemberInfo& info = it->second;
  bool wins = false;
  switch (update.state) {
    case MemberState::kAlive:
      // Alive needs a strictly newer incarnation: refuting a suspicion
      // (or a resurrection after death) requires the subject to bump.
      wins = update.incarnation > info.incarnation;
      break;
    case MemberState::kSuspect:
      wins = update.incarnation > info.incarnation ||
             (update.incarnation == info.incarnation &&
              info.state == MemberState::kAlive);
      break;
    case MemberState::kDead:
      // Death is incarnation-gated too: a dead rumour older than the
      // subject's current incarnation already lost to a refutation (or
      // restart) and must not re-kill it, or stale rumours circulating
      // in the gossip mesh would make a rejoin flap forever.
      wins = info.state != MemberState::kDead &&
             update.incarnation >= info.incarnation;
      break;
  }
  if (!wins) return false;

  record_transition(update.subject, info.state, update.state);
  info.state = update.state;
  info.incarnation = std::max(info.incarnation, update.incarnation);
  enqueue(MemberUpdate{update.subject, info.state, info.incarnation});
  return true;
}

void MembershipView::suspect(ServerId id) {
  const auto it = members_.find(id);
  if (it == members_.end() || it->second.state != MemberState::kAlive) return;
  it->second.state = MemberState::kSuspect;
  enqueue(MemberUpdate{id, MemberState::kSuspect, it->second.incarnation});
}

void MembershipView::declare_dead(ServerId id) {
  const auto it = members_.find(id);
  if (it == members_.end() || it->second.state == MemberState::kDead) return;
  record_transition(id, it->second.state, MemberState::kDead);
  it->second.state = MemberState::kDead;
  enqueue(MemberUpdate{id, MemberState::kDead, it->second.incarnation});
}

std::vector<MemberUpdate> MembershipView::pick_updates(std::size_t max) {
  // Least-transmitted first, so fresh rumours get on the wire before
  // nearly-exhausted ones.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [](const Rumour& a, const Rumour& b) {
                     return a.transmits_left > b.transmits_left;
                   });
  std::vector<MemberUpdate> out;
  for (auto& r : queue_) {
    if (out.size() >= max) break;
    out.push_back(r.update);
    --r.transmits_left;
  }
  std::erase_if(queue_, [](const Rumour& r) { return r.transmits_left == 0; });
  return out;
}

void MembershipView::regossip(ServerId id) {
  const auto it = members_.find(id);
  if (it == members_.end()) return;
  enqueue(MemberUpdate{id, it->second.state, it->second.incarnation});
}

std::vector<ServerId> MembershipView::take_died() {
  return std::exchange(died_, {});
}

std::vector<ServerId> MembershipView::take_joined() {
  return std::exchange(joined_, {});
}

bool MembershipView::knows(ServerId id) const {
  return id == self_ || members_.count(id) > 0;
}

MemberState MembershipView::state_of(ServerId id) const {
  if (id == self_) return MemberState::kAlive;
  const auto it = members_.find(id);
  return it == members_.end() ? MemberState::kDead : it->second.state;
}

std::uint64_t MembershipView::incarnation_of(ServerId id) const {
  if (id == self_) return self_inc_;
  const auto it = members_.find(id);
  return it == members_.end() ? 0 : it->second.incarnation;
}

std::vector<ServerId> MembershipView::probe_candidates() const {
  std::vector<ServerId> out;
  out.reserve(members_.size());
  for (const auto& [id, info] : members_) {
    if (info.state != MemberState::kDead) out.push_back(id);
  }
  return out;
}

std::vector<ServerId> MembershipView::living_members() const {
  auto out = probe_candidates();
  out.push_back(self_);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace clash::membership
