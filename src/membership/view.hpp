// MembershipView: one server's knowledge of the cluster (SWIM's member
// list). Every member carries an incarnation-numbered lifecycle state;
// conflicting rumours are resolved by the SWIM precedence rules, and
// every local change is queued for bounded piggybacked dissemination
// (each rumour rides on O(log S) outgoing gossip messages).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "clash/messages.hpp"
#include "common/types.hpp"

namespace clash::membership {

struct ViewConfig {
  /// Retransmit budget multiplier: each queued rumour is piggybacked on
  /// ceil(dissemination_factor * log2(n + 1)) outgoing messages (SWIM's
  /// lambda). Raising it trades bandwidth for faster/safer spread.
  double dissemination_factor = 3.0;
};

class MembershipView {
 public:
  MembershipView(ServerId self, ViewConfig cfg = {});

  [[nodiscard]] ServerId self() const { return self_; }
  [[nodiscard]] std::uint64_t self_incarnation() const { return self_inc_; }

  /// Install an initial member (bootstrap address book). Seeds start
  /// alive at incarnation 0 and are not gossiped (everyone has them).
  void add_seed(ServerId id);

  // --- Rumour application (SWIM 4.2 precedence) ----------------------
  /// Apply a received rumour. Returns true when it changed local
  /// knowledge (and was therefore queued for re-dissemination).
  /// Rumours about self that claim suspect/dead are refuted by bumping
  /// the local incarnation and gossiping a fresher alive.
  bool apply(const MemberUpdate& update);

  // --- Local failure-detector verdicts -------------------------------
  /// Probe failure: mark `id` suspect at its current incarnation.
  void suspect(ServerId id);
  /// Suspicion timeout: declare `id` dead.
  void declare_dead(ServerId id);

  // --- Dissemination --------------------------------------------------
  /// Up to `max` queued rumours to piggyback on one outgoing message,
  /// least-transmitted first; decrements their remaining budget.
  [[nodiscard]] std::vector<MemberUpdate> pick_updates(std::size_t max);

  /// Re-queue `id`'s current state with a fresh budget. Used when live
  /// evidence contradicts the view (a message arrives from a member we
  /// hold suspect/dead): the exhausted rumour must reach them again so
  /// they can refute it with a bumped incarnation.
  void regossip(ServerId id);
  [[nodiscard]] std::size_t pending_rumours() const { return queue_.size(); }

  // --- Events (drained by the driver) ---------------------------------
  /// Members declared dead (locally or via gossip) since the last call.
  [[nodiscard]] std::vector<ServerId> take_died();
  /// Members that joined or came back from the dead since the last call.
  [[nodiscard]] std::vector<ServerId> take_joined();

  // --- Introspection ---------------------------------------------------
  [[nodiscard]] bool knows(ServerId id) const;
  [[nodiscard]] MemberState state_of(ServerId id) const;
  [[nodiscard]] std::uint64_t incarnation_of(ServerId id) const;
  /// Non-dead members excluding self: the failure detector's targets.
  [[nodiscard]] std::vector<ServerId> probe_candidates() const;
  /// Non-dead members including self: the ring the cluster should run.
  [[nodiscard]] std::vector<ServerId> living_members() const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

 private:
  struct MemberInfo {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;
  };
  struct Rumour {
    MemberUpdate update;
    unsigned transmits_left = 0;
  };

  /// Queue (or supersede) a rumour for dissemination.
  void enqueue(const MemberUpdate& update);
  [[nodiscard]] unsigned transmit_budget() const;
  void record_transition(ServerId id, MemberState before, MemberState after);

  ServerId self_;
  ViewConfig cfg_;
  std::uint64_t self_inc_ = 0;
  std::map<ServerId, MemberInfo> members_;  // excludes self
  std::vector<Rumour> queue_;
  std::vector<ServerId> died_;
  std::vector<ServerId> joined_;
};

}  // namespace clash::membership
