// FailureDetector: SWIM's probe scheduler. Each protocol period it
// pings one member chosen by randomized round-robin (every member is
// probed within one full rotation, so detection time is bounded);
// unacknowledged pings escalate to ping-req indirection through k
// proxies before the target is handed to the view as a suspect.
//
// The detector is pure scheduling state -- no transport, no clock. The
// driver calls tick() once per protocol period and feeds acks back in,
// which is what lets the identical logic run under the discrete-event
// simulator and the epoll TCP node.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace clash::membership {

struct DetectorConfig {
  /// Periods to wait for a direct ack before trying indirection.
  unsigned ping_timeout_periods = 1;
  /// Further periods to wait for an indirect ack before suspecting.
  unsigned indirect_timeout_periods = 1;
  /// Proxies asked to ping-req on our behalf (SWIM's k).
  unsigned ping_req_fanout = 2;
};

class FailureDetector {
 public:
  struct Probe {
    ServerId target{};
    std::uint64_t sequence = 0;
  };

  /// What one protocol period decided: pings/ping-reqs to send and
  /// targets that exhausted both probe stages.
  struct Actions {
    std::vector<Probe> pings;
    std::vector<std::pair<ServerId, Probe>> ping_reqs;  // (proxy, probe)
    std::vector<ServerId> unresponsive;
  };

  FailureDetector(ServerId self, DetectorConfig cfg, std::uint64_t seed);

  /// Advance one protocol period over the current (non-dead, non-self)
  /// candidate set: age pending probes, escalate or expire them, then
  /// launch the next round-robin ping.
  [[nodiscard]] Actions tick(const std::vector<ServerId>& candidates);

  /// An ack for `sequence` arrived (directly or relayed by a proxy).
  void acknowledge(std::uint64_t sequence);

  /// Drop any pending probe of `id` (it died or left).
  void forget(ServerId id);

  [[nodiscard]] bool awaiting(ServerId id) const;

 private:
  [[nodiscard]] std::optional<ServerId> next_target(
      const std::vector<ServerId>& candidates);

  struct Pending {
    ServerId target{};
    unsigned age = 0;  // periods since the direct ping went out
    bool indirect_sent = false;
  };

  ServerId self_;
  DetectorConfig cfg_;
  Rng rng_;
  std::uint64_t next_sequence_ = 1;
  std::map<std::uint64_t, Pending> pending_;  // sequence -> probe state
  std::vector<ServerId> rotation_;            // shuffled probe order
  std::size_t rotation_pos_ = 0;
};

}  // namespace clash::membership
