// MembershipDriver: composes MembershipView + FailureDetector into the
// full SWIM protocol, transport-agnostic the same way ClashServer is:
// all I/O goes through MembershipEnv, so the identical logic runs under
// the discrete-event simulator (sim::ChurnSim) and the epoll TCP node
// (net::ClashNode). The host calls tick() once per protocol period and
// routes incoming Gossip messages to handle().
// Thread contract: like Census, the driver is affine to its host's
// single thread (event loop or simulator). All state is
// CLASH_GUARDED_BY(affinity_); public methods witness the token at
// entry, and net::ClashNode binds it to the event-loop probe.
#pragma once

#include <cstdint>
#include <map>

#include "clash/messages.hpp"
#include "common/affinity.hpp"
#include "common/thread_annotations.hpp"
#include "membership/detector.hpp"
#include "membership/view.hpp"
#include "obs/census.hpp"
#include "obs/hub.hpp"

namespace clash::membership {

struct MembershipConfig {
  ViewConfig view;
  DetectorConfig detector;
  /// Periods a suspect stays refutable before it is declared dead
  /// (SWIM's suspicion timeout, in protocol periods).
  unsigned suspicion_periods = 3;
  /// Max rumours piggybacked per gossip message.
  std::size_t gossip_max_updates = 6;
  /// Max cost-census records piggybacked per gossip message (when a
  /// census is attached). Small on purpose: census freshness is worth
  /// little, so it gets the leftover budget, not its own traffic.
  std::size_t census_max_records = 2;
};

/// Runtime services the driver needs, plus the membership-change
/// callbacks the deployment layer reacts to (ring updates, failover).
class MembershipEnv {
 public:
  virtual ~MembershipEnv() = default;

  /// Deliver a gossip message to a peer (fire-and-forget).
  virtual void gossip_send(ServerId to, const Gossip& msg) = 0;

  /// `id` was declared dead: remove it from the ring and fail its
  /// groups over. Fired once per death (until a revival).
  virtual void on_member_dead(ServerId id) { (void)id; }

  /// `id` joined (or returned from the dead with a fresher
  /// incarnation): add it to the ring.
  virtual void on_member_joined(ServerId id) { (void)id; }

  /// `id` entered suspect state (locally or via gossip) and its
  /// refutation timer just started. Advisory: fired for observability
  /// (flight recorders), not for failover — wait for on_member_dead.
  virtual void on_member_suspected(ServerId id) { (void)id; }
};

class MembershipDriver {
 public:
  MembershipDriver(ServerId self, MembershipConfig cfg, MembershipEnv& env,
                   std::uint64_t seed);

  /// The affinity capability guarding all driver state; the embedding
  /// node binds it to its home-thread probe during setup.
  [[nodiscard]] common::AffinityToken& affinity()
      CLASH_RETURN_CAPABILITY(affinity_) {
    return affinity_;
  }

  /// Install the bootstrap member list (everyone starts trusted-alive).
  void add_seed(ServerId id) {
    affinity_.assert_held();
    view_.add_seed(id);
  }

  /// One protocol period: expire suspicions, run the failure detector,
  /// and launch this period's probes with piggybacked rumours.
  void tick();

  /// An incoming Gossip message from `from`.
  void handle(ServerId from, const Gossip& msg);

  [[nodiscard]] const MembershipView& view() const {
    affinity_.assert_held();
    return view_;
  }
  [[nodiscard]] std::uint64_t periods() const {
    affinity_.assert_held();
    return period_;
  }

  /// Retune this member's suspicion timeout live (per-node eviction
  /// aggressiveness: a deployment can give flaky-but-valuable nodes a
  /// longer leash without touching anyone else's config). Suspicions
  /// already running are re-judged against the new value on the next
  /// tick.
  void set_suspicion_periods(unsigned periods) {
    affinity_.assert_held();
    cfg_.suspicion_periods = periods;
  }
  [[nodiscard]] unsigned suspicion_periods() const {
    affinity_.assert_held();
    return cfg_.suspicion_periods;
  }

  /// Gossip payloads whose content CRC fence failed — corrupted in
  /// flight but still structurally valid; dropped before any rumour
  /// was applied.
  [[nodiscard]] std::uint64_t corrupt_rejected() const {
    affinity_.assert_held();
    return corrupt_rejected_;
  }

  /// Attach a cost census: outgoing gossip piggybacks up to
  /// census_max_records of its records, incoming census payloads are
  /// CRC-verified and absorbed, dead members are forgotten, and the
  /// census ticks once per protocol period. nullptr detaches.
  void set_census(obs::Census* census) {
    affinity_.assert_held();
    census_ = census;
  }
  [[nodiscard]] obs::Census* census() const {
    affinity_.assert_held();
    return census_;
  }

  /// Attach observability: suspicion-to-death latency (in protocol
  /// periods — the SWIM half of the detect->promote failover path)
  /// feeds clash_membership_detect_periods.
  void set_obs(obs::Hub* hub) {
    affinity_.assert_held();
    detect_periods_ = hub == nullptr
                          ? obs::HistogramHandle{}
                          : hub->registry.histogram(
                                "clash_membership_detect_periods");
    corrupt_rejected_c_ =
        hub == nullptr
            ? obs::Counter{}
            : hub->registry.counter("clash_corrupt_rejected_total");
  }

 private:
  void send(ServerId to, GossipKind kind, std::uint64_t sequence,
            ServerId target) CLASH_REQUIRES(affinity_);
  /// Fire env callbacks for state transitions the view recorded.
  void drain_view_events() CLASH_REQUIRES(affinity_);

  /// Relayed (ping-req) sequences are tagged with the top bit so acks
  /// for them can never collide with the detector's own probes.
  static constexpr std::uint64_t kRelayBit = std::uint64_t{1} << 63;

  struct Relay {
    ServerId origin{};
    std::uint64_t origin_sequence = 0;
    std::uint64_t created_period = 0;
  };

  common::AffinityToken affinity_;
  ServerId self_;
  MembershipConfig cfg_ CLASH_GUARDED_BY(affinity_);
  MembershipEnv& env_;
  MembershipView view_ CLASH_GUARDED_BY(affinity_);
  FailureDetector detector_ CLASH_GUARDED_BY(affinity_);
  std::uint64_t period_ CLASH_GUARDED_BY(affinity_) = 0;
  std::uint64_t next_relay_sequence_ CLASH_GUARDED_BY(affinity_) = 1;
  std::map<std::uint64_t, Relay> relays_
      CLASH_GUARDED_BY(affinity_);  // relay seq -> origin
  std::map<ServerId, std::uint64_t> suspected_at_
      CLASH_GUARDED_BY(affinity_);  // member -> period
  std::uint64_t corrupt_rejected_ CLASH_GUARDED_BY(affinity_) = 0;
  // Pointer guarded here; the pointee guards itself (its own token).
  obs::Census* census_ CLASH_GUARDED_BY(affinity_) = nullptr;
  obs::HistogramHandle detect_periods_ CLASH_GUARDED_BY(affinity_);
  obs::Counter corrupt_rejected_c_ CLASH_GUARDED_BY(affinity_);
};

}  // namespace clash::membership
