// MembershipDriver: composes MembershipView + FailureDetector into the
// full SWIM protocol, transport-agnostic the same way ClashServer is:
// all I/O goes through MembershipEnv, so the identical logic runs under
// the discrete-event simulator (sim::ChurnSim) and the epoll TCP node
// (net::ClashNode). The host calls tick() once per protocol period and
// routes incoming Gossip messages to handle().
#pragma once

#include <cstdint>
#include <map>

#include "clash/messages.hpp"
#include "membership/detector.hpp"
#include "membership/view.hpp"
#include "obs/census.hpp"
#include "obs/hub.hpp"

namespace clash::membership {

struct MembershipConfig {
  ViewConfig view;
  DetectorConfig detector;
  /// Periods a suspect stays refutable before it is declared dead
  /// (SWIM's suspicion timeout, in protocol periods).
  unsigned suspicion_periods = 3;
  /// Max rumours piggybacked per gossip message.
  std::size_t gossip_max_updates = 6;
  /// Max cost-census records piggybacked per gossip message (when a
  /// census is attached). Small on purpose: census freshness is worth
  /// little, so it gets the leftover budget, not its own traffic.
  std::size_t census_max_records = 2;
};

/// Runtime services the driver needs, plus the membership-change
/// callbacks the deployment layer reacts to (ring updates, failover).
class MembershipEnv {
 public:
  virtual ~MembershipEnv() = default;

  /// Deliver a gossip message to a peer (fire-and-forget).
  virtual void gossip_send(ServerId to, const Gossip& msg) = 0;

  /// `id` was declared dead: remove it from the ring and fail its
  /// groups over. Fired once per death (until a revival).
  virtual void on_member_dead(ServerId id) { (void)id; }

  /// `id` joined (or returned from the dead with a fresher
  /// incarnation): add it to the ring.
  virtual void on_member_joined(ServerId id) { (void)id; }
};

class MembershipDriver {
 public:
  MembershipDriver(ServerId self, MembershipConfig cfg, MembershipEnv& env,
                   std::uint64_t seed);

  /// Install the bootstrap member list (everyone starts trusted-alive).
  void add_seed(ServerId id) { view_.add_seed(id); }

  /// One protocol period: expire suspicions, run the failure detector,
  /// and launch this period's probes with piggybacked rumours.
  void tick();

  /// An incoming Gossip message from `from`.
  void handle(ServerId from, const Gossip& msg);

  [[nodiscard]] const MembershipView& view() const { return view_; }
  [[nodiscard]] std::uint64_t periods() const { return period_; }

  /// Retune this member's suspicion timeout live (per-node eviction
  /// aggressiveness: a deployment can give flaky-but-valuable nodes a
  /// longer leash without touching anyone else's config). Suspicions
  /// already running are re-judged against the new value on the next
  /// tick.
  void set_suspicion_periods(unsigned periods) {
    cfg_.suspicion_periods = periods;
  }
  [[nodiscard]] unsigned suspicion_periods() const {
    return cfg_.suspicion_periods;
  }

  /// Gossip payloads whose content CRC fence failed — corrupted in
  /// flight but still structurally valid; dropped before any rumour
  /// was applied.
  [[nodiscard]] std::uint64_t corrupt_rejected() const {
    return corrupt_rejected_;
  }

  /// Attach a cost census: outgoing gossip piggybacks up to
  /// census_max_records of its records, incoming census payloads are
  /// CRC-verified and absorbed, dead members are forgotten, and the
  /// census ticks once per protocol period. nullptr detaches.
  void set_census(obs::Census* census) { census_ = census; }
  [[nodiscard]] obs::Census* census() const { return census_; }

  /// Attach observability: suspicion-to-death latency (in protocol
  /// periods — the SWIM half of the detect->promote failover path)
  /// feeds clash_membership_detect_periods.
  void set_obs(obs::Hub* hub) {
    detect_periods_ = hub == nullptr
                          ? obs::HistogramHandle{}
                          : hub->registry.histogram(
                                "clash_membership_detect_periods");
    corrupt_rejected_c_ =
        hub == nullptr
            ? obs::Counter{}
            : hub->registry.counter("clash_corrupt_rejected_total");
  }

 private:
  void send(ServerId to, GossipKind kind, std::uint64_t sequence,
            ServerId target);
  /// Fire env callbacks for state transitions the view recorded.
  void drain_view_events();

  /// Relayed (ping-req) sequences are tagged with the top bit so acks
  /// for them can never collide with the detector's own probes.
  static constexpr std::uint64_t kRelayBit = std::uint64_t{1} << 63;

  struct Relay {
    ServerId origin{};
    std::uint64_t origin_sequence = 0;
    std::uint64_t created_period = 0;
  };

  ServerId self_;
  MembershipConfig cfg_;
  MembershipEnv& env_;
  MembershipView view_;
  FailureDetector detector_;
  std::uint64_t period_ = 0;
  std::uint64_t next_relay_sequence_ = 1;
  std::map<std::uint64_t, Relay> relays_;          // relay seq -> origin
  std::map<ServerId, std::uint64_t> suspected_at_;  // member -> period
  std::uint64_t corrupt_rejected_ = 0;
  obs::Census* census_ = nullptr;
  obs::HistogramHandle detect_periods_;
  obs::Counter corrupt_rejected_c_;
};

}  // namespace clash::membership
