#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace clash {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform01() {
  // 53 random bits into the mantissa: uniform over [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split(std::uint64_t salt) {
  return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL) ^ 0xd1b54a32d192ed03ULL);
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("empty weight vector");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0)) throw std::invalid_argument("weights must sum > 0");

  const std::size_t n = weights.size();
  norm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] < 0) throw std::invalid_argument("negative weight");
    norm_[i] = weights[i] / total;
  }

  // Walker alias construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = norm_[i] * double(n);

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(std::uint32_t(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const auto i : large) prob_[i] = 1.0;
  for (const auto i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const std::size_t i = rng.below(prob_.size());
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

double DiscreteSampler::probability(std::size_t i) const { return norm_.at(i); }

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("zipf over empty support");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(double(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  return i == 0 ? cdf_[0] : cdf_.at(i) - cdf_[i - 1];
}

}  // namespace clash
