// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320): the integrity
// check framing every durable-storage record and snapshot file. Lives
// in common/ so the wire layer and any future on-disk format share one
// implementation. Table-driven, byte-at-a-time — fast enough for the
// WAL append path (the disk write dominates) without SSE dependencies.
#pragma once

#include <cstdint>
#include <span>

namespace clash {

/// CRC32 of `data` continuing from `seed` (pass the previous return
/// value to checksum discontiguous buffers as one stream).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

/// Incremental accumulator for record framing: feed the pieces, read
/// value() once at the end.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data) {
    crc_ = crc32(data, crc_);
  }
  [[nodiscard]] std::uint32_t value() const { return crc_; }

 private:
  std::uint32_t crc_ = 0;
};

}  // namespace clash
