// common::Mutex / MutexLock: std::mutex with clang capability
// annotations. libstdc++'s std::mutex carries no thread-safety
// attributes, so a std::lock_guard is invisible to -Wthread-safety —
// guarded members would warn even in correctly locked code. This
// wrapper is the visible lock witness: MutexLock's constructor
// ACQUIREs the capability for its scope, so clang can prove every
// CLASH_GUARDED_BY access. Zero overhead — both types compile down to
// exactly std::mutex and std::lock_guard.
#pragma once

#include <mutex>

#include "common/thread_annotations.hpp"

namespace clash::common {

class CLASH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CLASH_ACQUIRE() { mu_.lock(); }
  void unlock() CLASH_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CLASH_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Escape hatch for interop (condition variables); using it bypasses
  /// the analysis for whatever is done with the raw mutex.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock with a scope the analysis understands.
class CLASH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CLASH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CLASH_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace clash::common
