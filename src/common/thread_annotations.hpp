// Thread-safety annotation macros over clang's capability analysis
// (-Wthread-safety). On clang every CLASH_* macro expands to the
// corresponding attribute and the whole tree is checked statically: a
// member declared CLASH_GUARDED_BY(mu_) read without mu_ held, or a
// CLASH_REQUIRES(...) function called without its capability, is a
// compile error under -Werror=thread-safety. On GCC (which has no
// equivalent analysis) they expand to nothing, so annotations are free
// to use everywhere.
//
// The vocabulary mirrors Abseil's thread_annotations.h, which mirrors
// clang's documented attribute set:
//   CLASH_CAPABILITY(x)      - class declares a capability ("mutex",
//                              "loop thread", ...)
//   CLASH_SCOPED_CAPABILITY  - RAII type that acquires in its ctor and
//                              releases in its dtor (MutexLock)
//   CLASH_GUARDED_BY(c)      - member may only be touched holding c
//   CLASH_PT_GUARDED_BY(c)   - pointee guarded by c (the pointer isn't)
//   CLASH_REQUIRES(...)      - caller must hold the capabilities
//   CLASH_REQUIRES_SHARED    - ... in shared (reader) mode
//   CLASH_ACQUIRE / CLASH_RELEASE / CLASH_TRY_ACQUIRE
//                            - locking-function effects
//   CLASH_EXCLUDES(...)      - caller must NOT hold (anti-deadlock)
//   CLASH_ASSERT_CAPABILITY  - runtime check that implies the
//                              capability for the rest of the scope
//   CLASH_RETURN_CAPABILITY  - getter returning a reference to c
//   CLASH_NO_THREAD_SAFETY_ANALYSIS
//                            - opt a function out (justify in a comment)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CLASH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CLASH_THREAD_ANNOTATION
#define CLASH_THREAD_ANNOTATION(x)
#endif

#define CLASH_CAPABILITY(x) CLASH_THREAD_ANNOTATION(capability(x))
#define CLASH_SCOPED_CAPABILITY CLASH_THREAD_ANNOTATION(scoped_lockable)
#define CLASH_GUARDED_BY(x) CLASH_THREAD_ANNOTATION(guarded_by(x))
#define CLASH_PT_GUARDED_BY(x) CLASH_THREAD_ANNOTATION(pt_guarded_by(x))
#define CLASH_ACQUIRED_BEFORE(...) \
  CLASH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CLASH_ACQUIRED_AFTER(...) \
  CLASH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CLASH_REQUIRES(...) \
  CLASH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CLASH_REQUIRES_SHARED(...) \
  CLASH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CLASH_ACQUIRE(...) \
  CLASH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CLASH_ACQUIRE_SHARED(...) \
  CLASH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CLASH_RELEASE(...) \
  CLASH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CLASH_RELEASE_SHARED(...) \
  CLASH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CLASH_TRY_ACQUIRE(...) \
  CLASH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CLASH_EXCLUDES(...) \
  CLASH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CLASH_ASSERT_CAPABILITY(x) \
  CLASH_THREAD_ANNOTATION(assert_capability(x))
#define CLASH_RETURN_CAPABILITY(x) CLASH_THREAD_ANNOTATION(lock_returned(x))
#define CLASH_NO_THREAD_SAFETY_ANALYSIS \
  CLASH_THREAD_ANNOTATION(no_thread_safety_analysis)

// Runtime half of the affinity checks (CLASH_ASSERT_ON_LOOP and
// AffinityToken::assert_held): compiled in when CLASH_LOOP_CHECKS is 1.
// The build defaults it ON through CMake (option CLASH_LOOP_CHECKS);
// without a CMake opinion it follows NDEBUG, so a bare release build
// pays zero cost. The static (clang) half is always on.
#ifndef CLASH_LOOP_CHECKS
#ifdef NDEBUG
#define CLASH_LOOP_CHECKS 0
#else
#define CLASH_LOOP_CHECKS 1
#endif
#endif
