// Tiny command-line flag parser for the bench/example binaries.
// Supports --name=value, --name value, and boolean --flag forms.
// Every bench routes its flags through here — including the shared
// conventions: --seed picks the run's RNG seed, and --json=PATH emits
// the machine-readable artifact (write_json_artifact).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clash {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that were not --flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// The bench JSON-artifact convention: when `--json=PATH` was passed,
/// write `json` there (single atomic fopen/fputs). Returns false — and
/// prints to stderr — only when the path was given but unwritable, so
/// callers can `return write_json_artifact(...) ? 0 : 1;`.
bool write_json_artifact(const ArgParser& args, const std::string& json);

}  // namespace clash
