// Deterministic, seedable random number generation and the sampling
// distributions the simulation engine needs. All simulator randomness
// flows through Rng so experiments are reproducible from a single seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace clash {

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state,
/// seeded via splitmix64 so any 64-bit seed yields a good state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~std::uint64_t{0}; }

  /// Uniform integer in [0, bound). Unbiased (rejection sampling).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare; stateless).
  double normal(double mean, double stddev);

  /// True with probability p.
  bool bernoulli(double p);

  /// Split off an independently-seeded child generator. Children of the
  /// same parent with distinct salts are statistically independent.
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
};

/// Samples indices 0..n-1 from a fixed discrete distribution in O(1)
/// per sample using Walker's alias method. Weights need not be
/// normalised.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Normalised probability of index i (for tests / reporting).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;   // alias-method acceptance probabilities
  std::vector<std::uint32_t> alias_;
  std::vector<double> norm_;   // normalised input weights
};

/// Zipf(s) over {0, .., n-1} via inverse-CDF table (exact, O(log n)
/// per sample).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;

  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace clash
