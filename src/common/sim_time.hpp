// Simulated-time vocabulary. The simulator advances an integer
// microsecond clock; protocol code only ever sees SimTime so the same
// logic runs under simulation and (via a wall-clock adapter) real time.
#pragma once

#include <cstdint>
#include <string>

namespace clash {

/// A point in simulated time, in microseconds since simulation start.
struct SimTime {
  std::int64_t usec = 0;

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t us) : usec(us) {}

  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime from_minutes(double m) {
    return from_seconds(m * 60.0);
  }
  static constexpr SimTime from_hours(double h) {
    return from_seconds(h * 3600.0);
  }

  [[nodiscard]] constexpr double seconds() const { return double(usec) / 1e6; }
  [[nodiscard]] constexpr double minutes() const { return seconds() / 60.0; }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.usec == b.usec;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) {
    return a.usec < b.usec;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.usec <= b.usec;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) {
    return a.usec > b.usec;
  }
  friend constexpr bool operator>=(SimTime a, SimTime b) {
    return a.usec >= b.usec;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.usec + b.usec);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.usec - b.usec);
  }
};

/// A duration, same representation as SimTime for simplicity.
using SimDuration = SimTime;

[[nodiscard]] inline std::string to_string(SimTime t) {
  return std::to_string(t.seconds()) + "s";
}

}  // namespace clash
