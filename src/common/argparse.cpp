#include "common/argparse.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace clash {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool write_json_artifact(const ArgParser& args, const std::string& json) {
  const std::string path = args.get("json", "");
  if (path.empty()) return true;  // artifact not requested
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace clash
