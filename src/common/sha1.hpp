// Self-contained SHA-1 (FIPS 180-1), used as the DHT's base hash f().
// Chord historically hashes identifiers with SHA-1; we implement it from
// scratch to avoid an OpenSSL dependency. Not for security use.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace clash {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalises and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest finish();

  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

  /// First 8 bytes of the digest as a big-endian uint64 — the form the
  /// DHT layer consumes before truncating to its hash-space width.
  static std::uint64_t hash64(std::span<const std::uint8_t> data);
  static std::uint64_t hash64(std::uint64_t value);

  static std::string hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace clash
