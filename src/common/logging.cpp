#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace clash::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
// set_level() pins the threshold; until then the first level() read
// loads CLASH_LOG from the environment exactly once.
std::atomic<bool> g_level_pinned{false};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

constexpr const char* name(Level lvl) {
  switch (lvl) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

void load_env_level() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("CLASH_LOG");
    if (env == nullptr || *env == '\0') return;
    if (g_level_pinned.load(std::memory_order_relaxed)) return;
    g_level.store(level_from_name(env, Level::kWarn),
                  std::memory_order_relaxed);
  });
}

}  // namespace

Level level_from_name(std::string_view name, Level fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(char(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return Level::kTrace;
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  return fallback;
}

void set_level(Level level) {
  g_level_pinned.store(true, std::memory_order_relaxed);
  g_level.store(level, std::memory_order_relaxed);
  detail::g_threshold.store(int(level), std::memory_order_relaxed);
}

Level level() {
  load_env_level();
  const Level l = g_level.load(std::memory_order_relaxed);
  // Publish for the header fast path: every subsequent enabled() check
  // is one relaxed load.
  detail::g_threshold.store(int(l), std::memory_order_relaxed);
  return l;
}

namespace detail {

std::atomic<int> g_threshold{kUnresolvedLevel};

bool enabled_slow(Level lvl) {
  return lvl >= level() && lvl != Level::kOff;
}

void emit(Level lvl, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", name(lvl), int(message.size()),
               message.data());
}

}  // namespace detail
}  // namespace clash::log
