#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace clash::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_emit_mutex;

constexpr const char* name(Level lvl) {
  switch (lvl) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) { return lvl >= level() && lvl != Level::kOff; }

namespace detail {

void emit(Level lvl, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", name(lvl), int(message.size()),
               message.data());
}

}  // namespace detail
}  // namespace clash::log
