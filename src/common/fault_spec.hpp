// FaultSpec: the one fault vocabulary shared by both fault layers —
// sim::LinkMatrix (discrete-event transport) and net::FaultInjector
// (TCP Connection send path). Each layer keeps its own stats, scripts,
// and scheduling, but the per-message *decision* (drop / delay / dup /
// reorder / slow / corrupt) is judged here, so a new fault mode lands
// once and is immediately available to both the simulator and the
// socket transport.
//
// Durations are raw microseconds: the sim wraps them in SimDuration,
// the net layer in std::chrono::microseconds.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace clash {

/// Behaviour of one directed link. `cut` dominates; probabilities are
/// evaluated independently per message.
struct FaultSpec {
  /// Probability a message is silently dropped (lossy WAN link).
  double drop_prob = 0.0;
  /// Extra latency added to every surviving message, on top of
  /// whatever base latency the transport already models.
  std::int64_t delay_usec = 0;
  /// Hard cut: nothing flows until reconfigured.
  bool cut = false;
  /// Probability the message is delivered twice (retransmitting
  /// middleboxes / at-least-once relays); the duplicate rides the same
  /// delay as the original.
  double dup_prob = 0.0;
  /// Probability the message picks up a uniform random extra delay in
  /// (0, reorder_window_usec], letting later sends overtake it.
  double reorder_prob = 0.0;
  std::int64_t reorder_window_usec = 2000;  // 2ms default jitter span
  /// Fail-slow link: multiplies the total latency (the transport's
  /// base plus the configured delay). 1 = healthy; 10-100x models a
  /// node that still answers, just far too late — the failure mode
  /// SWIM suspicion must catch without a crash ever happening.
  double slow_factor = 1.0;
  /// Probability a delivered Gossip/ReplAppend/SnapshotChunk payload
  /// has bytes flipped in flight while staying decoded-valid; the
  /// receiver's checksum/epoch/seq fences must reject it.
  double corrupt_prob = 0.0;

  [[nodiscard]] bool benign() const {
    return !cut && drop_prob <= 0.0 && delay_usec <= 0 && dup_prob <= 0.0 &&
           reorder_prob <= 0.0 && slow_factor <= 1.0 && corrupt_prob <= 0.0;
  }
};

/// Outcome for one message on one directed link.
struct FaultVerdict {
  bool deliver = true;
  /// Total extra latency: base + configured delay (+ reorder jitter),
  /// stretched by slow_factor.
  std::int64_t delay_usec = 0;
  bool duplicate = false;
  /// Deliver after the delay OUTSIDE the FIFO (overtakable).
  bool reorder = false;
  /// Flip byte(s) inside the payload before delivery.
  bool corrupt = false;
};

/// Decide one message's fate (consumes randomness for probabilistic
/// faults). `base_usec` is the latency the transport would charge on a
/// clean link; it is folded in here so slow_factor stretches the whole
/// path, not just the injected delay.
inline FaultVerdict judge_fault(const FaultSpec& f, Rng& rng,
                                std::int64_t base_usec = 0) {
  FaultVerdict v;
  if (f.cut || (f.drop_prob > 0.0 && rng.bernoulli(f.drop_prob))) {
    v.deliver = false;
    return v;
  }
  v.delay_usec = base_usec + f.delay_usec;
  if (f.dup_prob > 0.0 && rng.bernoulli(f.dup_prob)) v.duplicate = true;
  if (f.reorder_prob > 0.0 && f.reorder_window_usec > 0 &&
      rng.bernoulli(f.reorder_prob)) {
    // Uniform jitter in (0, window]: under an event queue this lets
    // anything sent inside the window overtake the jittered message.
    v.reorder = true;
    v.delay_usec +=
        1 + std::int64_t(rng.below(std::uint64_t(f.reorder_window_usec)));
  }
  if (f.slow_factor > 1.0) {
    v.delay_usec = std::int64_t(double(v.delay_usec) * f.slow_factor);
  }
  if (f.corrupt_prob > 0.0 && rng.bernoulli(f.corrupt_prob)) {
    v.corrupt = true;
  }
  return v;
}

}  // namespace clash
