#include "common/sha1.hpp"

#include <cstring>

namespace clash {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t(block[i * 4]) << 24) |
           (std::uint32_t(block[i * 4 + 1]) << 16) |
           (std::uint32_t(block[i * 4 + 2]) << 8) |
           std::uint32_t(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_start = 0x80;
  update(std::span<const std::uint8_t>(&pad_start, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = std::uint8_t(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Digest d;
  for (int i = 0; i < 5; ++i) {
    d[i * 4] = std::uint8_t(h_[i] >> 24);
    d[i * 4 + 1] = std::uint8_t(h_[i] >> 16);
    d[i * 4 + 2] = std::uint8_t(h_[i] >> 8);
    d[i * 4 + 3] = std::uint8_t(h_[i]);
  }
  return d;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

Sha1::Digest Sha1::hash(std::string_view data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

std::uint64_t Sha1::hash64(std::span<const std::uint8_t> data) {
  const Digest d = hash(data);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[std::size_t(i)];
  return v;
}

std::uint64_t Sha1::hash64(std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = std::uint8_t(value >> (56 - 8 * i));
  return hash64(std::span<const std::uint8_t>(bytes, 8));
}

std::string Sha1::hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(kDigestSize * 2);
  for (const auto b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace clash
