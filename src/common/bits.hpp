// Bit-manipulation helpers used by the key machinery and Chord.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace clash::bits {

/// Mask with the low `n` bits set. `n` must be <= 64.
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned n) {
  assert(n <= 64);
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Extract bits [hi, lo] (inclusive, 0 = LSB) of `v`.
[[nodiscard]] constexpr std::uint64_t field(std::uint64_t v, unsigned hi,
                                            unsigned lo) {
  assert(hi >= lo && hi < 64);
  return (v >> lo) & low_mask(hi - lo + 1);
}

/// Number of bits needed to represent `v` (0 -> 0).
[[nodiscard]] constexpr unsigned width(std::uint64_t v) {
  return static_cast<unsigned>(std::bit_width(v));
}

/// Ceil(log2(v)) for v >= 1.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t v) {
  assert(v >= 1);
  return v == 1 ? 0 : static_cast<unsigned>(std::bit_width(v - 1));
}

/// Reverse the low `n` bits of `v` (bit 0 swaps with bit n-1).
[[nodiscard]] constexpr std::uint64_t reverse(std::uint64_t v, unsigned n) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n; ++i) {
    r = (r << 1) | ((v >> i) & 1U);
  }
  return r;
}

/// Interleave the low `n` bits of `a` and `b` (a's bits take even
/// positions counting from the MSB pair). Used by the quad-tree encoder:
/// result has 2n bits, MSB-first pairs (a_{n-1}, b_{n-1}), ...
[[nodiscard]] constexpr std::uint64_t interleave(std::uint64_t a,
                                                 std::uint64_t b, unsigned n) {
  assert(n <= 32);
  std::uint64_t r = 0;
  for (unsigned i = n; i-- > 0;) {
    r = (r << 2) | (((a >> i) & 1U) << 1) | ((b >> i) & 1U);
  }
  return r;
}

}  // namespace clash::bits
