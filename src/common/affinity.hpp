// common::AffinityToken: a phantom capability representing "running in
// this object's home context" — for CLASH that is almost always one
// EventLoop's thread (or the simulator's single thread). Classes whose
// state is protected by affinity instead of a mutex (Census, NodeStore,
// MembershipDriver, Connection, EventLoop internals) declare a token
// and mark members CLASH_GUARDED_BY(token): clang then demands a
// visible witness — assert_held() / CLASH_ASSERT_ON_LOOP — on every
// access path, turning "single-threaded by convention" into a
// compile-time contract.
//
// assert_held() is the witness. Statically it asserts the capability
// for the rest of the scope. At runtime (CLASH_LOOP_CHECKS builds) it
// consults an optional probe: net::ClashNode binds its tokens to "the
// event-loop thread, or the loop is idle", so cross-thread misuse
// aborts with a diagnostic instead of racing silently. Unbound tokens
// (simulator, unit tests — genuinely single-threaded) check nothing.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.hpp"

namespace clash::common {

class CLASH_CAPABILITY("affinity") AffinityToken {
 public:
  /// Returns true when the calling thread may touch the guarded state.
  using Probe = bool (*)(const void* ctx);

  AffinityToken() = default;
  AffinityToken(const AffinityToken&) = delete;
  AffinityToken& operator=(const AffinityToken&) = delete;

  /// Attach a runtime probe (call during single-threaded setup, before
  /// the home context starts running). `what` names the context in the
  /// abort diagnostic. nullptr detaches.
  void bind(Probe probe, const void* ctx, const char* what) {
    ctx_ = ctx;
    what_ = what;
    probe_ = probe;
  }

  /// The capability witness: declares (to clang) and checks (in
  /// CLASH_LOOP_CHECKS builds) that the caller is in the home context.
  void assert_held() const CLASH_ASSERT_CAPABILITY(this) {
#if CLASH_LOOP_CHECKS
    if (probe_ != nullptr && !probe_(ctx_)) {
      std::fprintf(stderr,
                   "clash: affinity violation: %s state touched off its "
                   "home thread\n",
                   what_ == nullptr ? "affine" : what_);
      std::fflush(stderr);
      std::abort();
    }
#endif
  }

 private:
  // Written once during setup, read from any thread afterwards; the
  // bind-before-run contract (above) is what makes that safe.
  Probe probe_ = nullptr;
  const void* ctx_ = nullptr;
  const char* what_ = nullptr;
};

}  // namespace clash::common
