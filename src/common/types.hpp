// Core vocabulary types shared by every CLASH subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace clash {

/// Identifies a physical server in the overlay. CLASH itself never
/// interprets the value; it is assigned by the DHT substrate (for Chord,
/// the server's position on the ring) or by the deployment layer.
struct ServerId {
  std::uint64_t value = kInvalid;

  static constexpr std::uint64_t kInvalid =
      std::numeric_limits<std::uint64_t>::max();

  constexpr ServerId() = default;
  constexpr explicit ServerId(std::uint64_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(ServerId a, ServerId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(ServerId a, ServerId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(ServerId a, ServerId b) {
    return a.value < b.value;
  }
};

/// Identifies a client node (data source or query client).
struct ClientId {
  std::uint64_t value = std::numeric_limits<std::uint64_t>::max();

  constexpr ClientId() = default;
  constexpr explicit ClientId(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(ClientId a, ClientId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator<(ClientId a, ClientId b) {
    return a.value < b.value;
  }
};

/// Identifies a continuous query stored in the system.
struct QueryId {
  std::uint64_t value = 0;

  constexpr QueryId() = default;
  constexpr explicit QueryId(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(QueryId a, QueryId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator<(QueryId a, QueryId b) {
    return a.value < b.value;
  }
};

[[nodiscard]] inline std::string to_string(ServerId id) {
  // Build via append rather than operator+(const char*, string&&):
  // the latter trips GCC 12's -Wrestrict false positive (PR105329)
  // wherever this gets inlined at -O2.
  if (!id.valid()) return "s<invalid>";
  std::string out = "s";
  out += std::to_string(id.value);
  return out;
}

}  // namespace clash

template <>
struct std::hash<clash::ServerId> {
  std::size_t operator()(clash::ServerId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<clash::ClientId> {
  std::size_t operator()(clash::ClientId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<clash::QueryId> {
  std::size_t operator()(clash::QueryId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
