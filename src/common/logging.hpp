// Minimal leveled logger. Single global sink, printf-free (iostream-based
// formatting via operator<< chaining into a fixed buffer per statement).
// The threshold is env-configurable: CLASH_LOG=trace|debug|info|warn|
// error|off is consulted once, at the first level check, and an
// explicit set_level() always wins over the environment.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace clash::log {

enum class Level { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded cheaply.
void set_level(Level level);
Level level();

/// Parse a level name ("debug", "WARN", ...); `fallback` on no match.
Level level_from_name(std::string_view name, Level fallback);

/// True when `lvl` would currently be emitted.
bool enabled(Level lvl);

namespace detail {
void emit(Level lvl, std::string_view message);

class Statement {
 public:
  explicit Statement(Level lvl) : lvl_(lvl) {}
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;
  ~Statement() { emit(lvl_, stream_.str()); }

  template <typename T>
  Statement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace clash::log

#define CLASH_LOG(lvl)                     \
  if (!::clash::log::enabled(lvl)) {       \
  } else                                   \
    ::clash::log::detail::Statement(lvl)

#define CLASH_TRACE CLASH_LOG(::clash::log::Level::kTrace)
#define CLASH_DEBUG CLASH_LOG(::clash::log::Level::kDebug)
#define CLASH_INFO CLASH_LOG(::clash::log::Level::kInfo)
#define CLASH_WARN CLASH_LOG(::clash::log::Level::kWarn)
#define CLASH_ERROR CLASH_LOG(::clash::log::Level::kError)
