// Minimal leveled logger. Single global sink, printf-free (iostream-based
// formatting via operator<< chaining into a fixed buffer per statement).
// The threshold is env-configurable: CLASH_LOG=trace|debug|info|warn|
// error|off is consulted once, at the first level check, and an
// explicit set_level() always wins over the environment.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace clash::log {

enum class Level { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded cheaply.
void set_level(Level level);
Level level();

/// Parse a level name ("debug", "WARN", ...); `fallback` on no match.
Level level_from_name(std::string_view name, Level fallback);

namespace detail {
/// Resolved threshold as int(Level); kUnresolvedLevel until the first
/// check has consulted the CLASH_LOG environment override.
inline constexpr int kUnresolvedLevel = -1;
extern std::atomic<int> g_threshold;
/// Out-of-line: resolves the environment override, publishes
/// g_threshold, then judges `lvl`. Taken at most a handful of times.
[[nodiscard]] bool enabled_slow(Level lvl);
}  // namespace detail

/// True when `lvl` would currently be emitted. Inline fast path — one
/// relaxed load and a compare — so a disabled CLASH_LOG on a hot tick
/// path costs a predictable branch, never a function call into the
/// formatting machinery.
[[nodiscard]] inline bool enabled(Level lvl) {
  const int threshold =
      detail::g_threshold.load(std::memory_order_relaxed);
  if (threshold == detail::kUnresolvedLevel) {
    return detail::enabled_slow(lvl);
  }
  return int(lvl) >= threshold && lvl != Level::kOff;
}

namespace detail {
void emit(Level lvl, std::string_view message);

class Statement {
 public:
  explicit Statement(Level lvl) : lvl_(lvl) {}
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;
  ~Statement() { emit(lvl_, stream_.str()); }

  template <typename T>
  Statement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace clash::log

#define CLASH_LOG(lvl)                     \
  if (!::clash::log::enabled(lvl)) {       \
  } else                                   \
    ::clash::log::detail::Statement(lvl)

#define CLASH_TRACE CLASH_LOG(::clash::log::Level::kTrace)
#define CLASH_DEBUG CLASH_LOG(::clash::log::Level::kDebug)
#define CLASH_INFO CLASH_LOG(::clash::log::Level::kInfo)
#define CLASH_WARN CLASH_LOG(::clash::log::Level::kWarn)
#define CLASH_ERROR CLASH_LOG(::clash::log::Level::kError)
