#include "common/crc32.hpp"

#include <array>

namespace clash {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace clash
