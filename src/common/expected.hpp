// Small Expected<T, E> for error propagation without exceptions on hot
// protocol paths (std::expected is C++23; we target C++20).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace clash {

/// Default error payload: a code plus human-readable context.
struct Error {
  enum class Code {
    kUnknown,
    kInvalidArgument,
    kNotFound,
    kWrongServer,
    kWouldBlock,
    kClosed,
    kProtocol,
    kTimeout,
    kRefused,
  };

  Code code = Code::kUnknown;
  std::string message;

  static Error invalid(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  static Error protocol(std::string msg) {
    return {Code::kProtocol, std::move(msg)};
  }
};

template <typename T, typename E = Error>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(storage_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

}  // namespace clash
