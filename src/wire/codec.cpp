#include "wire/codec.hpp"

#include <cmath>

#include "common/crc32.hpp"

namespace clash::wire {
namespace {

void encode_stream_info(Writer& w, const StreamInfo& s) {
  w.u64(s.source.value);
  encode_key(w, s.key);
  w.f64(s.rate);
}

StreamInfo decode_stream_info(Reader& r) {
  StreamInfo s;
  s.source = ClientId{r.u64()};
  s.key = decode_key(r);
  s.rate = r.f64();
  return s;
}

void encode_query_info(Writer& w, const QueryInfo& q) {
  w.u64(q.id.value);
  encode_key(w, q.key);
}

void encode_member_update(Writer& w, const MemberUpdate& u) {
  w.u64(u.subject.value);
  w.u8(std::uint8_t(u.state));
  w.u64(u.incarnation);
}

MemberUpdate decode_member_update(Reader& r) {
  MemberUpdate u;
  u.subject = ServerId{r.u64()};
  const auto state = r.u8();
  if (state > std::uint8_t(MemberState::kDead)) r.fail();
  u.state = MemberState(state);
  u.incarnation = r.u64();
  return u;
}

QueryInfo decode_query_info(Reader& r) {
  QueryInfo q;
  q.id = QueryId{r.u64()};
  q.key = decode_key(r);
  return q;
}

template <typename T, typename EncodeFn>
void encode_vector(Writer& w, const std::vector<T>& v, EncodeFn fn) {
  w.u32(std::uint32_t(v.size()));
  for (const auto& item : v) fn(w, item);
}

// Guards against adversarial counts: a count claiming more elements
// than bytes remain is rejected before any allocation.
template <typename T, typename DecodeFn>
bool decode_vector(Reader& r, std::vector<T>& out, std::size_t min_bytes,
                   DecodeFn fn) {
  const auto count = r.u32();
  if (std::size_t(count) * min_bytes > r.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    out.push_back(fn(r));
  }
  return r.ok();
}

bool decode_blob(Reader& r, std::vector<std::uint8_t>& out) {
  const auto len = r.u32();
  if (std::size_t(len) > r.remaining()) return false;
  out.resize(len);
  for (auto& b : out) b = r.u8();
  return r.ok();
}

void encode_log_head(Writer& w, const repl::LogHead& h) {
  w.u64(h.epoch);
  w.u64(h.seq);
}

repl::LogHead decode_log_head(Reader& r) {
  repl::LogHead h;
  h.epoch = r.u64();
  h.seq = r.u64();
  return h;
}

void encode_group_head(Writer& w, const GroupHead& gh) {
  encode_group(w, gh.group);
  encode_log_head(w, gh.head);
}

GroupHead decode_group_head(Reader& r) {
  GroupHead gh;
  gh.group = decode_group(r);
  gh.head = decode_log_head(r);
  return gh;
}

void encode_group_cost(Writer& w, const GroupCost& c) {
  w.u64(c.puts);
  w.u64(c.matches);
  w.u64(c.bytes_served);
  w.u64(c.repl_bytes);
  w.u64(c.storage_bytes);
}

GroupCost decode_group_cost(Reader& r) {
  GroupCost c;
  c.puts = r.u64();
  c.matches = r.u64();
  c.bytes_served = r.u64();
  c.repl_bytes = r.u64();
  c.storage_bytes = r.u64();
  return c;
}

void encode_census_group_cost(Writer& w, const CensusGroupCost& gc) {
  encode_group(w, gc.group);
  encode_group_cost(w, gc.cost);
}

CensusGroupCost decode_census_group_cost(Reader& r) {
  CensusGroupCost gc;
  gc.group = decode_group(r);
  gc.cost = decode_group_cost(r);
  return gc;
}

// Everything in the record except the trailing checksum — the exact
// bytes census_record_crc runs over.
void encode_census_content(Writer& w, const NodeCensusRecord& rec) {
  w.u64(rec.node.value);
  w.u64(rec.incarnation);
  w.u64(rec.seq);
  w.f64(rec.load);
  w.u32(rec.active_groups);
  w.u32(rec.replica_records);
  w.u64(rec.queries);
  w.u64(rec.streams);
  encode_group_cost(w, rec.totals);
  encode_vector(w, rec.top_groups, encode_census_group_cost);
}

}  // namespace

void encode_log_op(Writer& w, const repl::LogOp& op) {
  w.u8(std::uint8_t(op.kind));
  switch (op.kind) {
    case repl::OpKind::kPutStream:
      encode_stream_info(w, op.stream);
      break;
    case repl::OpKind::kDelStream:
      w.u64(op.source.value);
      break;
    case repl::OpKind::kPutQuery:
      encode_query_info(w, op.query);
      break;
    case repl::OpKind::kDelQuery:
      w.u64(op.query_id.value);
      break;
    case repl::OpKind::kAppDelta:
      w.u32(std::uint32_t(op.app_delta.size()));
      w.bytes(op.app_delta);
      break;
  }
}

repl::LogOp decode_log_op(Reader& r) {
  repl::LogOp op;
  const auto kind = r.u8();
  if (kind > std::uint8_t(repl::OpKind::kAppDelta)) {
    r.fail();
    return op;
  }
  op.kind = repl::OpKind(kind);
  switch (op.kind) {
    case repl::OpKind::kPutStream:
      op.stream = decode_stream_info(r);
      break;
    case repl::OpKind::kDelStream:
      op.source = ClientId{r.u64()};
      break;
    case repl::OpKind::kPutQuery:
      op.query = decode_query_info(r);
      break;
    case repl::OpKind::kDelQuery:
      op.query_id = QueryId{r.u64()};
      break;
    case repl::OpKind::kAppDelta:
      if (!decode_blob(r, op.app_delta)) r.fail();
      break;
  }
  return op;
}

void encode_key(Writer& w, const Key& k) {
  w.u8(std::uint8_t(k.width()));
  w.u64(k.value());
}

Key decode_key(Reader& r) {
  const auto width = r.u8();
  const auto value = r.u64();
  if (!r.ok() || width == 0 || width > Key::kMaxWidth ||
      (width < 64 && value >= (std::uint64_t{1} << width))) {
    r.fail();
    return Key(0, 1);
  }
  return Key(value, width);
}

void encode_group(Writer& w, const KeyGroup& g) {
  encode_key(w, g.virtual_key());
  w.u8(std::uint8_t(g.depth()));
}

KeyGroup decode_group(Reader& r) {
  const Key vkey = decode_key(r);
  const auto depth = r.u8();
  if (!r.ok() || depth > vkey.width()) {
    r.fail();
    return KeyGroup::root(vkey.width());
  }
  // Reject non-canonical encodings (suffix bits below depth must be 0).
  if (shape(vkey, depth) != vkey) {
    r.fail();
    return KeyGroup::root(vkey.width());
  }
  return KeyGroup::of(vkey, depth);
}

void encode_census_record(Writer& w, const NodeCensusRecord& rec) {
  encode_census_content(w, rec);
  w.u32(rec.checksum);  // trailing so the CRC bytes are a prefix
}

NodeCensusRecord decode_census_record(Reader& r) {
  NodeCensusRecord rec;
  rec.node = ServerId{r.u64()};
  rec.incarnation = r.u64();
  rec.seq = r.u64();
  rec.load = r.f64();
  if (r.ok() && !(std::isfinite(rec.load) && rec.load >= 0)) r.fail();
  rec.active_groups = r.u32();
  rec.replica_records = r.u32();
  rec.queries = r.u64();
  rec.streams = r.u64();
  rec.totals = decode_group_cost(r);
  // 50 = encoded CensusGroupCost (group 10 + cost 40).
  if (!decode_vector(r, rec.top_groups, 50, decode_census_group_cost)) {
    r.fail();
  }
  rec.checksum = r.u32();
  return rec;
}

std::uint32_t census_record_crc(const NodeCensusRecord& rec) {
  Writer w;
  encode_census_content(w, rec);
  Crc32 crc;
  crc.update(std::span<const std::uint8_t>(w.data().data(), w.size()));
  return crc.value();
}

std::size_t encoded_census_size(
    const std::vector<NodeCensusRecord>& census) {
  Writer w;
  encode_vector(w, census, encode_census_record);
  return w.size();
}

void encode_message(Writer& w, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AcceptObject>) {
          w.u8(std::uint8_t(MsgType::kAcceptObject));
          encode_key(w, m.key);
          w.u8(std::uint8_t(m.depth));
          w.u8(std::uint8_t(m.kind));
          w.u64(m.query_id.value);
          w.f64(m.stream_rate);
          w.u64(m.source.value);
          w.boolean(m.probe_only);
          w.u64(m.trace_id);
        } else if constexpr (std::is_same_v<T, AcceptObjectOk>) {
          w.u8(std::uint8_t(MsgType::kAcceptObjectOk));
          w.u8(std::uint8_t(m.depth));
        } else if constexpr (std::is_same_v<T, IncorrectDepth>) {
          w.u8(std::uint8_t(MsgType::kIncorrectDepth));
          w.u8(std::uint8_t(m.dmin));
        } else if constexpr (std::is_same_v<T, AcceptKeyGroup>) {
          w.u8(std::uint8_t(MsgType::kAcceptKeyGroup));
          encode_group(w, m.group);
          w.u64(m.parent.value);
          w.boolean(m.root);
          w.u64(m.epoch);
          encode_vector(w, m.streams, encode_stream_info);
          encode_vector(w, m.queries, encode_query_info);
          w.u32(std::uint32_t(m.app_state.size()));
          w.bytes(m.app_state);
        } else if constexpr (std::is_same_v<T, AcceptKeyGroupAck>) {
          w.u8(std::uint8_t(MsgType::kAcceptKeyGroupAck));
          encode_group(w, m.group);
        } else if constexpr (std::is_same_v<T, LoadReport>) {
          w.u8(std::uint8_t(MsgType::kLoadReport));
          encode_group(w, m.group);
          w.f64(m.load);
          w.boolean(m.is_leaf);
        } else if constexpr (std::is_same_v<T, ReclaimKeyGroup>) {
          w.u8(std::uint8_t(MsgType::kReclaimKeyGroup));
          encode_group(w, m.group);
        } else if constexpr (std::is_same_v<T, ReclaimAck>) {
          w.u8(std::uint8_t(MsgType::kReclaimAck));
          encode_group(w, m.group);
          encode_vector(w, m.streams, encode_stream_info);
          encode_vector(w, m.queries, encode_query_info);
          w.u32(std::uint32_t(m.app_state.size()));
          w.bytes(m.app_state);
        } else if constexpr (std::is_same_v<T, ReclaimRefused>) {
          w.u8(std::uint8_t(MsgType::kReclaimRefused));
          encode_group(w, m.group);
        } else if constexpr (std::is_same_v<T, ReplicateGroup>) {
          w.u8(std::uint8_t(MsgType::kReplicateGroup));
          encode_group(w, m.group);
          w.u64(m.owner.value);
          w.boolean(m.root);
          w.u64(m.parent.value);
          encode_vector(w, m.streams, encode_stream_info);
          encode_vector(w, m.queries, encode_query_info);
        } else if constexpr (std::is_same_v<T, DropReplica>) {
          w.u8(std::uint8_t(MsgType::kDropReplica));
          encode_group(w, m.group);
        } else if constexpr (std::is_same_v<T, Gossip>) {
          w.u8(std::uint8_t(MsgType::kGossip));
          w.u32(m.checksum);  // content fence: always right after type
          w.u8(std::uint8_t(m.kind));
          w.u64(m.sequence);
          w.u64(m.target.value);
          encode_vector(w, m.updates, encode_member_update);
          encode_vector(w, m.census, encode_census_record);
        } else if constexpr (std::is_same_v<T, ReplAppend>) {
          w.u8(std::uint8_t(MsgType::kReplAppend));
          w.u32(m.checksum);
          encode_group(w, m.group);
          w.u64(m.owner.value);
          w.u64(m.epoch);
          w.u64(m.base_seq);
          w.u64(m.trace_id);
          encode_vector(w, m.entries,
                        [](Writer& ww, const repl::LogOp& op) {
                          encode_log_op(ww, op);
                        });
        } else if constexpr (std::is_same_v<T, ReplAck>) {
          w.u8(std::uint8_t(MsgType::kReplAck));
          encode_group(w, m.group);
          encode_log_head(w, m.head);
          w.boolean(m.ok);
        } else if constexpr (std::is_same_v<T, SnapshotOffer>) {
          w.u8(std::uint8_t(MsgType::kSnapshotOffer));
          encode_group(w, m.group);
          w.u64(m.owner.value);
          encode_log_head(w, m.head);
          w.boolean(m.root);
          w.u64(m.parent.value);
          w.u32(m.total_chunks);
          w.u64(m.trace_id);
        } else if constexpr (std::is_same_v<T, SnapshotChunk>) {
          w.u8(std::uint8_t(MsgType::kSnapshotChunk));
          w.u32(m.checksum);
          encode_group(w, m.group);
          encode_log_head(w, m.head);
          w.u32(m.index);
          w.u32(m.total);
          w.u64(m.trace_id);
          encode_vector(w, m.streams, encode_stream_info);
          encode_vector(w, m.queries, encode_query_info);
          w.u32(std::uint32_t(m.app_state.size()));
          w.bytes(m.app_state);
          w.u32(std::uint32_t(m.app_deltas.size()));
          for (const auto& d : m.app_deltas) {
            w.u32(std::uint32_t(d.size()));
            w.bytes(d);
          }
        } else if constexpr (std::is_same_v<T, AntiEntropyProbe>) {
          w.u8(std::uint8_t(MsgType::kAntiEntropyProbe));
          w.u64(m.owner.value);
          encode_vector(w, m.heads, encode_group_head);
        } else if constexpr (std::is_same_v<T, AntiEntropyDiff>) {
          w.u8(std::uint8_t(MsgType::kAntiEntropyDiff));
          encode_vector(w, m.behind, encode_group_head);
        }
      },
      msg);
}

std::size_t encoded_payload_size(const Message& msg) {
  Writer w;
  encode_message(w, msg);
  return w.size();
}

namespace {

// Checksummed payloads lay out as [type u8][checksum u32][content...];
// the CRC covers the type byte and the content, skipping its own slot,
// so it is independent of whatever checksum value the struct holds.
constexpr std::size_t kChecksumSlot = 1;
constexpr std::size_t kContentOffset = kChecksumSlot + 4;

std::uint32_t crc_of_encoded(const Message& msg) {
  Writer w;
  encode_message(w, msg);
  const auto& bytes = w.data();
  Crc32 crc;
  crc.update(std::span<const std::uint8_t>(bytes.data(), kChecksumSlot));
  crc.update(std::span<const std::uint8_t>(bytes.data() + kContentOffset,
                                           bytes.size() - kContentOffset));
  return crc.value();
}

}  // namespace

std::uint32_t content_crc(const Gossip& m) {
  return crc_of_encoded(Message(m));
}
std::uint32_t content_crc(const ReplAppend& m) {
  return crc_of_encoded(Message(m));
}
std::uint32_t content_crc(const SnapshotChunk& m) {
  return crc_of_encoded(Message(m));
}

bool corruptible(const Message& msg) {
  return std::holds_alternative<Gossip>(msg) ||
         std::holds_alternative<ReplAppend>(msg) ||
         std::holds_alternative<SnapshotChunk>(msg);
}

std::optional<Message> corrupt_message(const Message& msg, Rng& rng) {
  if (!corruptible(msg)) return msg;  // fault scoped to fenced payloads
  Writer w;
  encode_message(w, msg);
  auto bytes = w.take();
  if (bytes.empty()) return std::nullopt;
  // Flip 1-3 bytes anywhere past the type byte (checksum slot
  // included: a damaged fence is a fence mismatch too).
  const unsigned flips = 1 + unsigned(rng.below(3));
  for (unsigned i = 0; i < flips; ++i) {
    const auto pos =
        kChecksumSlot + std::size_t(rng.below(bytes.size() - kChecksumSlot));
    bytes[pos] ^= std::uint8_t(1 + rng.below(255));
  }
  auto decoded = decode_message(bytes);
  if (!decoded.ok()) return std::nullopt;  // codec fence caught it
  return std::move(decoded.value());
}

Expected<Message> decode_message(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const auto type = r.u8();
  if (!r.ok()) return Error::protocol("empty message payload");

  Message out = AcceptObjectOk{};
  switch (MsgType(type)) {
    case MsgType::kAcceptObject: {
      AcceptObject m;
      m.key = decode_key(r);
      m.depth = r.u8();
      const auto kind = r.u8();
      if (kind > std::uint8_t(ObjectKind::kQuery)) {
        return Error::protocol("bad object kind");
      }
      m.kind = ObjectKind(kind);
      m.query_id = QueryId{r.u64()};
      m.stream_rate = r.f64();
      m.source = ClientId{r.u64()};
      m.probe_only = r.boolean();
      m.trace_id = r.u64();
      if (r.ok() && m.depth > m.key.width()) {
        return Error::protocol("depth exceeds key width");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kAcceptObjectOk: {
      out = AcceptObjectOk{r.u8()};
      break;
    }
    case MsgType::kIncorrectDepth: {
      out = IncorrectDepth{r.u8()};
      break;
    }
    case MsgType::kAcceptKeyGroup: {
      AcceptKeyGroup m;
      m.group = decode_group(r);
      m.parent = ServerId{r.u64()};
      m.root = r.boolean();
      m.epoch = r.u64();
      if (!decode_vector(r, m.streams, 17, decode_stream_info) ||
          !decode_vector(r, m.queries, 17, decode_query_info) ||
          !decode_blob(r, m.app_state)) {
        return Error::protocol("bad state vectors");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kAcceptKeyGroupAck: {
      out = AcceptKeyGroupAck{decode_group(r)};
      break;
    }
    case MsgType::kLoadReport: {
      LoadReport m;
      m.group = decode_group(r);
      m.load = r.f64();
      m.is_leaf = r.boolean();
      out = m;
      break;
    }
    case MsgType::kReclaimKeyGroup: {
      out = ReclaimKeyGroup{decode_group(r)};
      break;
    }
    case MsgType::kReclaimAck: {
      ReclaimAck m;
      m.group = decode_group(r);
      if (!decode_vector(r, m.streams, 17, decode_stream_info) ||
          !decode_vector(r, m.queries, 17, decode_query_info) ||
          !decode_blob(r, m.app_state)) {
        return Error::protocol("bad state vectors");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kReclaimRefused: {
      out = ReclaimRefused{decode_group(r)};
      break;
    }
    case MsgType::kReplicateGroup: {
      ReplicateGroup m;
      m.group = decode_group(r);
      m.owner = ServerId{r.u64()};
      m.root = r.boolean();
      m.parent = ServerId{r.u64()};
      if (!decode_vector(r, m.streams, 17, decode_stream_info) ||
          !decode_vector(r, m.queries, 17, decode_query_info)) {
        return Error::protocol("bad replica vectors");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kDropReplica: {
      out = DropReplica{decode_group(r)};
      break;
    }
    case MsgType::kGossip: {
      Gossip m;
      m.checksum = r.u32();
      const auto kind = r.u8();
      if (kind > std::uint8_t(GossipKind::kAck)) {
        return Error::protocol("bad gossip kind");
      }
      m.kind = GossipKind(kind);
      m.sequence = r.u64();
      m.target = ServerId{r.u64()};
      if (!decode_vector(r, m.updates, 17, decode_member_update)) {
        return Error::protocol("bad membership updates");
      }
      // 104 = fixed census-record fields + empty top-K + checksum.
      if (!decode_vector(r, m.census, 104, decode_census_record)) {
        return Error::protocol("bad census records");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kReplAppend: {
      ReplAppend m;
      m.checksum = r.u32();
      m.group = decode_group(r);
      m.owner = ServerId{r.u64()};
      m.epoch = r.u64();
      m.base_seq = r.u64();
      m.trace_id = r.u64();
      if (!decode_vector(r, m.entries, 9, decode_log_op)) {
        return Error::protocol("bad log entries");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kReplAck: {
      ReplAck m;
      m.group = decode_group(r);
      m.head = decode_log_head(r);
      m.ok = r.boolean();
      out = m;
      break;
    }
    case MsgType::kSnapshotOffer: {
      SnapshotOffer m;
      m.group = decode_group(r);
      m.owner = ServerId{r.u64()};
      m.head = decode_log_head(r);
      m.root = r.boolean();
      m.parent = ServerId{r.u64()};
      m.total_chunks = r.u32();
      m.trace_id = r.u64();
      if (r.ok() && m.total_chunks == 0) {
        return Error::protocol("snapshot offer with zero chunks");
      }
      out = m;
      break;
    }
    case MsgType::kSnapshotChunk: {
      SnapshotChunk m;
      m.checksum = r.u32();
      m.group = decode_group(r);
      m.head = decode_log_head(r);
      m.index = r.u32();
      m.total = r.u32();
      m.trace_id = r.u64();
      if (!decode_vector(r, m.streams, 17, decode_stream_info) ||
          !decode_vector(r, m.queries, 17, decode_query_info) ||
          !decode_blob(r, m.app_state)) {
        return Error::protocol("bad snapshot chunk");
      }
      const auto n_deltas = r.u32();
      if (std::size_t(n_deltas) * 4 > r.remaining()) {
        return Error::protocol("bad snapshot chunk");
      }
      m.app_deltas.reserve(n_deltas);
      for (std::uint32_t i = 0; i < n_deltas && r.ok(); ++i) {
        if (!decode_blob(r, m.app_deltas.emplace_back())) {
          return Error::protocol("bad snapshot chunk");
        }
      }
      out = std::move(m);
      break;
    }
    case MsgType::kAntiEntropyProbe: {
      AntiEntropyProbe m;
      m.owner = ServerId{r.u64()};
      if (!decode_vector(r, m.heads, 26, decode_group_head)) {
        return Error::protocol("bad head vector");
      }
      out = std::move(m);
      break;
    }
    case MsgType::kAntiEntropyDiff: {
      AntiEntropyDiff m;
      if (!decode_vector(r, m.behind, 26, decode_group_head)) {
        return Error::protocol("bad head vector");
      }
      out = std::move(m);
      break;
    }
    default:
      return Error::protocol("unknown message type " + std::to_string(type));
  }
  if (!r.exhausted()) {
    return Error::protocol("truncated or oversized message payload");
  }
  return out;
}

void encode_reply(Writer& w, const AcceptObjectReply& reply) {
  std::visit([&](const auto& m) { encode_message(w, Message(m)); }, reply);
}

Expected<AcceptObjectReply> decode_reply(
    std::span<const std::uint8_t> payload) {
  auto msg = decode_message(payload);
  if (!msg.ok()) return msg.error();
  if (const auto* ok = std::get_if<AcceptObjectOk>(&msg.value())) {
    return AcceptObjectReply(*ok);
  }
  if (const auto* bad = std::get_if<IncorrectDepth>(&msg.value())) {
    return AcceptObjectReply(*bad);
  }
  return Error::protocol("reply frame does not carry a reply message");
}

Writer begin_frame(const Envelope& env) {
  Writer w;
  w.reserve(128);
  w.u32(0);  // length slot, patched by finish_frame
  w.u8(kProtocolVersion);
  w.u8(std::uint8_t(env.kind));
  w.u64(env.request_id);
  w.u64(env.sender.value);
  return w;
}

std::vector<std::uint8_t> finish_frame(Writer&& w) {
  w.patch_u32(0, std::uint32_t(w.size() - 4));
  return w.take();
}

std::vector<std::uint8_t> encode_frame(
    const Envelope& env, std::span<const std::uint8_t> payload) {
  Writer w;
  w.u8(kProtocolVersion);
  w.u8(std::uint8_t(env.kind));
  w.u64(env.request_id);
  w.u64(env.sender.value);
  w.bytes(payload);
  return w.take();
}

Expected<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame) {
  Reader r(frame);
  const auto version = r.u8();
  if (!r.ok()) return Error::protocol("empty frame");
  if (version != kProtocolVersion) {
    return Error::protocol("unsupported protocol version " +
                           std::to_string(version));
  }
  DecodedFrame out;
  const auto kind = r.u8();
  if (kind > std::uint8_t(FrameKind::kResponse)) {
    return Error::protocol("bad frame kind");
  }
  out.envelope.kind = FrameKind(kind);
  out.envelope.request_id = r.u64();
  out.envelope.sender = ServerId{r.u64()};
  if (!r.ok()) return Error::protocol("truncated frame header");
  out.payload.assign(frame.begin() + std::ptrdiff_t(frame.size() -
                                                    r.remaining()),
                     frame.end());
  return out;
}

}  // namespace clash::wire
