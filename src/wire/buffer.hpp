// Endian-safe binary read/write primitives for the wire protocol.
// Integers are little-endian fixed width; doubles are IEEE-754 bit
// patterns. The Reader is bounds-checked and latches an error state
// instead of throwing, so malformed peer input can never crash a node.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace clash::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean() { return u8() != 0; }
  /// Length-prefixed (u32) string; empty on error.
  std::string str();

  /// True while all reads so far were in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Latch the error state (semantic validation failed upstream).
  void fail() { ok_ = false; }
  /// True when the payload was consumed exactly.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return ok_ ? data_.size() - pos_ : 0;
  }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace clash::wire
