// Endian-safe binary read/write primitives for the wire protocol.
// Integers are little-endian fixed width; doubles are IEEE-754 bit
// patterns. The Reader is bounds-checked and latches an error state
// instead of throwing, so malformed peer input can never crash a node.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace clash::wire {

// Raw little-endian stores/loads shared by the codec and the TCP
// framing layer (the u32 length prefix), so framing bytes match the
// codec on any host endianness.
inline void store_u32_le(std::uint8_t* p, std::uint32_t v) {
  p[0] = std::uint8_t(v);
  p[1] = std::uint8_t(v >> 8);
  p[2] = std::uint8_t(v >> 16);
  p[3] = std::uint8_t(v >> 24);
}

inline std::uint32_t load_u32_le(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

/// Append-only encoder over a pooled backing buffer. The default
/// constructor recycles an allocation from the thread's BufferPool and
/// the destructor returns it, so encoding a message allocates nothing
/// in steady state; take() transfers the buffer out (the transport
/// releases it after the flush).
class Writer {
 public:
  Writer();
  ~Writer();

  Writer(Writer&&) noexcept = default;
  Writer& operator=(Writer&&) noexcept = default;
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  /// Overwrite 4 already-written bytes at `offset` (little-endian) —
  /// fills in length slots reserved before the value was known.
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean() { return u8() != 0; }
  /// Length-prefixed (u32) string; empty on error.
  std::string str();

  /// True while all reads so far were in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Latch the error state (semantic validation failed upstream).
  void fail() { ok_ = false; }
  /// True when the payload was consumed exactly.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return ok_ ? data_.size() - pos_ : 0;
  }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace clash::wire
