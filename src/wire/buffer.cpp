#include "wire/buffer.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "wire/buffer_pool.hpp"

namespace clash::wire {

Writer::Writer() : buf_(BufferPool::local().acquire()) {}

Writer::~Writer() { BufferPool::local().release(std::move(buf_)); }

void Writer::u16(std::uint16_t v) {
  u8(std::uint8_t(v));
  u8(std::uint8_t(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(std::uint16_t(v));
  u16(std::uint16_t(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(std::uint32_t(v));
  u32(std::uint32_t(v >> 32));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  u32(std::uint32_t(s.size()));
  bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Writer::patch_u32(std::size_t offset, std::uint32_t v) {
  assert(offset + 4 <= buf_.size());
  store_u32_le(buf_.data() + offset, v);
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return std::uint16_t(lo | (std::uint16_t(hi) << 8));
}

std::uint32_t Reader::u32() {
  const auto lo = u16();
  const auto hi = u16();
  return std::uint32_t(lo) | (std::uint32_t(hi) << 16);
}

std::uint64_t Reader::u64() {
  const auto lo = u32();
  const auto hi = u32();
  return std::uint64_t(lo) | (std::uint64_t(hi) << 32);
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const auto len = u32();
  if (!take(len)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

}  // namespace clash::wire
