// Wire codec for the CLASH protocol messages: every Message variant and
// AcceptObjectReply can round-trip through a compact, versioned binary
// encoding. Frames on the TCP transport are u32-length-prefixed
// envelopes { version, kind, request id, sender } + payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "clash/messages.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "wire/buffer.hpp"

namespace clash::wire {

constexpr std::uint8_t kProtocolVersion = 1;

/// Message discriminants on the wire (stable across versions).
enum class MsgType : std::uint8_t {
  kAcceptObject = 1,
  kAcceptObjectOk = 2,
  kIncorrectDepth = 3,
  kAcceptKeyGroup = 4,
  kAcceptKeyGroupAck = 5,
  kLoadReport = 6,
  kReclaimKeyGroup = 7,
  kReclaimAck = 8,
  kReclaimRefused = 9,
  kReplicateGroup = 10,
  kDropReplica = 11,
  kGossip = 12,
  // Replication & recovery subsystem (src/repl/).
  kReplAppend = 13,
  kReplAck = 14,
  kSnapshotOffer = 15,
  kSnapshotChunk = 16,
  kAntiEntropyProbe = 17,
  kAntiEntropyDiff = 18,
};

/// RPC framing kinds.
enum class FrameKind : std::uint8_t {
  kOneway = 0,   // peer message, no reply expected
  kRequest = 1,  // expects a response with the same request id
  kResponse = 2,
};

struct Envelope {
  FrameKind kind = FrameKind::kOneway;
  std::uint64_t request_id = 0;
  ServerId sender{};
};

// --- Message payloads -------------------------------------------------

void encode_message(Writer& w, const Message& msg);
[[nodiscard]] Expected<Message> decode_message(
    std::span<const std::uint8_t> payload);

/// Encoded payload size of `msg` (what one transport frame carries,
/// sans envelope). Costs a full encode — instrumentation, not hot
/// path; the simulator's wire metering uses it to compare transfer
/// bytes across recovery strategies.
[[nodiscard]] std::size_t encoded_payload_size(const Message& msg);

// --- Content checksums (corruption fences) ------------------------------
// Gossip / ReplAppend / SnapshotChunk — the payloads whose in-flight
// corruption can poison membership or replica state — carry a CRC32
// over their encoded content ([type][checksum][content...], the CRC
// covering type + content). Senders stamp msg.checksum with
// content_crc(msg); receivers reject on mismatch. checksum == 0 means
// "unchecksummed" and skips the fence (hand-built test messages).

[[nodiscard]] std::uint32_t content_crc(const Gossip& m);
[[nodiscard]] std::uint32_t content_crc(const ReplAppend& m);
[[nodiscard]] std::uint32_t content_crc(const SnapshotChunk& m);

/// CRC32 over one encoded census record minus its checksum field.
/// Census records are fenced individually (not just by the enclosing
/// Gossip checksum) because a record outlives the frame that carried
/// it: it is re-gossiped from the receiver's table across many later
/// frames, and each hop re-verifies the record's own proof.
[[nodiscard]] std::uint32_t census_record_crc(const NodeCensusRecord& rec);

/// Encoded bytes of a census payload as it rides a gossip frame
/// (vector count + records). Instrumentation for the census-overhead
/// gate, not hot path.
[[nodiscard]] std::size_t encoded_census_size(
    const std::vector<NodeCensusRecord>& census);

/// True for the message types that carry a content checksum — the
/// types the corrupt fault mode targets.
[[nodiscard]] bool corruptible(const Message& msg);

/// The corrupt fault mode's mutation for struct-passing transports
/// (the simulator): encode `msg`, flip 1-3 random bytes, re-decode.
/// Returns the original untouched for non-corruptible types, nullopt
/// when the mutation no longer decodes (the codec fence caught it),
/// and the corrupted-but-well-formed message otherwise — which the
/// receiver's checksum/epoch/seq fences must then reject.
[[nodiscard]] std::optional<Message> corrupt_message(const Message& msg,
                                                    Rng& rng);

void encode_reply(Writer& w, const AcceptObjectReply& reply);
[[nodiscard]] Expected<AcceptObjectReply> decode_reply(
    std::span<const std::uint8_t> payload);

// --- Frames ------------------------------------------------------------

/// Start a length-prefixed wire frame: a 4-byte little-endian length
/// slot (patched by finish_frame) followed by the envelope header.
/// Encode the payload directly into the returned Writer — the message
/// is serialised exactly once, in place, into the buffer the transport
/// queues and flushes without further copies.
[[nodiscard]] Writer begin_frame(const Envelope& env);

/// Patch the length slot and release the finished frame (length
/// prefix included) — ready for Connection::send_wire_frame.
[[nodiscard]] std::vector<std::uint8_t> finish_frame(Writer&& w);

/// Serialise a full frame (without the u32 length prefix). Legacy
/// copy path kept for tests and tools; hot paths use begin_frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const Envelope& env, std::span<const std::uint8_t> payload);

struct DecodedFrame {
  Envelope envelope;
  std::vector<std::uint8_t> payload;
};
[[nodiscard]] Expected<DecodedFrame> decode_frame(
    std::span<const std::uint8_t> frame);

// --- Field helpers (exposed for tests) ----------------------------------

void encode_key(Writer& w, const Key& k);
[[nodiscard]] Key decode_key(Reader& r);
void encode_group(Writer& w, const KeyGroup& g);
[[nodiscard]] KeyGroup decode_group(Reader& r);
void encode_log_op(Writer& w, const repl::LogOp& op);
[[nodiscard]] repl::LogOp decode_log_op(Reader& r);
void encode_census_record(Writer& w, const NodeCensusRecord& rec);
[[nodiscard]] NodeCensusRecord decode_census_record(Reader& r);

}  // namespace clash::wire
