#include "wire/buffer_pool.hpp"

namespace clash::wire {

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

std::vector<std::uint8_t> BufferPool::acquire() {
  if (free_.empty()) return {};
  auto buf = std::move(free_.back());
  free_.pop_back();
  ++reuses_;
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0 || buf.capacity() > kMaxRetainedBytes ||
      free_.size() >= kMaxPooled) {
    return;  // let it free
  }
  buf.clear();
  free_.push_back(std::move(buf));
}

}  // namespace clash::wire
