// Thread-local free list of byte buffers backing the zero-copy frame
// path: wire::Writer acquires its backing vector here, the finished
// frame is queued on a Connection without copying, and the Connection
// releases the vector back once the kernel has consumed it. Buffers
// keep their capacity across recycles, so steady-state encode/flush
// cycles allocate nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clash::wire {

class BufferPool {
 public:
  /// The calling thread's pool. Each event-loop thread (and each
  /// client thread) recycles through its own free list, so no locking.
  static BufferPool& local();

  /// An empty buffer, reusing a recycled allocation when available.
  [[nodiscard]] std::vector<std::uint8_t> acquire();

  /// Return a buffer for reuse. Oversized or tiny capacities are
  /// simply freed so one huge frame can't pin memory forever.
  void release(std::vector<std::uint8_t>&& buf);

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  /// Bounds idle memory: at most kMaxPooled buffers of at most
  /// kMaxRetainedBytes capacity each are kept per thread.
  static constexpr std::size_t kMaxPooled = 64;
  static constexpr std::size_t kMaxRetainedBytes = 1u << 20;

  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t reuses_ = 0;
};

}  // namespace clash::wire
