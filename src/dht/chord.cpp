#include "dht/chord.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/bits.hpp"

namespace clash::dht {

ChordRing::ChordRing(Config config)
    : config_(config),
      hasher_(config.hash_bits, config.hash_algo, config.salt) {
  if (config_.virtual_servers == 0) {
    throw std::invalid_argument("virtual_servers must be >= 1");
  }
}

std::uint64_t ChordRing::mask() const {
  return bits::low_mask(config_.hash_bits);
}

void ChordRing::add_server(ServerId id) {
  if (!id.valid()) throw std::invalid_argument("invalid server id");
  if (owned_positions_.count(id) > 0) {
    throw std::invalid_argument("server already on the ring");
  }
  auto& positions = owned_positions_[id];
  positions.reserve(config_.virtual_servers);
  for (unsigned r = 0; r < config_.virtual_servers; ++r) {
    std::uint64_t token = id.value * 0x100000001b3ULL + r;
    std::uint64_t pos = hasher_.hash_token(token).value;
    // Linear re-hash on collision: ring positions must be unique.
    while (ring_.count(pos) > 0) {
      token = token * 0x9e3779b97f4a7c15ULL + 1;
      pos = hasher_.hash_token(token).value;
    }
    ring_.emplace(pos, id);
    positions.push_back(pos);
  }
}

void ChordRing::remove_server(ServerId id) {
  const auto it = owned_positions_.find(id);
  if (it == owned_positions_.end()) return;
  for (const auto pos : it->second) ring_.erase(pos);
  owned_positions_.erase(it);
}

std::map<std::uint64_t, ServerId>::const_iterator ChordRing::successor_it(
    std::uint64_t p) const {
  assert(!ring_.empty());
  auto it = ring_.lower_bound(p & mask());
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it;
}

ServerId ChordRing::map(HashKey h) const {
  if (ring_.empty()) return ServerId{};
  return successor_it(h.value)->second;
}

HashKey ChordRing::successor_position(HashKey h) const {
  if (ring_.empty()) return HashKey{};
  return HashKey(successor_it(h.value)->first);
}

LookupResult ChordRing::lookup(HashKey h, ServerId origin) const {
  if (ring_.empty()) return {ServerId{}, 0};
  const auto origin_it = owned_positions_.find(origin);
  if (origin_it == owned_positions_.end() || origin_it->second.empty()) {
    throw std::invalid_argument("lookup origin is not on the ring");
  }

  const std::uint64_t m = mask();
  const std::uint64_t target = h.value & m;
  const std::uint64_t owner_pos = successor_it(target)->first;
  std::uint64_t cur = origin_it->second.front();

  unsigned hops = 0;
  // Iterative Chord routing: while the current node does not own the
  // target, forward to the closest preceding finger; if no finger
  // strictly precedes the target, take the final successor hop.
  while (cur != owner_pos) {
    // cur owns target iff target in (predecessor(cur), cur]; equivalent
    // here to cur == owner_pos since owner_pos = successor(target).
    std::uint64_t next = cur;
    const std::uint64_t dist = ring_distance(cur, target, m);
    if (dist != 0) {
      // Finger i of node at `cur` points to successor(cur + 2^i).
      // The closest preceding finger is found from the largest i with
      // 2^i <= dist downward; usually the first candidate works.
      for (unsigned i = bits::width(dist); i-- > 0;) {
        const std::uint64_t probe = (cur + (std::uint64_t{1} << i)) & m;
        const std::uint64_t finger = successor_it(probe)->first;
        if (ring_in_open(finger, cur, target, m)) {
          next = finger;
          break;
        }
      }
    }
    if (next == cur) {
      // No finger in (cur, target): the successor is the owner.
      next = owner_pos;
    }
    cur = next;
    ++hops;
  }
  return {ring_.at(owner_pos), hops};
}

std::size_t ChordRing::server_count() const { return owned_positions_.size(); }

std::vector<ServerId> ChordRing::servers() const {
  std::vector<ServerId> out;
  out.reserve(owned_positions_.size());
  for (const auto& [id, _] : owned_positions_) out.push_back(id);
  return out;
}

std::vector<ServerId> ChordRing::successors(HashKey h, std::size_t n) const {
  std::vector<ServerId> out;
  if (ring_.empty() || n == 0) return out;
  auto it = successor_it(h.value);
  // Walk clockwise collecting distinct physical servers.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < n;
       ++steps) {
    const ServerId s = it->second;
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return out;
}

std::vector<HashKey> ChordRing::positions_of(ServerId id) const {
  std::vector<HashKey> out;
  const auto it = owned_positions_.find(id);
  if (it == owned_positions_.end()) return out;
  out.reserve(it->second.size());
  for (const auto p : it->second) out.emplace_back(p);
  return out;
}

}  // namespace clash::dht
