// The hash side of the DHT: identifier keys are hashed by f() into an
// M-bit circular hash space H; the DHT maps hash keys to servers.
#pragma once

#include <cstdint>
#include <functional>

#include "keys/key.hpp"

namespace clash::dht {

/// A position in the M-bit circular hash space.
struct HashKey {
  std::uint64_t value = 0;

  constexpr HashKey() = default;
  constexpr explicit HashKey(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(HashKey a, HashKey b) {
    return a.value == b.value;
  }
  friend constexpr bool operator<(HashKey a, HashKey b) {
    return a.value < b.value;
  }
};

/// f(): maps identifier keys (and arbitrary 64-bit tokens, e.g. server
/// bootstrap seeds) into the M-bit hash space.
///
/// Two algorithms:
///  - kSha1  : SHA-1 truncated to M bits — what Chord deployments use.
///  - kMix64 : splitmix64 finaliser — 20x faster, same uniformity for
///             simulation purposes. The simulator uses this by default;
///             tests cover both.
class KeyHasher {
 public:
  enum class Algo { kSha1, kMix64 };

  explicit KeyHasher(unsigned hash_bits, Algo algo = Algo::kMix64,
                     std::uint64_t salt = 0);

  [[nodiscard]] unsigned hash_bits() const { return hash_bits_; }
  [[nodiscard]] std::uint64_t space_size() const;

  /// Hash an identifier key. Width participates so that e.g. "01*"
  /// viewed in different key widths hashes differently.
  [[nodiscard]] HashKey hash_key(const Key& k) const;

  /// Hash an arbitrary token (used to place servers on the ring).
  [[nodiscard]] HashKey hash_token(std::uint64_t token) const;

 private:
  [[nodiscard]] std::uint64_t raw(std::uint64_t payload) const;

  unsigned hash_bits_;
  Algo algo_;
  std::uint64_t salt_;
};

/// Circular-interval helpers over an M-bit ring.
/// in_open(x, a, b): x in (a, b) going clockwise from a.
[[nodiscard]] constexpr bool ring_in_open(std::uint64_t x, std::uint64_t a,
                                          std::uint64_t b,
                                          std::uint64_t mask) {
  x &= mask;
  a &= mask;
  b &= mask;
  if (a == b) return x != a;  // full circle minus the endpoint
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

/// in_half_open(x, a, b]: x in (a, b] clockwise.
[[nodiscard]] constexpr bool ring_in_half_open(std::uint64_t x,
                                               std::uint64_t a,
                                               std::uint64_t b,
                                               std::uint64_t mask) {
  return (x & mask) == (b & mask) || ring_in_open(x, a, b, mask);
}

/// Clockwise distance from a to b.
[[nodiscard]] constexpr std::uint64_t ring_distance(std::uint64_t a,
                                                    std::uint64_t b,
                                                    std::uint64_t mask) {
  return (b - a) & mask;
}

}  // namespace clash::dht

template <>
struct std::hash<clash::dht::HashKey> {
  std::size_t operator()(clash::dht::HashKey h) const noexcept {
    return std::hash<std::uint64_t>{}(h.value);
  }
};
