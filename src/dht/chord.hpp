// Chord ring (Stoica et al., SIGCOMM 2001) with finger-table routing.
//
// This is the simulation-oriented implementation the paper's evaluation
// uses ("extends the basic CHORD simulation code"): the ring holds the
// full membership, Map() is an O(log S) successor search, and lookup()
// reproduces Chord's iterative closest-preceding-finger routing exactly
// (including the final successor hop), so hop counts match a real
// deployment's message counts. Supports CFS-style virtual servers:
// each physical server may own several ring positions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dht/dht.hpp"

namespace clash::dht {

class ChordRing final : public Dht {
 public:
  struct Config {
    unsigned hash_bits = 32;
    /// Ring positions per physical server (Chord/CFS virtual servers).
    unsigned virtual_servers = 1;
    KeyHasher::Algo hash_algo = KeyHasher::Algo::kMix64;
    std::uint64_t salt = 0;
  };

  explicit ChordRing(Config config);

  /// Adds a server at positions derived from hash(server id, replica).
  /// Position collisions are resolved by probing with a new salt.
  void add_server(ServerId id);
  void remove_server(ServerId id);
  [[nodiscard]] bool contains(ServerId id) const {
    return owned_positions_.count(id) > 0;
  }

  /// Owner of `h`: the first ring position clockwise from h (successor).
  [[nodiscard]] ServerId map(HashKey h) const override;

  /// Iterative Chord routing from `origin`'s first ring position.
  [[nodiscard]] LookupResult lookup(HashKey h, ServerId origin) const override;

  [[nodiscard]] std::size_t server_count() const override;
  [[nodiscard]] std::vector<ServerId> servers() const override;
  [[nodiscard]] std::vector<ServerId> successors(HashKey h,
                                                 std::size_t n) const override;

  [[nodiscard]] const KeyHasher& hasher() const { return hasher_; }

  /// Ring position(s) of a server (for tests / diagnostics).
  [[nodiscard]] std::vector<HashKey> positions_of(ServerId id) const;

  /// Successor ring position of `h` (the owner's position).
  [[nodiscard]] HashKey successor_position(HashKey h) const;

 private:
  [[nodiscard]] std::uint64_t mask() const;
  /// First position >= p clockwise (wrapping).
  [[nodiscard]] std::map<std::uint64_t, ServerId>::const_iterator successor_it(
      std::uint64_t p) const;

  Config config_;
  KeyHasher hasher_;
  std::map<std::uint64_t, ServerId> ring_;  // position -> physical server
  std::map<ServerId, std::vector<std::uint64_t>> owned_positions_;
};

}  // namespace clash::dht
