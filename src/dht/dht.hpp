// The substrate interface CLASH consumes: Map(h) -> server, plus a
// routed lookup that reports how many overlay hops the DHT would take.
// CLASH deliberately layers *above* this interface (Section 2: "CLASH
// operates in the identifier key space, leaving the base DHT protocol
// unchanged"), so any DHT can be plugged in.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "dht/hash.hpp"

namespace clash::dht {

struct LookupResult {
  ServerId owner;
  unsigned hops = 0;  // overlay message hops (0 when origin is the owner)
};

class Dht {
 public:
  virtual ~Dht() = default;

  /// The paper's Map(): owner of hash key `h`. O(log S) or better.
  [[nodiscard]] virtual ServerId map(HashKey h) const = 0;

  /// Routed lookup starting at `origin`, counting overlay hops.
  [[nodiscard]] virtual LookupResult lookup(HashKey h,
                                            ServerId origin) const = 0;

  [[nodiscard]] virtual std::size_t server_count() const = 0;

  [[nodiscard]] virtual std::vector<ServerId> servers() const = 0;

  /// The first `n` distinct physical servers clockwise from `h`
  /// (element 0 is the owner). Chord's replica set.
  [[nodiscard]] virtual std::vector<ServerId> successors(
      HashKey h, std::size_t n) const = 0;
};

}  // namespace clash::dht
