#include "dht/hash.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "common/sha1.hpp"

namespace clash::dht {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

KeyHasher::KeyHasher(unsigned hash_bits, Algo algo, std::uint64_t salt)
    : hash_bits_(hash_bits), algo_(algo), salt_(salt) {
  assert(hash_bits >= 1 && hash_bits <= 64);
}

std::uint64_t KeyHasher::space_size() const {
  return hash_bits_ >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hash_bits_);
}

std::uint64_t KeyHasher::raw(std::uint64_t payload) const {
  switch (algo_) {
    case Algo::kSha1:
      return Sha1::hash64(payload ^ salt_);
    case Algo::kMix64:
      return mix64(payload ^ mix64(salt_ ^ 0x2545f4914f6cdd1dULL));
  }
  return 0;
}

HashKey KeyHasher::hash_key(const Key& k) const {
  const std::uint64_t payload =
      k.value() ^ (std::uint64_t(k.width()) * 0x9e3779b97f4a7c15ULL);
  return HashKey(raw(payload) & bits::low_mask(hash_bits_));
}

HashKey KeyHasher::hash_token(std::uint64_t token) const {
  return HashKey(raw(token * 0xda942042e4dd58b5ULL) &
                 bits::low_mask(hash_bits_));
}

}  // namespace clash::dht
