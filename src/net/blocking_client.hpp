// Synchronous TCP client environment: lets the unmodified ClashClient
// (depth search, caching) run against a live cluster of ClashNodes.
// One connection per contacted server, blocking request/response with a
// timeout. Map() runs on a local full-membership ring view, mirroring
// the node side.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "clash/client.hpp"
#include "dht/chord.hpp"
#include "net/socket.hpp"

namespace clash::net {

class BlockingClient final : public ClientEnv {
 public:
  struct Config {
    std::map<ServerId, Endpoint> members;
    /// Access point whose routing tables price the DHT lookups.
    ServerId access_point{};
    unsigned hash_bits = 32;
    unsigned virtual_servers = 8;
    dht::KeyHasher::Algo hash_algo = dht::KeyHasher::Algo::kSha1;
    std::uint64_t ring_salt = 0;
    std::chrono::milliseconds timeout = std::chrono::seconds(5);
  };

  explicit BlockingClient(Config config);
  ~BlockingClient() override;

  dht::LookupResult dht_lookup(dht::HashKey h) override;
  AcceptObjectReply rpc_accept_object(ServerId to,
                                      const AcceptObject& msg) override;

  [[nodiscard]] const dht::KeyHasher& hasher() const {
    return ring_.hasher();
  }

  /// Count of RPC failures surfaced as INCORRECT_DEPTH(0) (timeouts,
  /// resets); the depth search restarts around them.
  [[nodiscard]] std::uint64_t transport_errors() const {
    return transport_errors_;
  }

 private:
  [[nodiscard]] Expected<Fd*> connection_to(ServerId to);
  [[nodiscard]] Expected<std::vector<std::uint8_t>> call(
      ServerId to, std::span<const std::uint8_t> frame);

  Config config_;
  dht::ChordRing ring_;
  std::map<ServerId, Fd> connections_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t transport_errors_ = 0;
};

}  // namespace clash::net
