#include "net/connection.hpp"

#include <sys/epoll.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "common/logging.hpp"
#include "wire/buffer.hpp"
#include "wire/buffer_pool.hpp"
#include "wire/codec.hpp"

namespace clash::net {
namespace {

/// Read granularity; also the arena growth step.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact the inbound arena once this many consumed bytes sit in
/// front of unparsed data (amortises the memmove to O(1)/byte).
constexpr std::size_t kCompactThreshold = 64 * 1024;
/// Frames handed to one writev call.
constexpr std::size_t kMaxIov = 64;

}  // namespace

std::shared_ptr<Connection> Connection::adopt(EventLoop& loop, Fd fd,
                                              FrameHandler on_frame,
                                              CloseHandler on_close) {
  set_nonblocking(fd);
  auto conn = std::shared_ptr<Connection>(new Connection(
      loop, std::move(fd), std::move(on_frame), std::move(on_close)));
  conn->on_loop_.assert_held();
  conn->register_with_loop();
  return conn;
}

Connection::Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
                       CloseHandler on_close)
    : loop_(loop),
      on_loop_(loop.loop_thread()),
      fd_(std::move(fd)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {}

Connection::~Connection() {
  if (fd_.valid()) loop_.remove_fd(fd_.get());
}

void Connection::register_with_loop() {
  loop_.assert_on_loop();
  // Keep a weak reference: the owner (node/transport) holds the shared
  // pointer; the loop callback must not extend the lifetime on close.
  std::weak_ptr<Connection> weak = shared_from_this();
  loop_.add_fd(fd_.get(), EPOLLIN, [weak](std::uint32_t events) {
    const auto self = weak.lock();
    if (self == nullptr) return;
    self->on_loop_.assert_held();
    self->on_events(events);
  });
}

void Connection::set_obs(obs::Hub* hub, std::int64_t epoch_us) {
  on_loop_.assert_held();
  if (hub == nullptr) {
    frames_sent_c_ = {};
    bytes_sent_c_ = {};
    flush_syscalls_c_ = {};
    frames_received_c_ = {};
    bytes_received_c_ = {};
    flight_ = nullptr;
    return;
  }
  flight_ = &hub->flight;
  flight_epoch_us_ = epoch_us;
  auto& r = hub->registry;
  frames_sent_c_ = r.counter("clash_net_frames_sent_total");
  bytes_sent_c_ = r.counter("clash_net_bytes_sent_total");
  flush_syscalls_c_ = r.counter("clash_net_flush_syscalls_total");
  frames_received_c_ = r.counter("clash_net_frames_received_total");
  bytes_received_c_ = r.counter("clash_net_bytes_received_total");
}

void Connection::on_events(std::uint32_t events) {
  if (events & (EPOLLERR | EPOLLHUP)) {
    close();
    return;
  }
  if (events & EPOLLIN) handle_readable();
  if (!closed() && (events & EPOLLOUT)) flush();
}

void Connection::handle_readable() {
  for (;;) {
    // The arena's size() is its high-water mark: growing past it
    // zero-fills once, refills after compaction reuse it as-is.
    if (in_.size() - in_end_ < kReadChunk) in_.resize(in_end_ + kReadChunk);
    const ssize_t n =
        ::read(fd_.get(), in_.data() + in_end_, in_.size() - in_end_);
    if (n > 0) {
      in_end_ += std::size_t(n);
      stats_.bytes_received += std::uint64_t(n);
      bytes_received_c_.inc(std::uint64_t(n));
      continue;
    }
    if (n == 0) {
      close();  // orderly shutdown by peer
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CLASH_DEBUG << "read error on fd " << fd_.get() << ": "
                << std::strerror(errno);
    close();
    return;
  }
  parse_frames();
}

void Connection::parse_frames() {
  while (in_end_ - in_pos_ >= 4) {
    const std::uint32_t len = wire::load_u32_le(in_.data() + in_pos_);
    if (len > kMaxFrame) {
      CLASH_WARN << "oversized frame (" << len << " bytes); closing";
      close();
      return;
    }
    if (in_end_ - in_pos_ - 4 < len) break;  // incomplete
    ++stats_.frames_received;
    frames_received_c_.inc();
    on_frame_(std::span<const std::uint8_t>(in_.data() + in_pos_ + 4, len));
    if (closed()) return;  // handler may close
    in_pos_ += 4 + len;
  }
  if (in_pos_ == in_end_) {
    in_pos_ = in_end_ = 0;  // fully drained: rewind, no memmove
  } else if (in_pos_ >= kCompactThreshold) {
    std::memmove(in_.data(), in_.data() + in_pos_, in_end_ - in_pos_);
    in_end_ -= in_pos_;
    in_pos_ = 0;
  }
}

bool Connection::send_frame(std::span<const std::uint8_t> payload) {
  on_loop_.assert_held();
  if (closed()) return false;
  if (payload.size() > kMaxFrame) {
    ++stats_.send_oversized;
    CLASH_WARN << "rejecting oversized send (" << payload.size()
               << " bytes) on fd " << fd_.get();
    return false;
  }
  auto buf = wire::BufferPool::local().acquire();
  buf.resize(4 + payload.size());
  wire::store_u32_le(buf.data(), std::uint32_t(payload.size()));
  std::memcpy(buf.data() + 4, payload.data(), payload.size());
  return enqueue(std::move(buf));
}

bool Connection::send_wire_frame(std::vector<std::uint8_t>&& frame) {
  on_loop_.assert_held();
  if (closed()) return false;
  if (frame.size() < 4 ||
      wire::load_u32_le(frame.data()) != frame.size() - 4) {
    CLASH_WARN << "dropping malformed wire frame (" << frame.size()
               << " bytes) on fd " << fd_.get();
    return false;
  }
  if (frame.size() - 4 > kMaxFrame) {
    ++stats_.send_oversized;
    CLASH_WARN << "rejecting oversized send (" << frame.size() - 4
               << " bytes) on fd " << fd_.get();
    return false;
  }
  return enqueue(std::move(frame));
}

bool Connection::enqueue(std::vector<std::uint8_t>&& frame) {
  std::chrono::microseconds delay{0};
  if (fault_ != nullptr) {
    const auto verdict = fault_->judge();
    if (verdict.drop) {
      // The network ate it: the sender cannot tell, exactly like a
      // lossy link. The buffer still recycles.
      ++stats_.faults_dropped;
      if (flight_ != nullptr) {
        flight_->record(obs::FlightKind::kFaultDrop, 0, flight_now_us(),
                        std::uint64_t(fd_.get()), stats_.faults_dropped);
      }
      wire::BufferPool::local().release(std::move(frame));
      return true;
    }
    if (verdict.duplicate) ++stats_.faults_duplicated;
    if (verdict.corrupt) {
      // In-flight byte damage, scoped to the payload *content* of the
      // checksummed message kinds (Gossip / ReplAppend /
      // SnapshotChunk): the frame stays structurally parseable, so it
      // reaches the receiver's content-CRC fence instead of dying in
      // the codec. Envelope layout: [4 len][1 ver][1 kind][8 req]
      // [8 sender][1 msg type][content...] — type at 22, content
      // from 23.
      constexpr std::size_t kTypeOff = 22;
      constexpr std::size_t kContentOff = 23;
      const auto type = frame.size() > kContentOff
                            ? wire::MsgType(frame[kTypeOff])
                            : wire::MsgType(0);
      if (frame.size() > kContentOff &&
          (type == wire::MsgType::kGossip ||
           type == wire::MsgType::kReplAppend ||
           type == wire::MsgType::kSnapshotChunk)) {
        ++stats_.faults_corrupted;
        if (flight_ != nullptr) {
          flight_->record(obs::FlightKind::kFaultCorrupt, 0,
                          flight_now_us(), std::uint64_t(fd_.get()));
        }
        fault_->corrupt_byte(std::span<std::uint8_t>(
            frame.data() + kContentOff, frame.size() - kContentOff));
      }
    }
    if (verdict.reorder) {
      // Reordering bypasses the FIFO horizon entirely: the frame
      // lands after its jitter while later sends flow past it — the
      // wire-level twin of sim::LinkMatrix reordering. (TCP itself
      // delivers in order; this models multi-connection / datagram
      // deployments and adversarial relays.) A duplicate shares the
      // jitter: the copies travel together, as on a real relay.
      ++stats_.faults_reordered;
      if (verdict.duplicate) {
        auto copy = frame;
        schedule_reordered(std::move(copy), verdict.delay);
      }
      schedule_reordered(std::move(frame), verdict.delay);
      return true;
    }
    if (verdict.duplicate) {
      auto copy = frame;
      enqueue_fifo(std::move(copy), verdict.delay);
    }
    delay = verdict.delay;
  }
  return enqueue_fifo(std::move(frame), delay);
}

bool Connection::enqueue_fifo(std::vector<std::uint8_t>&& frame,
                              std::chrono::microseconds delay) {
  // In-order delivery across reconfigures: while earlier frames sit
  // in delay timers, later frames — even undelayed ones after the
  // injector was cleared — must not overtake them. Frames park in a
  // FIFO and every timer fire releases the head, so delivery order is
  // the send order no matter how same-instant timers interleave.
  if (delay.count() > 0 || !delayed_q_.empty()) {
    // The horizon (the latest scheduled release) keeps a follow-up
    // zero-delay frame from firing the queue head early.
    const auto now = EventLoop::Clock::now();
    const auto target = std::max(now + delay, delay_horizon_);
    delay_horizon_ = target;
    ++stats_.faults_delayed;
    delayed_q_.push_back(std::move(frame));
    std::weak_ptr<Connection> weak = weak_from_this();
    loop_.assert_on_loop();
    loop_.call_after(
        std::chrono::duration_cast<std::chrono::microseconds>(target - now),
        [weak] {
          const auto self = weak.lock();
          if (self == nullptr) return;
          self->on_loop_.assert_held();
          if (self->closed() || self->delayed_q_.empty()) return;
          auto head = std::move(self->delayed_q_.front());
          self->delayed_q_.pop_front();
          self->enqueue_now(std::move(head));
        });
    return true;
  }
  return enqueue_now(std::move(frame));
}

void Connection::schedule_reordered(std::vector<std::uint8_t>&& frame,
                                    std::chrono::microseconds delay) {
  std::weak_ptr<Connection> weak = weak_from_this();
  auto shared = std::make_shared<std::vector<std::uint8_t>>(std::move(frame));
  loop_.assert_on_loop();
  loop_.call_after(delay, [weak, shared] {
    const auto self = weak.lock();
    if (self == nullptr) return;
    self->on_loop_.assert_held();
    if (self->closed()) return;
    self->enqueue_now(std::move(*shared));
  });
}

bool Connection::enqueue_now(std::vector<std::uint8_t>&& frame) {
  out_q_.push_back(std::move(frame));
  ++stats_.frames_sent;
  frames_sent_c_.inc();
  // One flush per tick: the first frame schedules it; later sends in
  // the same tick ride along. When EPOLLOUT is armed the kernel
  // buffer is full — the readiness callback will flush instead.
  if (!flush_scheduled_ && !want_write_) {
    flush_scheduled_ = true;
    std::weak_ptr<Connection> weak = weak_from_this();
    loop_.assert_on_loop();
    loop_.defer([weak] {
      const auto self = weak.lock();
      if (self == nullptr) return;
      self->on_loop_.assert_held();
      self->flush();
    });
  }
  return true;
}

void Connection::flush() {
  flush_scheduled_ = false;
  const bool had_backlog = !out_q_.empty();
  while (!out_q_.empty() && !closed()) {
    std::array<iovec, kMaxIov> iov;
    std::size_t niov = 0;
    std::size_t offered = 0;
    std::size_t offset = out_head_offset_;
    for (auto it = out_q_.begin(); it != out_q_.end() && niov < kMaxIov;
         ++it) {
      iov[niov].iov_base = it->data() + offset;
      iov[niov].iov_len = it->size() - offset;
      offered += it->size() - offset;
      offset = 0;
      ++niov;
    }
    const ssize_t n = ::writev(fd_.get(), iov.data(), int(niov));
    ++stats_.flush_syscalls;
    flush_syscalls_c_.inc();
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CLASH_DEBUG << "write error on fd " << fd_.get() << ": "
                  << std::strerror(errno);
      close();
      return;
    }
    stats_.bytes_sent += std::uint64_t(n);
    bytes_sent_c_.inc(std::uint64_t(n));
    std::size_t consumed = std::size_t(n);
    while (consumed > 0) {
      auto& head = out_q_.front();
      const std::size_t remaining = head.size() - out_head_offset_;
      if (consumed < remaining) {
        out_head_offset_ += consumed;
        break;
      }
      consumed -= remaining;
      wire::BufferPool::local().release(std::move(head));
      out_q_.pop_front();
      out_head_offset_ = 0;
    }
    if (std::size_t(n) < offered) break;  // kernel buffer full
  }
  update_interest();
  if (had_backlog && out_q_.empty() && !closed() && on_drain_) on_drain_();
}

std::size_t Connection::send_queue_bytes() const {
  on_loop_.assert_held();
  std::size_t total = 0;
  for (const auto& f : out_q_) total += f.size();
  return total - out_head_offset_;
}

void Connection::update_interest() {
  const bool need_write = !out_q_.empty();
  if (need_write == want_write_) return;
  want_write_ = need_write;
  loop_.assert_on_loop();
  loop_.modify_fd(fd_.get(),
                  EPOLLIN | (need_write ? std::uint32_t(EPOLLOUT) : 0u));
}

void Connection::close() {
  on_loop_.assert_held();
  if (closed()) return;
  loop_.assert_on_loop();
  loop_.remove_fd(fd_.get());
  fd_.reset();
  auto& pool = wire::BufferPool::local();
  while (!out_q_.empty()) {
    pool.release(std::move(out_q_.front()));
    out_q_.pop_front();
  }
  while (!delayed_q_.empty()) {
    pool.release(std::move(delayed_q_.front()));
    delayed_q_.pop_front();
  }
  out_head_offset_ = 0;
  if (on_close_) on_close_();
}

}  // namespace clash::net
