#include "net/connection.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hpp"

namespace clash::net {

std::shared_ptr<Connection> Connection::adopt(EventLoop& loop, Fd fd,
                                              FrameHandler on_frame,
                                              CloseHandler on_close) {
  set_nonblocking(fd);
  auto conn = std::shared_ptr<Connection>(new Connection(
      loop, std::move(fd), std::move(on_frame), std::move(on_close)));
  conn->register_with_loop();
  return conn;
}

Connection::Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
                       CloseHandler on_close)
    : loop_(loop),
      fd_(std::move(fd)),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {}

Connection::~Connection() {
  if (fd_.valid()) loop_.remove_fd(fd_.get());
}

void Connection::register_with_loop() {
  // Keep a weak reference: the owner (node/transport) holds the shared
  // pointer; the loop callback must not extend the lifetime on close.
  std::weak_ptr<Connection> weak = shared_from_this();
  loop_.add_fd(fd_.get(), EPOLLIN, [weak](std::uint32_t events) {
    if (const auto self = weak.lock()) self->on_events(events);
  });
}

void Connection::on_events(std::uint32_t events) {
  if (events & (EPOLLERR | EPOLLHUP)) {
    close();
    return;
  }
  if (events & EPOLLIN) handle_readable();
  if (!closed() && (events & EPOLLOUT)) handle_writable();
}

void Connection::handle_readable() {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::read(fd_.get(), chunk, sizeof(chunk));
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      close();  // orderly shutdown by peer
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CLASH_DEBUG << "read error on fd " << fd_.get() << ": "
                << std::strerror(errno);
    close();
    return;
  }
  parse_frames();
}

void Connection::parse_frames() {
  std::size_t offset = 0;
  while (in_.size() - offset >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, in_.data() + offset, 4);  // little-endian hosts
    if (len > kMaxFrame) {
      CLASH_WARN << "oversized frame (" << len << " bytes); closing";
      close();
      return;
    }
    if (in_.size() - offset - 4 < len) break;  // incomplete
    on_frame_(std::span<const std::uint8_t>(in_.data() + offset + 4, len));
    if (closed()) return;  // handler may close
    offset += 4 + len;
  }
  if (offset > 0) in_.erase(in_.begin(), in_.begin() + std::ptrdiff_t(offset));
}

void Connection::send_frame(std::span<const std::uint8_t> payload) {
  if (closed()) return;
  const auto len = std::uint32_t(payload.size());
  const auto* len_bytes = reinterpret_cast<const std::uint8_t*>(&len);
  out_.insert(out_.end(), len_bytes, len_bytes + 4);
  out_.insert(out_.end(), payload.begin(), payload.end());
  handle_writable();
}

void Connection::handle_writable() {
  while (out_offset_ < out_.size()) {
    const ssize_t n = ::write(fd_.get(), out_.data() + out_offset_,
                              out_.size() - out_offset_);
    if (n > 0) {
      out_offset_ += std::size_t(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CLASH_DEBUG << "write error on fd " << fd_.get() << ": "
                << std::strerror(errno);
    close();
    return;
  }
  if (out_offset_ == out_.size()) {
    out_.clear();
    out_offset_ = 0;
  }
  update_interest();
}

void Connection::update_interest() {
  const bool need_write = out_offset_ < out_.size();
  if (need_write == want_write_) return;
  want_write_ = need_write;
  loop_.modify_fd(fd_.get(),
                  EPOLLIN | (need_write ? std::uint32_t(EPOLLOUT) : 0u));
}

void Connection::close() {
  if (closed()) return;
  loop_.remove_fd(fd_.get());
  fd_.reset();
  if (on_close_) on_close_();
}

}  // namespace clash::net
