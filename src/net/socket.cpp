#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace clash::net {
namespace {

Error sys_error(const std::string& what) {
  return Error{Error::Code::kUnknown, what + ": " + std::strerror(errno)};
}

Expected<sockaddr_in> make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Error::invalid("bad IPv4 address: " + ep.host);
  }
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Expected<Fd> listen_tcp(const Endpoint& ep, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return sys_error("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto addr = make_addr(ep);
  if (!addr.ok()) return addr.error();
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return sys_error("bind " + ep.to_string());
  }
  if (::listen(fd.get(), backlog) != 0) return sys_error("listen");
  set_nonblocking(fd);
  return fd;
}

Expected<std::uint16_t> bound_port(const Fd& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return sys_error("getsockname");
  }
  return std::uint16_t(ntohs(addr.sin_port));
}

Expected<Fd> connect_tcp(const Endpoint& ep) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return sys_error("socket");
  auto addr = make_addr(ep);
  if (!addr.ok()) return addr.error();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
                sizeof(sockaddr_in)) != 0) {
    return sys_error("connect " + ep.to_string());
  }
  set_nodelay(fd);
  return fd;
}

Expected<AsyncConnect> connect_tcp_async(const Endpoint& ep) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return sys_error("socket");
  auto addr = make_addr(ep);
  if (!addr.ok()) return addr.error();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr.value()),
                sizeof(sockaddr_in)) == 0) {
    set_nodelay(fd);
    return AsyncConnect{std::move(fd), false};
  }
  if (errno == EINPROGRESS) return AsyncConnect{std::move(fd), true};
  return sys_error("connect " + ep.to_string());
}

int connect_result(const Fd& fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno;
  }
  return err;
}

Expected<Fd> accept_tcp(const Fd& listener) {
  const int fd = ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Error{Error::Code::kWouldBlock, "no pending connection"};
    }
    return sys_error("accept");
  }
  Fd out(fd);
  set_nodelay(out);
  return out;
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(const Fd& fd) {
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace clash::net
