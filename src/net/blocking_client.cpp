#include "net/blocking_client.hpp"

#include <poll.h>
#include <unistd.h>

#include <cstring>

#include "common/logging.hpp"
#include "net/connection.hpp"
#include "wire/codec.hpp"

namespace clash::net {
namespace {

/// Blocking read of exactly `n` bytes with a deadline.
bool read_exact(int fd, std::uint8_t* out, std::size_t n,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t got = 0;
  while (got < n) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, int(remaining.count()));
    if (pr <= 0) {
      if (pr < 0 && errno == EINTR) continue;
      return false;
    }
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r <= 0) {
      if (r < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    got += std::size_t(r);
  }
  return true;
}

bool write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::write(fd, data.data() + sent, data.size() - sent);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    sent += std::size_t(w);
  }
  return true;
}

}  // namespace

BlockingClient::BlockingClient(Config config)
    : config_(std::move(config)),
      ring_(dht::ChordRing::Config{config_.hash_bits,
                                   config_.virtual_servers,
                                   config_.hash_algo, config_.ring_salt}) {
  for (const auto& [id, _] : config_.members) ring_.add_server(id);
  if (!config_.access_point.valid() && !config_.members.empty()) {
    config_.access_point = config_.members.begin()->first;
  }
}

BlockingClient::~BlockingClient() = default;

dht::LookupResult BlockingClient::dht_lookup(dht::HashKey h) {
  return ring_.lookup(h, config_.access_point);
}

Expected<Fd*> BlockingClient::connection_to(ServerId to) {
  const auto it = connections_.find(to);
  if (it != connections_.end() && it->second.valid()) return &it->second;
  const auto member = config_.members.find(to);
  if (member == config_.members.end()) {
    return Error::not_found("unknown server " + to_string(to));
  }
  auto fd = connect_tcp(member->second);
  if (!fd.ok()) return fd.error();
  auto [slot, _] = connections_.insert_or_assign(to, std::move(fd).value());
  return &slot->second;
}

Expected<std::vector<std::uint8_t>> BlockingClient::call(
    ServerId to, std::span<const std::uint8_t> wire_frame) {
  // `wire_frame` is a finished frame (u32 LE length prefix included),
  // written as-is — no re-framing copy.
  if (wire_frame.size() <= 4 ||
      wire_frame.size() - 4 > Connection::kMaxFrame) {
    return Error::invalid("frame size out of bounds");
  }
  auto conn = connection_to(to);
  if (!conn.ok()) return conn.error();
  const int fd = conn.value()->get();

  if (!write_all(fd, wire_frame)) {
    connections_.erase(to);
    return Error{Error::Code::kClosed, "write failed"};
  }

  std::uint8_t len_buf[4];
  if (!read_exact(fd, len_buf, 4, config_.timeout)) {
    connections_.erase(to);
    return Error{Error::Code::kTimeout, "response header timeout"};
  }
  const std::uint32_t resp_len = wire::load_u32_le(len_buf);
  if (resp_len > Connection::kMaxFrame) {
    connections_.erase(to);
    return Error::protocol("oversized response frame");
  }
  std::vector<std::uint8_t> response(resp_len);
  if (!read_exact(fd, response.data(), resp_len, config_.timeout)) {
    connections_.erase(to);
    return Error{Error::Code::kTimeout, "response body timeout"};
  }
  return response;
}

AcceptObjectReply BlockingClient::rpc_accept_object(ServerId to,
                                                    const AcceptObject& msg) {
  auto w = wire::begin_frame(wire::Envelope{
      wire::FrameKind::kRequest, next_request_id_++, ServerId{}});
  wire::encode_message(w, Message(msg));
  const auto frame = wire::finish_frame(std::move(w));

  const auto response = call(to, frame);
  if (!response.ok()) {
    // Surface transport failure as "wrong everything": the depth search
    // widens back to the full range and retries elsewhere.
    ++transport_errors_;
    CLASH_DEBUG << "rpc to " << to_string(to)
                << " failed: " << response.error().message;
    return IncorrectDepth{0};
  }
  const auto decoded = wire::decode_frame(response.value());
  if (!decoded.ok()) {
    ++transport_errors_;
    return IncorrectDepth{0};
  }
  const auto reply = wire::decode_reply(decoded.value().payload);
  if (!reply.ok()) {
    ++transport_errors_;
    return IncorrectDepth{0};
  }
  return reply.value();
}

}  // namespace clash::net
