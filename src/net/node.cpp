#include "net/node.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"
#include "wire/codec.hpp"

namespace clash::net {

namespace {
// Affinity probe shared by every token the node binds (census,
// membership driver, store): their home thread is the node's loop.
bool node_loop_probe(const void* ctx) {
  return static_cast<const EventLoop*>(ctx)->on_loop_or_idle();
}
}  // namespace

// ServerEnv bridging the protocol logic onto the loop + transport.
// Every override runs on the loop thread (the server only acts from
// deliver/tick paths), witnessed by the assertions below.
class ClashNode::Env final : public ServerEnv {
 public:
  explicit Env(ClashNode& node) : node_(node) {}

  dht::LookupResult dht_lookup(dht::HashKey h) override {
    node_.on_loop_.assert_held();
    return node_.ring_->lookup(h, node_.config_.id);
  }

  std::vector<ServerId> replica_targets(dht::HashKey h,
                                        unsigned n) override {
    node_.on_loop_.assert_held();
    auto servers = node_.ring_->successors(h, std::size_t(n) + 1);
    if (!servers.empty()) servers.erase(servers.begin());  // drop owner
    return servers;
  }

  void send(ServerId to, const Message& msg) override {
    node_.on_loop_.assert_held();
    // Encoded exactly once, straight into the pooled frame buffer the
    // transport queues and flushes — no intermediate copies.
    auto w = wire::begin_frame(
        wire::Envelope{wire::FrameKind::kOneway, 0, node_.config_.id});
    wire::encode_message(w, msg);
    node_.send_to_peer(to, wire::finish_frame(std::move(w)));
  }

  [[nodiscard]] SimTime now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - node_.epoch_;
    return SimTime(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

  std::size_t snapshot_chunk_budget(ServerId to) override {
    node_.on_loop_.assert_held();
    const auto it = node_.peers_.find(to);
    if (it == node_.peers_.end() || it->second->closed()) {
      if (node_.connecting_.count(to) > 0) {
        // Handshake in flight: the pending-connect queue is bounded
        // (kMaxQueuedPerConnect) and silently drops overflow, so hold
        // the cursor until the connect lands — its queued frames then
        // flush and the drain callback resumes the pump.
        return 0;
      }
      // Unknown peer: grant one burst; the first frame kicks off the
      // connect and at most a burst parks on it.
      return node_.config_.snapshot_burst_chunks;
    }
    // Backpressure signal: the outbound queue depth (equivalently, a
    // flush_syscalls count that stopped advancing while the queue
    // grows). At or past the threshold the transfer pauses; the
    // connection's drain callback pumps it again.
    if (it->second->send_queue_bytes() >= node_.config_.snapshot_pace_bytes) {
      return 0;
    }
    return node_.config_.snapshot_burst_chunks;
  }

  void defer(std::function<void()> fn) override {
    node_.loop_->assert_on_loop();
    node_.loop_->defer(std::move(fn));
  }

  [[nodiscard]] obs::Hub& obs() override { return node_.hub_; }

 private:
  ClashNode& node_;
};

// MembershipEnv bridging the SWIM driver onto the same wire transport
// (gossip rides the identical oneway framing as protocol messages),
// with the ring/failover reactions to membership changes.
class ClashNode::GossipEnv final : public membership::MembershipEnv {
 public:
  explicit GossipEnv(ClashNode& node) : node_(node) {}

  void gossip_send(ServerId to, const Gossip& msg) override {
    node_.env_->send(to, Message(msg));
  }

  void on_member_dead(ServerId id) override {
    node_.on_loop_.assert_held();
    node_.on_member_dead(id);
  }
  void on_member_joined(ServerId id) override {
    node_.on_loop_.assert_held();
    node_.on_member_joined(id);
  }
  void on_member_suspected(ServerId id) override {
    node_.on_loop_.assert_held();
    node_.hub_.flight.record(obs::FlightKind::kMemberSuspected,
                             std::uint32_t(node_.config_.id.value),
                             node_.node_now_us(), id.value);
  }

 private:
  ClashNode& node_;
};

ClashNode::ClashNode(NodeConfig config)
    : config_(std::move(config)),
      loop_(std::make_unique<EventLoop>()),
      on_loop_(loop_->loop_thread()),
      census_(config_.id, config_.census) {
  if (config_.members.count(config_.id) == 0) {
    throw std::invalid_argument("node id missing from member list");
  }
  // The census (and below, the driver and store) live on the loop
  // thread; bind their affinity tokens to it so off-loop access aborts
  // in checked builds. Everything in this constructor passes the probe
  // because the loop is idle until start() spawns its thread.
  census_.affinity().bind(&node_loop_probe, loop_.get(), "Census");
  ring_ = std::make_unique<dht::ChordRing>(dht::ChordRing::Config{
      config_.hash_bits, config_.virtual_servers, config_.hash_algo,
      config_.ring_salt});
  for (const auto& [id, _] : config_.members) ring_->add_server(id);
  env_ = std::make_unique<Env>(*this);
  server_ = std::make_unique<ClashServer>(config_.id, config_.clash, *env_,
                                          ring_->hasher());
  if (config_.clash.durability_mode != ClashConfig::DurabilityMode::kNone) {
    if (config_.storage_dir.empty()) {
      throw std::invalid_argument(
          "durability_mode set but storage_dir empty");
    }
    storage_backend_ =
        std::make_unique<storage::FileBackend>(config_.storage_dir);
    store_ = std::make_unique<storage::NodeStore>(
        *storage_backend_, storage::NodeStore::Config::from(config_.clash));
    store_->affinity().bind(&node_loop_probe, loop_.get(), "NodeStore");
    store_->set_obs(&hub_, config_.id.value);
    server_->set_storage(store_.get());
  }
  if (config_.enable_membership) {
    gossip_env_ = std::make_unique<GossipEnv>(*this);
    membership_ = std::make_unique<membership::MembershipDriver>(
        config_.id, config_.membership, *gossip_env_,
        config_.id.value * 0x9e3779b97f4a7c15ULL + config_.ring_salt);
    membership_->affinity().bind(&node_loop_probe, loop_.get(),
                                 "MembershipDriver");
    for (const auto& [id, _] : config_.members) membership_->add_seed(id);
    membership_->set_obs(&hub_);
    // Cost census rides the gossip the driver already sends: the
    // collector folds this server's registry + group costs on each
    // refresh cadence, the driver piggybacks and absorbs records.
    census_.set_collector([this](NodeCensusRecord& rec) {
      server_->fold_census(rec, config_.census.top_k);
    });
    membership_->set_census(&census_);
  }
  epoch_ = std::chrono::steady_clock::now();
  loop_->set_obs(hub_.registry.histogram("clash_loop_tick_usec").raw(),
                 &hub_.tracer, config_.id.value);
  // Flight-recorder wiring: tick-budget overruns land in the ring on
  // the node's timeline (steady clock relative to epoch_).
  loop_->set_stall_obs(
      &hub_.flight,
      hub_.registry.counter("clash_stall_tick_overruns_total"),
      config_.watchdog.tick_budget_us,
      std::chrono::duration_cast<std::chrono::microseconds>(
          epoch_.time_since_epoch())
          .count());
  register_node_gauges();
}

ClashNode::~ClashNode() { stop(); }

void ClashNode::install_entries(
    const std::vector<ServerTableEntry>& entries) {
  const auto install = [entries](ClashServer& server) {
    for (const auto& e : entries) server.install_entry(e);
    return true;
  };
  (void)run_on_loop(install);
}

void ClashNode::start() {
  if (running_) return;
  // The loop is idle until the thread spawn below, so this caller holds
  // the affinity capability for the whole setup sequence.
  on_loop_.assert_held();
  loop_->assert_on_loop();
  auto listener = listen_tcp(config_.listen);
  if (!listener.ok()) {
    throw std::runtime_error("clash node listen failed: " +
                             listener.error().message);
  }
  listener_ = std::move(listener).value();
  const auto port = bound_port(listener_);
  if (!port.ok()) throw std::runtime_error(port.error().message);
  port_ = port.value();

  loop_->add_fd(listener_.get(), EPOLLIN, [this](std::uint32_t) {
    on_loop_.assert_held();
    on_listener_ready();
  });
  if (config_.stats_port >= 0) start_stats_listener();
  if (store_ != nullptr && !recovered_) recover_from_storage();
  schedule_load_check();
  if (membership_ != nullptr) schedule_membership_tick();

  // Postmortem plane: register this node's black box with the
  // process-global dump registry. The source reads only lock-free
  // structures plus the try_lock-guarded cache refreshed below — it
  // must work from a crashing thread without hopping to the loop.
  auto& pm = obs::Postmortem::global();
  const std::string pm_dir = config_.postmortem_dir.empty()
                                 ? config_.storage_dir
                                 : config_.postmortem_dir;
  if (!pm_dir.empty()) pm.set_dir(pm_dir);
  if (config_.install_crash_handler) pm.install_crash_handler();
  pm_source_id_ =
      pm.add_source("node-" + std::to_string(config_.id.value),
                    [this] { return render_postmortem_source(); });
  refresh_postmortem_cache();  // crash-before-first-timer coverage
  schedule_postmortem_refresh();

  // Clear the previous run's latches before posters can see
  // running_ == true, or a restart would briefly bounce posts into
  // call_on_loop's inline path while the new loop thread spins up.
  loop_->rearm();
  running_ = true;
  thread_ = std::thread([this] { loop_->run(); });

  if (config_.watchdog.enabled) {
    watchdog_ = std::make_unique<obs::StallWatchdog>(
        config_.watchdog, hub_, std::uint32_t(config_.id.value));
    const std::int64_t epoch_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            epoch_.time_since_epoch())
            .count();
    watchdog_->set_clock([this] { return node_now_us(); });
    // The loop publishes tick starts on the raw steady clock; shift
    // them onto the node's timeline so ages subtract cleanly.
    watchdog_->set_tick_probe(
        [this, epoch_us]()
            -> std::optional<std::pair<std::uint64_t, std::int64_t>> {
          const auto tick = loop_->current_tick();
          if (!tick) return std::nullopt;
          return std::make_pair(tick->first, tick->second - epoch_us);
        });
    watchdog_->set_dump_hook([](const char* reason) {
      obs::Postmortem::global().dump(reason);
    });
    watchdog_->start();
  }
}

void ClashNode::stop() {
  if (!running_) return;
  if (watchdog_ != nullptr) {
    watchdog_->stop();
    watchdog_.reset();
  }
  if (pm_source_id_ != 0) {
    obs::Postmortem::global().remove_source(pm_source_id_);
    pm_source_id_ = 0;
  }
  loop_->stop();
  if (thread_.joinable()) thread_.join();
  // Only now does !running_ imply "the loop thread is gone": flipping
  // it any earlier would let call_on_loop's inline path race the still
  // draining loop. The joined loop is idle again, so this thread holds
  // the affinity capability for the teardown below.
  running_ = false;
  on_loop_.assert_held();
  loop_->assert_on_loop();
  peers_.clear();
  connecting_.clear();
  for (const auto& [_, token] : connect_ops_) hub_.inflight.end(token);
  connect_ops_.clear();
  inbound_.clear();
  for (const auto& [fd, _] : stats_clients_) loop_->remove_fd(fd);
  stats_clients_.clear();
  stats_listener_.reset();
  stats_port_ = 0;
  listener_.reset();
}

namespace {
/// Compact ClusterView JSON for the postmortem state snapshot: enough
/// to see who this node believed was alive and loaded at the crash.
std::string census_view_json(const obs::ClusterView& view) {
  std::string out = "{\"nodes\":[";
  bool first = true;
  for (const auto& n : view.nodes) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"id\":" + std::to_string(n.id.value) +
           ",\"incarnation\":" + std::to_string(n.incarnation) +
           ",\"load\":" + std::to_string(n.load) +
           ",\"groups\":" + std::to_string(n.active_groups) +
           ",\"replicas\":" + std::to_string(n.replica_records) +
           ",\"age_periods\":" + std::to_string(n.age_periods) + "}";
  }
  out += "],\"total_load\":" + std::to_string(view.total_load) +
         ",\"total_groups\":" + std::to_string(view.total_groups) +
         ",\"total_replicas\":" + std::to_string(view.total_replicas) +
         ",\"max_age_periods\":" + std::to_string(view.max_age_periods) +
         "}";
  return out;
}
}  // namespace

void ClashNode::schedule_postmortem_refresh() {
  loop_->call_after(config_.postmortem_refresh, [this] {
    on_loop_.assert_held();
    refresh_postmortem_cache();
    schedule_postmortem_refresh();
  });
}

void ClashNode::refresh_postmortem_cache() {
  std::string fresh = "{\"cached_at_us\":" + std::to_string(node_now_us());
  fresh += ",\"registry\":";
  fresh += hub_.registry.render_json(0);
  fresh += ",\"census\":";
  fresh += census_view_json(census_.view());
  fresh += ",\"ring_servers\":" + std::to_string(ring_->server_count());
  fresh += "}";
  const common::MutexLock lock(pm_cache_mu_);
  pm_cache_ = std::move(fresh);
}

std::string ClashNode::render_postmortem_source() {
  const std::int64_t now = node_now_us();
  std::string out = "{\"node\":" + std::to_string(config_.id.value);
  out += ",\"now_us\":" + std::to_string(now);
  out += ",\"flight\":";
  out += hub_.flight.to_json();
  out += ",\"inflight\":";
  out += hub_.inflight.to_json(now);
  out += ",\"state\":";
  // try_lock, never lock: the refresh writer runs on the loop thread,
  // and the loop thread may be exactly what crashed.
  if (pm_cache_mu_.try_lock()) {
    out += pm_cache_.empty() ? "null" : pm_cache_;
    pm_cache_mu_.unlock();
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

void ClashNode::schedule_load_check() {
  loop_->assert_on_loop();
  loop_->call_after(config_.load_check_interval, [this] {
    on_loop_.assert_held();
    server_->run_load_check();
    schedule_load_check();
  });
}

void ClashNode::schedule_membership_tick() {
  loop_->assert_on_loop();
  loop_->call_after(config_.protocol_period, [this] {
    on_loop_.assert_held();
    membership_->tick();
    schedule_membership_tick();
  });
}

void ClashNode::recover_from_storage() {
  loop_->assert_on_loop();
  recovered_ = true;
  const std::size_t restored = server_->restore_from_storage();
  if (restored == 0) return;
  CLASH_INFO << to_string(config_.id) << ": restored " << restored
             << " group(s) from " << config_.storage_dir;
  // Re-adopt every recovered group the (seed) ring maps here. In log
  // mode this mirrors a failover heir: open the recovery session now
  // (the anti-entropy probes go out as peer connections come up) and
  // promote after the grace window, so a fresher holder can stream
  // the suffix the disk lost — a torn WAL tail costs a few ops over
  // the wire, never a full snapshot.
  for (const KeyGroup& group : server_->replicas_owned_by(config_.id)) {
    if (ring_->map(ring_->hasher().hash_key(group.virtual_key())) !=
        config_.id) {
      continue;  // the ring moved on; anti-entropy reclaims or GCs it
    }
    if (!server_->log_replication()) {
      (void)server_->promote_replica(group);
      continue;
    }
    server_->begin_group_recovery(group);
    loop_->call_after(config_.recovery_grace, [this, group] {
      on_loop_.assert_held();
      if (ring_->map(ring_->hasher().hash_key(group.virtual_key())) ==
          config_.id) {
        (void)server_->promote_replica(group);
      } else {
        server_->abandon_group_recovery(group);
      }
    });
  }
}

void ClashNode::on_member_dead(ServerId id) {
  loop_->assert_on_loop();
  if (id == config_.id || !ring_->contains(id)) return;
  CLASH_WARN << to_string(config_.id) << ": member " << to_string(id)
             << " declared dead; removing from ring";
  hub_.flight.record(obs::FlightKind::kMemberDead,
                     std::uint32_t(config_.id.value), node_now_us(),
                     id.value);
  ring_->remove_server(id);
  peers_.erase(id);
  drop_pending_connect(id, "member died");
  // Automatic failover: any group the dead owner replicated here that
  // the shrunken ring now maps to this node gets promoted. Peers do the
  // same for their own replicas, so the dead node's groups come back on
  // exactly their new DHT owners. Under log replication the promotion
  // waits out a recovery-grace window first: the heir probes the
  // surviving holders with its (epoch, seq) head and lets the freshest
  // one stream the missing suffix before anything is installed.
  for (const KeyGroup& group : server_->replicas_owned_by(id)) {
    const ServerId heir =
        ring_->map(ring_->hasher().hash_key(group.virtual_key()));
    if (heir != config_.id) continue;
    if (server_->log_replication()) {
      server_->begin_group_recovery(group);
      loop_->call_after(config_.recovery_grace, [this, id, group] {
        on_loop_.assert_held();
        // Re-validate after the grace window: the death may have been
        // refuted (member back on the ring — it was handed its groups)
        // or the ring may have shifted the group to another heir.
        // Promoting anyway would create dual ownership with the
        // fenced-out epoch winning over the legitimate line.
        if (ring_->contains(id) ||
            ring_->map(ring_->hasher().hash_key(group.virtual_key())) !=
                config_.id) {
          server_->abandon_group_recovery(group);
          return;
        }
        (void)server_->promote_replica(group);
      });
    } else {
      (void)server_->promote_replica(group);
    }
  }
}

void ClashNode::on_member_joined(ServerId id) {
  if (ring_->contains(id)) return;
  CLASH_INFO << to_string(config_.id) << ": member " << to_string(id)
             << " rejoined; adding to ring";
  hub_.flight.record(obs::FlightKind::kMemberJoined,
                     std::uint32_t(config_.id.value), node_now_us(),
                     id.value);
  ring_->add_server(id);
  // Rejoin-gap fix: a restarted node comes back empty, yet the grown
  // ring routes its old key ranges to it again. Hand every active
  // group the ring now maps to the rejoined member back to it with
  // full state (and the log epoch, so its new line supersedes ours) —
  // it must not serve those groups empty.
  const std::size_t moved = server_->handoff_groups(id);
  if (moved > 0) {
    CLASH_INFO << to_string(config_.id) << ": handed " << moved
               << " group(s) back to rejoined " << to_string(id);
  }
}

void ClashNode::set_link_fault(ServerId peer, FaultInjector::Config cfg) {
  call_on_loop([&] {
    on_loop_.assert_held();
    auto& slot = link_faults_[peer];
    if (slot == nullptr) {
      slot = std::make_shared<FaultInjector>(cfg);
    } else {
      slot->configure(cfg);
    }
    const auto it = peers_.find(peer);
    if (it != peers_.end()) it->second->set_fault_injector(slot);
    return true;
  });
}

void ClashNode::clear_link_fault(ServerId peer) {
  call_on_loop([&] {
    on_loop_.assert_held();
    link_faults_.erase(peer);
    const auto it = peers_.find(peer);
    if (it != peers_.end()) it->second->set_fault_injector(nullptr);
    return true;
  });
}

FaultInjector::Stats ClashNode::link_fault_stats(ServerId peer) {
  return call_on_loop([&] {
    on_loop_.assert_held();
    const auto it = link_faults_.find(peer);
    return it != link_faults_.end() ? it->second->stats()
                                    : FaultInjector::Stats{};
  });
}

std::size_t ClashNode::ring_server_count() {
  return call_on_loop([&] {
    on_loop_.assert_held();
    return ring_->server_count();
  });
}

MemberState ClashNode::member_state(ServerId id) {
  return call_on_loop([&] {
    on_loop_.assert_held();
    if (membership_ == nullptr) {
      return config_.members.count(id) > 0 ? MemberState::kAlive
                                           : MemberState::kDead;
    }
    return membership_->view().state_of(id);
  });
}

void ClashNode::on_listener_ready() {
  loop_->assert_on_loop();
  for (;;) {
    auto fd = accept_tcp(listener_);
    if (!fd.ok()) break;  // kWouldBlock or transient error
    adopt_peer(std::move(fd).value());
  }
}

void ClashNode::register_node_gauges() {
  // Callbacks are evaluated at scrape time only, and every scrape of
  // this hub runs on the loop thread (the endpoint handler and
  // scrape_text() both route there), so reading loop-owned state
  // needs no locks. Each callback witnesses the affinity token: a
  // scrape reaching this registry off the loop (e.g. hub().registry
  // .render_text() from a test thread) would otherwise race the loop's
  // writes — with the asserts it aborts in checked builds instead.
  auto& r = hub_.registry;
  r.gauge_callback("clash_node_peer_connections", [this] {
    on_loop_.assert_held();
    return double(peers_.size());
  });
  r.gauge_callback("clash_node_send_queue_bytes", [this] {
    on_loop_.assert_held();
    std::size_t total = 0;
    for (const auto& [_, conn] : peers_) {
      if (!conn->closed()) total += conn->send_queue_bytes();
    }
    return double(total);
  });
  r.gauge_callback("clash_node_active_groups", [this] {
    on_loop_.assert_held();
    return double(server_->table().active_count());
  });
  r.gauge_callback("clash_node_replica_records", [this] {
    on_loop_.assert_held();
    return double(server_->replica_count());
  });
  r.gauge_callback("clash_node_ring_servers", [this] {
    on_loop_.assert_held();
    return double(ring_->server_count());
  });
  // One gauge per MessageStats field, straight off the X-macro list:
  // the field reference aims at the server's live stats_ member, which
  // outlives every scrape (reset_stats() assigns in place).
  server_->stats().for_each_named(
      [&](const char* name, const std::uint64_t& field) {
        const std::uint64_t* ptr = &field;
        r.gauge_callback(std::string("clash_msgs_") + name,
                         [ptr] { return double(*ptr); });
      });
  // Cluster-wide series off the gossiped census: every node serves the
  // same converged numbers, so any one scrape target shows the whole
  // deployment. view() folds the table fresh per scrape (loop thread).
  r.gauge_callback("clash_cluster_nodes", [this] {
    return double(census_.view().nodes.size());
  });
  r.gauge_callback("clash_cluster_total_load", [this] {
    return census_.view().total_load;
  });
  r.gauge_callback("clash_cluster_active_groups", [this] {
    return double(census_.view().total_groups);
  });
  r.gauge_callback("clash_cluster_replica_records", [this] {
    return double(census_.view().total_replicas);
  });
  r.gauge_callback("clash_cluster_queries", [this] {
    return double(census_.view().total_queries);
  });
  r.gauge_callback("clash_cluster_streams", [this] {
    return double(census_.view().total_streams);
  });
  r.gauge_callback("clash_cluster_census_age_periods", [this] {
    return double(census_.view().max_age_periods);
  });
  r.gauge_callback("clash_cluster_top_group_bytes", [this] {
    const auto view = census_.view();
    return view.top_groups.empty()
               ? 0.0
               : double(view.top_groups.front().cost.total_bytes());
  });
  r.gauge_callback("clash_census_absorbed", [this] {
    return double(census_.absorbed());
  });
  r.gauge_callback("clash_census_stale_rejected", [this] {
    return double(census_.stale_rejected());
  });
  r.gauge_callback("clash_census_crc_rejected", [this] {
    return double(census_.crc_rejected());
  });
}

void ClashNode::start_stats_listener() {
  loop_->assert_on_loop();
  auto listener = listen_tcp(
      Endpoint{config_.listen.host, std::uint16_t(config_.stats_port)});
  if (!listener.ok()) {
    throw std::runtime_error("stats endpoint listen failed: " +
                             listener.error().message);
  }
  stats_listener_ = std::move(listener).value();
  const auto port = bound_port(stats_listener_);
  if (!port.ok()) throw std::runtime_error(port.error().message);
  stats_port_ = port.value();
  loop_->add_fd(stats_listener_.get(), EPOLLIN, [this](std::uint32_t) {
    on_loop_.assert_held();
    on_stats_ready();
  });
  CLASH_INFO << to_string(config_.id) << ": stats endpoint on "
             << config_.listen.host << ":" << stats_port_;
}

void ClashNode::on_stats_ready() {
  loop_->assert_on_loop();
  for (;;) {
    auto fd = accept_tcp(stats_listener_);
    if (!fd.ok()) break;
    Fd client = std::move(fd).value();
    set_nonblocking(client);
    const int raw = client.get();
    stats_clients_[raw].fd = std::move(client);
    loop_->add_fd(raw, EPOLLIN, [this, raw](std::uint32_t events) {
      on_loop_.assert_held();
      on_stats_client(raw, events);
    });
  }
}

void ClashNode::on_stats_client(int fd, std::uint32_t events) {
  loop_->assert_on_loop();
  const auto it = stats_clients_.find(fd);
  if (it == stats_clients_.end()) return;
  StatsClient& client = it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_stats_client(fd);
    return;
  }
  if ((events & EPOLLIN) && client.out.empty()) {
    char buf[1024];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        client.in.append(buf, std::size_t(n));
        continue;
      }
      if (n == 0) {
        close_stats_client(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_stats_client(fd);
      return;
    }
    // The endpoint is read-only and stateless, so any complete request
    // line is good enough — respond at the first newline (HTTP clients
    // and bare `nc` alike), or give up past 8 KiB. The path picks the
    // document: /trace and /healthz are special, everything else (and
    // a pathless bare newline) gets the metrics exposition.
    if (client.in.find('\n') == std::string::npos &&
        client.in.size() <= 8192) {
      return;
    }
    std::string body;
    const char* content_type = "text/plain; version=0.0.4";
    if (client.in.find(" /trace") != std::string::npos) {
      body = hub_.tracer.to_chrome_json();
      content_type = "application/json";
    } else if (client.in.find(" /flightrec") != std::string::npos) {
      // The live black box: flight ring + in-flight op table, the same
      // payload a postmortem dump would carry for this node.
      const std::int64_t now = node_now_us();
      body = "{\"node\":" + std::to_string(config_.id.value) +
             ",\"now_us\":" + std::to_string(now) + ",\"flight\":" +
             hub_.flight.to_json() + ",\"inflight\":" +
             hub_.inflight.to_json(now) + "}\n";
      content_type = "application/json";
    } else if (client.in.find(" /healthz") != std::string::npos) {
      const auto view = census_.view();
      body = "{\"status\":\"ok\",\"ring_servers\":" +
             std::to_string(ring_->server_count()) +
             ",\"trace_spans\":" +
             std::to_string(hub_.tracer.spans().size()) +
             ",\"trace_dropped\":" +
             std::to_string(hub_.tracer.dropped()) +
             ",\"census_nodes\":" + std::to_string(view.nodes.size()) +
             ",\"census_max_age_periods\":" +
             std::to_string(view.max_age_periods) + "}\n";
      content_type = "application/json";
    } else {
      body = hub_.registry.render_text();
    }
    client.out = "HTTP/1.0 200 OK\r\nContent-Type: " +
                 std::string(content_type) +
                 "\r\nContent-Length: " + std::to_string(body.size()) +
                 "\r\nConnection: close\r\n\r\n" + body;
  }
  while (client.off < client.out.size()) {
    const ssize_t n = ::write(fd, client.out.data() + client.off,
                              client.out.size() - client.off);
    if (n > 0) {
      client.off += std::size_t(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      loop_->modify_fd(fd, EPOLLOUT);  // resume when writable
      return;
    }
    close_stats_client(fd);
    return;
  }
  if (!client.out.empty()) close_stats_client(fd);  // fully served
}

void ClashNode::close_stats_client(int fd) {
  loop_->assert_on_loop();
  const auto it = stats_clients_.find(fd);
  if (it == stats_clients_.end()) return;
  loop_->remove_fd(fd);
  stats_clients_.erase(it);  // Fd destructor closes the socket
}

void ClashNode::adopt_peer(Fd fd) {
  // Inbound connections serve requests and peer messages; they are
  // dropped from the roster when the peer closes.
  auto conn_slot = std::make_shared<std::weak_ptr<Connection>>();
  auto conn = Connection::adopt(
      *loop_, std::move(fd),
      [this, conn_slot](std::span<const std::uint8_t> frame) {
        on_loop_.assert_held();
        if (const auto c = conn_slot->lock()) handle_frame(c, frame);
      },
      [this, conn_slot] {
        on_loop_.assert_held();
        if (const auto c = conn_slot->lock()) {
          std::erase_if(inbound_,
                        [&](const auto& entry) { return entry == c; });
        }
      });
  *conn_slot = conn;
  conn->set_obs(&hub_,
                std::chrono::duration_cast<std::chrono::microseconds>(
                    epoch_.time_since_epoch())
                    .count());
  inbound_.push_back(conn);
}

std::shared_ptr<Connection> ClashNode::adopt_outbound(ServerId to, Fd fd) {
  auto conn_slot = std::make_shared<std::weak_ptr<Connection>>();
  auto conn = Connection::adopt(
      *loop_, std::move(fd),
      [this, conn_slot](std::span<const std::uint8_t> frame) {
        on_loop_.assert_held();
        if (const auto c = conn_slot->lock()) handle_frame(c, frame);
      },
      [this, to] {
        on_loop_.assert_held();
        peers_.erase(to);
      });
  *conn_slot = conn;
  conn->set_obs(&hub_,
                std::chrono::duration_cast<std::chrono::microseconds>(
                    epoch_.time_since_epoch())
                    .count());
  // Resume paced snapshot transfers the moment the socket drains
  // instead of waiting for the next load check.
  conn->set_drain_handler([this] {
    on_loop_.assert_held();
    if (server_->has_pending_snapshots()) server_->pump_snapshots();
  });
  if (const auto fault = link_faults_.find(to);
      fault != link_faults_.end()) {
    conn->set_fault_injector(fault->second);
  }
  peers_[to] = conn;
  return conn;
}

void ClashNode::begin_connect(ServerId to,
                              std::vector<std::uint8_t>&& frame) {
  const auto member = config_.members.find(to);
  if (member == config_.members.end()) {
    CLASH_WARN << to_string(config_.id) << ": dropping frame for "
               << to_string(to) << " (unknown address)";
    return;
  }
  auto res = connect_tcp_async(member->second);
  if (!res.ok()) {
    CLASH_WARN << to_string(config_.id) << ": connect to " << to_string(to)
               << " failed: " << res.error().message;
    return;
  }
  if (!res.value().in_progress) {
    adopt_outbound(to, std::move(res.value().fd))
        ->send_wire_frame(std::move(frame));
    return;
  }
  // Handshake in flight: park the frame, watch for EPOLLOUT, and put a
  // deadline on it. The loop keeps servicing every other peer — a
  // blackholed address can no longer stall the node.
  PendingConnect pending;
  pending.fd = std::move(res.value().fd);
  pending.queued.push_back(std::move(frame));
  const int raw_fd = pending.fd.get();
  loop_->assert_on_loop();
  pending.timeout_timer =
      loop_->call_after(config_.connect_timeout, [this, to] {
        on_loop_.assert_held();
        drop_pending_connect(to, "connect timeout");
      });
  connecting_.emplace(to, std::move(pending));
  connect_ops_[to] =
      hub_.inflight.begin(obs::OpKind::kConnect,
                          std::uint32_t(config_.id.value), "", to.value,
                          node_now_us());
  loop_->add_fd(raw_fd, EPOLLOUT, [this, to](std::uint32_t events) {
    on_loop_.assert_held();
    finish_connect(to, events);
  });
}

void ClashNode::finish_connect(ServerId to, std::uint32_t events) {
  const auto it = connecting_.find(to);
  if (it == connecting_.end()) return;
  (void)events;  // SO_ERROR distinguishes success from failure
  const int err = connect_result(it->second.fd);
  if (err != 0) {
    CLASH_WARN << to_string(config_.id) << ": connect to " << to_string(to)
               << " failed: " << std::strerror(err);
    drop_pending_connect(to, nullptr);
    return;
  }
  PendingConnect pending = std::move(it->second);
  connecting_.erase(it);
  if (const auto op = connect_ops_.find(to); op != connect_ops_.end()) {
    hub_.inflight.end(op->second);
    connect_ops_.erase(op);
  }
  loop_->assert_on_loop();
  loop_->cancel_timer(pending.timeout_timer);
  loop_->remove_fd(pending.fd.get());
  set_nodelay(pending.fd);
  const auto conn = adopt_outbound(to, std::move(pending.fd));
  for (auto& queued : pending.queued) {
    conn->send_wire_frame(std::move(queued));
  }
}

void ClashNode::drop_pending_connect(ServerId to, const char* reason) {
  const auto it = connecting_.find(to);
  if (it == connecting_.end()) return;
  if (reason != nullptr) {
    CLASH_WARN << to_string(config_.id) << ": abandoning connect to "
               << to_string(to) << " (" << reason << ", "
               << it->second.queued.size() << " frames dropped)";
  }
  loop_->assert_on_loop();
  loop_->cancel_timer(it->second.timeout_timer);
  loop_->remove_fd(it->second.fd.get());
  connecting_.erase(it);
  if (const auto op = connect_ops_.find(to); op != connect_ops_.end()) {
    hub_.inflight.end(op->second);
    connect_ops_.erase(op);
  }
}

void ClashNode::send_to_peer(ServerId to, std::vector<std::uint8_t>&& frame) {
  if (to == config_.id) {
    // Loopback without a socket round trip (skip the length prefix).
    const auto decoded = wire::decode_frame(
        std::span<const std::uint8_t>(frame).subspan(4));
    if (decoded.ok()) {
      const auto msg = wire::decode_message(decoded.value().payload);
      if (msg.ok()) server_->deliver(config_.id, msg.value());
    }
    return;
  }
  const auto it = peers_.find(to);
  if (it != peers_.end() && !it->second->closed()) {
    it->second->send_wire_frame(std::move(frame));
    return;
  }
  const auto pending = connecting_.find(to);
  if (pending != connecting_.end()) {
    if (pending->second.queued.size() >= kMaxQueuedPerConnect) {
      CLASH_WARN << to_string(config_.id) << ": dropping frame for "
                 << to_string(to) << " (connect queue full)";
      return;
    }
    pending->second.queued.push_back(std::move(frame));
    return;
  }
  begin_connect(to, std::move(frame));
}

void ClashNode::handle_frame(const std::shared_ptr<Connection>& conn,
                             std::span<const std::uint8_t> frame) {
  // A frame that fails to decode is dropped, not fatal: the length
  // prefix already delimited it, so the stream stays in sync and the
  // next frame parses normally. Closing here would let a single
  // corrupted payload (fault injection, bit rot) tear down an
  // otherwise healthy peer link — the codec fence plus the counter is
  // the right response.
  const auto decoded = wire::decode_frame(frame);
  if (!decoded.ok()) {
    CLASH_WARN << to_string(config_.id)
               << ": dropping bad frame: " << decoded.error().message;
    hub_.registry.counter("clash_net_decode_rejected_total").inc();
    return;
  }
  const auto& env = decoded.value().envelope;
  const auto msg = wire::decode_message(decoded.value().payload);
  if (!msg.ok()) {
    CLASH_WARN << to_string(config_.id)
               << ": dropping bad payload: " << msg.error().message;
    hub_.registry.counter("clash_net_decode_rejected_total").inc();
    return;
  }

  switch (env.kind) {
    case wire::FrameKind::kOneway:
      if (const auto* gossip = std::get_if<Gossip>(&msg.value())) {
        if (membership_ != nullptr) membership_->handle(env.sender, *gossip);
        break;
      }
      server_->deliver(env.sender, msg.value());
      break;
    case wire::FrameKind::kRequest: {
      const auto* obj = std::get_if<AcceptObject>(&msg.value());
      if (obj == nullptr) {
        CLASH_WARN << "request frame without AcceptObject";
        conn->close();
        return;
      }
      const AcceptObjectReply reply = server_->handle_accept_object(*obj);
      auto w = wire::begin_frame(wire::Envelope{
          wire::FrameKind::kResponse, env.request_id, config_.id});
      wire::encode_reply(w, reply);
      conn->send_wire_frame(wire::finish_frame(std::move(w)));
      break;
    }
    case wire::FrameKind::kResponse:
      // Server nodes never issue requests; ignore.
      break;
  }
}

}  // namespace clash::net
