// ClashNode: one CLASH server deployed over real TCP. Hosts a
// ClashServer on a single-threaded epoll loop; peers exchange the wire
// protocol of wire/codec.hpp. The config's member list is the address
// book (seed view); from there the SWIM membership driver keeps the
// ring live — it pings peers every protocol period, declares silent
// ones dead, shrinks the Chord ring, and promotes this node's replicas
// of the dead owner's groups when the ring now maps them here
// (automatic failover). Rejoining members are re-admitted once they
// refute their death rumour.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>

#include "clash/server.hpp"
#include "clash/server_table.hpp"
#include "common/affinity.hpp"
#include "common/thread_annotations.hpp"
#include "dht/chord.hpp"
#include "membership/driver.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "obs/census.hpp"
#include "obs/hub.hpp"
#include "obs/postmortem.hpp"
#include "obs/watchdog.hpp"
#include "storage/backend.hpp"
#include "storage/store.hpp"

namespace clash::net {

struct NodeConfig {
  ServerId id{};
  Endpoint listen{};                      // port 0 = pick automatically
  std::map<ServerId, Endpoint> members;   // seed membership, incl. self
  ClashConfig clash;
  unsigned hash_bits = 32;
  unsigned virtual_servers = 8;
  dht::KeyHasher::Algo hash_algo = dht::KeyHasher::Algo::kSha1;
  std::uint64_t ring_salt = 0;
  /// Wall-clock cadence of load checks (the paper's LOAD_CHECK_PERIOD;
  /// tests shrink it to tens of milliseconds).
  std::chrono::microseconds load_check_interval = std::chrono::minutes(5);
  /// SWIM failure detection. Disabled reproduces the old static
  /// full-view behaviour (no gossip, ring fixed to the seed list).
  bool enable_membership = true;
  membership::MembershipConfig membership;
  /// Wall-clock SWIM protocol period (tests shrink it to milliseconds).
  std::chrono::microseconds protocol_period = std::chrono::seconds(1);
  /// Abandon a non-blocking peer connect after this long; the loop is
  /// never blocked while one is pending.
  std::chrono::microseconds connect_timeout = std::chrono::seconds(3);
  /// Log-replication mode: after a member death, hold each candidate
  /// promotion open this long so the surviving replica set can stream
  /// the missing log suffix (or a snapshot) to the heir before it
  /// installs — the RecoveryCoordinator's pull window over TCP.
  std::chrono::microseconds recovery_grace = std::chrono::milliseconds(250);
  /// Snapshot-chunk pacing: while a peer connection's outbound queue
  /// already holds this many bytes, no further SnapshotChunks are
  /// handed to it (ServerEnv::snapshot_chunk_budget returns 0); the
  /// connection's drain callback resumes the paused transfer. Keeps a
  /// huge group's snapshot from monopolising a slow link for a whole
  /// tick.
  std::size_t snapshot_pace_bytes = 256 * 1024;
  /// Chunks granted per budget ask while under the pace threshold.
  std::size_t snapshot_burst_chunks = 16;
  /// Durable-store data directory (WAL segments + group snapshots).
  /// Required when clash.durability_mode != kNone: a restarted node
  /// recovers its owned groups from here instead of pulling them over
  /// the network, then reconciles only the divergent suffix with the
  /// surviving replica set.
  std::string storage_dir;
  /// Live stats endpoint: serve the node's metrics registry as
  /// Prometheus text exposition over plain HTTP, read-only, off the
  /// existing event loop (no extra thread). -1 disables; 0 picks a
  /// free port — read it back with ClashNode::stats_port(). Besides
  /// the default metrics document it serves GET /trace (Chrome
  /// trace_event JSON), GET /healthz (liveness + census freshness),
  /// and GET /flightrec (flight-recorder ring + in-flight op table).
  int stats_port = -1;
  /// Cost-census dissemination knobs (records piggyback on SWIM
  /// gossip; inert when enable_membership is false).
  obs::CensusConfig census;
  /// Stall watchdog: a sidecar thread polling the loop's tick probe
  /// and the in-flight table; verdicts bump clash_stall_* and (rate
  /// limited) trigger a postmortem dump.
  obs::StallWatchdog::Config watchdog;
  /// Where this node's postmortem dumps land; "" defaults to
  /// storage_dir, and when that is empty too, dumps are disabled.
  std::string postmortem_dir;
  /// Install the process-wide SIGSEGV/SIGABRT/... dump-then-reraise
  /// handler on start(). Off by default: embedding processes (tests,
  /// benches) opt in explicitly, since signal disposition is global.
  bool install_crash_handler = false;
  /// Cadence of the loop-side refresh of the cached registry + census
  /// snapshot the postmortem source reads (the crash path must never
  /// hop to the loop).
  std::chrono::microseconds postmortem_refresh = std::chrono::seconds(1);
};

class ClashNode {
 public:
  explicit ClashNode(NodeConfig config);
  ~ClashNode();

  ClashNode(const ClashNode&) = delete;
  ClashNode& operator=(const ClashNode&) = delete;

  /// Bind, start the loop thread, begin periodic load checks.
  void start();
  void stop();

  [[nodiscard]] ServerId id() const { return config_.id; }
  /// Actual listening port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_; }

  /// Install bootstrap entries (before start, or routed to the loop).
  void install_entries(const std::vector<ServerTableEntry>& entries);

  /// Run `fn` on the loop thread and wait for its result — the
  /// thread-safe introspection door for tests and operators. When the
  /// loop has already finished (or a concurrent stop() wins the race),
  /// the task is executed inline: the loop thread no longer touches the
  /// server, so that is safe — and the caller can never hang on a
  /// posted lambda that would otherwise be silently dropped.
  template <typename Fn>
  auto run_on_loop(Fn fn) -> decltype(fn(std::declval<ClashServer&>())) {
    return call_on_loop([&] {
      on_loop_.assert_held();
      return fn(*server_);
    });
  }

  // --- Membership introspection (thread-safe) -------------------------
  /// Servers currently on this node's ring (self included).
  [[nodiscard]] std::size_t ring_server_count();
  /// This node's view of `id` (kDead when membership is disabled and
  /// the id is unknown).
  [[nodiscard]] MemberState member_state(ServerId id);

  /// Update the peer address table (all members must be known before
  /// protocol traffic flows).
  [[nodiscard]] const NodeConfig& config() const { return config_; }

  /// Durable store (null when durability is off). Stats only — the
  /// server owns all writes.
  [[nodiscard]] const storage::NodeStore* store() const {
    return store_.get();
  }

  // --- Observability ---------------------------------------------------
  /// This node's private metrics/trace hub: every layer the node hosts
  /// (server, store, membership, loop, connections) records here, not
  /// into the process-global hub, so co-located nodes in one test
  /// process never mix their series. Scrapes and gauge callbacks run
  /// on the loop thread; off-loop readers use scrape_text().
  [[nodiscard]] obs::Hub& hub() { return hub_; }
  /// Bound port of the stats endpoint (after start(); 0 when disabled).
  [[nodiscard]] std::uint16_t stats_port() const { return stats_port_; }
  /// Render the registry's text exposition on the loop thread — the
  /// same document the stats endpoint serves (thread-safe).
  [[nodiscard]] std::string scrape_text() {
    return call_on_loop([&] { return hub_.registry.render_text(); });
  }
  /// This node's converged view of the cluster census (thread-safe
  /// snapshot; empty until gossip has disseminated records).
  [[nodiscard]] obs::ClusterView cluster_view() {
    return call_on_loop([&] { return census_.view(); });
  }

  // --- Link-fault injection (thread-safe) -----------------------------
  /// Attach or reconfigure a deterministic FaultInjector on the
  /// outbound link to `peer`: applied to the live connection (if any)
  /// and to every future reconnect. Lets tests drop or delay protocol
  /// frames on one directed TCP link without touching the kernel.
  void set_link_fault(ServerId peer, FaultInjector::Config cfg);
  /// Detach the injector and deliver cleanly again.
  void clear_link_fault(ServerId peer);
  /// Counters of the injector on the link to `peer` (zeros when none).
  [[nodiscard]] FaultInjector::Stats link_fault_stats(ServerId peer);

 private:
  class Env;
  class GossipEnv;

  /// Run a zero-arg callable on the loop thread and wait; inline
  /// fallback only once the loop thread provably executes no further
  /// tasks. running_ flips false strictly after the loop thread is
  /// joined (see stop()), so the !running_ path never races it; a
  /// refused post means the loop is in its final drain — wait for
  /// exited() before touching loop-owned state from this thread.
  template <typename Fn>
  auto call_on_loop(Fn fn) -> decltype(fn()) {
    using R = decltype(fn());
    if (!running_) return fn();
    std::promise<R> promise;
    auto future = promise.get_future();
    if (!loop_->post([&] { promise.set_value(fn()); })) {
      while (!loop_->exited()) std::this_thread::yield();
      return fn();
    }
    return future.get();
  }

  /// A peer connect in flight: the non-blocking socket awaiting
  /// EPOLLOUT, frames queued for it meanwhile, and the abort timer.
  struct PendingConnect {
    Fd fd;
    std::uint64_t timeout_timer = 0;
    std::vector<std::vector<std::uint8_t>> queued;
  };
  /// Frames buffered per pending connect; beyond this they are
  /// dropped (SWIM retransmits, requests time out and retry).
  static constexpr std::size_t kMaxQueuedPerConnect = 128;

  /// One in-flight stats-endpoint request: accumulated request bytes,
  /// then the rendered response draining through partial writes.
  struct StatsClient {
    Fd fd;
    std::string in;
    std::string out;
    std::size_t off = 0;
  };

  void on_listener_ready() CLASH_REQUIRES(on_loop_);
  void start_stats_listener() CLASH_REQUIRES(on_loop_);
  void on_stats_ready() CLASH_REQUIRES(on_loop_);
  void on_stats_client(int fd, std::uint32_t events)
      CLASH_REQUIRES(on_loop_);
  void close_stats_client(int fd) CLASH_REQUIRES(on_loop_);
  void register_node_gauges() CLASH_REQUIRES(on_loop_);
  void adopt_peer(Fd fd) CLASH_REQUIRES(on_loop_);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    std::span<const std::uint8_t> frame)
      CLASH_REQUIRES(on_loop_);
  /// Takes an owned, finished wire frame (wire::finish_frame output).
  void send_to_peer(ServerId to, std::vector<std::uint8_t>&& frame)
      CLASH_REQUIRES(on_loop_);
  void begin_connect(ServerId to, std::vector<std::uint8_t>&& frame)
      CLASH_REQUIRES(on_loop_);
  void finish_connect(ServerId to, std::uint32_t events)
      CLASH_REQUIRES(on_loop_);
  void drop_pending_connect(ServerId to, const char* reason)
      CLASH_REQUIRES(on_loop_);
  std::shared_ptr<Connection> adopt_outbound(ServerId to, Fd fd)
      CLASH_REQUIRES(on_loop_);
  void schedule_load_check() CLASH_REQUIRES(on_loop_);
  void schedule_membership_tick() CLASH_REQUIRES(on_loop_);
  void schedule_postmortem_refresh() CLASH_REQUIRES(on_loop_);
  /// Rebuild the cached registry/census JSON the postmortem source
  /// serves (loop thread; the only writer of pm_cache_).
  void refresh_postmortem_cache() CLASH_REQUIRES(on_loop_);
  /// The postmortem source body: flight ring + in-flight table (lock
  /// free) + the cached state snapshot (try_lock; null when contended).
  /// Runs on whatever thread is dumping — crash-context safe.
  [[nodiscard]] std::string render_postmortem_source()
      CLASH_NO_THREAD_SAFETY_ANALYSIS;
  /// Microseconds since this node's epoch on the steady clock — the
  /// timebase of every flight event and in-flight stamp the node
  /// records (matches Env::now()).
  [[nodiscard]] std::int64_t node_now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  void on_member_dead(ServerId id) CLASH_REQUIRES(on_loop_);
  void on_member_joined(ServerId id) CLASH_REQUIRES(on_loop_);
  /// First start only: restore the durable image and re-promote every
  /// recovered group the ring still maps here (log mode holds the
  /// recovery-grace pull window first, exactly like a failover heir).
  void recover_from_storage() CLASH_REQUIRES(on_loop_);

  NodeConfig config_;  // immutable after construction
  /// Declared before env_/server_: the Env's obs() override hands this
  /// hub to the ClashServer constructor. Internally synchronized
  /// (Registry/TraceRecorder carry their own mutexes) — but gauge
  /// callbacks registered by this node touch loop-affine state, so
  /// scrapes of THIS hub must run on the loop (scrape_text() does).
  obs::Hub hub_;
  std::unique_ptr<EventLoop> loop_;
  /// The loop's affinity capability (alias of loop_->loop_thread());
  /// guards every loop-affine member below.
  common::AffinityToken& on_loop_;
  std::unique_ptr<dht::ChordRing> ring_ CLASH_PT_GUARDED_BY(on_loop_);
  std::unique_ptr<Env> env_;  // pointer immutable after construction
  std::unique_ptr<ClashServer> server_ CLASH_PT_GUARDED_BY(on_loop_);
  std::unique_ptr<storage::FileBackend> storage_backend_;
  std::unique_ptr<storage::NodeStore> store_ CLASH_PT_GUARDED_BY(on_loop_);
  bool recovered_ CLASH_GUARDED_BY(on_loop_) = false;
  /// Declared before membership_: the driver holds a raw pointer and
  /// absorbs into it until destroyed (reverse order protects this).
  /// Self-guarded: carries its own AffinityToken, bound to this loop.
  obs::Census census_;
  std::unique_ptr<GossipEnv> gossip_env_;
  std::unique_ptr<membership::MembershipDriver> membership_
      CLASH_PT_GUARDED_BY(on_loop_);

  Fd listener_ CLASH_GUARDED_BY(on_loop_);
  // port_/stats_port_ are written during start() (loop idle) and then
  // immutable; tests read them cross-thread, so they are deliberately
  // unguarded.
  std::uint16_t port_ = 0;
  Fd stats_listener_ CLASH_GUARDED_BY(on_loop_);
  std::uint16_t stats_port_ = 0;
  std::map<int, StatsClient> stats_clients_ CLASH_GUARDED_BY(on_loop_);
  std::map<ServerId, std::shared_ptr<Connection>> peers_
      CLASH_GUARDED_BY(on_loop_);
  std::map<ServerId, std::shared_ptr<FaultInjector>> link_faults_
      CLASH_GUARDED_BY(on_loop_);
  std::map<ServerId, PendingConnect> connecting_
      CLASH_GUARDED_BY(on_loop_);
  std::vector<std::shared_ptr<Connection>> inbound_
      CLASH_GUARDED_BY(on_loop_);
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;  // set once in ctor

  /// Tokens of in-flight kConnect ops, keyed like connecting_.
  std::map<ServerId, std::uint64_t> connect_ops_ CLASH_GUARDED_BY(on_loop_);
  /// Cached registry/census JSON for the postmortem source: written by
  /// a loop timer, read (try_lock) from whatever thread is crashing.
  common::Mutex pm_cache_mu_;
  std::string pm_cache_ CLASH_GUARDED_BY(pm_cache_mu_);
  std::uint64_t pm_source_id_ = 0;  // set in start(), cleared in stop()
  std::unique_ptr<obs::StallWatchdog> watchdog_;
};

}  // namespace clash::net
