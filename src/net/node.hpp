// ClashNode: one CLASH server deployed over real TCP. Hosts a
// ClashServer on a single-threaded epoll loop; peers exchange the wire
// protocol of wire/codec.hpp. Membership is static (full view), which
// keeps Map() local — suitable for datacentre/cluster deployments; the
// simulator is the place where O(log S) Chord routing costs are modelled.
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>

#include "clash/server.hpp"
#include "clash/server_table.hpp"
#include "dht/chord.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace clash::net {

struct NodeConfig {
  ServerId id{};
  Endpoint listen{};                      // port 0 = pick automatically
  std::map<ServerId, Endpoint> members;   // full membership, incl. self
  ClashConfig clash;
  unsigned hash_bits = 32;
  unsigned virtual_servers = 8;
  dht::KeyHasher::Algo hash_algo = dht::KeyHasher::Algo::kSha1;
  std::uint64_t ring_salt = 0;
  /// Wall-clock cadence of load checks (the paper's LOAD_CHECK_PERIOD;
  /// tests shrink it to tens of milliseconds).
  std::chrono::microseconds load_check_interval = std::chrono::minutes(5);
};

class ClashNode {
 public:
  explicit ClashNode(NodeConfig config);
  ~ClashNode();

  ClashNode(const ClashNode&) = delete;
  ClashNode& operator=(const ClashNode&) = delete;

  /// Bind, start the loop thread, begin periodic load checks.
  void start();
  void stop();

  [[nodiscard]] ServerId id() const { return config_.id; }
  /// Actual listening port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_; }

  /// Install bootstrap entries (before start, or routed to the loop).
  void install_entries(const std::vector<ServerTableEntry>& entries);

  /// Run `fn` on the loop thread and wait for its result — the
  /// thread-safe introspection door for tests and operators.
  template <typename Fn>
  auto run_on_loop(Fn fn) -> decltype(fn(std::declval<ClashServer&>())) {
    using R = decltype(fn(std::declval<ClashServer&>()));
    if (!running_) return fn(*server_);
    std::promise<R> promise;
    auto future = promise.get_future();
    loop_->post([&] { promise.set_value(fn(*server_)); });
    return future.get();
  }

  /// Update the peer address table (all members must be known before
  /// protocol traffic flows).
  [[nodiscard]] const NodeConfig& config() const { return config_; }

 private:
  class Env;

  void loop_main();
  void on_listener_ready();
  void adopt_peer(Fd fd);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    std::span<const std::uint8_t> frame);
  void send_to_peer(ServerId to, std::span<const std::uint8_t> frame);
  std::shared_ptr<Connection> peer_connection(ServerId to);
  void schedule_load_check();

  NodeConfig config_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<dht::ChordRing> ring_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<ClashServer> server_;

  Fd listener_;
  std::uint16_t port_ = 0;
  std::map<ServerId, std::shared_ptr<Connection>> peers_;
  std::vector<std::shared_ptr<Connection>> inbound_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace clash::net
