#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"

namespace clash::net {

namespace {
// Runtime probe behind the loop's AffinityToken: guarded state may be
// touched by the thread inside run(), or by anyone while no run() is
// in progress (setup, teardown, post-exit inline fallback).
bool loop_probe(const void* ctx) {
  return static_cast<const EventLoop*>(ctx)->on_loop_or_idle();
}
}  // namespace

EventLoop::EventLoop() {
  affinity_.bind(&loop_probe, this, "EventLoop");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error(std::string("epoll_create1: ") +
                             std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error(std::string("eventfd: ") +
                             std::strerror(errno));
  }
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("epoll_ctl(add): ") +
                             std::strerror(errno));
  }
  handlers_[fd] = std::move(handler);
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    CLASH_WARN << "epoll_ctl(mod) failed for fd " << fd << ": "
               << std::strerror(errno);
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

std::uint64_t EventLoop::call_after(std::chrono::microseconds delay,
                                    Task task) {
  const std::uint64_t id = next_timer_id_++;
  timers_.push(Timer{Clock::now() + delay, id});
  timer_tasks_[id] = std::move(task);
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) { timer_tasks_.erase(id); }

bool EventLoop::post(Task task) {
  {
    const common::MutexLock lock(posted_mutex_);
    if (finished_) return false;
    posted_.push_back(std::move(task));
  }
  wake();
  return true;
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::defer(Task task) { deferred_.push_back(std::move(task)); }

void EventLoop::run_deferred() {
  // A deferred task may defer again (a flush that queues a reply);
  // keep going until the round is quiescent.
  while (!deferred_.empty()) {
    std::vector<Task> batch;
    batch.swap(deferred_);
    for (auto& t : batch) t();
  }
}

void EventLoop::drain_posted() {
  std::vector<Task> tasks;
  {
    const common::MutexLock lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::fire_due_timers() {
  const auto now = Clock::now();
  while (!timers_.empty() && timers_.top().deadline <= now) {
    const auto id = timers_.top().id;
    timers_.pop();
    const auto it = timer_tasks_.find(id);
    if (it == timer_tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    timer_tasks_.erase(it);
    task();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 100;
  const auto now = Clock::now();
  if (timers_.top().deadline <= now) return 0;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      timers_.top().deadline - now)
                      .count();
  return int(us / 1000 + 1);
}

void EventLoop::rearm() {
  const common::MutexLock lock(posted_mutex_);
  finished_ = false;
  exited_.store(false, std::memory_order_release);
}

void EventLoop::note_tick(Clock::time_point start) {
  const auto dur = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - start)
                       .count();
  if (tick_hist_ != nullptr) tick_hist_->record(std::uint64_t(dur));
  const auto start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          start.time_since_epoch())
          .count();
  // Only pathologically slow rounds earn a timeline entry; at normal
  // cadence they would just churn the trace ring.
  if (dur >= 1000 && tracer_ != nullptr) {
    tracer_->record(obs::SpanKind::kLoopTick, obs_pid_, SimTime(start_us),
                    SimDuration(dur));
  }
  // Post-hoc budget fence: the round DID finish, but late enough that
  // everything behind it (timers, acks, gossip) observably lagged.
  // The live wedged case — a round that never finishes — is caught
  // from outside by the StallWatchdog via current_tick().
  if (flight_ != nullptr && tick_budget_us_ > 0 && dur >= tick_budget_us_) {
    tick_overruns_c_.inc();
    flight_->record(obs::FlightKind::kTickOverrun, std::uint32_t(obs_pid_),
                    start_us - stall_epoch_us_, std::uint64_t(dur),
                    std::uint64_t(tick_budget_us_));
  }
}

void EventLoop::enter_loop() {
  // Publish the tid before running_: a racer that observes
  // running_ == true (acquire) must also see who the loop thread is,
  // or on_loop_or_idle() would misjudge it.
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
}

void EventLoop::exit_loop() {
  running_.store(false, std::memory_order_release);
}

void EventLoop::run() {
  rearm();
  enter_loop();
  epoll_event events[64];
  auto tick_start = Clock::now();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    drain_posted();
    fire_due_timers();
    run_deferred();
    // The round is over once the loop is about to sleep again; the
    // wait itself is idle time, not tick time.
    if (tick_hist_ != nullptr || flight_ != nullptr) note_tick(tick_start);
    // Retire the tick probe for the idle wait: a probe during
    // epoll_wait must read "not stuck", however long the wait is.
    tick_busy_.store(false, std::memory_order_release);
    tick_seq_.fetch_add(1, std::memory_order_relaxed);
    const int n =
        ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    tick_start = Clock::now();
    tick_started_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(
            tick_start.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    tick_busy_.store(true, std::memory_order_release);
    if (n < 0) {
      if (errno == EINTR) continue;
      CLASH_ERROR << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by earlier handler
      // Copy: the handler may remove itself.
      FdHandler handler = it->second;
      handler(events[i].events);
    }
    run_deferred();
  }
  // Final drain: accept no further posts (post() returns false from
  // here on), then run everything that made it in. This closes the
  // stop() race — a task posted before this point always executes, so
  // a poster blocking on its result can never hang.
  std::vector<Task> last;
  {
    const common::MutexLock lock(posted_mutex_);
    finished_ = true;
    last.swap(posted_);
  }
  for (auto& t : last) t();
  run_deferred();
  tick_busy_.store(false, std::memory_order_release);
  exit_loop();
  stop_requested_.store(false, std::memory_order_relaxed);
  exited_.store(true, std::memory_order_release);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

}  // namespace clash::net
