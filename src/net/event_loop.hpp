// Single-threaded epoll reactor: fd readiness callbacks, monotonic
// timers, and a thread-safe post() for cross-thread task injection.
// Each networked CLASH node runs one loop on one thread, so protocol
// handlers never need locks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace clash::net {

class EventLoop {
 public:
  using Task = std::function<void()>;
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register interest in `events` (EPOLLIN/EPOLLOUT) for `fd`.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// One-shot timer relative to now. Returns a cancellation id.
  std::uint64_t call_after(std::chrono::microseconds delay, Task task);
  void cancel_timer(std::uint64_t id);

  /// Run `task` once at the end of the current dispatch round, before
  /// the next epoll_wait (loop thread only). Connections use this to
  /// coalesce every frame queued during one tick into a single
  /// scatter-gather flush instead of one write per send.
  void defer(Task task);

  /// Enqueue a task from any thread; runs on the loop thread. Returns
  /// false once the loop has finished its final drain (the task will
  /// never run): callers must execute it themselves or give up. Tasks
  /// accepted before that point are guaranteed to run, even when they
  /// race with stop() — run() drains the queue once more on exit.
  [[nodiscard]] bool post(Task task);

  /// Run until stop(). Must be called from exactly one thread.
  void run();
  /// Signal the loop to exit (thread-safe).
  void stop();

  /// Clear the finished/exited latches from a previous run() before a
  /// new run becomes reachable to posters. run() also clears them, but
  /// only once the loop thread gets scheduled — an owner that spawns
  /// run() on a fresh thread must rearm first, or posts in the spawn
  /// window are spuriously refused against the stale latches.
  void rearm();

  /// Attach tick observability (call before run()). Every dispatch
  /// round — from an epoll_wait wakeup to the next wait, idle time
  /// excluded — records its duration into `tick_hist`; rounds of 1ms
  /// or longer also land a kLoopTick span in `tracer` (when enabled).
  /// Timestamps are steady-clock microseconds. Null pointers detach.
  void set_obs(obs::Histogram* tick_hist, obs::TraceRecorder* tracer,
               std::uint64_t pid) {
    tick_hist_ = tick_hist;
    tracer_ = tracer;
    obs_pid_ = pid;
  }

  [[nodiscard]] bool running() const { return running_; }
  /// True once run() has returned, i.e. the loop thread executes no
  /// further tasks. post() starts failing slightly before this (during
  /// the final drain); a caller that got refused must wait for
  /// exited() before touching loop-owned state from its own thread.
  [[nodiscard]] bool exited() const {
    return exited_.load(std::memory_order_acquire);
  }

 private:
  struct Timer {
    Clock::time_point deadline;
    std::uint64_t id;
    bool operator>(const Timer& o) const {
      return deadline == o.deadline ? id > o.id : o.deadline < deadline;
    }
  };

  void drain_posted();
  void run_deferred();
  void note_tick(Clock::time_point start);
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::map<int, FdHandler> handlers_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::map<std::uint64_t, Task> timer_tasks_;
  std::uint64_t next_timer_id_ = 1;

  std::vector<Task> deferred_;  // loop thread only

  std::mutex posted_mutex_;
  std::vector<Task> posted_;
  bool finished_ = false;  // guarded by posted_mutex_
  std::atomic<bool> exited_{false};

  obs::Histogram* tick_hist_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  std::uint64_t obs_pid_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace clash::net
