// Single-threaded epoll reactor: fd readiness callbacks, monotonic
// timers, and a thread-safe post() for cross-thread task injection.
// Each networked CLASH node runs one loop on one thread, so protocol
// handlers never need locks.
//
// That invariant is now a checked capability, not folklore. The loop
// owns a common::AffinityToken (loop_thread()); loop-affine state here
// and in the classes built on the loop (Connection, ClashNode) is
// CLASH_GUARDED_BY it, and loop-only methods CLASH_REQUIRES it. Entry
// points that clang cannot see through (fd-handler lambdas, posted
// tasks, timers) open with CLASH_ASSERT_ON_LOOP(loop): statically that
// asserts the capability for the rest of the scope; in
// CLASH_LOOP_CHECKS builds it also verifies at runtime that the caller
// *is* the loop thread — or that the loop is idle, which covers
// single-threaded setup/teardown and the documented run-inline
// fallback after the final drain.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <thread>
#include <vector>

#include <optional>
#include <utility>

#include "common/affinity.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/flightrec.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace clash::net {

class EventLoop {
 public:
  using Task = std::function<void()>;
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The loop-affinity capability: state guarded by it may only be
  /// touched from the loop thread (or while the loop is idle).
  [[nodiscard]] common::AffinityToken& loop_thread()
      CLASH_RETURN_CAPABILITY(affinity_) {
    return affinity_;
  }

  /// Capability witness: see CLASH_ASSERT_ON_LOOP below.
  void assert_on_loop() const CLASH_ASSERT_CAPABILITY(affinity_) {
    affinity_.assert_held();
  }

  /// True when the calling thread may touch loop-affine state: it is
  /// the thread inside run(), or no run() is in progress at all.
  [[nodiscard]] bool on_loop_or_idle() const {
    return !running_.load(std::memory_order_acquire) ||
           loop_tid_.load(std::memory_order_acquire) ==
               std::this_thread::get_id();
  }

  /// Register interest in `events` (EPOLLIN/EPOLLOUT) for `fd`.
  void add_fd(int fd, std::uint32_t events, FdHandler handler)
      CLASH_REQUIRES(affinity_);
  void modify_fd(int fd, std::uint32_t events) CLASH_REQUIRES(affinity_);
  void remove_fd(int fd) CLASH_REQUIRES(affinity_);

  /// One-shot timer relative to now. Returns a cancellation id.
  std::uint64_t call_after(std::chrono::microseconds delay, Task task)
      CLASH_REQUIRES(affinity_);
  void cancel_timer(std::uint64_t id) CLASH_REQUIRES(affinity_);

  /// Run `task` once at the end of the current dispatch round, before
  /// the next epoll_wait (loop thread only). Connections use this to
  /// coalesce every frame queued during one tick into a single
  /// scatter-gather flush instead of one write per send.
  void defer(Task task) CLASH_REQUIRES(affinity_);

  /// Enqueue a task from any thread; runs on the loop thread. Returns
  /// false once the loop has finished its final drain (the task will
  /// never run): callers must execute it themselves or give up. Tasks
  /// accepted before that point are guaranteed to run, even when they
  /// race with stop() — run() drains the queue once more on exit.
  [[nodiscard]] bool post(Task task) CLASH_EXCLUDES(posted_mutex_);

  /// Run until stop(). Must be called from exactly one thread.
  void run();
  /// Signal the loop to exit (thread-safe).
  void stop();

  /// Clear the finished/exited latches from a previous run() before a
  /// new run becomes reachable to posters. run() also clears them, but
  /// only once the loop thread gets scheduled — an owner that spawns
  /// run() on a fresh thread must rearm first, or posts in the spawn
  /// window are spuriously refused against the stale latches.
  void rearm() CLASH_EXCLUDES(posted_mutex_);

  /// Attach tick observability (call before run()). Every dispatch
  /// round — from an epoll_wait wakeup to the next wait, idle time
  /// excluded — records its duration into `tick_hist`; rounds of 1ms
  /// or longer also land a kLoopTick span in `tracer` (when enabled).
  /// Timestamps are steady-clock microseconds. Null pointers detach.
  void set_obs(obs::Histogram* tick_hist, obs::TraceRecorder* tracer,
               std::uint64_t pid) CLASH_REQUIRES(affinity_) {
    tick_hist_ = tick_hist;
    tracer_ = tracer;
    obs_pid_ = pid;
  }

  /// Attach the flight recorder + post-hoc tick-budget fence (call
  /// before run()). A dispatch round that finishes but exceeded
  /// `budget_us` lands a kTickOverrun flight event and bumps
  /// `overruns`; the live wedged-tick case is the watchdog's job via
  /// current_tick(). Null flight detaches.
  /// `epoch_us` (steady-clock microseconds) is subtracted from event
  /// timestamps so they share the embedding node's timeline.
  void set_stall_obs(obs::FlightRecorder* flight, obs::Counter overruns,
                     std::int64_t budget_us, std::int64_t epoch_us = 0)
      CLASH_REQUIRES(affinity_) {
    flight_ = flight;
    tick_overruns_c_ = overruns;
    tick_budget_us_ = budget_us;
    stall_epoch_us_ = epoch_us;
  }

  /// Tick progress probe for the stall watchdog (any thread): while a
  /// dispatch round is in progress, its {sequence, start time in
  /// steady-clock microseconds}; nullopt while the loop is idle in
  /// epoll_wait (or not running). A seq/start pair read together is
  /// consistent enough for stall detection: at worst a probe lands on
  /// a tick boundary and reads the previous start, which only delays
  /// the verdict by one poll.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::int64_t>>
  current_tick() const {
    if (!tick_busy_.load(std::memory_order_acquire)) return std::nullopt;
    return std::make_pair(tick_seq_.load(std::memory_order_relaxed),
                          tick_started_us_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  /// True once run() has returned, i.e. the loop thread executes no
  /// further tasks. post() starts failing slightly before this (during
  /// the final drain); a caller that got refused must wait for
  /// exited() before touching loop-owned state from its own thread.
  [[nodiscard]] bool exited() const {
    return exited_.load(std::memory_order_acquire);
  }

 private:
  struct Timer {
    Clock::time_point deadline;
    std::uint64_t id;
    bool operator>(const Timer& o) const {
      return deadline == o.deadline ? id > o.id : o.deadline < deadline;
    }
  };

  /// run()'s bracket around the dispatch loop: publishes this thread
  /// as the loop thread (the runtime half of the capability) and
  /// acquires/releases the static capability so the loop body may
  /// touch guarded state.
  void enter_loop() CLASH_ACQUIRE(affinity_);
  void exit_loop() CLASH_RELEASE(affinity_);

  void drain_posted() CLASH_REQUIRES(affinity_);
  void run_deferred() CLASH_REQUIRES(affinity_);
  void note_tick(Clock::time_point start) CLASH_REQUIRES(affinity_);
  void fire_due_timers() CLASH_REQUIRES(affinity_);
  [[nodiscard]] int next_timeout_ms() const CLASH_REQUIRES(affinity_);
  void wake();

  common::AffinityToken affinity_;

  int epoll_fd_ = -1;  // immutable after construction
  int wake_fd_ = -1;   // eventfd; immutable after construction
  std::map<int, FdHandler> handlers_ CLASH_GUARDED_BY(affinity_);

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_
      CLASH_GUARDED_BY(affinity_);
  std::map<std::uint64_t, Task> timer_tasks_ CLASH_GUARDED_BY(affinity_);
  std::uint64_t next_timer_id_ CLASH_GUARDED_BY(affinity_) = 1;

  std::vector<Task> deferred_ CLASH_GUARDED_BY(affinity_);

  common::Mutex posted_mutex_;
  std::vector<Task> posted_ CLASH_GUARDED_BY(posted_mutex_);
  bool finished_ CLASH_GUARDED_BY(posted_mutex_) = false;
  std::atomic<bool> exited_{false};

  obs::Histogram* tick_hist_ CLASH_GUARDED_BY(affinity_) = nullptr;
  obs::TraceRecorder* tracer_ CLASH_GUARDED_BY(affinity_) = nullptr;
  std::uint64_t obs_pid_ CLASH_GUARDED_BY(affinity_) = 0;
  obs::FlightRecorder* flight_ CLASH_GUARDED_BY(affinity_) = nullptr;
  obs::Counter tick_overruns_c_ CLASH_GUARDED_BY(affinity_);
  std::int64_t tick_budget_us_ CLASH_GUARDED_BY(affinity_) = 0;
  std::int64_t stall_epoch_us_ CLASH_GUARDED_BY(affinity_) = 0;

  /// Published tick progress (lock-free; read by the watchdog thread).
  std::atomic<std::uint64_t> tick_seq_{0};
  std::atomic<std::int64_t> tick_started_us_{0};
  std::atomic<bool> tick_busy_{false};

  /// The thread currently inside run(); meaningful while running_.
  std::atomic<std::thread::id> loop_tid_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace clash::net

/// The loop-affinity witness. Statically: asserts `loop`'s capability
/// for the rest of the scope, satisfying -Wthread-safety for guarded
/// accesses and CLASH_REQUIRES calls. At runtime (CLASH_LOOP_CHECKS
/// builds): aborts with a diagnostic when the caller is neither the
/// loop thread nor running against an idle loop. Free in release
/// builds configured with -DCLASH_LOOP_CHECKS=OFF.
#define CLASH_ASSERT_ON_LOOP(loop) (loop).assert_on_loop()
