// Single-threaded epoll reactor: fd readiness callbacks, monotonic
// timers, and a thread-safe post() for cross-thread task injection.
// Each networked CLASH node runs one loop on one thread, so protocol
// handlers never need locks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

namespace clash::net {

class EventLoop {
 public:
  using Task = std::function<void()>;
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Clock = std::chrono::steady_clock;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register interest in `events` (EPOLLIN/EPOLLOUT) for `fd`.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// One-shot timer relative to now. Returns a cancellation id.
  std::uint64_t call_after(std::chrono::microseconds delay, Task task);
  void cancel_timer(std::uint64_t id);

  /// Enqueue a task from any thread; runs on the loop thread.
  void post(Task task);

  /// Run until stop(). Must be called from exactly one thread.
  void run();
  /// Signal the loop to exit (thread-safe).
  void stop();

  [[nodiscard]] bool running() const { return running_; }

 private:
  struct Timer {
    Clock::time_point deadline;
    std::uint64_t id;
    bool operator>(const Timer& o) const {
      return deadline == o.deadline ? id > o.id : o.deadline < deadline;
    }
  };

  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::map<int, FdHandler> handlers_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::map<std::uint64_t, Task> timer_tasks_;
  std::uint64_t next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<Task> posted_;

  volatile bool running_ = false;
  volatile bool stop_requested_ = false;
};

}  // namespace clash::net
