// FaultInjector: deterministic link faults for the TCP transport. A
// Connection with an injector attached consults it for every outbound
// frame and drops, delays, duplicates, reorders, slows, or corrupts it
// before the frame reaches the socket queue — the wire-level twin of
// sim::LinkMatrix, built on the same shared FaultSpec vocabulary
// (common/fault_spec.hpp), so the identical partition / lossy-link /
// fail-slow / corruption scenarios run against real sockets in tests.
//
// Determinism comes from two directions: a seeded Rng for
// probabilistic faults, and an explicit drop_next(n) script hook that
// eats exactly the next n frames regardless of probability (the way
// tests force "this specific SnapshotChunk never arrives").
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "common/fault_spec.hpp"
#include "common/rng.hpp"

namespace clash::net {

class FaultInjector {
 public:
  /// The shared link-fault profile plus the injector's Rng seed.
  /// Durations are microseconds (FaultSpec convention); use delay() /
  /// reorder_window() below for chrono-typed access.
  struct Config : FaultSpec {
    std::uint64_t seed = 0x5eedf417ULL;

    [[nodiscard]] std::chrono::microseconds delay() const {
      return std::chrono::microseconds(delay_usec);
    }
    [[nodiscard]] std::chrono::microseconds reorder_window() const {
      return std::chrono::microseconds(reorder_window_usec);
    }
  };

  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t passed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t corrupted = 0;
  };

  struct Verdict {
    bool drop = false;
    std::chrono::microseconds delay{0};
    bool duplicate = false;
    /// Deliver after `delay` OUTSIDE the FIFO (overtakable).
    bool reorder = false;
    /// Flip a byte inside the frame payload before sending.
    bool corrupt = false;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Swap the fault profile mid-run (heal == default Config). Keeps
  /// the Rng stream so replays stay deterministic across reconfigures.
  void configure(Config cfg) { cfg_ = cfg; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Script hook: unconditionally drop exactly the next `n` frames.
  void drop_next(unsigned n) { forced_drops_ += n; }

  /// Script hook: pass the next `n` frames untouched, then drop every
  /// frame after them — the way tests freeze a transfer mid-stream
  /// ("deliver the offer and two chunks, then the link goes dark").
  /// drop_next still takes precedence for frames it has claimed.
  void drop_after(unsigned n) {
    pass_quota_ = n;
    drop_rest_ = true;
  }

  /// Decide one frame's fate (consumes randomness on lossy links).
  Verdict judge() {
    if (forced_drops_ > 0) {
      --forced_drops_;
      ++stats_.dropped;
      return Verdict{true, {}, false, false, false};
    }
    if (drop_rest_) {
      if (pass_quota_ == 0) {
        ++stats_.dropped;
        return Verdict{true, {}, false, false, false};
      }
      --pass_quota_;
      ++stats_.passed;
      return Verdict{};
    }
    const auto fv = judge_fault(cfg_, rng_);
    if (!fv.deliver) {
      ++stats_.dropped;
      return Verdict{true, {}, false, false, false};
    }
    Verdict v{false, std::chrono::microseconds(fv.delay_usec), fv.duplicate,
              fv.reorder, fv.corrupt};
    if (v.duplicate) ++stats_.duplicated;
    if (v.corrupt) ++stats_.corrupted;
    if (v.reorder) {
      ++stats_.reordered;
    } else if (v.delay.count() > 0) {
      ++stats_.delayed;
    } else if (!v.duplicate) {
      ++stats_.passed;
    }
    return v;
  }

  /// Corrupt-mode mutation: flip one random byte inside `payload`
  /// (the caller scopes the span to the corruptible frame region).
  void corrupt_byte(std::span<std::uint8_t> payload) {
    if (payload.empty()) return;
    const auto pos = std::size_t(rng_.below(payload.size()));
    payload[pos] ^= std::uint8_t(1 + rng_.below(255));
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Config cfg_;
  Stats stats_;
  unsigned forced_drops_ = 0;
  unsigned pass_quota_ = 0;
  bool drop_rest_ = false;
  Rng rng_;
};

}  // namespace clash::net
