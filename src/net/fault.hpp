// FaultInjector: deterministic link faults for the TCP transport. A
// Connection with an injector attached consults it for every outbound
// frame and drops or delays it before the frame reaches the socket
// queue — the wire-level twin of sim::LinkMatrix, so the same
// partition / lossy-link scenarios run against real sockets in tests.
//
// Determinism comes from two directions: a seeded Rng for
// probabilistic drops, and an explicit drop_next(n) script hook that
// eats exactly the next n frames regardless of probability (the way
// tests force "this specific SnapshotChunk never arrives").
#pragma once

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace clash::net {

class FaultInjector {
 public:
  struct Config {
    /// Probability an outbound frame is silently dropped.
    double drop_prob = 0.0;
    /// Extra latency added to every surviving frame.
    std::chrono::microseconds delay{0};
    /// Hard cut: every frame is dropped until reconfigured.
    bool cut = false;
    /// Probability a frame is sent twice (at-least-once middleboxes).
    double dup_prob = 0.0;
    /// Probability a frame is reordered: it picks up a uniform random
    /// delay in (0, reorder_window] and — unlike plain delay, which
    /// preserves FIFO — later frames may overtake it.
    double reorder_prob = 0.0;
    std::chrono::microseconds reorder_window{2000};
    std::uint64_t seed = 0x5eedf417ULL;
  };

  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t passed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
  };

  struct Verdict {
    bool drop = false;
    std::chrono::microseconds delay{0};
    bool duplicate = false;
    /// Deliver after `delay` OUTSIDE the FIFO (overtakable).
    bool reorder = false;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(Config cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Swap the fault profile mid-run (heal == default Config). Keeps
  /// the Rng stream so replays stay deterministic across reconfigures.
  void configure(Config cfg) { cfg_ = cfg; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Script hook: unconditionally drop exactly the next `n` frames.
  void drop_next(unsigned n) { forced_drops_ += n; }

  /// Decide one frame's fate (consumes randomness on lossy links).
  Verdict judge() {
    if (forced_drops_ > 0) {
      --forced_drops_;
      ++stats_.dropped;
      return Verdict{true, {}, false, false};
    }
    if (cfg_.cut ||
        (cfg_.drop_prob > 0.0 && rng_.bernoulli(cfg_.drop_prob))) {
      ++stats_.dropped;
      return Verdict{true, {}, false, false};
    }
    Verdict v{false, cfg_.delay, false, false};
    if (cfg_.dup_prob > 0.0 && rng_.bernoulli(cfg_.dup_prob)) {
      v.duplicate = true;
      ++stats_.duplicated;
    }
    if (cfg_.reorder_prob > 0.0 && rng_.bernoulli(cfg_.reorder_prob) &&
        cfg_.reorder_window.count() > 0) {
      v.reorder = true;
      v.delay += std::chrono::microseconds(
          1 + std::int64_t(rng_.below(
                  std::uint64_t(cfg_.reorder_window.count()))));
      ++stats_.reordered;
      return v;
    }
    if (v.delay.count() > 0) {
      ++stats_.delayed;
    } else if (!v.duplicate) {
      ++stats_.passed;
    }
    return v;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  Config cfg_;
  Stats stats_;
  unsigned forced_drops_ = 0;
  Rng rng_;
};

}  // namespace clash::net
