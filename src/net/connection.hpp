// A non-blocking, length-prefix framed TCP connection bound to an
// EventLoop. Frames are u32 (little-endian) length + payload bytes;
// oversized or malformed frames close the connection.
//
// Fast path: outbound frames are owned, pool-recycled buffers queued
// without copying (send_wire_frame takes a finished wire frame
// straight from wire::finish_frame); everything queued during one
// loop tick is flushed with a single writev(2) at end of tick.
// Inbound bytes land in a consume-cursor arena — parsing advances a
// cursor instead of memmoving the buffer per batch.
//
// Thread contract: a Connection is affine to its EventLoop. Every
// member is CLASH_GUARDED_BY(on_loop_) — the loop's affinity
// capability — and every public method witnesses it at entry, so
// off-loop use aborts in CLASH_LOOP_CHECKS builds and guarded access
// without a witness fails clang's -Wthread-safety.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/affinity.hpp"
#include "common/thread_annotations.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "net/socket.hpp"
#include "obs/hub.hpp"

namespace clash::net {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// 16 MiB: far above any legitimate CLASH frame; bounds memory per
  /// peer. Enforced on receive and on send (a frame the peer would
  /// reject with a close is refused here instead).
  static constexpr std::uint32_t kMaxFrame = 16u << 20;

  /// Transport counters (loop thread only).
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    /// writev(2) calls; frames_sent / flush_syscalls is the
    /// small-frame coalescing ratio.
    std::uint64_t flush_syscalls = 0;
    /// Sends rejected for exceeding kMaxFrame.
    std::uint64_t send_oversized = 0;
    /// Frames eaten / held back / multiplied by an attached
    /// FaultInjector.
    std::uint64_t faults_dropped = 0;
    std::uint64_t faults_delayed = 0;
    std::uint64_t faults_duplicated = 0;
    std::uint64_t faults_reordered = 0;
    std::uint64_t faults_corrupted = 0;
  };

  using FrameHandler =
      std::function<void(std::span<const std::uint8_t> frame)>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of a connected fd; registers with the loop.
  static std::shared_ptr<Connection> adopt(EventLoop& loop, Fd fd,
                                           FrameHandler on_frame,
                                           CloseHandler on_close);

  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queue one frame, copying `payload` behind a length prefix (loop
  /// thread only). False when closed or the payload exceeds kMaxFrame.
  bool send_frame(std::span<const std::uint8_t> payload);

  /// Queue a finished wire frame — length prefix already in place
  /// (wire::finish_frame output) — without copying. The buffer is
  /// recycled to the thread's BufferPool after the flush.
  bool send_wire_frame(std::vector<std::uint8_t>&& frame);

  /// Close immediately (loop thread only).
  void close();

  /// Attach a link-fault injector: every outbound frame is judged and
  /// may be dropped or delayed before reaching the socket queue
  /// (deterministic partition / lossy-link tests). nullptr detaches.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    on_loop_.assert_held();
    fault_ = std::move(injector);
  }

  /// Mirror the transport counters into a metrics registry: every
  /// connection wired to the same hub shares the clash_net_* series
  /// (counters are get-or-created by name), so the node's totals sum
  /// across peers with no aggregation step. nullptr detaches — the
  /// handles go empty and the hot path pays only a null check.
  /// Fault-injector verdicts also land in the hub's flight ring,
  /// stamped steady-clock-us minus `epoch_us` (pass the node's epoch
  /// so connection events share the node's timeline; 0 = raw).
  void set_obs(obs::Hub* hub, std::int64_t epoch_us = 0);

  /// Called (loop thread) whenever a flush fully drains the outbound
  /// queue after backpressure — the resume signal for paced senders
  /// (snapshot-chunk flow control).
  using DrainHandler = std::function<void()>;
  void set_drain_handler(DrainHandler handler) {
    on_loop_.assert_held();
    on_drain_ = std::move(handler);
  }

  [[nodiscard]] bool closed() const {
    on_loop_.assert_held();
    return !fd_.valid();
  }
  [[nodiscard]] int fd() const {
    on_loop_.assert_held();
    return fd_.get();
  }
  [[nodiscard]] const Stats& stats() const {
    on_loop_.assert_held();
    return stats_;
  }
  /// Bytes queued but not yet accepted by the kernel (backpressure).
  [[nodiscard]] std::size_t send_queue_bytes() const;

 private:
  Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
             CloseHandler on_close);

  void register_with_loop() CLASH_REQUIRES(on_loop_);
  void on_events(std::uint32_t events) CLASH_REQUIRES(on_loop_);
  void handle_readable() CLASH_REQUIRES(on_loop_);
  bool enqueue(std::vector<std::uint8_t>&& frame) CLASH_REQUIRES(on_loop_);
  /// Enqueue preserving send order (delay timers drain a FIFO).
  bool enqueue_fifo(std::vector<std::uint8_t>&& frame,
                    std::chrono::microseconds delay)
      CLASH_REQUIRES(on_loop_);
  /// Enqueue after `delay` outside the FIFO — later frames overtake.
  void schedule_reordered(std::vector<std::uint8_t>&& frame,
                          std::chrono::microseconds delay)
      CLASH_REQUIRES(on_loop_);
  bool enqueue_now(std::vector<std::uint8_t>&& frame)
      CLASH_REQUIRES(on_loop_);
  void flush() CLASH_REQUIRES(on_loop_);
  void update_interest() CLASH_REQUIRES(on_loop_);
  void parse_frames() CLASH_REQUIRES(on_loop_);
  [[nodiscard]] std::int64_t flight_now_us() const CLASH_REQUIRES(on_loop_) {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               EventLoop::Clock::now().time_since_epoch())
               .count() -
           flight_epoch_us_;
  }

  EventLoop& loop_;
  /// The owning loop's affinity capability; guards every member below.
  common::AffinityToken& on_loop_;
  Fd fd_ CLASH_GUARDED_BY(on_loop_);
  FrameHandler on_frame_ CLASH_GUARDED_BY(on_loop_);
  CloseHandler on_close_ CLASH_GUARDED_BY(on_loop_);
  DrainHandler on_drain_ CLASH_GUARDED_BY(on_loop_);
  std::shared_ptr<FaultInjector> fault_ CLASH_GUARDED_BY(on_loop_);
  /// Fault-delayed frames awaiting their timers, in send order; each
  /// fire releases the head so frames can never overtake each other —
  /// even across an injector reconfigure or heal.
  std::deque<std::vector<std::uint8_t>> delayed_q_
      CLASH_GUARDED_BY(on_loop_);
  /// Latest scheduled release time; later frames never fire earlier.
  EventLoop::Clock::time_point delay_horizon_ CLASH_GUARDED_BY(on_loop_){};

  // Inbound arena: bytes [in_pos_, in_end_) are unparsed; the vector's
  // size is the high-water mark so refills never re-zero memory.
  std::vector<std::uint8_t> in_ CLASH_GUARDED_BY(on_loop_);
  std::size_t in_pos_ CLASH_GUARDED_BY(on_loop_) = 0;
  std::size_t in_end_ CLASH_GUARDED_BY(on_loop_) = 0;

  // Outbound queue of whole owned frames; the head frame may be
  // partially written (out_head_offset_ bytes already consumed).
  std::deque<std::vector<std::uint8_t>> out_q_ CLASH_GUARDED_BY(on_loop_);
  std::size_t out_head_offset_ CLASH_GUARDED_BY(on_loop_) = 0;
  bool flush_scheduled_ CLASH_GUARDED_BY(on_loop_) = false;
  bool want_write_ CLASH_GUARDED_BY(on_loop_) = false;

  Stats stats_ CLASH_GUARDED_BY(on_loop_);

  // Registry mirrors of the hot-path Stats fields (empty = detached).
  obs::Counter frames_sent_c_ CLASH_GUARDED_BY(on_loop_);
  obs::Counter bytes_sent_c_ CLASH_GUARDED_BY(on_loop_);
  obs::Counter flush_syscalls_c_ CLASH_GUARDED_BY(on_loop_);
  obs::Counter frames_received_c_ CLASH_GUARDED_BY(on_loop_);
  obs::Counter bytes_received_c_ CLASH_GUARDED_BY(on_loop_);
  /// Flight ring for fault-injector verdicts (drop/corrupt): the
  /// black box must show the faults the scenario injected next to the
  /// stalls they caused. Null when detached.
  obs::FlightRecorder* flight_ CLASH_GUARDED_BY(on_loop_) = nullptr;
  std::int64_t flight_epoch_us_ CLASH_GUARDED_BY(on_loop_) = 0;
};

}  // namespace clash::net
