// A non-blocking, length-prefix framed TCP connection bound to an
// EventLoop. Frames are u32 (little-endian) length + payload bytes;
// oversized or malformed frames close the connection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/event_loop.hpp"
#include "net/socket.hpp"

namespace clash::net {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// 16 MiB: far above any legitimate CLASH frame; bounds memory per peer.
  static constexpr std::uint32_t kMaxFrame = 16u << 20;

  using FrameHandler =
      std::function<void(std::span<const std::uint8_t> frame)>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of a connected fd; registers with the loop.
  static std::shared_ptr<Connection> adopt(EventLoop& loop, Fd fd,
                                           FrameHandler on_frame,
                                           CloseHandler on_close);

  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Queue one frame (length prefix added here). Loop thread only.
  void send_frame(std::span<const std::uint8_t> payload);

  /// Close immediately (loop thread only).
  void close();

  [[nodiscard]] bool closed() const { return !fd_.valid(); }
  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  Connection(EventLoop& loop, Fd fd, FrameHandler on_frame,
             CloseHandler on_close);

  void register_with_loop();
  void on_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();
  void parse_frames();

  EventLoop& loop_;
  Fd fd_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint8_t> out_;
  std::size_t out_offset_ = 0;
  bool want_write_ = false;
};

}  // namespace clash::net
