// Thin RAII + error-handling layer over POSIX TCP sockets (IPv4).
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"

namespace clash::net {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Listen on host:port (port 0 picks a free port; see bound_port).
[[nodiscard]] Expected<Fd> listen_tcp(const Endpoint& ep, int backlog = 64);

/// Port a listening socket is actually bound to.
[[nodiscard]] Expected<std::uint16_t> bound_port(const Fd& listener);

/// Blocking connect (off-loop clients only; nodes use the async form
/// so a blackholed peer can never stall the event loop).
[[nodiscard]] Expected<Fd> connect_tcp(const Endpoint& ep);

/// Non-blocking connect. `in_progress` means the handshake is still
/// running: register the fd for EPOLLOUT and call connect_result()
/// when it fires.
struct AsyncConnect {
  Fd fd;
  bool in_progress = false;
};
[[nodiscard]] Expected<AsyncConnect> connect_tcp_async(const Endpoint& ep);

/// Completion status of an async connect after EPOLLOUT: 0 on
/// success, the connect errno otherwise.
[[nodiscard]] int connect_result(const Fd& fd);

/// Accept one pending connection (non-blocking listener).
[[nodiscard]] Expected<Fd> accept_tcp(const Fd& listener);

void set_nonblocking(const Fd& fd);
void set_nodelay(const Fd& fd);

}  // namespace clash::net
