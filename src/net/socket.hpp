// Thin RAII + error-handling layer over POSIX TCP sockets (IPv4).
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"

namespace clash::net {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Listen on host:port (port 0 picks a free port; see bound_port).
[[nodiscard]] Expected<Fd> listen_tcp(const Endpoint& ep, int backlog = 64);

/// Port a listening socket is actually bound to.
[[nodiscard]] Expected<std::uint16_t> bound_port(const Fd& listener);

/// Blocking connect (used at wiring time; data flow is non-blocking).
[[nodiscard]] Expected<Fd> connect_tcp(const Endpoint& ep);

/// Accept one pending connection (non-blocking listener).
[[nodiscard]] Expected<Fd> accept_tcp(const Fd& listener);

void set_nonblocking(const Fd& fd);
void set_nodelay(const Fd& fd);

}  // namespace clash::net
