#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "wire/codec.hpp"

namespace clash::sim {

// ---------------------------------------------------------------------------
// Environments.
// ---------------------------------------------------------------------------

class SimCluster::ServerEnvImpl final : public ServerEnv {
 public:
  ServerEnvImpl(SimCluster& cluster, ServerId self)
      : cluster_(cluster), self_(self) {}

  dht::LookupResult dht_lookup(dht::HashKey h) override {
    const auto result = cluster_.ring_.lookup(h, self_);
    cluster_.stats_.dht_hops += result.hops;
    return result;
  }

  void send(ServerId to, const Message& msg) override {
    if (!cluster_.is_alive(to)) {
      cluster_.stats_.dropped_msgs++;
      return;
    }
    // Fail-slow nodes pay their lag on every message they touch, even
    // over otherwise-clean links: the slowness lives in the process
    // (GC pauses, dying disk, saturated NIC), not the wire.
    SimDuration delay{0};
    if (cluster_.any_node_slow()) {
      delay.usec += cluster_.slow_penalty(self_).usec;
      delay.usec += cluster_.slow_penalty(to).usec;
    }
    if (!cluster_.links_.quiet()) {
      const auto verdict = cluster_.links_.judge(self_, to);
      if (!verdict.deliver) {
        cluster_.stats_.link_drops++;
        return;
      }
      delay.usec += verdict.delay.usec;
      if (verdict.corrupt) {
        // In-flight byte damage: re-encode, flip, re-decode. When the
        // codec itself rejects the mangled frame the message simply
        // vanishes (a wire-level fence); when it decodes, the receiver
        // gets structurally-valid garbage and its content fences must
        // hold the line.
        auto mangled = wire::corrupt_message(msg, cluster_.corrupt_rng_);
        if (!mangled) {
          cluster_.stats_.corrupt_drops++;
          return;
        }
        deliver_copy(to, *mangled, delay);
        if (verdict.duplicate) deliver_copy(to, *mangled, delay);
        return;
      }
      deliver_copy(to, msg, delay);
      // A duplicating link delivers the same frame again (same delay:
      // the copies travel together — receivers must be idempotent).
      if (verdict.duplicate) deliver_copy(to, msg, delay);
      return;
    }
    deliver_copy(to, msg, delay);
  }

  void deliver_copy(ServerId to, const Message& msg, SimDuration delay) {
    if (delay.usec > 0 && cluster_.delay_sink_) {
      // Late-bound delivery: the target may die while the message is
      // in flight, so aliveness is re-checked at arrival time.
      SimCluster* cluster = &cluster_;
      const ServerId from = self_;
      cluster_.delay_sink_(delay, [cluster, from, to, msg] {
        if (!cluster->is_alive(to)) {
          cluster->stats_.dropped_msgs++;
          return;
        }
        cluster->count_message(msg);
        cluster->server(to).deliver(from, msg);
      });
      return;
    }
    cluster_.count_message(msg);
    // Synchronous delivery: the protocol's message chains are shallow
    // (split -> accept -> ack) and handlers are re-entrancy safe.
    cluster_.server(to).deliver(self_, msg);
  }

  std::vector<ServerId> replica_targets(dht::HashKey h,
                                        unsigned n) override {
    // The owner plus n successors; the caller skips itself.
    auto servers = cluster_.ring_.successors(h, std::size_t(n) + 1);
    if (!servers.empty()) servers.erase(servers.begin());
    return servers;
  }

  [[nodiscard]] SimTime now() const override { return cluster_.now_; }

  void on_group_activated(const KeyGroup& group) override {
    cluster_.owners_[group] = self_;
  }

  void on_group_deactivated(const KeyGroup& group) override {
    const auto it = cluster_.owners_.find(group);
    if (it != cluster_.owners_.end() && it->second == self_) {
      cluster_.owners_.erase(it);
    }
  }

 private:
  SimCluster& cluster_;
  ServerId self_;
};

class SimCluster::ClientEnvImpl final : public ClientEnv {
 public:
  ClientEnvImpl(SimCluster& cluster, ServerId origin)
      : cluster_(cluster), origin_(origin) {}

  dht::LookupResult dht_lookup(dht::HashKey h) override {
    // A client whose access point died re-attaches to a live server.
    if (!cluster_.is_alive(origin_)) {
      for (std::size_t i = 0; i < cluster_.servers_.size(); ++i) {
        if (cluster_.alive_[i]) {
          origin_ = ServerId{i};
          break;
        }
      }
    }
    const auto result = cluster_.ring_.lookup(h, origin_);
    cluster_.stats_.dht_hops += result.hops;
    return result;
  }

  AcceptObjectReply rpc_accept_object(ServerId to,
                                      const AcceptObject& msg) override {
    cluster_.stats_.object_probes++;
    if (!cluster_.is_alive(to)) {
      // Timeout in a real deployment: the search widens and retries.
      cluster_.stats_.dropped_msgs++;
      return IncorrectDepth{0};
    }
    cluster_.stats_.object_replies++;  // the response message
    return cluster_.server(to).handle_accept_object(msg);
  }

 private:
  SimCluster& cluster_;
  ServerId origin_;
};

// ---------------------------------------------------------------------------
// Cluster.
// ---------------------------------------------------------------------------

SimCluster::SimCluster(Config config)
    : config_(config),
      ring_(dht::ChordRing::Config{config.hash_bits, config.virtual_servers,
                                   config.hash_algo, config.seed}),
      corrupt_rng_(config.seed ^ 0xc044f1a7ULL),
      links_(config.seed ^ 0x11ae5eedULL) {
  if (config_.num_servers == 0) {
    throw std::invalid_argument("cluster needs at least one server");
  }
  servers_.reserve(config_.num_servers);
  server_envs_.reserve(config_.num_servers);
  alive_.assign(config_.num_servers, true);
  node_slow_.assign(config_.num_servers, 1.0);
  crash_time_.assign(config_.num_servers, SimTime{-1});
  failover_detect_us_ =
      obs::Hub::global().registry.histogram("clash_failover_detect_usec");
  const bool durable =
      config_.clash.durability_mode != ClashConfig::DurabilityMode::kNone;
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    const ServerId id{i};
    ring_.add_server(id);
    server_envs_.push_back(std::make_unique<ServerEnvImpl>(*this, id));
    servers_.push_back(std::make_unique<ClashServer>(
        id, config_.clash, *server_envs_.back(), ring_.hasher()));
    if (durable) {
      backends_.push_back(std::make_unique<storage::MemBackend>());
      stores_.push_back(std::make_unique<storage::NodeStore>(
          *backends_.back(),
          storage::NodeStore::Config::from(config_.clash)));
      stores_.back()->set_obs(&obs::Hub::global(), i);
      servers_.back()->set_storage(stores_.back().get());
    }
  }
}

SimCluster::~SimCluster() = default;

ClashServer& SimCluster::server(ServerId id) {
  assert(id.value < servers_.size());
  return *servers_[id.value];
}

const ClashServer& SimCluster::server(ServerId id) const {
  assert(id.value < servers_.size());
  return *servers_[id.value];
}

ClientEnv& SimCluster::client_env(ServerId access_point) {
  const auto it = client_env_by_origin_.find(access_point.value);
  if (it != client_env_by_origin_.end()) return client_envs_[it->second];
  client_envs_.emplace_back(*this, access_point);
  client_env_by_origin_[access_point.value] = client_envs_.size() - 1;
  return client_envs_.back();
}

void SimCluster::bootstrap() {
  const unsigned n = config_.clash.key_width;
  const KeyGroup root = KeyGroup::root(n);
  const ServerId root_owner =
      ring_.map(hasher().hash_key(root.virtual_key()));

  ServerTableEntry root_entry;
  root_entry.group = root;
  root_entry.root = true;  // lineage top: no parent
  root_entry.active = true;
  server(root_owner).install_entry(root_entry);

  // Force-split every active group shallower than the initial depth.
  // Splits may hand groups to servers later in the scan, so iterate to
  // a fixed point.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& srv : servers_) {
      // Collect first: splitting mutates the table.
      std::vector<KeyGroup> to_split;
      for (const ServerTableEntry* e : srv->table().active_entries()) {
        if (e->group.depth() < config_.clash.initial_depth) {
          to_split.push_back(e->group);
        }
      }
      for (const auto& g : to_split) progressed |= srv->force_split(g);
    }
  }

  // The depth-d0 leaves become root entries: the administrative floor
  // below which consolidation cannot collapse the tree (Section 5).
  for (auto& srv : servers_) {
    for (const ServerTableEntry* e : srv->table().active_entries()) {
      srv->mark_group_root(e->group);
    }
  }
  reset_stats();
}

void SimCluster::run_load_check(ServerId id) {
  if (is_alive(id)) server(id).run_load_check();
}

void SimCluster::run_all_load_checks() {
  for (auto& srv : servers_) {
    if (is_alive(srv->id())) srv->run_load_check();
  }
}

std::size_t SimCluster::alive_count() const {
  return std::size_t(std::count(alive_.begin(), alive_.end(), true));
}

std::size_t SimCluster::fail_server(ServerId id) {
  if (!is_alive(id)) return 0;
  crash_server(id);
  return evict_server(id);
}

void SimCluster::crash_server(ServerId id) {
  if (id.value >= alive_.size()) return;
  // The simulated disk takes the hit exactly once, at the moment of
  // death (a second crash_server on a dead node must not tear more).
  if (alive_[id.value] && id.value < backends_.size()) {
    backends_[id.value]->crash();
  }
  if (alive_[id.value]) crash_time_[id.value] = now_;
  alive_[id.value] = false;
}

std::size_t SimCluster::evict_server(ServerId id) {
  if (is_alive(id) || !ring_.contains(id)) return 0;
  // The detection window closes here: survivors converged on the
  // death. Under fail_server (oracle detection) the gap is zero; a
  // staged crash -> set_now -> evict sequence measures the real one.
  if (crash_time_[id.value].usec >= 0) {
    failover_detect_us_.record_signed((now_ - crash_time_[id.value]).usec);
    crash_time_[id.value] = SimTime{-1};
  }
  ring_.remove_server(id);

  // The groups the dead server actively owned, per the owner index.
  std::vector<KeyGroup> lost;
  for (const auto& [group, owner] : owners_) {
    if (owner == id) lost.push_back(group);
  }
  for (const auto& group : lost) owners_.erase(group);

  std::size_t recovered = fail_groups_over(lost);
  recovered += retry_pending_failovers();
  return recovered;
}

std::size_t SimCluster::fail_groups_over(const std::vector<KeyGroup>& lost) {
  std::size_t recovered = 0;
  for (const auto& group : lost) {
    const ServerId heir = ring_.map(hasher().hash_key(group.virtual_key()));
    if (!heir.valid() || !is_alive(heir)) {
      // The heir is dead too (crashed but not yet evicted): park the
      // group; once the heir is evicted the ring maps it elsewhere.
      pending_failover_.push_back(group);
      continue;
    }
    recovered += server(heir).promote_replica(group) ? 1 : 0;
  }
  return recovered;
}

std::size_t SimCluster::retry_pending_failovers() {
  const auto pending = std::exchange(pending_failover_, {});
  return fail_groups_over(pending);
}

void SimCluster::set_node_slow(ServerId id, double factor) {
  if (id.value >= node_slow_.size()) return;
  const bool was_slow = node_slow_[id.value] > 1.0;
  const bool is_slow = factor > 1.0;
  node_slow_[id.value] = is_slow ? factor : 1.0;
  if (is_slow && !was_slow) ++slow_nodes_;
  if (!is_slow && was_slow) --slow_nodes_;
}

void SimCluster::restart_server(ServerId id) {
  if (id.value >= servers_.size() || is_alive(id)) return;
  alive_[id.value] = true;
  crash_time_[id.value] = SimTime{-1};  // restart without eviction
  set_node_slow(id, 1.0);  // replacement hardware: slowness dies with it
  // The restarted process lost all protocol state: fresh server, and
  // any groups still indexed to it fail over like an eviction (usually
  // none — eviction normally precedes a restart).
  std::vector<KeyGroup> stale;
  for (const auto& [group, owner] : owners_) {
    if (owner == id) stale.push_back(group);
  }
  for (const auto& group : stale) owners_.erase(group);
  servers_[id.value] = std::make_unique<ClashServer>(
      id, config_.clash, *server_envs_[id.value], ring_.hasher());
  if (id.value < backends_.size()) {
    // The store outlived the process: rebuild it over the surviving
    // backend and restore the pre-crash groups as replica records.
    stores_[id.value] = std::make_unique<storage::NodeStore>(
        *backends_[id.value], storage::NodeStore::Config::from(config_.clash));
    stores_[id.value]->set_obs(&obs::Hub::global(), id.value);
    servers_[id.value]->set_storage(stores_[id.value].get());
    servers_[id.value]->restore_from_storage();
  }
  // Groups the index still maps here (no eviction happened) that the
  // disk recovered are re-adopted in place: promotion bumps the epoch
  // and, in log mode, the recovery pull fetches only the suffix the
  // disk lost from the replica set — the network never carries the
  // full state. Everything else fails over as before.
  std::vector<KeyGroup> lost;
  for (const auto& group : stale) {
    if (servers_[id.value]->has_replica(group)) {
      (void)servers_[id.value]->promote_replica(group);
    } else {
      lost.push_back(group);
    }
  }
  fail_groups_over(lost);
  retry_pending_failovers();
}

void SimCluster::join_server(ServerId id) {
  if (!is_alive(id) || ring_.contains(id)) return;
  ring_.add_server(id);
  retry_pending_failovers();
  // Heal the routing: every group the grown ring now maps to the
  // rejoined server is handed back with full state (log epoch included)
  // by its current owner. Without this the rejoined node would answer
  // for its key ranges with empty state.
  for (auto& srv : servers_) {
    if (srv->id() == id || !is_alive(srv->id())) continue;
    srv->handoff_groups(id);
  }
}

void SimCluster::revive_server(ServerId id) {
  restart_server(id);
  join_server(id);
}

std::optional<ServerId> SimCluster::find_owner(const Key& key) const {
  const auto group = find_active_group(key);
  if (!group) return std::nullopt;
  return owners_.at(*group);
}

std::optional<KeyGroup> SimCluster::find_active_group(const Key& key) const {
  // Active groups are globally prefix-free, so probe every prefix depth.
  for (unsigned d = 0; d <= key.width(); ++d) {
    const KeyGroup g = KeyGroup::of(key, d);
    if (owners_.count(g) > 0) return g;
  }
  return std::nullopt;
}

void SimCluster::withdraw_stream(ClientId source, const Key& key) {
  const auto owner = find_owner(key);
  if (owner) server(*owner).remove_stream(source, key);
}

void SimCluster::withdraw_query(QueryId id, const Key& key) {
  const auto owner = find_owner(key);
  if (owner) server(*owner).remove_query(id, key);
}

void SimCluster::ensure_group(const KeyGroup& group) {
  if (owners_.count(group) > 0) return;
  const ServerId owner = ring_.map(hasher().hash_key(group.virtual_key()));
  ServerTableEntry entry;
  entry.group = group;
  entry.root = true;
  entry.active = true;
  server(owner).install_entry(entry);
}

SimCluster::LoadSnapshot SimCluster::snapshot() const {
  LoadSnapshot snap;
  const double capacity = config_.clash.capacity;
  double active_load_total = 0;
  for (const auto& srv : servers_) {
    if (!is_alive(srv->id())) continue;
    const double load = srv->server_load();
    snap.max_load_frac = std::max(snap.max_load_frac, load / capacity);
    if (load > 0) {
      ++snap.active_servers;
      active_load_total += load / capacity;
    }
  }
  snap.avg_active_load_frac =
      snap.active_servers == 0
          ? 0
          : active_load_total / double(snap.active_servers);

  snap.active_groups = owners_.size();
  if (!owners_.empty()) {
    unsigned min_d = config_.clash.key_width + 1;
    unsigned max_d = 0;
    double sum_d = 0;
    for (const auto& [group, _] : owners_) {
      min_d = std::min(min_d, group.depth());
      max_d = std::max(max_d, group.depth());
      sum_d += group.depth();
    }
    snap.min_depth = min_d;
    snap.max_depth = max_d;
    snap.avg_depth = sum_d / double(owners_.size());
  }
  return snap;
}

MessageStats SimCluster::total_stats() const {
  MessageStats total = stats_;
  for (const auto& srv : servers_) total += srv->stats();
  return total;
}

void SimCluster::reset_stats() {
  stats_ = MessageStats{};
  for (auto& srv : servers_) srv->reset_stats();
}

void SimCluster::count_message(const Message& msg) {
  if (meter_wire_) {
    stats_.wire_bytes += wire::encoded_payload_size(msg);
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AcceptKeyGroup>) {
          stats_.keygroup_transfers++;
        } else if constexpr (std::is_same_v<T, AcceptKeyGroupAck>) {
          stats_.keygroup_acks++;
        } else if constexpr (std::is_same_v<T, LoadReport>) {
          stats_.load_reports++;
        } else if constexpr (std::is_same_v<T, ReclaimKeyGroup>) {
          stats_.reclaim_requests++;
        } else if constexpr (std::is_same_v<T, ReclaimAck> ||
                             std::is_same_v<T, ReclaimRefused>) {
          stats_.reclaim_replies++;
        } else if constexpr (std::is_same_v<T, ReplicateGroup>) {
          stats_.replications++;
        } else if constexpr (std::is_same_v<T, DropReplica>) {
          stats_.replica_drops++;
        } else if constexpr (std::is_same_v<T, ReplAppend>) {
          stats_.repl_appends++;
        } else if constexpr (std::is_same_v<T, ReplAck>) {
          stats_.repl_acks++;
        } else if constexpr (std::is_same_v<T, SnapshotOffer>) {
          stats_.snapshot_offers++;
        } else if constexpr (std::is_same_v<T, SnapshotChunk>) {
          stats_.snapshot_chunks++;
        } else if constexpr (std::is_same_v<T, AntiEntropyProbe>) {
          stats_.anti_entropy_probes++;
        } else if constexpr (std::is_same_v<T, AntiEntropyDiff>) {
          stats_.anti_entropy_diffs++;
        } else if constexpr (std::is_same_v<T, Gossip>) {
          stats_.gossip_msgs++;
        } else if constexpr (std::is_same_v<T, AcceptObject> ||
                             std::is_same_v<T, AcceptObjectOk> ||
                             std::is_same_v<T, IncorrectDepth>) {
          // Client-path messages are counted by ClientEnvImpl.
        }
      },
      msg);
}

std::optional<std::string> SimCluster::check_invariants() const {
  auto err = check_invariants_impl();
  if (err) {
    obs::Hub::global().flight.record(obs::FlightKind::kInvariantFail, 0,
                                     now().usec);
  }
  return err;
}

std::optional<std::string> SimCluster::check_invariants_impl() const {
  std::size_t active_total = 0;
  for (const auto& srv : servers_) {
    if (!is_alive(srv->id())) continue;  // dead tables are tombstones
    if (const auto err = srv->table().check_invariants()) {
      return to_string(srv->id()) + ": " + *err;
    }
    for (const ServerTableEntry* e : srv->table().active_entries()) {
      ++active_total;
      const auto it = owners_.find(e->group);
      if (it == owners_.end()) {
        return "active group " + e->group.label() + " missing from index";
      }
      if (it->second != srv->id()) {
        return "owner index disagrees for " + e->group.label();
      }
    }
  }
  if (active_total != owners_.size()) {
    // Name one stale entry to make debugging tractable.
    for (const auto& [g, owner] : owners_) {
      const auto* entry = server(owner).table().find(g);
      if (entry == nullptr || !entry->active) {
        return "owner index stale: " + g.label() + " -> " +
               clash::to_string(owner);
      }
    }
    return "owner index has stale entries (count mismatch)";
  }
  // Global prefix-freeness: no active group covers another.
  for (const auto& [g, _] : owners_) {
    for (unsigned d = 0; d < g.depth(); ++d) {
      const KeyGroup ancestor =
          KeyGroup::of(g.virtual_key(), d);
      if (owners_.count(ancestor) > 0) {
        return "active groups " + ancestor.label() + " and " + g.label() +
               " overlap";
      }
    }
  }
  return std::nullopt;
}

}  // namespace clash::sim
