#include "sim/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "clash/baseline.hpp"

namespace clash::sim {

RuntimeConfig paper_base_config(const Scale& scale, std::uint64_t seed) {
  RuntimeConfig rc;
  rc.seed = seed;

  rc.cluster.num_servers =
      std::max<std::size_t>(8, std::size_t(std::lround(1000 * scale.servers)));
  rc.cluster.hash_bits = 32;
  // log2(S) ~ 8 virtual servers per node: Chord's own uniform-partition
  // remedy, which the paper's baselines implicitly assume ("load
  // balancing is accomplished by ensuring a uniform partitioning of the
  // hash space"). Set to 1 for bare Chord arcs.
  rc.cluster.virtual_servers = 8;
  rc.cluster.seed = seed ^ 0x5eedULL;

  ClashConfig& clash = rc.cluster.clash;
  clash.key_width = 24;
  clash.initial_depth = 6;
  // 2400 load units at paper scale (DESIGN.md calibration); shrinks with
  // the client/server ratio so utilisation curves are scale-invariant.
  clash.capacity = 2400.0 * scale.capacity_factor();
  clash.overload_frac = 0.90;
  clash.underload_frac = 0.54;
  clash.load_check_period = SimTime::from_minutes(5);

  rc.num_sources = std::max<std::size_t>(
      100, std::size_t(std::lround(100'000 * scale.clients)));
  rc.num_query_clients = std::size_t(std::lround(50'000 * scale.clients));
  rc.mean_stream_packets = 1000;
  rc.mean_query_lifetime = SimTime::from_minutes(30);
  rc.p_jump = 0.1;
  rc.local_move_bits = 8;
  rc.sample_period = SimTime::from_minutes(5);

  const double phase_hours = 2.0 * scale.duration;
  rc.phases = {{'A', SimTime::from_hours(phase_hours)},
               {'B', SimTime::from_hours(phase_hours)},
               {'C', SimTime::from_hours(phase_hours)}};
  return rc;
}

RuntimeConfig fig4_config(Mode mode, unsigned fixed_depth, const Scale& scale,
                          std::uint64_t seed) {
  RuntimeConfig rc = paper_base_config(scale, seed);
  rc.mode = mode;
  if (mode != Mode::kClash) {
    rc.cluster.clash = fixed_depth_config(rc.cluster.clash, fixed_depth);
  }
  return rc;
}

RuntimeConfig fig5_config(double mean_stream_packets,
                          std::size_t query_clients, const Scale& scale,
                          std::uint64_t seed) {
  RuntimeConfig rc = paper_base_config(scale, seed);
  rc.mode = Mode::kClash;
  rc.mean_stream_packets = mean_stream_packets;
  rc.num_query_clients = query_clients;
  return rc;
}

}  // namespace clash::sim
