// Light metric containers for experiment output: time series and
// scalar summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "common/sim_time.hpp"

namespace clash::sim {

struct Sample {
  SimTime t;
  double value;
};

class TimeSeries {
 public:
  void add(SimTime t, double v) { samples_.push_back({t, v}); }

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double max() const {
    double m = -std::numeric_limits<double>::infinity();
    for (const auto& s : samples_) m = std::max(m, s.value);
    return m;
  }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0;
    double total = 0;
    for (const auto& s : samples_) total += s.value;
    return total / double(samples_.size());
  }

  /// Mean over samples with t in [from, to).
  [[nodiscard]] double mean_between(SimTime from, SimTime to) const {
    double total = 0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
      if (s.t >= from && s.t < to) {
        total += s.value;
        ++n;
      }
    }
    return n == 0 ? 0 : total / double(n);
  }

  [[nodiscard]] double max_between(SimTime from, SimTime to) const {
    double m = 0;
    for (const auto& s : samples_) {
      if (s.t >= from && s.t < to) m = std::max(m, s.value);
    }
    return m;
  }

 private:
  std::vector<Sample> samples_;
};

struct Summary {
  std::size_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0;
  double sum_sq = 0;

  void add(double v) {
    ++count;
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    sum_sq += v * v;
  }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0 : sum / double(count);
  }
  [[nodiscard]] double variance() const {
    if (count < 2) return 0;
    const double m = mean();
    return std::max(0.0, sum_sq / double(count) - m * m);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
};

}  // namespace clash::sim
