// SimCluster: a full CLASH deployment in one address space — Chord ring,
// one ClashServer per node, synchronous message delivery with per-class
// counting, the bootstrap splitter, and a global owner index for exact
// metrics. This is the substrate of every experiment (and reusable by
// integration tests without the event queue).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "clash/client.hpp"
#include "clash/config.hpp"
#include "clash/server.hpp"
#include "clash/stats.hpp"
#include "dht/chord.hpp"
#include "obs/hub.hpp"
#include "sim/link_matrix.hpp"
#include "storage/backend.hpp"
#include "storage/store.hpp"

namespace clash::sim {

class SimCluster {
 public:
  struct Config {
    std::size_t num_servers = 1000;
    ClashConfig clash;
    unsigned hash_bits = 32;
    unsigned virtual_servers = 1;
    dht::KeyHasher::Algo hash_algo = dht::KeyHasher::Algo::kMix64;
    std::uint64_t seed = 42;
    /// Unit of fail-slow lag: a node marked slow with factor f adds
    /// slow_node_lag * (f - 1) to every message it sends or receives,
    /// on top of link faults. 20ms mirrors the default ChurnSim gossip
    /// delay, so factor 100 pushes a probe round trip past typical
    /// suspicion timeouts while factor 10 stays inside them.
    SimDuration slow_node_lag{20'000};
  };

  explicit SimCluster(Config config);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Build the initial tree: a depth-0 lineage root force-split down to
  /// clash.initial_depth, then mark the leaves as root entries (the
  /// administrative consolidation floor). Resets stats afterwards.
  void bootstrap();

  // --- Topology -------------------------------------------------------
  [[nodiscard]] std::size_t num_servers() const { return servers_.size(); }
  [[nodiscard]] ClashServer& server(ServerId id);
  [[nodiscard]] const ClashServer& server(ServerId id) const;
  [[nodiscard]] const dht::ChordRing& ring() const { return ring_; }
  [[nodiscard]] const dht::KeyHasher& hasher() const {
    return ring_.hasher();
  }
  [[nodiscard]] const ClashConfig& clash_config() const {
    return config_.clash;
  }

  // --- Client access ----------------------------------------------------
  /// A ClientEnv whose DHT lookups originate at `access_point`.
  /// The returned object stays valid for the cluster's lifetime.
  [[nodiscard]] ClientEnv& client_env(ServerId access_point);

  // --- Time & periodic work ----------------------------------------------
  void set_now(SimTime t) { now_ = t; }
  [[nodiscard]] SimTime now() const { return now_; }

  /// Run one load check on one server (the runtime staggers these).
  void run_load_check(ServerId id);
  /// Run a load check on every server (tests).
  void run_all_load_checks();

  // --- Owner index & direct bookkeeping -----------------------------------
  /// Server currently managing the active group containing `key`.
  [[nodiscard]] std::optional<ServerId> find_owner(const Key& key) const;
  /// The active group containing `key`.
  [[nodiscard]] std::optional<KeyGroup> find_active_group(
      const Key& key) const;

  /// Remove a stream/query wherever it currently lives (bookkeeping for
  /// key changes and query expiry; not a protocol message).
  void withdraw_stream(ClientId source, const Key& key);
  void withdraw_query(QueryId id, const Key& key);

  /// Lazily materialise a fixed-depth group at its DHT owner (the
  /// DHT(x) baselines never pre-split the tree). No-op if present.
  void ensure_group(const KeyGroup& group);

  // --- Link-fault injection (partition extension) -----------------------
  /// Per-ordered-pair drop/delay/cut matrix consulted by every
  /// server -> server message (client RPCs model retries and bypass
  /// it). Mutable mid-run; ChurnSim drives partition schedules on it.
  [[nodiscard]] LinkMatrix& links() { return links_; }
  [[nodiscard]] const LinkMatrix& links() const { return links_; }

  /// Sink for link-delayed deliveries. Without one (plain SimCluster,
  /// no event queue), a delayed message is delivered inline — only
  /// drops and cuts apply. ChurnSim installs its event queue here.
  using DelaySink =
      std::function<void(SimDuration delay, std::function<void()> deliver)>;
  void set_delay_sink(DelaySink sink) { delay_sink_ = std::move(sink); }

  // --- Fail-slow injection ----------------------------------------------
  /// Mark a node fail-slow: it keeps running and answering, but every
  /// message touching it picks up slow_node_lag * (factor - 1) of
  /// extra latency each way (dispatch-level slowness, independent of
  /// any per-link fault). factor 1 restores full speed; restart_server
  /// also clears it (a restarted process is presumed healthy).
  /// Needs the delay sink (ChurnSim) for the lag to be real.
  void set_node_slow(ServerId id, double factor);
  [[nodiscard]] double node_slow(ServerId id) const {
    return id.value < node_slow_.size() ? node_slow_[id.value] : 1.0;
  }
  /// The one-way lag this node's slowness adds to a message.
  [[nodiscard]] SimDuration slow_penalty(ServerId id) const {
    const double f = node_slow(id);
    if (f <= 1.0) return SimDuration{0};
    return SimDuration{
        std::int64_t(double(config_.slow_node_lag.usec) * (f - 1.0))};
  }
  /// Any node currently marked slow? (fast path for dispatch)
  [[nodiscard]] bool any_node_slow() const { return slow_nodes_ > 0; }

  // --- Durable storage (src/storage/) ----------------------------------
  /// Per-server in-memory durable store, created when
  /// clash.durability_mode != kNone. The backend survives crash +
  /// restart (it is the simulated disk); crash_server applies its
  /// configured crash fault (drop-unsynced, torn tail), and
  /// restart_server rebuilds the store and restores the server from
  /// it. Null when durability is off.
  [[nodiscard]] storage::MemBackend* storage_backend(ServerId id) {
    return id.value < backends_.size() ? backends_[id.value].get() : nullptr;
  }
  [[nodiscard]] storage::NodeStore* storage_of(ServerId id) {
    return id.value < stores_.size() ? stores_[id.value].get() : nullptr;
  }

  /// Count the encoded wire size of every delivered server -> server
  /// message into transport_stats().wire_bytes (bench instrumentation:
  /// off by default, it encodes each message a second time).
  void set_wire_metering(bool on) { meter_wire_ = on; }
  [[nodiscard]] bool wire_metering() const { return meter_wire_; }

  // --- Failure injection (replication extension) -----------------------
  /// Oracle-style crash: crash_server + evict_server in one step, as if
  /// failure detection were instantaneous. Returns the number of groups
  /// whose state was recovered from a replica.
  std::size_t fail_server(ServerId id);

  // The same lifecycle split into the phases a live membership layer
  // (membership::MembershipDriver via ChurnSim) drives individually:
  // crash when the process dies, evict when the survivors' views
  // converge on the death, restart/join when it comes back.

  /// The process dies: messages to it are dropped. The ring still
  /// holds it until evict_server — the detection window, during which
  /// the owner index intentionally has stale entries.
  void crash_server(ServerId id);

  /// The survivors gave up on a crashed server: remove it from the
  /// ring and fail every group it actively owned over to the DHT's new
  /// owner, which promotes its replica (or adopts an empty root when
  /// none exists). Groups whose new owner is itself dead are parked and
  /// retried after later evictions. Returns groups recovered with state.
  std::size_t evict_server(ServerId id);

  /// The process restarts empty (state lost) and is alive again; any
  /// groups still indexed to it fail over as in evict_server. Does not
  /// touch the ring — join_server does, once the survivors agree.
  void restart_server(ServerId id);

  /// Re-admit a restarted server to the ring.
  void join_server(ServerId id);

  /// Oracle-style rejoin: restart_server + join_server.
  void revive_server(ServerId id);

  [[nodiscard]] bool is_alive(ServerId id) const {
    return id.value < alive_.size() && alive_[id.value];
  }
  [[nodiscard]] std::size_t alive_count() const;

  // --- Metrics -------------------------------------------------------------
  struct LoadSnapshot {
    double max_load_frac = 0;        // max over all servers, / capacity
    double avg_active_load_frac = 0; // mean over loaded servers
    std::size_t active_servers = 0;  // servers with load > 0
    std::size_t active_groups = 0;
    unsigned min_depth = 0;
    unsigned max_depth = 0;
    double avg_depth = 0;
  };
  [[nodiscard]] LoadSnapshot snapshot() const;

  /// Transport+client counters plus the sum of per-server event stats.
  [[nodiscard]] MessageStats total_stats() const;
  /// Mutable access for client-side accounting (probes, hops, ...).
  [[nodiscard]] MessageStats& transport_stats() { return stats_; }
  void reset_stats();

  /// Every active (group, owner) pair, for invariant checks.
  [[nodiscard]] const std::unordered_map<KeyGroup, ServerId>& owner_index()
      const {
    return owners_;
  }

  /// Validates global invariants: every server table consistent, active
  /// groups prefix-free *globally*, owner index matches server tables.
  /// Returns the first violation, or nullopt. A violation lands a
  /// kInvariantFail event in the global flight ring so a postmortem
  /// dump taken at the abort site carries the verdict.
  [[nodiscard]] std::optional<std::string> check_invariants() const;

 private:
  [[nodiscard]] std::optional<std::string> check_invariants_impl() const;
  class ServerEnvImpl;
  class ClientEnvImpl;

  void count_message(const Message& msg);

  /// Promote `lost` groups at their current DHT owners; dead owners
  /// park the group in pending_failover_ for a later retry.
  std::size_t fail_groups_over(const std::vector<KeyGroup>& lost);
  std::size_t retry_pending_failovers();

  Config config_;
  dht::ChordRing ring_;
  std::vector<std::unique_ptr<ServerEnvImpl>> server_envs_;
  std::vector<std::unique_ptr<ClashServer>> servers_;
  std::vector<std::unique_ptr<storage::MemBackend>> backends_;
  std::vector<std::unique_ptr<storage::NodeStore>> stores_;
  bool meter_wire_ = false;
  std::deque<ClientEnvImpl> client_envs_;  // stable addresses
  std::unordered_map<std::uint64_t, std::size_t> client_env_by_origin_;
  std::unordered_map<KeyGroup, ServerId> owners_;
  std::vector<KeyGroup> pending_failover_;  // heir was dead at eviction
  std::vector<bool> alive_;
  std::vector<double> node_slow_;  // fail-slow factor per node (1 = ok)
  std::size_t slow_nodes_ = 0;     // count of factors > 1
  Rng corrupt_rng_;                // byte-flip stream (corrupt faults)
  /// Sim-time of each server's crash (usec < 0 = none pending); the
  /// crash -> evict gap is the detection window, recorded into
  /// clash_failover_detect_usec when the eviction lands.
  std::vector<SimTime> crash_time_;
  obs::HistogramHandle failover_detect_us_;
  MessageStats stats_;
  LinkMatrix links_;
  DelaySink delay_sink_;
  SimTime now_{0};
};

}  // namespace clash::sim
