#include "sim/link_matrix.hpp"

namespace clash::sim {

void LinkMatrix::set_fault(ServerId from, ServerId to, Fault f) {
  if (f.benign()) {
    faults_.erase(key(from, to));
  } else {
    faults_[key(from, to)] = f;
  }
}

void LinkMatrix::set_drop(ServerId from, ServerId to, double prob) {
  Fault f = fault_of(from, to);
  f.drop_prob = prob;
  set_fault(from, to, f);
}

void LinkMatrix::set_delay(ServerId from, ServerId to, SimDuration d) {
  Fault f = fault_of(from, to);
  f.delay_usec = d.usec;
  set_fault(from, to, f);
}

void LinkMatrix::set_duplication(ServerId from, ServerId to, double prob) {
  Fault f = fault_of(from, to);
  f.dup_prob = prob;
  set_fault(from, to, f);
}

void LinkMatrix::set_reordering(ServerId from, ServerId to, double prob,
                                SimDuration window) {
  Fault f = fault_of(from, to);
  f.reorder_prob = prob;
  if (window.usec > 0) f.reorder_window_usec = window.usec;
  set_fault(from, to, f);
}

void LinkMatrix::set_slow(ServerId from, ServerId to, double factor) {
  Fault f = fault_of(from, to);
  f.slow_factor = factor;
  set_fault(from, to, f);
}

void LinkMatrix::set_corruption(ServerId from, ServerId to, double prob) {
  Fault f = fault_of(from, to);
  f.corrupt_prob = prob;
  set_fault(from, to, f);
}

void LinkMatrix::cut(ServerId from, ServerId to) {
  Fault f = fault_of(from, to);
  f.cut = true;
  set_fault(from, to, f);
}

void LinkMatrix::heal(ServerId from, ServerId to) {
  faults_.erase(key(from, to));
}

void LinkMatrix::partition(const std::vector<ServerId>& a,
                           const std::vector<ServerId>& b) {
  one_way_partition(a, b);
  one_way_partition(b, a);
}

void LinkMatrix::one_way_partition(const std::vector<ServerId>& from,
                                   const std::vector<ServerId>& to) {
  for (const ServerId f : from) {
    for (const ServerId t : to) {
      if (f != t) cut(f, t);
    }
  }
}

void LinkMatrix::heal_all() { faults_.clear(); }

void LinkMatrix::clear() {
  faults_.clear();
  scripts_.clear();
  default_ = Fault{};
}

void LinkMatrix::script(ServerId from, ServerId to,
                        const std::vector<bool>& drops) {
  auto& queue = scripts_[key(from, to)];
  for (const bool drop : drops) queue.push_back(drop);
  if (queue.empty()) scripts_.erase(key(from, to));
}

LinkMatrix::Fault LinkMatrix::fault_of(ServerId from, ServerId to) const {
  const auto it = faults_.find(key(from, to));
  return it != faults_.end() ? it->second : default_;
}

LinkMatrix::Verdict LinkMatrix::judge(ServerId from, ServerId to,
                                      SimDuration base) {
  const auto sit = scripts_.find(key(from, to));
  if (sit != scripts_.end()) {
    const bool drop = sit->second.front();
    sit->second.pop_front();
    if (sit->second.empty()) scripts_.erase(sit);
    if (drop) {
      ++stats_.dropped;
      return Verdict{false, SimDuration{0}};
    }
    return Verdict{true, base};
  }
  const Fault f = fault_of(from, to);
  const auto fv = judge_fault(f, rng_, base.usec);
  if (!fv.deliver) {
    ++stats_.dropped;
    return Verdict{false, SimDuration{0}};
  }
  if (f.delay_usec > 0) ++stats_.delayed;
  if (fv.duplicate) ++stats_.duplicated;
  if (fv.reorder) ++stats_.reordered;
  if (f.slow_factor > 1.0) ++stats_.slowed;
  if (fv.corrupt) ++stats_.corrupted;
  return Verdict{true, SimDuration{fv.delay_usec}, fv.duplicate, fv.corrupt};
}

}  // namespace clash::sim
