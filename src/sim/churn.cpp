#include "sim/churn.hpp"

#include <cassert>

#include "wire/codec.hpp"

namespace clash::sim {

namespace {
/// A local clock running at `rate` experiences a true-time interval of
/// d / rate between its own ticks: a fast clock (rate > 1) fires more
/// often in sim-time, a slow one less often.
SimDuration skewed(SimDuration d, double rate) {
  if (rate <= 0.0 || rate == 1.0) return d;
  const auto usec = std::int64_t(double(d.usec) / rate);
  return SimDuration{usec > 0 ? usec : 1};
}
}  // namespace

// Gossip transport over the event queue: per-message latency, messages
// to crashed servers dropped, every message counted.
class ChurnSim::GossipEnvImpl final : public membership::MembershipEnv {
 public:
  GossipEnvImpl(ChurnSim& sim, ServerId self) : sim_(sim), self_(self) {}

  void gossip_send(ServerId to, const Gossip& orig) override {
    // Gossip crosses the same faulty links as protocol traffic — a
    // partition must starve the failure detector too, or SWIM would
    // see through the very faults it is meant to detect.
    SimDuration delay = sim_.config_.gossip_delay;
    bool duplicate = false;
    Gossip msg = orig;
    if (!sim_.cluster_->links().quiet()) {
      // The clean-link latency goes in as the judge's base so a
      // link-level slow fault multiplies it rather than stacking on top.
      const auto verdict = sim_.cluster_->links().judge(
          self_, to, sim_.config_.gossip_delay);
      if (!verdict.deliver) {
        sim_.cluster_->transport_stats().link_drops++;
        return;
      }
      delay = verdict.delay;
      duplicate = verdict.duplicate;
      if (verdict.corrupt) {
        auto mangled = wire::corrupt_message(Message{msg},
                                             sim_.corrupt_rng_);
        if (!mangled || !std::holds_alternative<Gossip>(*mangled)) {
          sim_.cluster_->transport_stats().corrupt_drops++;
          return;
        }
        msg = std::get<Gossip>(*mangled);
      }
    }
    // Fail-slow endpoints pay their lag on gossip too — that is how
    // the failure detector sees the slowness in the first place.
    if (sim_.cluster_->any_node_slow()) {
      delay.usec += sim_.cluster_->slow_penalty(self_).usec;
      delay.usec += sim_.cluster_->slow_penalty(to).usec;
    }
    const auto deliver = [this, to, msg] {
      // Look the driver up at delivery time: a revival swaps it out.
      if (!sim_.cluster_->is_alive(to)) {
        sim_.cluster_->transport_stats().dropped_msgs++;
        return;
      }
      sim_.drivers_[to.value]->handle(self_, msg);
    };
    count_sent(msg);
    sim_.events_.after(delay, deliver);
    if (duplicate) {
      count_sent(msg);
      sim_.events_.after(delay, deliver);
    }
  }

  void on_member_dead(ServerId) override { sim_.sweep_convergence(); }
  void on_member_joined(ServerId) override { sim_.sweep_convergence(); }

 private:
  /// Account one gossip frame on the wire. Record counts are always
  /// cheap; byte counts need a second encode, so they ride the same
  /// opt-in switch as protocol wire metering (overhead benches).
  void count_sent(const Gossip& msg) {
    auto& stats = sim_.cluster_->transport_stats();
    stats.gossip_msgs++;
    stats.census_records += msg.census.size();
    if (sim_.cluster_->wire_metering()) {
      stats.wire_bytes += wire::encoded_payload_size(Message{msg});
      stats.census_bytes += wire::encoded_census_size(msg.census);
    }
  }

  ChurnSim& sim_;
  ServerId self_;
};

ChurnSim::ChurnSim(Config config)
    : config_(config), corrupt_rng_(config.seed ^ 0x90551bf1ULL) {
  cluster_ = std::make_unique<SimCluster>(config_.cluster);
  // Link delays ride the event queue; without this sink SimCluster
  // would deliver delayed messages inline.
  cluster_->set_delay_sink(
      [this](SimDuration delay, std::function<void()> deliver) {
        events_.after(delay, std::move(deliver));
      });
  const std::size_t n = config_.cluster.num_servers;
  envs_.reserve(n);
  censuses_.reserve(n);
  drivers_.reserve(n);
  generation_.assign(n, 0);
  clock_rate_.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    envs_.push_back(std::make_unique<GossipEnvImpl>(*this, ServerId{i}));
    censuses_.push_back(make_census(ServerId{i}));
    drivers_.push_back(make_driver(ServerId{i}, 0));
  }
}

ChurnSim::~ChurnSim() = default;

std::unique_ptr<membership::MembershipDriver> ChurnSim::make_driver(
    ServerId id, std::uint64_t generation) {
  auto cfg = config_.membership;
  if (const auto it = config_.suspicion_periods_override.find(id.value);
      it != config_.suspicion_periods_override.end()) {
    cfg.suspicion_periods = it->second;
  }
  auto driver = std::make_unique<membership::MembershipDriver>(
      id, cfg, *envs_[id.value],
      config_.seed * 0x9e3779b97f4a7c15ULL + id.value +
          generation * 7919);
  driver->set_obs(&obs::Hub::global());
  if (config_.enable_census) {
    driver->set_census(censuses_[id.value].get());
  }
  for (std::size_t j = 0; j < config_.cluster.num_servers; ++j) {
    driver->add_seed(ServerId{j});
  }
  return driver;
}

std::unique_ptr<obs::Census> ChurnSim::make_census(ServerId id) {
  auto census = std::make_unique<obs::Census>(id, config_.census);
  census->set_collector([this, id](NodeCensusRecord& rec) {
    cluster_->server(id).fold_census(rec, config_.census.top_k);
  });
  return census;
}

void ChurnSim::start() {
  assert(!started_);
  started_ = true;
  cluster_->bootstrap();

  const std::size_t n = config_.cluster.num_servers;
  for (std::size_t i = 0; i < n; ++i) {
    // Stagger the periods so the cluster's probes spread over time the
    // way independent clocks would.
    const auto stagger =
        SimTime(config_.protocol_period.usec * std::int64_t(i + 1) /
                std::int64_t(n));
    events_.after(stagger, [this, i] { tick_server(i); });
    if (config_.run_load_checks) {
      const auto check_stagger =
          SimTime(config_.cluster.clash.load_check_period.usec *
                  std::int64_t(i + 1) / std::int64_t(n));
      events_.after(check_stagger, [this, i] { run_load_check(i); });
    }
  }
}

void ChurnSim::run_for(SimDuration d) {
  events_.run_until(events_.now() + d);
  cluster_->set_now(events_.now());
}

void ChurnSim::tick_server(std::size_t idx) {
  cluster_->set_now(events_.now());
  if (cluster_->is_alive(ServerId{idx})) drivers_[idx]->tick();
  // The next period fires on this node's own clock: a skewed node's
  // suspicion timers (counted in local ticks) stretch or shrink in
  // true time accordingly.
  events_.after(skewed(config_.protocol_period, clock_rate_[idx]),
                [this, idx] { tick_server(idx); });
}

void ChurnSim::run_load_check(std::size_t idx) {
  cluster_->set_now(events_.now());
  // Skip servers between restart and ring re-admission: they own no
  // ring position yet, so they cannot route splits.
  if (cluster_->is_alive(ServerId{idx}) &&
      cluster_->ring().contains(ServerId{idx})) {
    cluster_->run_load_check(ServerId{idx});
  }
  events_.after(
      skewed(config_.cluster.clash.load_check_period, clock_rate_[idx]),
      [this, idx] { run_load_check(idx); });
}

void ChurnSim::kill(ServerId id) {
  cluster_->crash_server(id);
  // The kill may have silenced the last dissenter blocking some other
  // victim's eviction.
  sweep_convergence();
}

void ChurnSim::revive(ServerId id) {
  if (cluster_->is_alive(id)) return;
  // Fresh census before the fresh driver: the driver holds a raw
  // pointer to it, and a restarted process's cluster knowledge (and
  // sequence counter) starts from zero — peers out-sequence its stale
  // pre-crash records via the bumped incarnation.
  censuses_[id.value] = make_census(id);
  drivers_[id.value] = make_driver(id, ++generation_[id.value]);
  cluster_->restart_server(id);
}

void ChurnSim::set_slow(ServerId id, double factor) {
  cluster_->set_node_slow(id, factor);
}

void ChurnSim::set_clock_rate(ServerId id, double rate) {
  if (id.value < clock_rate_.size() && rate > 0.0) {
    clock_rate_[id.value] = rate;
  }
}

void ChurnSim::set_suspicion_periods(ServerId id, unsigned periods) {
  if (id.value >= drivers_.size()) return;
  config_.suspicion_periods_override[id.value] = periods;
  drivers_[id.value]->set_suspicion_periods(periods);
}

std::uint64_t ChurnSim::gossip_corrupt_rejected() const {
  std::uint64_t total = 0;
  for (const auto& driver : drivers_) total += driver->corrupt_rejected();
  return total;
}

std::vector<ServerId> ChurnSim::complement(
    const std::vector<ServerId>& side) const {
  std::vector<bool> in_side(config_.cluster.num_servers, false);
  for (const ServerId id : side) {
    if (id.value < in_side.size()) in_side[id.value] = true;
  }
  std::vector<ServerId> rest;
  for (std::size_t i = 0; i < in_side.size(); ++i) {
    if (!in_side[i]) rest.push_back(ServerId{i});
  }
  return rest;
}

void ChurnSim::partition(const std::vector<ServerId>& side) {
  cluster_->links().partition(side, complement(side));
}

void ChurnSim::one_way_partition(const std::vector<ServerId>& side) {
  cluster_->links().one_way_partition(side, complement(side));
}

void ChurnSim::heal_partitions() { cluster_->links().clear(); }

void ChurnSim::set_loss_rate(double p) {
  LinkMatrix::Fault f;
  f.drop_prob = p;
  cluster_->links().set_default_fault(f);
}

void ChurnSim::schedule_flaps(std::vector<ServerId> side, SimDuration period,
                              unsigned cycles) {
  if (cycles == 0) return;
  partition(side);
  events_.after(period, [this, side = std::move(side), period, cycles] {
    // Heal only this side's links (any default fault stays in force).
    const auto rest = complement(side);
    for (const ServerId a : side) {
      for (const ServerId b : rest) {
        cluster_->links().heal(a, b);
        cluster_->links().heal(b, a);
      }
    }
    events_.after(period, [this, side, period, cycles] {
      schedule_flaps(side, period, cycles - 1);
    });
  });
}

void ChurnSim::sweep_convergence() {
  // An eviction can unblock another victim's gate (it shrinks the
  // survivor set), so iterate to a fixed point.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < drivers_.size(); ++i) {
      const ServerId id{i};
      if (!cluster_->is_alive(id) && cluster_->ring().contains(id) &&
          all_survivors_see_dead(id)) {
        cluster_->evict_server(id);
        progressed = true;
      }
      if (cluster_->is_alive(id) && !cluster_->ring().contains(id) &&
          all_survivors_see_alive(id)) {
        cluster_->join_server(id);
        progressed = true;
      }
      // Excommunication: the survivors unanimously hold an *alive* ring
      // member dead — a fail-slow, skewed, or cut-off process that kept
      // running but could not refute in time. The group fences it out:
      // its state is discarded and its groups fail over exactly as for
      // a crash (it must rejoin via revive, like any evicted node —
      // accepting its stale writes after eviction would fork history).
      if (cluster_->is_alive(id) && cluster_->ring().contains(id) &&
          all_survivors_see_dead(id)) {
        // Unanimity among zero peers is vacuous; never self-fence the
        // last live node.
        bool has_peer = false;
        for (std::size_t j = 0; j < drivers_.size(); ++j) {
          if (j != i && cluster_->is_alive(ServerId{j})) {
            has_peer = true;
            break;
          }
        }
        if (has_peer) {
          cluster_->crash_server(id);
          cluster_->evict_server(id);
          cluster_->transport_stats().slow_evictions++;
          progressed = true;
        }
      }
    }
  }
}

const membership::MembershipView& ChurnSim::view_of(ServerId id) const {
  return drivers_[id.value]->view();
}

bool ChurnSim::all_survivors_see_dead(ServerId victim) const {
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    const ServerId id{i};
    if (!cluster_->is_alive(id) || id == victim) continue;
    if (drivers_[i]->view().state_of(victim) != MemberState::kDead) {
      return false;
    }
  }
  return true;
}

bool ChurnSim::all_survivors_see_alive(ServerId id) const {
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    if (!cluster_->is_alive(ServerId{i})) continue;
    if (drivers_[i]->view().state_of(id) != MemberState::kAlive) {
      return false;
    }
  }
  return true;
}

bool ChurnSim::ring_matches_membership() const {
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    const ServerId id{i};
    if (cluster_->is_alive(id) != cluster_->ring().contains(id)) {
      return false;
    }
  }
  return true;
}

std::uint64_t ChurnSim::gossip_messages() const {
  return cluster_->total_stats().gossip_msgs;
}

}  // namespace clash::sim
