#include "sim/workload.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/bits.hpp"

namespace clash::sim {
namespace {

double mix_noise(std::uint64_t i) {
  // Deterministic pseudo-noise in [0, 1) for workload A's ripple.
  std::uint64_t z = (i + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 29;
  return double(z >> 11) * 0x1.0p-53;
}

std::vector<double> gaussian_weights(std::size_t n, double mu, double sigma) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (double(i) - mu) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return w;
}

}  // namespace

double WorkloadSpec::hottest_group_mass(unsigned group_bits) const {
  assert(group_bits <= base_bits);
  const std::size_t group_size = std::size_t{1}
                                 << (base_bits - group_bits);
  const double total =
      std::accumulate(base_weights.begin(), base_weights.end(), 0.0);
  double best = 0;
  for (std::size_t start = 0; start < base_weights.size();
       start += group_size) {
    double mass = 0;
    for (std::size_t i = start; i < start + group_size; ++i) {
      mass += base_weights[i];
    }
    best = std::max(best, mass);
  }
  return total > 0 ? best / total : 0;
}

std::size_t WorkloadSpec::support_size(double eps) const {
  const double total =
      std::accumulate(base_weights.begin(), base_weights.end(), 0.0);
  const double floor = eps * total / double(base_weights.size());
  std::size_t n = 0;
  for (const double w : base_weights) {
    if (w > floor) ++n;
  }
  return n;
}

WorkloadSpec workload_a(unsigned base_bits) {
  WorkloadSpec spec;
  spec.name = "A";
  spec.source_rate = 1.0;
  spec.base_bits = base_bits;
  const std::size_t n = std::size_t{1} << base_bits;
  spec.base_weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Near-uniform with a +-10 % deterministic ripple.
    spec.base_weights[i] = 1.0 + 0.2 * (mix_noise(i) - 0.5);
  }
  return spec;
}

WorkloadSpec workload_b(unsigned base_bits) {
  WorkloadSpec spec;
  spec.name = "B";
  spec.source_rate = 2.0;
  spec.base_bits = base_bits;
  const std::size_t n = std::size_t{1} << base_bits;
  // Moderate skew: a Gaussian bump covering ~3/8 of the base range.
  spec.base_weights = gaussian_weights(n, 0.375 * double(n), 0.0625 * double(n));
  return spec;
}

WorkloadSpec workload_c(unsigned base_bits) {
  WorkloadSpec spec;
  spec.name = "C";
  spec.source_rate = 2.0;
  spec.base_bits = base_bits;
  const std::size_t n = std::size_t{1} << base_bits;
  // Heavy skew: a sharp spike. sigma = n/51.2 (= 5 for X=8) puts ~30 %
  // of the mass in the hottest 4-value group (see DESIGN.md).
  spec.base_weights =
      gaussian_weights(n, 0.625 * double(n), double(n) / 51.2);
  return spec;
}

WorkloadSpec workload_by_name(char which, unsigned base_bits) {
  switch (which) {
    case 'A':
    case 'a':
      return workload_a(base_bits);
    case 'B':
    case 'b':
      return workload_b(base_bits);
    case 'C':
    case 'c':
      return workload_c(base_bits);
    default:
      throw std::invalid_argument("unknown workload (expected A, B, or C)");
  }
}

KeyGenerator::KeyGenerator(const WorkloadSpec& spec, unsigned key_width)
    : key_width_(key_width),
      base_bits_(spec.base_bits),
      base_sampler_(spec.base_weights) {
  if (base_bits_ > key_width_) {
    throw std::invalid_argument("base bits exceed key width");
  }
  if (spec.base_weights.size() != (std::size_t{1} << base_bits_)) {
    throw std::invalid_argument("weight vector size != 2^base_bits");
  }
}

Key KeyGenerator::sample(Rng& rng) const {
  const std::uint64_t base = base_sampler_.sample(rng);
  const unsigned rest_bits = key_width_ - base_bits_;
  const std::uint64_t rest =
      rest_bits == 0 ? 0 : (rng.next() & bits::low_mask(rest_bits));
  return Key((base << rest_bits) | rest, key_width_);
}

Key KeyGenerator::local_move(const Key& current, unsigned local_bits,
                             Rng& rng) const {
  assert(current.width() == key_width_);
  const unsigned moved = std::min(local_bits, key_width_);
  const std::uint64_t keep = current.value() & ~bits::low_mask(moved);
  return Key(keep | (rng.next() & bits::low_mask(moved)), key_width_);
}

}  // namespace clash::sim
