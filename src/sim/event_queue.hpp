// Discrete-event core: a time-ordered queue of closures. Ties break by
// insertion order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace clash::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  void at(SimTime t, Handler fn) {
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void after(SimDuration d, Handler fn) { at(now_ + d, std::move(fn)); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Run events with t <= end (inclusive); leaves now() == end.
  void run_until(SimTime end) {
    while (!heap_.empty() && heap_.top().t <= end) {
      // Copy out before pop: the handler may schedule new events.
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.t;
      ++processed_;
      ev.fn();
    }
    now_ = end;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;

    bool operator>(const Event& o) const {
      return t == o.t ? seq > o.seq : o.t < t;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace clash::sim
