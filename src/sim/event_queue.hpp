// Discrete-event core: a time-ordered queue of closures. Ties break by
// insertion order, so runs are fully deterministic. Backed by an
// explicit binary heap over a vector so dispatch can move events out
// (a std::priority_queue only exposes a const top, forcing a
// std::function copy — and thus often a heap allocation — per event)
// and so capacity can be reserved up front.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/sim_time.hpp"

namespace clash::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Pre-size the heap (bulk scheduling avoids regrowth moves).
  void reserve(std::size_t n) { events_.reserve(n); }

  void at(SimTime t, Handler fn) {
    events_.push_back(Event{t, next_seq_++, std::move(fn)});
    std::push_heap(events_.begin(), events_.end(), Later{});
  }

  void after(SimDuration d, Handler fn) { at(now_ + d, std::move(fn)); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Events scheduled but not yet run — the soak harness bounds this
  /// as its pending-work growth gate.
  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Run events with t <= end (inclusive); leaves now() == end.
  void run_until(SimTime end) {
    while (!events_.empty() && events_.front().t <= end) {
      // Move out before dispatch: the handler may schedule new events
      // (the vector can then grow safely — `ev` owns the closure).
      std::pop_heap(events_.begin(), events_.end(), Later{});
      Event ev = std::move(events_.back());
      events_.pop_back();
      now_ = ev.t;
      ++processed_;
      ev.fn();
    }
    now_ = end;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler fn;
  };

  /// True when `a` dispatches after `b` — std::push_heap's max-heap
  /// then keeps the earliest (t, seq) at the front.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t == b.t ? a.seq > b.seq : b.t < a.t;
    }
  };

  std::vector<Event> events_;
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace clash::sim
