// Canned experiment configurations reproducing Section 6's setup:
// 1000 servers, 100,000 data sources, 50,000 query clients, N = 24-bit
// keys with an 8-bit skewed base, starting depth 6, LOAD_CHECK_PERIOD
// 5 min, thresholds 90 % / 54 %, Ld = 1000 packets, Lq = 30 min,
// workloads A -> B -> C for 2 simulated hours each.
//
// `Scale` shrinks an experiment proportionally so benches and tests
// finish quickly; scale = 1 is the paper's full size.
#pragma once

#include <cstdint>

#include "sim/runtime.hpp"

namespace clash::sim {

struct Scale {
  double servers = 1.0;   // x1000
  double clients = 1.0;   // x100000 sources / x50000 query clients
  double duration = 1.0;  // x2h per workload phase

  /// Capacity shrinks with the client/server ratio so utilisation — and
  /// therefore all Figure 4 shapes — is scale-invariant.
  [[nodiscard]] double capacity_factor() const {
    return servers > 0 ? clients / servers : 1.0;
  }
};

/// The common cluster/protocol parameters (paper Section 6.1).
[[nodiscard]] RuntimeConfig paper_base_config(const Scale& scale,
                                              std::uint64_t seed);

/// Figure 4: the six-hour A->B->C run. `mode` selects CLASH or a
/// baseline; `fixed_depth` applies to kFixedDepth/kPowerOfTwo.
[[nodiscard]] RuntimeConfig fig4_config(Mode mode, unsigned fixed_depth,
                                        const Scale& scale,
                                        std::uint64_t seed);

/// Figure 5: CLASH communication overhead for a given virtual stream
/// length Ld (packets) and query-client population.
[[nodiscard]] RuntimeConfig fig5_config(double mean_stream_packets,
                                        std::size_t query_clients,
                                        const Scale& scale,
                                        std::uint64_t seed);

}  // namespace clash::sim
