// The experiment runtime: drives a SimCluster through the paper's
// Section 6 scenario — data sources with exponentially-long virtual
// streams, churning query clients, staggered per-server load checks,
// phased workloads (A -> B -> C), periodic metric sampling.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/workload.hpp"

namespace clash {
class PowerOfDChoices;
}

namespace clash::sim {

/// Which placement scheme the run exercises.
enum class Mode {
  kClash,       // full protocol (adaptive splitting/merging)
  kFixedDepth,  // basic DHT(x): groups pinned at initial_depth
  kPowerOfTwo,  // fixed depth + least-loaded-of-2-candidates placement
};

struct RuntimeConfig {
  SimCluster::Config cluster;
  Mode mode = Mode::kClash;

  std::size_t num_sources = 100'000;
  std::size_t num_query_clients = 50'000;

  /// Mean virtual stream length in packets (paper's Ld).
  double mean_stream_packets = 1000;
  /// Mean query-client lifetime (paper's Lq).
  SimDuration mean_query_lifetime = SimTime::from_minutes(30);

  /// On a key change, probability of re-sampling a fresh key from the
  /// workload (vs a local move that keeps the semantic prefix).
  double p_jump = 0.1;
  /// Bits re-rolled by a local move.
  unsigned local_move_bits = 8;

  /// Metric sampling cadence.
  SimDuration sample_period = SimTime::from_minutes(5);

  /// Validate cluster invariants at each phase boundary (cheap) and,
  /// when `paranoid`, at every sample.
  bool verify_invariants = true;
  bool paranoid = false;

  struct Phase {
    char workload;  // 'A', 'B', or 'C'
    SimDuration duration;
  };
  std::vector<Phase> phases;

  std::uint64_t seed = 42;
};

struct PhaseStats {
  std::string workload;
  SimDuration duration{0};
  MessageStats delta;  // messages during this phase

  /// The paper's Figure 5 metric.
  [[nodiscard]] double msgs_per_sec_per_server(std::size_t servers,
                                               bool include_state) const {
    const double secs = duration.seconds();
    if (secs <= 0 || servers == 0) return 0;
    const auto n = include_state ? delta.total_messages()
                                 : delta.control_messages();
    return double(n) / secs / double(servers);
  }
};

struct RunResult {
  // Figure 4 time series (percent of capacity, counts, depths).
  TimeSeries max_load_pct;
  TimeSeries avg_load_pct;
  TimeSeries active_servers;
  TimeSeries active_groups;
  TimeSeries depth_min;
  TimeSeries depth_avg;
  TimeSeries depth_max;

  std::vector<PhaseStats> phase_stats;
  MessageStats totals;

  // Depth-search behaviour (Section 5 claims).
  Summary probes_per_search;
  Summary hops_per_search;
  std::uint64_t cache_hits = 0;
  std::uint64_t searches = 0;
  std::uint64_t failed_resolves = 0;

  std::uint64_t events_processed = 0;
  std::string invariant_violation;  // empty when clean
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  RunResult run();

  [[nodiscard]] SimCluster& cluster() { return *cluster_; }

 private:
  struct Source {
    ClientId id{};
    Key key{0, 24};
    double rate = 0;
    ServerId access{};
    unsigned epoch = 0;  // workload phase the key was drawn from
    bool registered = false;
    std::unique_ptr<ClashClient> client;
    Rng rng{0};
  };

  struct LiveQuery {
    QueryId id{};
    Key key{0, 24};
    bool alive = false;
  };

  void setup_phases();
  void setup_sources();
  void setup_query_clients();
  void setup_load_checks();
  void setup_sampling();

  void register_source(std::size_t idx);
  void schedule_key_change(std::size_t idx);
  void on_key_change(std::size_t idx);

  void spawn_query(std::size_t slot);
  void expire_query(std::size_t slot, std::uint64_t expected_generation);

  void record_outcome(const ResolveOutcome& out);
  void take_sample();

  [[nodiscard]] const WorkloadSpec& current_spec() const;
  [[nodiscard]] const KeyGenerator& current_keygen() const;

  /// Fixed-depth / power-of-two insert path (no depth search).
  ResolveOutcome insert_fixed(Source& src, AcceptObject obj);

  RuntimeConfig config_;
  std::unique_ptr<SimCluster> cluster_;
  EventQueue events_;
  Rng master_rng_;

  std::vector<WorkloadSpec> phase_specs_;
  std::vector<std::unique_ptr<KeyGenerator>> phase_keygens_;
  unsigned current_phase_ = 0;

  std::deque<Source> sources_;
  std::vector<LiveQuery> queries_;
  std::vector<std::uint64_t> query_generation_;
  /// Per-server load-check closures (owned here so the rescheduling
  /// lambdas can capture weakly instead of leaking a self-cycle).
  std::vector<std::shared_ptr<std::function<void()>>> load_check_ticks_;
  std::uint64_t next_query_id_ = 1;

  // Power-of-two-choices bookkeeping (kPowerOfTwo mode only).
  std::unique_ptr<PowerOfDChoices> po2_;
  std::vector<ServerId> po2_stream_home_;
  std::vector<ServerId> po2_query_home_;

  RunResult result_;
  MessageStats phase_start_stats_;
  SimTime phase_start_time_{0};
};

}  // namespace clash::sim
