// ChurnSim: a SimCluster whose ring is driven by live SWIM membership
// instead of the failure oracle. Every server runs a MembershipDriver;
// gossip messages travel through the discrete-event queue with a
// configurable delay; kills and revivals only take effect on the Chord
// ring once the survivors' views converge — exactly the lifecycle a
// real deployment sees:
//
//   kill(x)              -> crash_server: messages to x drop
//   survivors suspect,   (randomized ping + ping-req + suspicion
//   then declare dead     timeout, disseminated by gossip)
//   all survivors agree  -> evict_server: ring shrinks, heirs promote
//                           their replicas (automatic failover)
//   revive(x)            -> restart_server + fresh driver; x refutes
//                           the death rumour with a bumped incarnation
//   all survivors agree  -> join_server: ring grows again
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "membership/driver.hpp"
#include "obs/census.hpp"
#include "sim/cluster.hpp"
#include "sim/event_queue.hpp"

namespace clash::sim {

class ChurnSim {
 public:
  struct Config {
    SimCluster::Config cluster;
    membership::MembershipConfig membership;
    /// SWIM protocol period (one probe round per server).
    SimDuration protocol_period = SimTime::from_seconds(1);
    /// One-way gossip message latency.
    SimDuration gossip_delay = SimTime::from_seconds(0.02);
    /// Also drive periodic load checks (replica refresh, splits).
    bool run_load_checks = true;
    /// Per-node suspicion-timeout override (server index -> periods):
    /// nodes listed here run SWIM with their own eviction leash instead
    /// of membership.suspicion_periods. Survives revivals.
    std::map<std::size_t, unsigned> suspicion_periods_override;
    /// Run a per-node cost census piggybacked on the gossip (records
    /// folded from each ClashServer, disseminated per
    /// membership.census_max_records). Off only for experiments that
    /// want byte-identical gossip to the pre-census protocol.
    bool enable_census = true;
    obs::CensusConfig census;
    std::uint64_t seed = 42;
  };

  explicit ChurnSim(Config config);
  ~ChurnSim();

  ChurnSim(const ChurnSim&) = delete;
  ChurnSim& operator=(const ChurnSim&) = delete;

  [[nodiscard]] SimCluster& cluster() { return *cluster_; }
  [[nodiscard]] const SimCluster& cluster() const { return *cluster_; }
  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] SimDuration protocol_period() const {
    return config_.protocol_period;
  }

  /// Bootstrap the tree and schedule the staggered per-server protocol
  /// periods (and load checks).
  void start();

  /// Advance simulated time by `d`.
  void run_for(SimDuration d);

  /// Crash `id` now: its driver stops, messages to it drop. The ring
  /// reacts only when the survivors converge.
  void kill(ServerId id);

  /// Restart `id` with a fresh driver (and empty protocol state). It
  /// refutes its own death rumour and rejoins the ring on convergence.
  void revive(ServerId id);

  // --- Beyond crash-stop ------------------------------------------------

  /// Mark `id` fail-slow (factor > 1) or healthy again (factor <= 1):
  /// the node keeps answering, but every message it sends or receives
  /// gains cluster.slow_node_lag * (factor - 1) of latency each way —
  /// gossip included. A factor large enough to push probe round trips
  /// past the SWIM timeouts gets the node suspected, declared dead, and
  /// excommunicated (crash + evict) once the survivors agree; revive()
  /// brings it back as a fresh process.
  void set_slow(ServerId id, double factor);

  /// Skew `id`'s local clock: it runs its protocol periods and load
  /// checks `rate` times faster (rate > 1) or slower (rate < 1) than
  /// sim-time. Suspicion timeouts count local ticks, so a skewed node
  /// probes, suspects, and expires suspicions on its own notion of
  /// time — eviction/refutation must stay correct regardless.
  void set_clock_rate(ServerId id, double rate);
  [[nodiscard]] double clock_rate(ServerId id) const {
    return id.value < clock_rate_.size() ? clock_rate_[id.value] : 1.0;
  }

  /// Retune one node's suspicion timeout live (applies to the current
  /// driver and to every future revival of `id`).
  void set_suspicion_periods(ServerId id, unsigned periods);

  /// Sum over all drivers of gossip messages rejected by the content
  /// CRC fence (corrupted in flight but structurally valid).
  [[nodiscard]] std::uint64_t gossip_corrupt_rejected() const;

  /// This node's census table (its local slice of the cluster view).
  /// A revival replaces the census along with the driver — a restarted
  /// process relearns the cluster from gossip like everything else.
  [[nodiscard]] obs::Census& census_of(ServerId id) {
    return *censuses_[id.value];
  }
  [[nodiscard]] const obs::Census& census_of(ServerId id) const {
    return *censuses_[id.value];
  }

  // --- Link faults & partition events ----------------------------------
  // All protocol AND gossip traffic consults cluster().links(); these
  // helpers drive whole-partition scenarios on it. Partition events
  // compose with kill/revive — e.g. kill a server while its side is
  // partitioned and watch eviction wait for the heal.

  [[nodiscard]] LinkMatrix& links() { return cluster_->links(); }

  /// Cut every link between `side` and the rest of the cluster, both
  /// directions (split-brain).
  void partition(const std::vector<ServerId>& side);
  /// Cut only the messages FROM `side` to the rest: the cut side keeps
  /// hearing the majority but is never heard (asymmetric one-way cut).
  void one_way_partition(const std::vector<ServerId>& side);
  /// Remove every link fault installed so far (default fault included).
  void heal_partitions();
  /// Uniform lossy cluster: every link independently drops each
  /// message with probability `p` (0 restores clean links).
  void set_loss_rate(double p);
  /// Flap schedule: partition `side`, heal after `period`, repeat for
  /// `cycles` cut/heal pairs (the last event is always a heal).
  void schedule_flaps(std::vector<ServerId> side, SimDuration period,
                      unsigned cycles);

  // --- Convergence queries ---------------------------------------------
  [[nodiscard]] const membership::MembershipView& view_of(ServerId id) const;
  /// Every live server's view marks `victim` dead.
  [[nodiscard]] bool all_survivors_see_dead(ServerId victim) const;
  /// Every live server's view (including `id`'s own) marks `id` alive.
  [[nodiscard]] bool all_survivors_see_alive(ServerId id) const;
  /// The ring holds exactly the live servers.
  [[nodiscard]] bool ring_matches_membership() const;
  [[nodiscard]] std::uint64_t gossip_messages() const;

 private:
  class GossipEnvImpl;

  void tick_server(std::size_t idx);
  void run_load_check(std::size_t idx);
  /// Everyone not in `side`.
  [[nodiscard]] std::vector<ServerId> complement(
      const std::vector<ServerId>& side) const;
  /// Re-evaluate every pending eviction and re-admission. Run on every
  /// membership change — including kills: removing a dissenting
  /// survivor can be exactly what makes the remaining views unanimous,
  /// and no view transition would fire for the original victim then.
  void sweep_convergence();
  [[nodiscard]] std::unique_ptr<membership::MembershipDriver> make_driver(
      ServerId id, std::uint64_t generation);
  [[nodiscard]] std::unique_ptr<obs::Census> make_census(ServerId id);

  Config config_;
  std::unique_ptr<SimCluster> cluster_;
  EventQueue events_;
  std::vector<std::unique_ptr<GossipEnvImpl>> envs_;
  std::vector<std::unique_ptr<obs::Census>> censuses_;
  std::vector<std::unique_ptr<membership::MembershipDriver>> drivers_;
  std::vector<std::uint64_t> generation_;  // bumped per revival
  std::vector<double> clock_rate_;         // local-clock speed (1 = true)
  Rng corrupt_rng_;                        // gossip byte-flip stream
  bool started_ = false;
};

}  // namespace clash::sim
