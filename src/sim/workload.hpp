// The paper's three workloads (Figure 3): skewed distributions over the
// X=8-bit "base" portion of the N=24-bit identifier key; the remaining
// bits are uniform. Workload A is near-uniform at 1 pkt/s per source;
// B and C are increasingly skewed at 2 pkt/s.
//
// Shapes are calibrated per DESIGN.md: C concentrates ~30 % of its mass
// in the hottest 6-bit prefix group (4 adjacent base values), which
// reproduces the paper's "DHT(6) max load reaches ~25x capacity"; B's
// support (~96 base values) reproduces DHT(12)'s partial server
// coverage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "keys/key.hpp"

namespace clash::sim {

struct WorkloadSpec {
  std::string name;
  double source_rate = 1.0;           // packets/sec per data source
  unsigned base_bits = 8;             // X
  std::vector<double> base_weights;   // size 2^X, need not be normalised

  /// Fraction of total weight landing in the heaviest `group_bits`-bit
  /// prefix group (diagnostic used for calibration tests).
  [[nodiscard]] double hottest_group_mass(unsigned group_bits) const;

  /// Number of base values with weight above `eps` of the mean weight.
  [[nodiscard]] std::size_t support_size(double eps = 1e-6) const;
};

[[nodiscard]] WorkloadSpec workload_a(unsigned base_bits = 8);
[[nodiscard]] WorkloadSpec workload_b(unsigned base_bits = 8);
[[nodiscard]] WorkloadSpec workload_c(unsigned base_bits = 8);
[[nodiscard]] WorkloadSpec workload_by_name(char which,
                                            unsigned base_bits = 8);

/// Samples identifier keys for a workload: base bits from the skewed
/// distribution, remaining bits uniform. Also models source mobility:
/// local_move() re-rolls only the low bits (a vehicle moving to a
/// nearby grid cell), keeping the semantic prefix.
class KeyGenerator {
 public:
  KeyGenerator(const WorkloadSpec& spec, unsigned key_width);

  [[nodiscard]] unsigned key_width() const { return key_width_; }
  [[nodiscard]] unsigned base_bits() const { return base_bits_; }

  [[nodiscard]] Key sample(Rng& rng) const;

  /// A "local" key change: keep the top (width - local_bits) bits,
  /// re-roll the rest. Stays inside any group of depth
  /// <= width - local_bits.
  [[nodiscard]] Key local_move(const Key& current, unsigned local_bits,
                               Rng& rng) const;

 private:
  unsigned key_width_;
  unsigned base_bits_;
  DiscreteSampler base_sampler_;
};

}  // namespace clash::sim
