// LinkMatrix: per-ordered-pair link faults for the simulated transports
// (the link-level drop matrix the ROADMAP asks for). Every server ->
// server message consults the matrix before delivery and can be
//
//   - dropped probabilistically (lossy WAN links),
//   - delayed by a fixed extra latency (slow links),
//   - duplicated (retransmitting middleboxes / at-least-once relays),
//   - reordered by a random jitter inside the reorder window (multi-
//     path routing — needs a delay sink so the jittered copy genuinely
//     lands late),
//   - slowed by a latency multiplier (fail-slow links: everything
//     arrives, just 10-100x late),
//   - corrupted (bytes flipped inside the payload in flight), or
//   - cut outright (hard partition — one direction at a time, so
//     asymmetric partitions are first-class).
//
// The fault vocabulary itself is common/fault_spec.hpp, shared with
// net::FaultInjector so both layers speak identical fault configs.
// Faults are keyed on the *ordered* (from, to) pair and mutable
// mid-run; ChurnSim layers split/heal/flap schedules on top. All
// randomness flows through one seeded Rng so fault runs replay
// exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/fault_spec.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/types.hpp"

namespace clash::sim {

class LinkMatrix {
 public:
  /// One directed link's fault profile (shared with the TCP layer).
  using Fault = FaultSpec;

  /// Outcome for one message on one directed link. `delay` already
  /// includes the base latency passed to judge() and the slow-factor
  /// stretch.
  struct Verdict {
    bool deliver = true;
    SimDuration delay{0};
    bool duplicate = false;
    bool corrupt = false;
  };

  struct Stats {
    std::uint64_t dropped = 0;  // probabilistic drops + cut links
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t slowed = 0;    // messages stretched by slow_factor
    std::uint64_t corrupted = 0; // messages flagged for byte flips
  };

  explicit LinkMatrix(std::uint64_t seed = 0x11ae5eedULL) : rng_(seed) {}

  // --- Per-directed-link faults --------------------------------------
  void set_fault(ServerId from, ServerId to, Fault f);
  void set_drop(ServerId from, ServerId to, double prob);
  void set_delay(ServerId from, ServerId to, SimDuration d);
  void set_duplication(ServerId from, ServerId to, double prob);
  void set_reordering(ServerId from, ServerId to, double prob,
                      SimDuration window);
  /// Fail-slow link: every message (base latency included) takes
  /// `factor` times as long. 1 restores full speed.
  void set_slow(ServerId from, ServerId to, double factor);
  /// Corrupt each delivered message with probability `prob`.
  void set_corruption(ServerId from, ServerId to, double prob);
  /// Hard one-way cut: nothing flows from -> to until healed.
  void cut(ServerId from, ServerId to);
  void heal(ServerId from, ServerId to);

  /// Baseline fault applied to every pair without an explicit entry
  /// (uniform lossy-cluster scenarios).
  void set_default_fault(Fault f) { default_ = f; }

  // --- Set-level helpers (partition scenarios) -----------------------
  /// Cut both directions between every a in `a` and b in `b`.
  void partition(const std::vector<ServerId>& a,
                 const std::vector<ServerId>& b);
  /// Cut only the `from` -> `to` direction (asymmetric partition: the
  /// `from` side's messages vanish, the reverse path stays up).
  void one_way_partition(const std::vector<ServerId>& from,
                         const std::vector<ServerId>& to);
  /// Remove every explicit link fault (the default fault persists).
  void heal_all();
  /// heal_all + clear the default fault.
  void clear();

  /// Deterministic per-message script for one directed link: each
  /// message sent on it consumes one entry (true = drop); once the
  /// script drains, the configured fault resumes. The precision tool
  /// for "this specific frame never arrives" regression tests —
  /// mirrors net::FaultInjector::drop_next.
  void script(ServerId from, ServerId to, const std::vector<bool>& drops);

  /// Decide one message's fate (consumes randomness for lossy links).
  /// `base` is the transport's own clean-link latency for this
  /// message, folded in so slow links stretch the whole path.
  [[nodiscard]] Verdict judge(ServerId from, ServerId to,
                              SimDuration base = SimDuration{0});

  /// Fast path: true when no fault (explicit or default) is configured,
  /// so dispatch can skip the lookup entirely.
  [[nodiscard]] bool quiet() const {
    return faults_.empty() && scripts_.empty() && default_.benign();
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t faulted_links() const { return faults_.size(); }
  [[nodiscard]] Fault fault_of(ServerId from, ServerId to) const;

 private:
  static std::uint64_t key(ServerId from, ServerId to) {
    return (std::uint64_t(from.value) << 32) ^ std::uint64_t(to.value);
  }

  std::unordered_map<std::uint64_t, Fault> faults_;
  std::unordered_map<std::uint64_t, std::deque<bool>> scripts_;
  Fault default_{};
  Rng rng_;
  Stats stats_;
};

}  // namespace clash::sim
