#include "sim/runtime.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "clash/baseline.hpp"

namespace clash::sim {

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)),
      cluster_(std::make_unique<SimCluster>(config_.cluster)),
      master_rng_(config_.seed) {
  if (config_.phases.empty()) {
    throw std::invalid_argument("runtime needs at least one phase");
  }
  if (config_.mode == Mode::kPowerOfTwo) {
    // The same group may legitimately live on two candidate servers, so
    // the global prefix-free invariant does not apply.
    config_.verify_invariants = false;
    config_.paranoid = false;
  }
}

Runtime::~Runtime() = default;

const WorkloadSpec& Runtime::current_spec() const {
  return phase_specs_[current_phase_];
}

const KeyGenerator& Runtime::current_keygen() const {
  return *phase_keygens_[current_phase_];
}

RunResult Runtime::run() {
  for (const auto& phase : config_.phases) {
    phase_specs_.push_back(workload_by_name(phase.workload));
    phase_keygens_.push_back(std::make_unique<KeyGenerator>(
        phase_specs_.back(), config_.cluster.clash.key_width));
  }

  if (config_.mode == Mode::kClash) cluster_->bootstrap();

  setup_phases();
  setup_sources();
  setup_query_clients();
  setup_load_checks();
  setup_sampling();

  SimTime total{0};
  for (const auto& phase : config_.phases) total = total + phase.duration;

  take_sample();  // t = 0 baseline
  events_.run_until(total);
  cluster_->set_now(total);

  // Close the final phase.
  PhaseStats last;
  last.workload = phase_specs_.back().name;
  last.duration = total - phase_start_time_;
  last.delta = cluster_->total_stats() - phase_start_stats_;
  result_.phase_stats.push_back(last);

  if (config_.verify_invariants) {
    if (const auto err = cluster_->check_invariants()) {
      result_.invariant_violation = *err;
    }
  }

  result_.totals = cluster_->total_stats();
  result_.events_processed = events_.processed();
  return result_;
}

void Runtime::setup_phases() {
  phase_start_stats_ = cluster_->total_stats();
  phase_start_time_ = SimTime{0};
  SimTime t{0};
  for (std::size_t i = 1; i < config_.phases.size(); ++i) {
    t = t + config_.phases[i - 1].duration;
    events_.at(t, [this, i, t] {
      cluster_->set_now(t);
      PhaseStats done;
      done.workload = phase_specs_[current_phase_].name;
      done.duration = t - phase_start_time_;
      done.delta = cluster_->total_stats() - phase_start_stats_;
      result_.phase_stats.push_back(done);
      phase_start_stats_ = cluster_->total_stats();
      phase_start_time_ = t;
      current_phase_ = unsigned(i);
      if (config_.verify_invariants) {
        if (const auto err = cluster_->check_invariants();
            err && result_.invariant_violation.empty()) {
          result_.invariant_violation = *err;
        }
      }
    });
  }
}

void Runtime::setup_sources() {
  const auto n_servers = cluster_->num_servers();
  sources_.resize(config_.num_sources);
  if (config_.mode == Mode::kPowerOfTwo) {
    po2_ = std::make_unique<PowerOfDChoices>(
        config_.cluster.clash.initial_depth, 2, config_.cluster.hash_bits,
        config_.cluster.hash_algo, config_.cluster.seed);
    po2_stream_home_.resize(config_.num_sources, ServerId{});
  }

  ClashClient::Options opts;
  opts.cache_capacity = 4;  // a source follows one virtual stream

  for (std::size_t i = 0; i < config_.num_sources; ++i) {
    Source& s = sources_[i];
    s.id = ClientId{i};
    s.rng = master_rng_.split(i * 2 + 1);
    s.access = ServerId{master_rng_.below(n_servers)};
    s.rate = phase_specs_[0].source_rate;
    s.key = phase_keygens_[0]->sample(s.rng);
    s.client = std::make_unique<ClashClient>(
        config_.cluster.clash, cluster_->client_env(s.access),
        cluster_->hasher(), opts, config_.seed ^ (i * 977));
    events_.at(SimTime{0}, [this, i] { register_source(i); });
  }
}

void Runtime::register_source(std::size_t idx) {
  Source& s = sources_[idx];
  cluster_->set_now(events_.now());

  AcceptObject obj;
  obj.key = s.key;
  obj.kind = ObjectKind::kData;
  obj.stream_rate = s.rate;
  obj.source = s.id;

  const ResolveOutcome out = (config_.mode == Mode::kClash)
                                 ? s.client->insert(obj)
                                 : insert_fixed(s, obj);
  s.registered = out.ok;
  if (!out.ok) ++result_.failed_resolves;
  record_outcome(out);
  schedule_key_change(idx);
}

void Runtime::schedule_key_change(std::size_t idx) {
  Source& s = sources_[idx];
  // Virtual stream length ~ exp(mean Ld packets) at `rate` packets/sec.
  const double secs =
      s.rng.exponential(config_.mean_stream_packets / s.rate);
  events_.after(SimTime::from_seconds(secs),
                [this, idx] { on_key_change(idx); });
}

void Runtime::on_key_change(std::size_t idx) {
  Source& s = sources_[idx];
  cluster_->set_now(events_.now());

  if (s.registered) {
    if (config_.mode == Mode::kPowerOfTwo) {
      const ServerId home = po2_stream_home_[idx];
      if (home.valid()) cluster_->server(home).remove_stream(s.id, s.key);
    } else {
      cluster_->withdraw_stream(s.id, s.key);
    }
  }

  const WorkloadSpec& spec = current_spec();
  // Sources adopt a new phase's distribution (and rate) at their next
  // stream; within a phase most changes are local moves (mobility).
  const bool fresh = s.epoch != current_phase_ ||
                     s.rng.uniform01() < config_.p_jump;
  s.epoch = current_phase_;
  s.rate = spec.source_rate;
  s.key = fresh ? current_keygen().sample(s.rng)
                : current_keygen().local_move(s.key, config_.local_move_bits,
                                              s.rng);

  AcceptObject obj;
  obj.key = s.key;
  obj.kind = ObjectKind::kData;
  obj.stream_rate = s.rate;
  obj.source = s.id;

  const ResolveOutcome out = (config_.mode == Mode::kClash)
                                 ? s.client->insert(obj)
                                 : insert_fixed(s, obj);
  s.registered = out.ok;
  if (!out.ok) ++result_.failed_resolves;
  record_outcome(out);
  schedule_key_change(idx);
}

ResolveOutcome Runtime::insert_fixed(Source& src, AcceptObject obj) {
  const unsigned depth = config_.cluster.clash.initial_depth;
  const KeyGroup group = KeyGroup::of(obj.key, depth);

  if (config_.mode == Mode::kFixedDepth) {
    cluster_->ensure_group(group);
    return src.client->insert(obj);
  }

  // Power-of-two-choices: probe both candidates, keep the cooler one.
  assert(po2_ != nullptr);
  ResolveOutcome out;
  ServerId best{};
  double best_load = std::numeric_limits<double>::infinity();
  for (const auto cand : po2_->candidates(obj.key)) {
    const auto route = cluster_->ring().lookup(cand, src.access);
    ++out.dht_lookups;
    out.dht_hops += route.hops;
    cluster_->transport_stats().dht_hops += route.hops;
    // Load probe round trip.
    ++out.probes;
    cluster_->transport_stats().object_probes++;
    cluster_->transport_stats().object_replies++;
    const double load = cluster_->server(route.owner).server_load();
    if (load < best_load) {
      best_load = load;
      best = route.owner;
    }
  }
  if (cluster_->server(best).table().find(group) == nullptr) {
    ServerTableEntry entry;
    entry.group = group;
    entry.root = true;
    entry.active = true;
    cluster_->server(best).install_entry(entry);
  }
  obj.depth = depth;
  ++out.probes;
  cluster_->transport_stats().object_probes++;
  cluster_->transport_stats().object_replies++;
  const AcceptObjectReply reply =
      cluster_->server(best).handle_accept_object(obj);
  out.ok = std::holds_alternative<AcceptObjectOk>(reply);
  out.server = best;
  out.depth = depth;
  const std::size_t idx = obj.source.value;
  if (idx < po2_stream_home_.size() && obj.kind == ObjectKind::kData) {
    po2_stream_home_[idx] = best;
  }
  return out;
}

void Runtime::setup_query_clients() {
  queries_.resize(config_.num_query_clients);
  query_generation_.assign(config_.num_query_clients, 0);
  if (config_.mode == Mode::kPowerOfTwo) {
    po2_query_home_.assign(config_.num_query_clients, ServerId{});
  }
  for (std::size_t slot = 0; slot < config_.num_query_clients; ++slot) {
    events_.at(SimTime{0}, [this, slot] { spawn_query(slot); });
  }
}

void Runtime::spawn_query(std::size_t slot) {
  cluster_->set_now(events_.now());
  LiveQuery& q = queries_[slot];
  q.id = QueryId{next_query_id_++};
  Rng qrng = master_rng_.split(q.id.value * 2);
  q.key = current_keygen().sample(qrng);
  q.alive = true;

  AcceptObject obj;
  obj.key = q.key;
  obj.kind = ObjectKind::kQuery;
  obj.query_id = q.id;

  const ServerId access{qrng.below(cluster_->num_servers())};
  if (config_.mode == Mode::kPowerOfTwo) {
    Source dummy;
    dummy.access = access;
    ResolveOutcome out = insert_fixed(dummy, obj);
    if (out.ok) po2_query_home_[slot] = out.server;
    record_outcome(out);
    if (!out.ok) ++result_.failed_resolves;
  } else {
    if (config_.mode == Mode::kFixedDepth) {
      cluster_->ensure_group(
          KeyGroup::of(q.key, config_.cluster.clash.initial_depth));
    }
    ClashClient::Options opts;
    opts.cache_capacity = 2;
    ClashClient client(config_.cluster.clash, cluster_->client_env(access),
                       cluster_->hasher(), opts, q.id.value ^ config_.seed);
    const ResolveOutcome out = client.insert(obj);
    record_outcome(out);
    if (!out.ok) {
      q.alive = false;
      ++result_.failed_resolves;
    }
  }

  const std::uint64_t generation = ++query_generation_[slot];
  const double secs =
      qrng.exponential(config_.mean_query_lifetime.seconds());
  events_.after(SimTime::from_seconds(secs), [this, slot, generation] {
    expire_query(slot, generation);
  });
}

void Runtime::expire_query(std::size_t slot,
                           std::uint64_t expected_generation) {
  if (query_generation_[slot] != expected_generation) return;
  cluster_->set_now(events_.now());
  LiveQuery& q = queries_[slot];
  if (q.alive) {
    if (config_.mode == Mode::kPowerOfTwo) {
      const ServerId home = po2_query_home_[slot];
      if (home.valid()) cluster_->server(home).remove_query(q.id, q.key);
    } else {
      cluster_->withdraw_query(q.id, q.key);
    }
    q.alive = false;
  }
  // Constant population: a departing client is replaced immediately.
  spawn_query(slot);
}

void Runtime::setup_load_checks() {
  if (config_.mode != Mode::kClash) return;  // basic DHT never adapts
  const SimDuration period = config_.cluster.clash.load_check_period;
  for (std::size_t i = 0; i < cluster_->num_servers(); ++i) {
    // Stagger the first check uniformly across the period.
    const auto offset =
        SimTime(std::int64_t(master_rng_.below(std::uint64_t(period.usec)))) +
        SimTime(1);
    // The runtime owns the tick closure; rescheduling captures a weak
    // reference (a self-owning shared_ptr cycle would never free).
    auto tick = std::make_shared<std::function<void()>>();
    const std::weak_ptr<std::function<void()>> weak = tick;
    *tick = [this, i, period, weak] {
      cluster_->set_now(events_.now());
      cluster_->run_load_check(ServerId{i});
      if (const auto self = weak.lock()) events_.after(period, *self);
    };
    events_.at(offset, *tick);
    load_check_ticks_.push_back(std::move(tick));
  }
}

void Runtime::setup_sampling() {
  SimTime total{0};
  for (const auto& phase : config_.phases) total = total + phase.duration;
  const SimDuration period = config_.sample_period;
  for (SimTime t = period; t <= total; t = t + period) {
    events_.at(t, [this] { take_sample(); });
  }
}

void Runtime::take_sample() {
  cluster_->set_now(events_.now());
  const SimTime t = events_.now();
  const auto snap = cluster_->snapshot();
  result_.max_load_pct.add(t, snap.max_load_frac * 100.0);
  result_.avg_load_pct.add(t, snap.avg_active_load_frac * 100.0);
  result_.active_servers.add(t, double(snap.active_servers));
  result_.active_groups.add(t, double(snap.active_groups));
  result_.depth_min.add(t, double(snap.min_depth));
  result_.depth_avg.add(t, snap.avg_depth);
  result_.depth_max.add(t, double(snap.max_depth));
  if (config_.paranoid && config_.verify_invariants) {
    if (const auto err = cluster_->check_invariants();
        err && result_.invariant_violation.empty()) {
      result_.invariant_violation = *err;
    }
  }
}

void Runtime::record_outcome(const ResolveOutcome& out) {
  ++result_.searches;
  result_.probes_per_search.add(double(out.probes));
  result_.hops_per_search.add(double(out.dht_hops));
  if (out.cache_hit) ++result_.cache_hits;
  cluster_->transport_stats().depth_searches++;
  cluster_->transport_stats().search_restarts += out.restarts;
}

}  // namespace clash::sim
