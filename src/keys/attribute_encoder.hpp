// Attribute-field key encoder: packs a tuple of small categorical
// attributes into an N-bit identifier key, most-significant field first.
// Orders fields by clustering priority — objects agreeing on the leading
// fields share key prefixes, so CLASH keeps them on one server while
// load permits (the NiagaraCQ/Xfilter-style use case in Section 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "keys/key.hpp"

namespace clash {

class AttributeEncoder {
 public:
  struct Field {
    std::string name;
    unsigned bits;  // width of this field in the key
  };

  /// Fields are laid out MSB-first in declaration order; total width
  /// must be 1..64 bits.
  static Expected<AttributeEncoder> create(std::vector<Field> fields);

  [[nodiscard]] unsigned key_width() const { return width_; }
  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }

  /// Values must fit in each field's width.
  [[nodiscard]] Expected<Key> encode(
      std::span<const std::uint64_t> values) const;

  [[nodiscard]] std::vector<std::uint64_t> decode(const Key& key) const;

  /// Bit offset of field `i` from the MSB (for building range prefixes).
  [[nodiscard]] unsigned field_offset(std::size_t i) const;

 private:
  explicit AttributeEncoder(std::vector<Field> fields, unsigned width)
      : fields_(std::move(fields)), width_(width) {}

  std::vector<Field> fields_;
  unsigned width_;
};

}  // namespace clash
