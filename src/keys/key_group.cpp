#include "keys/key_group.hpp"

namespace clash {

Expected<KeyGroup> KeyGroup::parse(std::string_view label,
                                   unsigned key_width) {
  if (key_width == 0 || key_width > Key::kMaxWidth) {
    return Error::invalid("key width must be 1..64");
  }
  const bool wildcard = !label.empty() && label.back() == '*';
  std::string_view prefix = label;
  if (wildcard) prefix.remove_suffix(1);
  if (prefix.size() > key_width) {
    return Error::invalid("prefix longer than key width");
  }
  if (!wildcard && prefix.size() != key_width) {
    return Error::invalid("non-wildcard label must be full width");
  }
  std::uint64_t v = 0;
  for (const char c : prefix) {
    if (c != '0' && c != '1') {
      return Error::invalid("label may contain only 0/1 and trailing *");
    }
    v = (v << 1) | std::uint64_t(c == '1');
  }
  const auto depth = unsigned(prefix.size());
  const std::uint64_t value = depth == 0 ? 0 : v << (key_width - depth);
  return KeyGroup::of(Key(value, key_width), depth);
}

std::string KeyGroup::label() const {
  std::string out;
  out.reserve(depth_ + 1);
  for (unsigned i = 0; i < depth_; ++i) {
    out.push_back(vkey_.bit(i) ? '1' : '0');
  }
  if (depth_ < key_width()) out.push_back('*');
  return out;
}

}  // namespace clash
