// Key groups: a (virtual key, depth) pair naming the set of all N-bit
// identifier keys sharing a d-bit prefix (Section 4). The binary
// splitting algorithm operates entirely on this type.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "keys/key.hpp"

namespace clash {

class KeyGroup {
 public:
  constexpr KeyGroup() = default;

  /// Group of all keys whose first `depth` bits equal those of `k`.
  /// The stored virtual key has its suffix zeroed (paper's Shape()).
  static constexpr KeyGroup of(const Key& k, unsigned depth) {
    return KeyGroup(shape(k, depth), depth);
  }

  /// The root group covering the whole N-bit key space.
  static constexpr KeyGroup root(unsigned key_width) {
    return KeyGroup(Key(0, key_width), 0);
  }

  /// Parse the paper's wildcard notation, e.g. "0110*" with
  /// key_width = 7 -> virtual key 0110000, depth 4. A literal without
  /// '*' is a full-depth (leaf) group.
  static Expected<KeyGroup> parse(std::string_view label, unsigned key_width);

  [[nodiscard]] constexpr const Key& virtual_key() const { return vkey_; }
  [[nodiscard]] constexpr unsigned depth() const { return depth_; }
  [[nodiscard]] constexpr unsigned key_width() const { return vkey_.width(); }

  /// Number of distinct identifier keys in the group: 2^(N-d).
  [[nodiscard]] constexpr std::uint64_t cardinality() const {
    const unsigned free_bits = key_width() - depth_;
    return free_bits >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << free_bits;
  }

  [[nodiscard]] constexpr bool contains(const Key& k) const {
    return k.width() == key_width() && k.matches_prefix(vkey_, depth_);
  }

  /// True when this group's prefix is a (proper or equal) prefix of
  /// `other`'s, i.e. other's key set is a subset of ours.
  [[nodiscard]] constexpr bool covers(const KeyGroup& other) const {
    return other.key_width() == key_width() && other.depth_ >= depth_ &&
           other.vkey_.matches_prefix(vkey_, depth_);
  }

  /// Splitting (depth d -> d+1). The left child keeps the parent's bit
  /// pattern (and therefore hashes to the same server); the right child
  /// sets the new bit.
  [[nodiscard]] constexpr KeyGroup left_child() const {
    return KeyGroup(vkey_, depth_ + 1);
  }
  [[nodiscard]] constexpr KeyGroup right_child() const {
    return KeyGroup(vkey_.with_bit(depth_, true), depth_ + 1);
  }

  [[nodiscard]] constexpr bool is_root() const { return depth_ == 0; }

  /// The enclosing group one level up (depth must be >= 1).
  [[nodiscard]] constexpr KeyGroup parent() const {
    return KeyGroup(vkey_.with_suffix_zeroed(depth_ - 1), depth_ - 1);
  }

  /// Whether this group is the right child of its parent.
  [[nodiscard]] constexpr bool is_right_child() const {
    return depth_ >= 1 && vkey_.bit(depth_ - 1);
  }

  [[nodiscard]] constexpr KeyGroup sibling() const {
    return KeyGroup(vkey_.with_bit(depth_ - 1, !vkey_.bit(depth_ - 1)),
                    depth_);
  }

  /// Paper notation: d-bit prefix followed by '*' (or the full bit
  /// string for a maximal-depth group).
  [[nodiscard]] std::string label() const;

  friend constexpr bool operator==(const KeyGroup& a, const KeyGroup& b) {
    return a.vkey_ == b.vkey_ && a.depth_ == b.depth_;
  }
  friend constexpr bool operator!=(const KeyGroup& a, const KeyGroup& b) {
    return !(a == b);
  }
  /// Orders by (prefix bits, depth); gives deterministic iteration.
  friend constexpr bool operator<(const KeyGroup& a, const KeyGroup& b) {
    if (a.vkey_ != b.vkey_) return a.vkey_ < b.vkey_;
    return a.depth_ < b.depth_;
  }

 private:
  constexpr KeyGroup(const Key& vkey, unsigned depth)
      : vkey_(vkey), depth_(static_cast<std::uint8_t>(depth)) {
    assert(depth <= vkey.width());
    // Invariant: all bits below `depth` are zero in the virtual key.
    assert(vkey.with_suffix_zeroed(depth) == vkey);
  }

  Key vkey_{0, 24};
  std::uint8_t depth_ = 0;
};

}  // namespace clash

template <>
struct std::hash<clash::KeyGroup> {
  std::size_t operator()(const clash::KeyGroup& g) const noexcept {
    return std::hash<clash::Key>{}(g.virtual_key()) * 1315423911u ^ g.depth();
  }
};
