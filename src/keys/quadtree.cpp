#include "keys/quadtree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bits.hpp"

namespace clash {

QuadTreeEncoder::QuadTreeEncoder(unsigned levels) : levels_(levels) {
  assert(levels >= 1 && levels <= 32 && 2 * levels <= Key::kMaxWidth);
}

Key QuadTreeEncoder::encode(double x, double y) const {
  x = std::clamp(x, 0.0, std::nexttoward(1.0, 0.0));
  y = std::clamp(y, 0.0, std::nexttoward(1.0, 0.0));
  const auto scale = double(std::uint64_t{1} << levels_);
  const auto xi = std::uint64_t(x * scale);
  const auto yi = std::uint64_t(y * scale);
  // y bits take the first position of each 2-bit pair: quadrant labels
  // are (row, column), matching the usual quad-tree formulation.
  return Key(bits::interleave(yi, xi, levels_), key_width());
}

QuadTreeEncoder::Cell QuadTreeEncoder::cell(const KeyGroup& group) const {
  assert(group.key_width() == key_width());
  double x0 = 0, y0 = 0, size = 1.0;
  const Key& k = group.virtual_key();
  unsigned i = 0;
  for (; i + 2 <= group.depth(); i += 2) {
    size /= 2;
    if (k.bit(i)) y0 += size;        // first bit of the pair: row
    if (k.bit(i + 1)) x0 += size;    // second bit: column
  }
  if (i < group.depth()) {
    // Odd depth: the group is half a quadrant, split along y.
    size /= 2;
    if (k.bit(i)) y0 += size;
    return Cell{x0, y0, x0 + 2 * size, y0 + size};
  }
  return Cell{x0, y0, x0 + size, y0 + size};
}

QuadTreeEncoder::Point QuadTreeEncoder::decode(const Key& key) const {
  assert(key.width() == key_width());
  const Cell c = cell(KeyGroup::of(key, key.width()));
  return Point{(c.x0 + c.x1) / 2, (c.y0 + c.y1) / 2};
}

}  // namespace clash
