#include "keys/attribute_encoder.hpp"

#include "common/bits.hpp"

namespace clash {

Expected<AttributeEncoder> AttributeEncoder::create(
    std::vector<Field> fields) {
  unsigned total = 0;
  for (const auto& f : fields) {
    if (f.bits == 0 || f.bits > Key::kMaxWidth) {
      return Error::invalid("field '" + f.name + "' has invalid width");
    }
    total += f.bits;
  }
  if (total == 0 || total > Key::kMaxWidth) {
    return Error::invalid("total key width must be 1..64 bits");
  }
  return AttributeEncoder(std::move(fields), total);
}

Expected<Key> AttributeEncoder::encode(
    std::span<const std::uint64_t> values) const {
  if (values.size() != fields_.size()) {
    return Error::invalid("value count does not match field count");
  }
  std::uint64_t packed = 0;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    if (values[i] > bits::low_mask(f.bits)) {
      return Error::invalid("value for '" + f.name + "' exceeds field width");
    }
    packed = (packed << f.bits) | values[i];
  }
  return Key(packed, width_);
}

std::vector<std::uint64_t> AttributeEncoder::decode(const Key& key) const {
  std::vector<std::uint64_t> out(fields_.size());
  std::uint64_t v = key.value();
  for (std::size_t i = fields_.size(); i-- > 0;) {
    out[i] = v & bits::low_mask(fields_[i].bits);
    v >>= fields_[i].bits;
  }
  return out;
}

unsigned AttributeEncoder::field_offset(std::size_t i) const {
  unsigned off = 0;
  for (std::size_t j = 0; j < i; ++j) off += fields_[j].bits;
  return off;
}

}  // namespace clash
