// Quad-tree geographic key encoder (Section 3's motivating example and
// the Mobiscope-style workloads): a point in a unit square maps to an
// N-bit key of interleaved (y, x) bits, two bits per tree level, so keys
// sharing a prefix are spatially co-located.
#pragma once

#include <cstdint>

#include "keys/key.hpp"
#include "keys/key_group.hpp"

namespace clash {

class QuadTreeEncoder {
 public:
  /// `levels` quad-tree levels -> keys of width 2*levels bits.
  explicit QuadTreeEncoder(unsigned levels);

  [[nodiscard]] unsigned levels() const { return levels_; }
  [[nodiscard]] unsigned key_width() const { return 2 * levels_; }

  /// Encode a point with x, y in [0, 1). Values outside are clamped.
  [[nodiscard]] Key encode(double x, double y) const;

  /// Axis-aligned cell covered by a key group of even depth 2L:
  /// the level-L quadrant containing the group's keys.
  struct Cell {
    double x0, y0, x1, y1;
    [[nodiscard]] bool contains(double x, double y) const {
      return x >= x0 && x < x1 && y >= y0 && y < y1;
    }
  };
  [[nodiscard]] Cell cell(const KeyGroup& group) const;

  /// Center of the finest-resolution cell a full key identifies.
  struct Point {
    double x, y;
  };
  [[nodiscard]] Point decode(const Key& key) const;

 private:
  unsigned levels_;
};

}  // namespace clash
