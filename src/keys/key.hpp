// N-bit identifier keys (Section 3 of the paper). A Key is an ordered
// bit string of fixed width N (<= 64); bit 0 is the MOST significant bit,
// matching the paper's prefix notation where "0110*" names the keys whose
// first four bits are 0,1,1,0.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/bits.hpp"
#include "common/expected.hpp"

namespace clash {

class Key {
 public:
  static constexpr unsigned kMaxWidth = 64;

  constexpr Key() = default;

  /// Construct from the integer whose low `width` bits are the key,
  /// MSB-first. E.g. Key(0b0110101, 7) is the paper's "0110101".
  constexpr Key(std::uint64_t value, unsigned width)
      : value_(value), width_(static_cast<std::uint8_t>(width)) {
    assert(width >= 1 && width <= kMaxWidth);
    assert(width == 64 || value < (std::uint64_t{1} << width));
  }

  /// Parse a binary literal such as "0110101". Width = string length.
  static Expected<Key> parse(std::string_view bits);

  [[nodiscard]] constexpr unsigned width() const { return width_; }
  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

  /// Bit `i`, MSB-first (i in [0, width)).
  [[nodiscard]] constexpr bool bit(unsigned i) const {
    assert(i < width_);
    return (value_ >> (width_ - 1 - i)) & 1U;
  }

  /// The first `d` bits as an integer (d in [0, width]).
  [[nodiscard]] constexpr std::uint64_t prefix_value(unsigned d) const {
    assert(d <= width_);
    return d == 0 ? 0 : value_ >> (width_ - d);
  }

  /// Key with the same first `d` bits and the remaining width-d bits
  /// zeroed: the paper's Shape() output (the "virtual key").
  [[nodiscard]] constexpr Key with_suffix_zeroed(unsigned d) const {
    assert(d <= width_);
    if (d == 0) return Key(0, width_);
    const std::uint64_t mask = bits::low_mask(width_ - d)
                               << 0;  // low bits to clear
    return Key(value_ & ~mask, width_);
  }

  /// Key with bit `i` (MSB-first) set to `v`.
  [[nodiscard]] constexpr Key with_bit(unsigned i, bool v) const {
    assert(i < width_);
    const std::uint64_t m = std::uint64_t{1} << (width_ - 1 - i);
    return Key(v ? (value_ | m) : (value_ & ~m), width_);
  }

  /// Length of the longest common prefix with `other` (same width).
  [[nodiscard]] unsigned common_prefix_len(const Key& other) const;

  /// True when the first `d` bits of both keys agree.
  [[nodiscard]] constexpr bool matches_prefix(const Key& other,
                                              unsigned d) const {
    assert(other.width_ == width_ && d <= width_);
    return prefix_value(d) == other.prefix_value(d);
  }

  /// Binary string, MSB first, e.g. "0110101".
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Key& a, const Key& b) {
    return a.value_ == b.value_ && a.width_ == b.width_;
  }
  friend constexpr bool operator!=(const Key& a, const Key& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Key& a, const Key& b) {
    return a.width_ == b.width_ ? a.value_ < b.value_ : a.width_ < b.width_;
  }

 private:
  std::uint64_t value_ = 0;
  std::uint8_t width_ = 1;
};

/// The paper's Shape(k, d): keep the first d bits of k, zero the rest.
[[nodiscard]] constexpr Key shape(const Key& k, unsigned depth) {
  return k.with_suffix_zeroed(depth);
}

}  // namespace clash

template <>
struct std::hash<clash::Key> {
  std::size_t operator()(const clash::Key& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.value() ^
                                      (std::uint64_t(k.width()) << 57));
  }
};
