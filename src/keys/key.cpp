#include "keys/key.hpp"

namespace clash {

Expected<Key> Key::parse(std::string_view bits) {
  if (bits.empty() || bits.size() > kMaxWidth) {
    return Error::invalid("key literal must have 1..64 bits");
  }
  std::uint64_t v = 0;
  for (const char c : bits) {
    if (c != '0' && c != '1') {
      return Error::invalid("key literal may contain only 0/1");
    }
    v = (v << 1) | std::uint64_t(c == '1');
  }
  return Key(v, unsigned(bits.size()));
}

unsigned Key::common_prefix_len(const Key& other) const {
  assert(other.width_ == width_);
  const std::uint64_t diff = value_ ^ other.value_;
  if (diff == 0) return width_;
  // The highest set bit of diff marks the first disagreement.
  const unsigned first_diff_from_msb =
      width_ - bits::width(diff);  // bits::width = index of MSB + 1
  return first_diff_from_msb;
}

std::string Key::to_string() const {
  std::string out;
  out.reserve(width_);
  for (unsigned i = 0; i < width_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

}  // namespace clash
