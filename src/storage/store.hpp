// storage::NodeStore: the per-node durable store a ClashServer writes
// through. One WAL (append-on-mutate) plus one snapshot file per owned
// group (baseline at activation; checkpoint at log compaction in
// kWalSnapshot mode, which also truncates the WAL past the snapshot
// floor). Construction scans the backend and rebuilds the pre-crash
// image eagerly — take_image() hands it to the server's restore path —
// so the WAL always restarts on a fresh segment, never appending to a
// possibly-torn tail.
// Thread contract: a NodeStore is affine to its owner's single thread
// (the node's event loop; the simulator's thread in sim runs). State is
// CLASH_GUARDED_BY(affinity_) and public methods witness the token at
// entry; net::ClashNode binds the token to its event-loop probe, so
// off-loop storage calls abort in CLASH_LOOP_CHECKS builds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "clash/config.hpp"
#include "common/affinity.hpp"
#include "common/thread_annotations.hpp"
#include "obs/hub.hpp"
#include "storage/recovery.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace clash::storage {

class NodeStore {
 public:
  struct Config {
    ClashConfig::DurabilityMode mode =
        ClashConfig::DurabilityMode::kWalSnapshot;
    ClashConfig::FsyncPolicy fsync = ClashConfig::FsyncPolicy::kInterval;
    SimDuration fsync_interval = SimTime::from_seconds(1);
    std::uint64_t segment_bytes = 1u << 20;
    std::string wal_dir = "wal";
    std::string snap_dir = "snap";

    /// Durability knobs as the protocol config carries them.
    [[nodiscard]] static Config from(const ClashConfig& c) {
      Config cfg;
      cfg.mode = c.durability_mode;
      cfg.fsync = c.fsync_policy;
      cfg.fsync_interval = c.fsync_interval;
      cfg.segment_bytes = c.wal_segment_bytes;
      return cfg;
    }
  };

  struct Stats {
    std::uint64_t ops_appended = 0;
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_bytes = 0;
    std::uint64_t snapshot_write_failures = 0;
    std::uint64_t drops = 0;
    std::uint64_t truncated_segments = 0;
  };

  /// Scans `backend` (recovery) and opens the WAL one segment past the
  /// highest on disk. The backend must outlive the store.
  NodeStore(Backend& backend, Config cfg);

  /// The affinity capability guarding all store state; the embedding
  /// node binds it to its home-thread probe during setup.
  [[nodiscard]] common::AffinityToken& affinity()
      CLASH_RETURN_CAPABILITY(affinity_) {
    return affinity_;
  }

  /// The image recovered at construction (pre-crash owned groups).
  /// Moves: call once, from the server's restore path.
  [[nodiscard]] RecoveredImage take_image() {
    affinity_.assert_held();
    return std::move(image_);
  }
  [[nodiscard]] const RecoveryScanStats& recovery_stats() const {
    affinity_.assert_held();
    return recovery_stats_;
  }

  /// Append one mutation of an owned group (`head` is the op's
  /// position after the append). Applies the fsync policy. Returns the
  /// WAL bytes the record cost (per-group storage metering).
  std::uint64_t append_op(const KeyGroup& group, repl::LogHead head,
                          const repl::LogOp& op, SimTime now);

  /// Write `img` atomically as `group`'s snapshot file. Baselines
  /// (`checkpoint == false`: activation under a new epoch) are written
  /// in every durable mode — they anchor WAL replay. Checkpoints
  /// (log-compaction cuts) only land in kWalSnapshot mode, where they
  /// advance the truncation floor and reclaim covered segments.
  /// Returns the encoded bytes written (0 when skipped or failed).
  std::uint64_t write_snapshot(const SnapshotImage& img, bool checkpoint);

  /// The group left this node (split away, reclaimed, handed off):
  /// log a drop record (fsync policy applies) and delete its snapshot
  /// file.
  void drop_group(const KeyGroup& group, std::uint64_t epoch, SimTime now);

  /// Periodic driver hook: group-commit fsync (kInterval policy).
  void tick(SimTime now);

  /// True when `group`'s last snapshot write failed and the server
  /// should re-persist it (checked each load check).
  [[nodiscard]] bool snapshot_retry_pending(const KeyGroup& group) const {
    affinity_.assert_held();
    return failed_snapshots_.count(group) > 0;
  }

  /// Force everything appended so far to stable storage.
  void flush() {
    affinity_.assert_held();
    timed_sync(last_sync_);
  }

  /// Attach an observability hub: fsync latencies feed its
  /// clash_wal_fsync_usec histogram (wall-clock cost of each sync,
  /// traced as WalFsync spans stamped with `node`), and the
  /// construction-time recovery scan is published as the
  /// clash_storage_recovery_usec gauge plus a RecoveryScan span.
  void set_obs(obs::Hub* hub, std::uint64_t node);

  [[nodiscard]] const Stats& stats() const {
    affinity_.assert_held();
    return stats_;
  }
  [[nodiscard]] const Wal::Stats& wal_stats() const {
    affinity_.assert_held();
    return wal_->stats();
  }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  void maybe_sync(SimTime now) CLASH_REQUIRES(affinity_);
  /// wal_->sync() wrapped with the fsync histogram/trace span (`now`
  /// stamps the span; the duration is wall-clock).
  bool timed_sync(SimTime now) CLASH_REQUIRES(affinity_);
  void truncate() CLASH_REQUIRES(affinity_);

  common::AffinityToken affinity_;
  Backend& backend_;
  Config cfg_;
  std::unique_ptr<Wal> wal_ CLASH_PT_GUARDED_BY(affinity_);
  RecoveredImage image_ CLASH_GUARDED_BY(affinity_);
  RecoveryScanStats recovery_stats_ CLASH_GUARDED_BY(affinity_);
  /// Durable snapshot head per group; WAL records at or below their
  /// group's floor are reclaimable.
  std::map<KeyGroup, repl::LogHead> floors_ CLASH_GUARDED_BY(affinity_);
  /// Epoch at which a group was dropped (covers its records without a
  /// floor entry).
  std::map<KeyGroup, std::uint64_t> dropped_ CLASH_GUARDED_BY(affinity_);
  /// Groups whose snapshot write failed (retried via
  /// snapshot_retry_pending).
  std::set<KeyGroup> failed_snapshots_ CLASH_GUARDED_BY(affinity_);
  SimTime last_sync_ CLASH_GUARDED_BY(affinity_){0};
  Stats stats_ CLASH_GUARDED_BY(affinity_);

  obs::Hub* hub_ CLASH_GUARDED_BY(affinity_) = nullptr;
  std::uint64_t node_ CLASH_GUARDED_BY(affinity_) = 0;
  obs::HistogramHandle fsync_us_ CLASH_GUARDED_BY(affinity_);
  // Construction-scan duration / group count (before take_image moves).
  std::int64_t recovery_usec_ CLASH_GUARDED_BY(affinity_) = 0;
  std::size_t recovered_groups_ CLASH_GUARDED_BY(affinity_) = 0;
};

}  // namespace clash::storage
