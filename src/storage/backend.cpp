#include "storage/backend.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"

namespace clash::storage {

// ---------------------------------------------------------------------------
// FileBackend.
// ---------------------------------------------------------------------------

namespace {

class PosixAppendFile final : public AppendFile {
 public:
  PosixAppendFile(int fd, std::uint64_t size) : fd_(fd), size_(size) {}
  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool append(std::span<const std::uint8_t> data) override {
    const std::uint8_t* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        CLASH_ERROR << "wal append failed: " << std::strerror(errno);
        return false;
      }
      p += n;
      left -= std::size_t(n);
    }
    size_ += data.size();
    return true;
  }

  bool sync() override { return ::fdatasync(fd_) == 0; }

  [[nodiscard]] std::uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::uint64_t size_;
};

/// fsync a directory so a rename/create/unlink inside it is durable —
/// without this the metadata op can be reordered past a power cut
/// even when the file data itself was synced.
void sync_dir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::string parent_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

bool make_dirs(const std::string& path) {
  // mkdir -p: create each component, tolerating the ones that exist.
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') continue;
    cur = path.substr(0, i);
    if (cur.empty()) continue;
    if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  return true;
}

}  // namespace

FileBackend::FileBackend(std::string root) : root_(std::move(root)) {
  make_dirs(root_);
}

std::string FileBackend::full(const std::string& path) const {
  return root_ + "/" + path;
}

bool FileBackend::ensure_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return true;
  return make_dirs(root_ + "/" + path.substr(0, slash));
}

std::vector<std::string> FileBackend::list(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(full(dir).c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == ".." ) continue;
    out.push_back(dir + "/" + name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool FileBackend::read_file(const std::string& path,
                            std::vector<std::uint8_t>& out) {
  const int fd = ::open(full(path).c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

bool FileBackend::write_file_atomic(const std::string& path,
                                    std::span<const std::uint8_t> data) {
  if (!ensure_parent_dir(path)) return false;
  const std::string tmp = full(path) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::uint8_t* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= std::size_t(n);
  }
  // The data must be on disk before the rename makes it reachable, or
  // a crash could expose a named-but-empty snapshot.
  if (::fdatasync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), full(path).c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  sync_dir(parent_of(full(path)));
  return true;
}

bool FileBackend::remove_file(const std::string& path) {
  if (::unlink(full(path).c_str()) != 0) return false;
  sync_dir(parent_of(full(path)));
  return true;
}

std::unique_ptr<AppendFile> FileBackend::open_append(
    const std::string& path) {
  if (!ensure_parent_dir(path)) return nullptr;
  const int fd =
      ::open(full(path).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    CLASH_ERROR << "cannot open wal segment " << full(path) << ": "
                << std::strerror(errno);
    return nullptr;
  }
  struct stat st{};
  const std::uint64_t size = ::fstat(fd, &st) == 0 ? st.st_size : 0;
  // A freshly created segment's directory entry must survive the next
  // power cut, or recovery would miss a whole (synced) segment.
  if (size == 0) sync_dir(parent_of(full(path)));
  return std::make_unique<PosixAppendFile>(fd, size);
}

// ---------------------------------------------------------------------------
// MemBackend.
// ---------------------------------------------------------------------------

class MemBackend::MemAppendFile final : public AppendFile {
 public:
  MemAppendFile(MemBackend& backend, std::string path)
      : backend_(backend), path_(std::move(path)) {}

  bool append(std::span<const std::uint8_t> data) override {
    File& f = backend_.files_[path_];
    f.data.insert(f.data.end(), data.begin(), data.end());
    backend_.last_appended_ = path_;
    return true;
  }

  bool sync() override {
    File& f = backend_.files_[path_];
    f.synced = f.data.size();
    return true;
  }

  [[nodiscard]] std::uint64_t size() const override {
    const auto it = backend_.files_.find(path_);
    return it == backend_.files_.end() ? 0 : it->second.data.size();
  }

 private:
  MemBackend& backend_;
  std::string path_;
};

std::vector<std::string> MemBackend::list(const std::string& dir) {
  std::vector<std::string> out;
  const std::string prefix = dir + "/";
  for (const auto& [path, _] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    // Non-recursive, like readdir.
    if (path.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back(path);
  }
  return out;  // map order is already sorted
}

bool MemBackend::read_file(const std::string& path,
                           std::vector<std::uint8_t>& out) {
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  out = it->second.data;
  return true;
}

bool MemBackend::write_file_atomic(const std::string& path,
                                   std::span<const std::uint8_t> data) {
  File f;
  f.data.assign(data.begin(), data.end());
  f.synced = f.data.size();  // atomic writes land durable in full
  files_[path] = std::move(f);
  return true;
}

bool MemBackend::remove_file(const std::string& path) {
  return files_.erase(path) > 0;
}

std::unique_ptr<AppendFile> MemBackend::open_append(const std::string& path) {
  files_.try_emplace(path);
  return std::make_unique<MemAppendFile>(*this, path);
}

void MemBackend::crash() {
  if (fault_.drop_unsynced) {
    for (auto& [_, f] : files_) {
      if (f.data.size() > f.synced) f.data.resize(f.synced);
    }
  }
  if (fault_.torn_tail_bytes > 0 && !last_appended_.empty()) {
    const auto it = files_.find(last_appended_);
    if (it != files_.end()) {
      auto& data = it->second.data;
      const std::size_t cut =
          std::min<std::size_t>(fault_.torn_tail_bytes, data.size());
      data.resize(data.size() - cut);
      if (it->second.synced > data.size()) it->second.synced = data.size();
    }
  }
}

bool MemBackend::corrupt(const std::string& path, std::size_t offset,
                         std::uint8_t mask) {
  const auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.data.size()) return false;
  it->second.data[offset] ^= mask;
  return true;
}

std::uint64_t MemBackend::bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& [_, f] : files_) total += f.data.size();
  return total;
}

}  // namespace clash::storage
