// On-disk group snapshots: one atomic file per key group holding the
// group's full object state at a log head, plus the opaque application
// payload (the same blob format StreamEngine::export_group produces /
// import_blob consumes, shipped through AppHooks::snapshot_state).
// Object state is serialised as a run of put_stream/put_query LogOps —
// the exact wire encoding the replication subsystem already uses — so
// recovery replays a snapshot through GroupLog::apply like any log
// suffix. The whole file is CRC32-trailed: a half-written or bit-rotted
// snapshot is rejected, never half-applied.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "clash/group_state.hpp"
#include "common/types.hpp"
#include "keys/key_group.hpp"
#include "repl/op.hpp"

namespace clash::storage {

struct SnapshotImage {
  KeyGroup group;
  repl::LogHead head;
  bool root = false;
  ServerId parent{};
  GroupState state;
  std::vector<std::uint8_t> app_state;
  /// Opaque app deltas logged after app_state was cut (non-empty only
  /// for images recovered from a replica-sourced baseline).
  std::vector<std::vector<std::uint8_t>> app_deltas;
};

/// Serialise an image (magic + version + payload + trailing CRC32).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const SnapshotImage& img);

/// Decode + CRC-validate; false on any damage (caller falls back to
/// WAL-only recovery for the group).
bool decode_snapshot(std::span<const std::uint8_t> data, SnapshotImage& out);

/// Stable, filesystem-safe path for a group's snapshot file
/// ("snap/<depth>-<virtual key hex>.snap"; the label's '*' wildcard is
/// not filename material).
[[nodiscard]] std::string snapshot_path(const std::string& dir,
                                        const KeyGroup& group);

}  // namespace clash::storage
