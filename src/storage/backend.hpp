// storage::Backend: the byte-store abstraction under the durable
// storage subsystem. The WAL, snapshot writer, and recovery scanner
// speak only this interface, so the same code runs against
//
//   - FileBackend: real POSIX files (a ClashNode's data directory —
//     O_APPEND segments, fdatasync, atomic tmp+rename snapshots), and
//   - MemBackend: a deterministic in-memory store for the simulator
//     and tests, which models what a crash does to unsynced data
//     (writes past the last sync() can vanish) and injects the classic
//     disk faults: torn tail (a record cut mid-write) and bit flips.
//
// Paths are flat '/'-separated keys relative to the backend root
// ("wal/000001.seg", "snap/6-0x15.snap"); directories materialise on
// demand.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace clash::storage {

/// An open append-only file (one WAL segment).
class AppendFile {
 public:
  virtual ~AppendFile() = default;

  /// Append `data` at the end; false on I/O error.
  virtual bool append(std::span<const std::uint8_t> data) = 0;

  /// Force appended bytes to stable storage (fsync). Until sync()
  /// returns, a crash may lose any suffix of the unsynced bytes.
  virtual bool sync() = 0;

  /// Bytes written so far (synced or not).
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Files under `dir` (non-recursive), lexicographically sorted.
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& dir) = 0;

  /// Whole-file read; false when absent or unreadable.
  virtual bool read_file(const std::string& path,
                         std::vector<std::uint8_t>& out) = 0;

  /// Atomic whole-file replace (tmp + rename on the file backend): a
  /// crash leaves either the old content or the new, never a mix.
  virtual bool write_file_atomic(const std::string& path,
                                 std::span<const std::uint8_t> data) = 0;

  virtual bool remove_file(const std::string& path) = 0;

  /// Open `path` for appending (created when absent). The handle is
  /// exclusive: one writer per segment.
  [[nodiscard]] virtual std::unique_ptr<AppendFile> open_append(
      const std::string& path) = 0;
};

/// POSIX files rooted at `root` (created on demand).
class FileBackend final : public Backend {
 public:
  explicit FileBackend(std::string root);

  std::vector<std::string> list(const std::string& dir) override;
  bool read_file(const std::string& path,
                 std::vector<std::uint8_t>& out) override;
  bool write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> data) override;
  bool remove_file(const std::string& path) override;
  std::unique_ptr<AppendFile> open_append(const std::string& path) override;

  [[nodiscard]] const std::string& root() const { return root_; }

 private:
  [[nodiscard]] std::string full(const std::string& path) const;
  bool ensure_parent_dir(const std::string& path);

  std::string root_;
};

/// Deterministic in-memory backend for the simulator and tests. The
/// store survives a simulated process restart (SimCluster keeps one
/// per server across ClashServer rebuilds); crash() models what the
/// machine loses.
class MemBackend final : public Backend {
 public:
  /// What a crash does to the store. Defaults model a clean kernel
  /// (everything written survives, synced or not); tests and the
  /// durability ablation dial in the ugly cases.
  struct CrashFault {
    /// Drop every byte appended after the last sync() (the page cache
    /// never reached the platter — what fsync policies trade against).
    bool drop_unsynced = false;
    /// Additionally cut this many bytes off the newest append file —
    /// a record torn mid-write by the power cut.
    std::uint32_t torn_tail_bytes = 0;
  };

  std::vector<std::string> list(const std::string& dir) override;
  bool read_file(const std::string& path,
                 std::vector<std::uint8_t>& out) override;
  bool write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> data) override;
  bool remove_file(const std::string& path) override;
  std::unique_ptr<AppendFile> open_append(const std::string& path) override;

  void set_crash_fault(CrashFault f) { fault_ = f; }

  /// Simulated power cut: apply the configured fault to every open
  /// append stream (drop-unsynced first, then the torn tail on the
  /// most recently appended file).
  void crash();

  /// XOR `mask` into the byte at `offset` of `path` (bit-rot
  /// injection for CRC tests). False when out of range.
  bool corrupt(const std::string& path, std::size_t offset,
               std::uint8_t mask);

  [[nodiscard]] std::uint64_t bytes_stored() const;
  [[nodiscard]] bool exists(const std::string& path) const {
    return files_.count(path) > 0;
  }

 private:
  class MemAppendFile;

  struct File {
    std::vector<std::uint8_t> data;
    /// Prefix guaranteed durable (advanced by sync(); atomic writes
    /// are durable in full).
    std::uint64_t synced = 0;
  };

  std::map<std::string, File> files_;
  CrashFault fault_{};
  std::string last_appended_;  // newest append target (torn-tail victim)
};

}  // namespace clash::storage
