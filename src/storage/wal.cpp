#include "storage/wal.hpp"

#include <cstdio>
#include <limits>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace clash::storage {

namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

void encode_payload(wire::Writer& w, const WalRecord& r) {
  w.u8(std::uint8_t(r.kind));
  wire::encode_group(w, r.group);
  w.u64(r.head.epoch);
  w.u64(r.head.seq);
  if (r.kind == RecordKind::kOp) wire::encode_log_op(w, r.op);
}

bool decode_payload(std::span<const std::uint8_t> payload, WalRecord& out) {
  wire::Reader r(payload);
  const auto kind = r.u8();
  if (kind != std::uint8_t(RecordKind::kOp) &&
      kind != std::uint8_t(RecordKind::kDrop)) {
    return false;
  }
  out.kind = RecordKind(kind);
  out.group = wire::decode_group(r);
  out.head.epoch = r.u64();
  out.head.seq = r.u64();
  if (out.kind == RecordKind::kOp) out.op = wire::decode_log_op(r);
  return r.exhausted();
}

}  // namespace

std::vector<std::uint8_t> encode_wal_record(const WalRecord& r) {
  wire::Writer payload;
  encode_payload(payload, r);
  wire::Writer framed;
  framed.reserve(kFrameHeader + payload.size());
  framed.u32(std::uint32_t(payload.size()));
  framed.u32(crc32(payload.data()));
  framed.bytes(payload.data());
  return framed.take();
}

ScanResult scan_wal_segment(
    std::span<const std::uint8_t> data,
    const std::function<void(const WalRecord&)>& fn) {
  ScanResult result;
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      result.end = ScanEnd::kTornTail;
      return result;
    }
    const std::uint32_t len = wire::load_u32_le(data.data() + pos);
    const std::uint32_t want_crc = wire::load_u32_le(data.data() + pos + 4);
    if (data.size() - pos - kFrameHeader < len) {
      result.end = ScanEnd::kTornTail;
      return result;
    }
    const auto payload = data.subspan(pos + kFrameHeader, len);
    if (crc32(payload) != want_crc) {
      result.end = ScanEnd::kCorrupt;
      return result;
    }
    WalRecord rec;
    if (!decode_payload(payload, rec)) {
      result.end = ScanEnd::kCorrupt;
      return result;
    }
    fn(rec);
    pos += kFrameHeader + len;
    ++result.records;
    result.valid_bytes = pos;
  }
  return result;
}

std::string Wal::segment_path(const std::string& dir, std::uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "%08llu.seg",
                (unsigned long long)index);
  return dir + "/" + name;
}

Wal::Wal(Backend& backend, Config cfg, std::uint64_t next_index)
    : backend_(backend), cfg_(std::move(cfg)), index_(next_index) {}

bool Wal::append_op(const KeyGroup& group, repl::LogHead head,
                    const repl::LogOp& op) {
  WalRecord rec;
  rec.kind = RecordKind::kOp;
  rec.group = group;
  rec.head = head;
  rec.op = op;
  return append_record(rec);
}

bool Wal::append_drop(const KeyGroup& group, std::uint64_t epoch) {
  WalRecord rec;
  rec.kind = RecordKind::kDrop;
  rec.group = group;
  // A drop supersedes every seq of its epoch: only a snapshot from a
  // strictly newer epoch (a re-activation) covers it.
  rec.head = repl::LogHead{epoch,
                           std::numeric_limits<std::uint64_t>::max()};
  return append_record(rec);
}

bool Wal::append_record(const WalRecord& rec) {
  if (segment_ == nullptr && !roll_segment()) {
    stats_.io_errors++;
    return false;
  }
  const auto frame = encode_wal_record(rec);
  if (!segment_->append(frame)) {
    stats_.io_errors++;
    CLASH_ERROR << "wal append failed on segment " << index_
                << " (durability void until the disk recovers)";
    return false;
  }
  stats_.records++;
  stats_.bytes += frame.size();
  auto [it, inserted] = open_tails_.try_emplace(rec.group, rec.head);
  if (!inserted && it->second < rec.head) it->second = rec.head;
  if (segment_->size() >= cfg_.segment_bytes) return roll_segment();
  return true;
}

bool Wal::roll_segment() {
  if (segment_ != nullptr) {
    // A segment must be durable before the writer moves past it, or a
    // crash could lose a middle segment while keeping a later one.
    if (!segment_->sync()) {
      stats_.io_errors++;
      CLASH_ERROR << "wal fsync failed closing segment " << index_;
    }
    closed_.push_back(ClosedSegment{index_, std::move(open_tails_)});
    open_tails_.clear();
    ++index_;
  }
  segment_ = backend_.open_append(segment_path(cfg_.dir, index_));
  if (segment_ == nullptr) {
    stats_.io_errors++;
    return false;
  }
  stats_.segments_opened++;
  return true;
}

bool Wal::sync() {
  if (segment_ == nullptr) return true;
  stats_.syncs++;
  if (!segment_->sync()) {
    stats_.io_errors++;
    CLASH_ERROR << "wal fsync failed on segment " << index_
                << " (fsync policy guarantee void)";
    return false;
  }
  return true;
}

std::size_t Wal::truncate_covered(
    const std::function<bool(const KeyGroup&, repl::LogHead)>& covered) {
  std::size_t deleted = 0;
  while (!closed_.empty()) {
    const ClosedSegment& seg = closed_.front();
    bool all_covered = true;
    for (const auto& [group, tail] : seg.tails) {
      if (!covered(group, tail)) {
        all_covered = false;
        break;
      }
    }
    if (!all_covered) break;
    backend_.remove_file(segment_path(cfg_.dir, seg.index));
    closed_.pop_front();
    ++deleted;
    stats_.segments_deleted++;
  }
  return deleted;
}

}  // namespace clash::storage
