#include "storage/store.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.hpp"

namespace clash::storage {

NodeStore::NodeStore(Backend& backend, Config cfg)
    : backend_(backend), cfg_(std::move(cfg)) {
  const auto scan_start = std::chrono::steady_clock::now();
  // Sweep half-written snapshots a crash left behind (recovery ignores
  // them, but an unlinked tmp must not linger to confuse operators or
  // fill the disk).
  for (const auto& path : backend_.list(cfg_.snap_dir)) {
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".tmp") {
      backend_.remove_file(path);
    }
  }
  image_ = recover_image(backend_, cfg_.wal_dir, cfg_.snap_dir);
  recovered_groups_ = image_.groups.size();
  recovery_usec_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - scan_start)
                       .count();
  recovery_stats_ = image_.stats;
  floors_ = image_.snapshot_floors;
  dropped_ = image_.dropped_epochs;
  wal_ = std::make_unique<Wal>(
      backend_, Wal::Config{cfg_.wal_dir, cfg_.segment_bytes},
      image_.next_segment_index);
  // Adopt the pre-crash segments as closed so checkpoints reclaim
  // them like any other — otherwise every restart would leak its
  // predecessor's WAL forever, and replay would grow without bound.
  for (auto& [index, tails] : image_.segment_tails) {
    wal_->adopt_closed_segment(index, std::move(tails));
  }
  image_.segment_tails.clear();
  if (cfg_.mode == ClashConfig::DurabilityMode::kWalSnapshot) truncate();
}

void NodeStore::set_obs(obs::Hub* hub, std::uint64_t node) {
  affinity_.assert_held();
  hub_ = hub;
  node_ = node;
  if (hub_ == nullptr) {
    fsync_us_ = obs::HistogramHandle{};
    return;
  }
  fsync_us_ = hub_->registry.histogram("clash_wal_fsync_usec");
  hub_->registry.gauge("clash_storage_recovery_usec").set(recovery_usec_);
  hub_->tracer.record(obs::SpanKind::kRecoveryScan, node_, SimTime{0},
                      SimDuration{recovery_usec_}, recovered_groups_);
}

std::uint64_t NodeStore::append_op(const KeyGroup& group, repl::LogHead head,
                                   const repl::LogOp& op, SimTime now) {
  affinity_.assert_held();
  const std::uint64_t before = wal_->stats().bytes;
  const std::uint64_t segments_before = wal_->stats().segments_opened;
  wal_->append_op(group, head, op);
  stats_.ops_appended++;
  if (hub_ != nullptr &&
      wal_->stats().segments_opened != segments_before) {
    hub_->flight.record(obs::FlightKind::kWalRollover, std::uint32_t(node_),
                        now.usec, wal_->stats().segments_opened);
  }
  maybe_sync(now);
  return wal_->stats().bytes - before;
}

std::uint64_t NodeStore::write_snapshot(const SnapshotImage& img,
                                        bool checkpoint) {
  affinity_.assert_held();
  if (checkpoint && cfg_.mode != ClashConfig::DurabilityMode::kWalSnapshot) {
    return 0;  // kWal: the baseline anchors replay, the log keeps growing
  }
  const auto bytes = encode_snapshot(img);
  if (!backend_.write_file_atomic(snapshot_path(cfg_.snap_dir, img.group),
                                  bytes)) {
    // A lost baseline is a lost anchor (the adopted state never went
    // through the WAL): flag the group so the server re-persists it
    // at the next load check instead of presenting partial recovery
    // as success.
    stats_.snapshot_write_failures++;
    failed_snapshots_.insert(img.group);
    CLASH_ERROR << "snapshot write failed for " << img.group.label()
                << " (will retry at the next load check)";
    return 0;
  }
  failed_snapshots_.erase(img.group);
  stats_.snapshots_written++;
  stats_.snapshot_bytes += bytes.size();
  floors_[img.group] = img.head;
  if (cfg_.mode == ClashConfig::DurabilityMode::kWalSnapshot) truncate();
  return bytes.size();
}

void NodeStore::drop_group(const KeyGroup& group, std::uint64_t epoch,
                           SimTime now) {
  affinity_.assert_held();
  (void)now;
  wal_->append_drop(group, epoch);
  // The drop record must be durable BEFORE the snapshot deletion is —
  // regardless of fsync policy (drops are rare; a sync costs little).
  // An unsynced drop paired with the immediately-durable unlink below
  // would let a crash resurrect a handed-off group from its residual
  // op records: state another node now legitimately owns.
  timed_sync(now);
  backend_.remove_file(snapshot_path(cfg_.snap_dir, group));
  floors_.erase(group);
  auto [it, inserted] = dropped_.try_emplace(group, epoch);
  if (!inserted && it->second < epoch) it->second = epoch;
  stats_.drops++;
  if (cfg_.mode == ClashConfig::DurabilityMode::kWalSnapshot) truncate();
}

void NodeStore::truncate() {
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  stats_.truncated_segments += wal_->truncate_covered(
      [this, kMax](const KeyGroup& group, repl::LogHead tail) {
        const auto floor = floors_.find(group);
        if (floor != floors_.end() && tail <= floor->second) return true;
        const auto dropped = dropped_.find(group);
        return dropped != dropped_.end() &&
               tail <= repl::LogHead{dropped->second, kMax};
      });
}

bool NodeStore::timed_sync(SimTime now) {
  if (!fsync_us_.valid()) return wal_->sync();
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = wal_->sync();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  fsync_us_.record(std::uint64_t(us));
  hub_->tracer.record(obs::SpanKind::kWalFsync, node_, now,
                      SimDuration{us});
  hub_->flight.record(obs::FlightKind::kWalFsync, std::uint32_t(node_),
                      now.usec, std::uint64_t(us),
                      std::uint64_t(ok ? 0 : 1));
  return ok;
}

void NodeStore::maybe_sync(SimTime now) {
  switch (cfg_.fsync) {
    case ClashConfig::FsyncPolicy::kPerAppend:
      timed_sync(now);
      break;
    case ClashConfig::FsyncPolicy::kInterval:
      if (now - last_sync_ >= cfg_.fsync_interval) {
        timed_sync(now);
        last_sync_ = now;
      }
      break;
    case ClashConfig::FsyncPolicy::kNever:
      break;
  }
}

void NodeStore::tick(SimTime now) {
  affinity_.assert_held();
  if (cfg_.fsync == ClashConfig::FsyncPolicy::kInterval &&
      now - last_sync_ >= cfg_.fsync_interval) {
    timed_sync(now);
    last_sync_ = now;
  }
}

}  // namespace clash::storage
