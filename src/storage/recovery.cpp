#include "storage/recovery.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <utility>

#include "common/logging.hpp"
#include "repl/log.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace clash::storage {

namespace {

/// "wal/00000012.seg" -> 12; nullopt for files that are not segments.
std::optional<std::uint64_t> segment_index(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.size() < 5 || name.substr(name.size() - 4) != ".seg") {
    return std::nullopt;
  }
  char* end = nullptr;
  const auto index = std::strtoull(name.c_str(), &end, 10);
  if (end == name.c_str()) return std::nullopt;
  return index;
}

struct Replayer {
  std::map<KeyGroup, RecoveredGroup>& groups;
  RecoveryScanStats& stats;
  /// Groups whose replay hit a sequence gap: nothing after the gap can
  /// be trusted to chain, so the rest of their records are skipped and
  /// anti-entropy repairs the suffix from the replica set.
  std::set<KeyGroup> gapped;

  void operator()(const WalRecord& rec) {
    if (rec.kind == RecordKind::kDrop) {
      const auto it = groups.find(rec.group);
      if (it != groups.end() && it->second.head.epoch <= rec.head.epoch) {
        groups.erase(it);
        gapped.erase(rec.group);
        stats.drops_applied++;
      }
      return;
    }
    auto it = groups.find(rec.group);
    if (it == groups.end()) {
      // No baseline snapshot (lost, rejected, or an old-format store):
      // reconstruct from empty at the record's predecessor so at least
      // the logged suffix survives.
      RecoveredGroup g;
      g.head = repl::LogHead{rec.head.epoch, rec.head.seq - 1};
      it = groups.emplace(rec.group, std::move(g)).first;
      stats.orphan_groups++;
    }
    RecoveredGroup& g = it->second;
    if (rec.head.epoch < g.head.epoch ||
        (rec.head.epoch == g.head.epoch && rec.head.seq <= g.head.seq)) {
      stats.records_skipped++;  // pre-snapshot history
      return;
    }
    if (rec.head.epoch > g.head.epoch) {
      // A new ownership line without its baseline snapshot on disk
      // (the snapshot write raced the crash): restart the group empty
      // under the new line — the old line's state is dead anyway.
      g = RecoveredGroup{};
      g.head = repl::LogHead{rec.head.epoch, rec.head.seq - 1};
      gapped.erase(rec.group);
      stats.orphan_groups++;
    }
    if (gapped.count(rec.group) > 0) {
      stats.records_skipped++;
      return;
    }
    if (rec.head.seq != g.head.seq + 1) {
      gapped.insert(rec.group);
      stats.records_skipped++;
      return;
    }
    repl::GroupLog::apply(rec.op, g.state);
    if (rec.op.kind == repl::OpKind::kAppDelta) {
      g.app_deltas.push_back(rec.op.app_delta);
    }
    g.head = rec.head;
    stats.records_replayed++;
  }
};

}  // namespace

RecoveredImage recover_image(Backend& backend, const std::string& wal_dir,
                             const std::string& snap_dir) {
  RecoveredImage image;

  for (const auto& path : backend.list(snap_dir)) {
    // Only finished snapshots count: a crash between write_file_atomic's
    // sync and rename leaves a valid-looking '*.snap.tmp' behind, and
    // loading it could resurrect a group whose drop record was since
    // truncated away.
    if (path.size() < 5 || path.substr(path.size() - 5) != ".snap") {
      continue;
    }
    std::vector<std::uint8_t> data;
    if (!backend.read_file(path, data)) {
      image.stats.snapshots_rejected++;
      continue;
    }
    SnapshotImage snap;
    if (!decode_snapshot(data, snap)) {
      CLASH_WARN << "rejecting corrupt snapshot " << path;
      image.stats.snapshots_rejected++;
      continue;
    }
    RecoveredGroup g;
    g.head = snap.head;
    g.root = snap.root;
    g.parent = snap.parent;
    g.state = std::move(snap.state);
    g.app_state = std::move(snap.app_state);
    g.app_deltas = std::move(snap.app_deltas);
    image.groups[snap.group] = std::move(g);
    image.snapshot_floors[snap.group] = snap.head;
    image.stats.snapshots_loaded++;
  }

  Replayer replay{image.groups, image.stats, {}};
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const auto& path : backend.list(wal_dir)) {
    if (const auto index = segment_index(path)) {
      segments.emplace_back(*index, path);
      image.next_segment_index =
          std::max(image.next_segment_index, *index + 1);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [index, path] : segments) {
    std::vector<std::uint8_t> data;
    if (!backend.read_file(path, data)) continue;
    std::map<KeyGroup, repl::LogHead> tails;
    const auto result =
        scan_wal_segment(data, [&replay, &tails, &image](const WalRecord& rec) {
          auto [it, inserted] = tails.try_emplace(rec.group, rec.head);
          if (!inserted && it->second < rec.head) it->second = rec.head;
          if (rec.kind == RecordKind::kDrop) {
            auto [dit, fresh] =
                image.dropped_epochs.try_emplace(rec.group, rec.head.epoch);
            if (!fresh && dit->second < rec.head.epoch) {
              dit->second = rec.head.epoch;
            }
          }
          replay(rec);
        });
    image.segment_tails.emplace_back(index, std::move(tails));
    image.stats.segments_scanned++;
    if (result.end == ScanEnd::kTornTail) image.stats.torn_tails++;
    if (result.end == ScanEnd::kCorrupt) image.stats.corrupt_records++;
  }
  return image;
}

}  // namespace clash::storage
