// storage::Wal: the per-node write-ahead log. Every mutation a server
// applies to a group it owns becomes one framed record:
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// appended to the current segment file ("wal/<index>.seg"). Segments
// roll over at a configurable size so truncation can reclaim disk in
// whole files: a closed segment is deletable once every group that
// wrote into it has a snapshot at or past its last record there (the
// snapshot floor). Recovery scans the segments in index order,
// rejecting CRC-corrupt records and stopping cleanly at a torn tail —
// the WAL invariant is "a prefix of what was appended", never garbage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "keys/key_group.hpp"
#include "repl/log.hpp"
#include "repl/op.hpp"
#include "storage/backend.hpp"

namespace clash::storage {

/// What one WAL record describes.
enum class RecordKind : std::uint8_t {
  /// One LogOp applied to `group` at `head` (head.seq is the op's seq).
  kOp = 1,
  /// `group` stopped being owned here at epoch `head.epoch` (split away,
  /// reclaimed, handed off): recovery forgets its accumulated state.
  kDrop = 2,
};

struct WalRecord {
  RecordKind kind = RecordKind::kOp;
  KeyGroup group;
  repl::LogHead head;
  repl::LogOp op;  // kOp only
};

/// Encode one record (framing included) ready to append.
[[nodiscard]] std::vector<std::uint8_t> encode_wal_record(const WalRecord& r);

/// Why a segment scan stopped.
enum class ScanEnd : std::uint8_t {
  kClean = 0,     // consumed exactly
  kTornTail = 1,  // trailing partial record (len/crc frame or payload cut)
  kCorrupt = 2,   // CRC mismatch or undecodable payload
};

struct ScanResult {
  ScanEnd end = ScanEnd::kClean;
  std::uint64_t records = 0;      // records delivered to the callback
  std::uint64_t valid_bytes = 0;  // prefix covered by delivered records
};

/// Scan one segment image, invoking `fn` per valid record in order.
/// Stops (without throwing) at the first torn or corrupt frame: a WAL
/// is trustworthy only up to its first damage.
ScanResult scan_wal_segment(std::span<const std::uint8_t> data,
                            const std::function<void(const WalRecord&)>& fn);

class Wal {
 public:
  struct Config {
    std::string dir = "wal";
    /// Roll to a new segment once the current one reaches this size.
    std::uint64_t segment_bytes = 1u << 20;
  };

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t syncs = 0;
    std::uint64_t segments_opened = 0;
    std::uint64_t segments_deleted = 0;
    /// Failed appends/fsyncs (dying disk). The writer keeps going —
    /// replication still protects the state — but the durability
    /// guarantee is void until this stops advancing; operators should
    /// alarm on it.
    std::uint64_t io_errors = 0;
  };

  /// `next_index` is the first segment index to write (recovery passes
  /// one past the highest existing segment so a possibly-torn tail
  /// file is never appended to).
  Wal(Backend& backend, Config cfg, std::uint64_t next_index);

  /// Register a pre-crash segment (recovered tails) as closed, so
  /// truncation can reclaim it once snapshots cover it. Call in index
  /// order, before the first append.
  void adopt_closed_segment(std::uint64_t index,
                            std::map<KeyGroup, repl::LogHead> tails) {
    closed_.push_back(ClosedSegment{index, std::move(tails)});
  }

  /// Append one op record; false on backend I/O failure.
  bool append_op(const KeyGroup& group, repl::LogHead head,
                 const repl::LogOp& op);
  /// Append a drop record for `group` at `epoch`.
  bool append_drop(const KeyGroup& group, std::uint64_t epoch);

  /// fsync the current segment (no-op when nothing is open).
  bool sync();

  /// Delete every closed segment whose records are all covered:
  /// `covered(group, tail)` must return true when the durable snapshot
  /// state supersedes `group`'s last record at `tail` in that segment.
  /// Deletion is prefix-only (oldest first) so the surviving WAL stays
  /// contiguous. Returns segments deleted.
  std::size_t truncate_covered(
      const std::function<bool(const KeyGroup&, repl::LogHead)>& covered);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t open_segment_index() const { return index_; }

  [[nodiscard]] static std::string segment_path(const std::string& dir,
                                                std::uint64_t index);

 private:
  bool append_record(const WalRecord& rec);
  bool roll_segment();

  struct ClosedSegment {
    std::uint64_t index = 0;
    /// Last head each group wrote in this segment (drop records appear
    /// as {epoch, max} so only a later-epoch snapshot covers them).
    std::map<KeyGroup, repl::LogHead> tails;
  };

  Backend& backend_;
  Config cfg_;
  std::uint64_t index_;
  std::unique_ptr<AppendFile> segment_;
  std::map<KeyGroup, repl::LogHead> open_tails_;
  std::deque<ClosedSegment> closed_;
  Stats stats_;
};

}  // namespace clash::storage
