#include "storage/snapshot.hpp"

#include <cstdio>

#include "common/crc32.hpp"
#include "repl/log.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"

namespace clash::storage {

namespace {

constexpr std::uint32_t kMagic = 0x43534E50;  // "CSNP"
constexpr std::uint8_t kVersion = 1;

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const SnapshotImage& img) {
  wire::Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  wire::encode_group(w, img.group);
  w.u64(img.head.epoch);
  w.u64(img.head.seq);
  w.boolean(img.root);
  w.u64(img.parent.value);
  w.u32(std::uint32_t(img.state.streams.size()));
  for (const auto& [_, s] : img.state.streams) {
    wire::encode_log_op(w, repl::LogOp::put_stream(s));
  }
  w.u32(std::uint32_t(img.state.queries.size()));
  for (const auto& [_, q] : img.state.queries) {
    wire::encode_log_op(w, repl::LogOp::put_query(q));
  }
  w.u32(std::uint32_t(img.app_state.size()));
  w.bytes(img.app_state);
  w.u32(std::uint32_t(img.app_deltas.size()));
  for (const auto& d : img.app_deltas) {
    w.u32(std::uint32_t(d.size()));
    w.bytes(d);
  }
  w.u32(crc32(w.data()));
  return w.take();
}

bool decode_snapshot(std::span<const std::uint8_t> data, SnapshotImage& out) {
  if (data.size() < 4) return false;
  const auto body = data.first(data.size() - 4);
  if (crc32(body) != wire::load_u32_le(data.data() + body.size())) {
    return false;
  }
  wire::Reader r(body);
  if (r.u32() != kMagic || r.u8() != kVersion) return false;
  out.group = wire::decode_group(r);
  out.head.epoch = r.u64();
  out.head.seq = r.u64();
  out.root = r.boolean();
  out.parent = ServerId{r.u64()};
  out.state = GroupState{};
  const auto n_streams = r.u32();
  for (std::uint32_t i = 0; i < n_streams && r.ok(); ++i) {
    repl::GroupLog::apply(wire::decode_log_op(r), out.state);
  }
  const auto n_queries = r.u32();
  for (std::uint32_t i = 0; i < n_queries && r.ok(); ++i) {
    repl::GroupLog::apply(wire::decode_log_op(r), out.state);
  }
  const auto app_len = r.u32();
  if (std::size_t(app_len) > r.remaining()) return false;
  out.app_state.resize(app_len);
  for (auto& b : out.app_state) b = r.u8();
  const auto n_deltas = r.u32();
  out.app_deltas.clear();
  for (std::uint32_t i = 0; i < n_deltas && r.ok(); ++i) {
    const auto len = r.u32();
    if (std::size_t(len) > r.remaining()) return false;
    std::vector<std::uint8_t> d(len);
    for (auto& b : d) b = r.u8();
    out.app_deltas.push_back(std::move(d));
  }
  return r.exhausted();
}

std::string snapshot_path(const std::string& dir, const KeyGroup& group) {
  char name[64];
  std::snprintf(name, sizeof(name), "%u-%llx.snap", group.depth(),
                (unsigned long long)group.virtual_key().value());
  return dir + "/" + name;
}

}  // namespace clash::storage
