// storage::Recovery: the crash-recovery scanner. Rebuilds the groups a
// node owned from its durable store: load every valid snapshot file,
// then replay the WAL segments in order, applying each op record that
// chains onto its group's head (snapshot floor or previous op). The
// result is exactly the pre-crash owner state up to the last complete,
// uncorrupted record — a torn tail truncates cleanly, a CRC-corrupt
// record fences the rest of its segment (a WAL is trustworthy only up
// to its first damage), and anti-entropy with the replica set repairs
// whatever suffix the disk lost.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clash/group_state.hpp"
#include "common/types.hpp"
#include "keys/key_group.hpp"
#include "repl/op.hpp"
#include "storage/backend.hpp"

namespace clash::storage {

struct RecoveredGroup {
  repl::LogHead head;  // after snapshot + replay
  bool root = false;
  ServerId parent{};
  GroupState state;
  std::vector<std::uint8_t> app_state;
  /// App deltas logged past app_state, replay order.
  std::vector<std::vector<std::uint8_t>> app_deltas;
};

struct RecoveryScanStats {
  std::uint64_t snapshots_loaded = 0;
  std::uint64_t snapshots_rejected = 0;  // CRC / decode failures
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t records_skipped = 0;  // stale epoch, covered seq, or gap
  std::uint64_t torn_tails = 0;       // segments ending mid-record
  std::uint64_t corrupt_records = 0;  // CRC-rejected frames
  std::uint64_t orphan_groups = 0;    // ops with no snapshot baseline
  std::uint64_t drops_applied = 0;
};

struct RecoveredImage {
  std::map<KeyGroup, RecoveredGroup> groups;
  /// Head of each group's on-disk snapshot as loaded (the WAL
  /// truncation floors the restarted store starts from).
  std::map<KeyGroup, repl::LogHead> snapshot_floors;
  /// Last head each group reached in each surviving segment (drop
  /// records as {epoch, max}), index order. The restarted Wal adopts
  /// these as closed segments so checkpoints can reclaim them —
  /// without this, pre-crash segments would leak forever.
  std::vector<std::pair<std::uint64_t, std::map<KeyGroup, repl::LogHead>>>
      segment_tails;
  /// Groups whose last word in the WAL was a drop, at that epoch
  /// (covers their residual records without a snapshot floor).
  std::map<KeyGroup, std::uint64_t> dropped_epochs;
  RecoveryScanStats stats;
  /// One past the highest segment seen: the restarted WAL writes here,
  /// never appending to a possibly-torn tail file.
  std::uint64_t next_segment_index = 0;
};

/// Scan `backend` and rebuild the image. Read-only: repair decisions
/// (fresh baselines, truncation) belong to the restarted NodeStore.
[[nodiscard]] RecoveredImage recover_image(Backend& backend,
                                           const std::string& wal_dir,
                                           const std::string& snap_dir);

}  // namespace clash::storage
