// RecoveryCoordinator: bookkeeping for failover/rejoin state recovery.
// When a group must be promoted from a replica (owner died) the
// coordinator opens a session: the promoting server probes the
// surviving replica set for fresher (epoch, seq) heads, peers stream
// back the missing log suffix (or a snapshot when the suffix was
// compacted), and only then does the promotion install state. The
// session records how far the local copy advanced, so a stale replica
// is never silently promoted when a fresher peer existed.
//
// The coordinator is transport-agnostic: under the synchronous
// simulator the probe replies land before begin() even returns; under
// TCP the node layer holds the session open for a recovery-grace
// window before finishing the promotion.
#pragma once

#include <cstdint>
#include <map>

#include "keys/key_group.hpp"
#include "repl/log.hpp"

namespace clash::repl {

struct RecoveryStats {
  std::uint64_t sessions = 0;          // recoveries opened
  std::uint64_t entries_repaired = 0;  // log ops pulled from peers
  std::uint64_t snapshots_pulled = 0;  // full-state pulls from peers
  /// Promotions that would have installed stale state but were healed
  /// by peer repair before installing.
  std::uint64_t stale_promotions_averted = 0;
  /// Promotions that went ahead while still behind the freshest head
  /// any peer or owner ever advertised (availability over freshness:
  /// the alternative is losing the group outright).
  std::uint64_t stale_promotions = 0;
};

class RecoveryCoordinator {
 public:
  /// Open a session for `group` starting from the local head. Returns
  /// false when a session is already open (the peers were probed;
  /// don't probe again from the promotion path).
  bool begin(const KeyGroup& group, LogHead local);

  [[nodiscard]] bool active(const KeyGroup& group) const {
    return sessions_.count(group) > 0;
  }

  void note_entries_repaired(const KeyGroup& group, std::size_t n);
  void note_snapshot_pulled(const KeyGroup& group);

  /// Close the session (promotion is installing now). `final` is the
  /// local head after repair, `advertised` the freshest head this
  /// server ever heard for the group. Updates the staleness stats.
  void finish(const KeyGroup& group, LogHead final, LogHead advertised);

  /// Drop the session without promoting (the group became active some
  /// other way, or the death was refuted). A leaked session would
  /// suppress the peer probes of every future recovery of the group.
  void cancel(const KeyGroup& group) { sessions_.erase(group); }

  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }

 private:
  struct Session {
    LogHead start;
    bool repaired = false;
  };
  std::map<KeyGroup, Session> sessions_;
  RecoveryStats stats_;
};

}  // namespace clash::repl
