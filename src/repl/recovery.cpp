#include "repl/recovery.hpp"

namespace clash::repl {

bool RecoveryCoordinator::begin(const KeyGroup& group, LogHead local) {
  const auto [it, inserted] = sessions_.try_emplace(group, Session{local});
  if (inserted) ++stats_.sessions;
  return inserted;
}

void RecoveryCoordinator::note_entries_repaired(const KeyGroup& group,
                                                std::size_t n) {
  if (n == 0) return;
  stats_.entries_repaired += n;
  const auto it = sessions_.find(group);
  if (it != sessions_.end()) it->second.repaired = true;
}

void RecoveryCoordinator::note_snapshot_pulled(const KeyGroup& group) {
  ++stats_.snapshots_pulled;
  const auto it = sessions_.find(group);
  if (it != sessions_.end()) it->second.repaired = true;
}

void RecoveryCoordinator::finish(const KeyGroup& group, LogHead final,
                                 LogHead advertised) {
  const auto it = sessions_.find(group);
  const bool healed =
      it != sessions_.end() && it->second.repaired && it->second.start < final;
  if (it != sessions_.end()) sessions_.erase(it);
  if (final < advertised) {
    ++stats_.stale_promotions;
  } else if (healed) {
    ++stats_.stale_promotions_averted;
  }
}

}  // namespace clash::repl
