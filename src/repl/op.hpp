// Wire-visible types of the replication log: the (epoch, seq) head
// that totally orders the copies of one group, and the logged
// operations themselves. Kept free of the rest of src/repl so
// clash/messages.hpp can embed them in protocol messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clash/objects.hpp"
#include "common/types.hpp"

namespace clash::repl {

/// Position in a group's operation history: owner epoch + sequence
/// number of the last applied op. The epoch bumps whenever ownership
/// changes (promotion, handoff); seq increases monotonically within an
/// epoch. Lexicographic order.
struct LogHead {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;

  friend constexpr bool operator==(const LogHead& a, const LogHead& b) {
    return a.epoch == b.epoch && a.seq == b.seq;
  }
  friend constexpr bool operator!=(const LogHead& a, const LogHead& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const LogHead& a, const LogHead& b) {
    if (a.epoch != b.epoch) return a.epoch < b.epoch;
    return a.seq < b.seq;
  }
  friend constexpr bool operator<=(const LogHead& a, const LogHead& b) {
    return a < b || a == b;
  }

  [[nodiscard]] std::string to_string() const;
};

/// One logged state mutation. Exactly the fields named by `kind` are
/// meaningful (and encoded on the wire).
enum class OpKind : std::uint8_t {
  kPutStream = 0,  // upsert `stream`
  kDelStream = 1,  // erase stream registered by `source`
  kPutQuery = 2,   // upsert `query`
  kDelQuery = 3,   // erase query `query_id`
  kAppDelta = 4,   // opaque application delta (replayed via AppHooks)
};

struct LogOp {
  OpKind kind = OpKind::kPutStream;
  StreamInfo stream;                    // kPutStream
  ClientId source{};                    // kDelStream
  QueryInfo query;                      // kPutQuery
  QueryId query_id{};                   // kDelQuery
  std::vector<std::uint8_t> app_delta;  // kAppDelta

  static LogOp put_stream(StreamInfo s);
  static LogOp del_stream(ClientId source);
  static LogOp put_query(QueryInfo q);
  static LogOp del_query(QueryId id);
  static LogOp app_delta_op(std::vector<std::uint8_t> delta);
};

}  // namespace clash::repl
