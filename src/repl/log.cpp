#include "repl/log.hpp"

#include <cassert>

#include "repl/op.hpp"

namespace clash::repl {

std::string LogHead::to_string() const {
  return "(" + std::to_string(epoch) + "," + std::to_string(seq) + ")";
}

LogOp LogOp::put_stream(StreamInfo s) {
  LogOp op;
  op.kind = OpKind::kPutStream;
  op.stream = s;
  return op;
}

LogOp LogOp::del_stream(ClientId source) {
  LogOp op;
  op.kind = OpKind::kDelStream;
  op.source = source;
  return op;
}

LogOp LogOp::put_query(QueryInfo q) {
  LogOp op;
  op.kind = OpKind::kPutQuery;
  op.query = q;
  return op;
}

LogOp LogOp::del_query(QueryId id) {
  LogOp op;
  op.kind = OpKind::kDelQuery;
  op.query_id = id;
  return op;
}

LogOp LogOp::app_delta_op(std::vector<std::uint8_t> delta) {
  LogOp op;
  op.kind = OpKind::kAppDelta;
  op.app_delta = std::move(delta);
  return op;
}

LogHead GroupLog::append(LogOp op) {
  entries_.push_back(std::move(op));
  ++last_;
  return head();
}

bool GroupLog::suffix_from(std::uint64_t after_seq,
                           std::vector<LogOp>& out) const {
  if (after_seq < floor_) return false;  // compacted past: snapshot needed
  if (after_seq >= last_) return true;   // nothing missing
  assert(entries_.size() == last_ - floor_);
  const std::size_t skip = std::size_t(after_seq - floor_);
  out.reserve(out.size() + entries_.size() - skip);
  for (std::size_t i = skip; i < entries_.size(); ++i) {
    out.push_back(entries_[i]);
  }
  return true;
}

void GroupLog::compact() {
  entries_.clear();
  floor_ = last_;
}

void GroupLog::reset(std::uint64_t epoch, std::uint64_t seq) {
  epoch_ = epoch;
  floor_ = seq;
  last_ = seq;
  entries_.clear();
}

void GroupLog::apply(const LogOp& op, GroupState& st) {
  switch (op.kind) {
    case OpKind::kPutStream: {
      auto [it, inserted] = st.streams.try_emplace(op.stream.source);
      if (!inserted) st.stream_rate -= it->second.rate;
      it->second = op.stream;
      st.stream_rate += op.stream.rate;
      break;
    }
    case OpKind::kDelStream: {
      const auto it = st.streams.find(op.source);
      if (it == st.streams.end()) break;
      st.stream_rate -= it->second.rate;
      if (st.stream_rate < 0) st.stream_rate = 0;  // fp dust
      st.streams.erase(it);
      break;
    }
    case OpKind::kPutQuery:
      st.queries[op.query.id] = op.query;
      break;
    case OpKind::kDelQuery:
      st.queries.erase(op.query_id);
      break;
    case OpKind::kAppDelta:
      break;  // replayed through AppHooks, not GroupState
  }
}

}  // namespace clash::repl
