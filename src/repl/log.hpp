// Per-key-group replicated operation log (replication & recovery
// subsystem). Every mutation of a group's state — stream register/
// unregister, query register/unregister, opaque application deltas —
// becomes a sequenced LogOp under the owner's epoch. Owners stream
// appends to their replica set; replicas apply them incrementally and
// retain the suffix since the last snapshot so any holder can repair
// any other (anti-entropy, peer recovery at failover).
//
// Ordering model: (epoch, seq) LogHead pairs totally order the copies
// of one group. A copy at head H1 strictly dominates a copy at H2 iff
// H2 < H1; the owner's copy is always the authority for its epoch.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "clash/group_state.hpp"
#include "repl/op.hpp"

namespace clash::repl {

/// The log of one group on one holder. The owner's copy is the source
/// of truth; replica copies track the owner through appends and
/// snapshots. Entries older than the last snapshot boundary are
/// compacted away — a peer that lags past the floor needs a snapshot,
/// not a delta (Gray's economics: ship the small thing).
class GroupLog {
 public:
  /// A fresh log: first append gets seq `start_seq + 1` under `epoch`.
  explicit GroupLog(std::uint64_t epoch = 1, std::uint64_t start_seq = 0)
      : epoch_(epoch), floor_(start_seq), last_(start_seq) {}

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] LogHead head() const { return LogHead{epoch_, last_}; }
  /// Sequence number the retained suffix starts after: entries cover
  /// (floor_seq, head().seq]. A requester at or above floor_seq can be
  /// repaired by delta; below it needs a snapshot.
  [[nodiscard]] std::uint64_t floor_seq() const { return floor_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Append one op; returns the new head.
  LogHead append(LogOp op);

  /// Copy the ops with seq in (after_seq, head().seq] into `out`.
  /// Returns false when `after_seq` predates the floor (compacted).
  [[nodiscard]] bool suffix_from(std::uint64_t after_seq,
                                 std::vector<LogOp>& out) const;

  /// Drop every retained entry (a snapshot at head() was just taken:
  /// anyone behind it will be repaired by that snapshot).
  void compact();

  /// Re-anchor at a snapshot boundary (replica installing a snapshot,
  /// or an owner adopting state under a new epoch).
  void reset(std::uint64_t epoch, std::uint64_t seq);

  /// Apply one op to a group's object state. kAppDelta is a no-op here:
  /// application deltas are replayed through AppHooks at promotion.
  static void apply(const LogOp& op, GroupState& st);

 private:
  std::uint64_t epoch_;
  std::uint64_t floor_;        // seq of the last compacted-away op
  std::uint64_t last_;         // seq of the newest op
  std::deque<LogOp> entries_;  // ops (floor_, last_], oldest first
};

}  // namespace clash::repl
