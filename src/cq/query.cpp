#include "cq/query.hpp"

namespace clash::cq {

bool Predicate::eval(std::int64_t x) const {
  switch (op) {
    case Op::kEq:
      return x == value;
    case Op::kNe:
      return x != value;
    case Op::kLt:
      return x < value;
    case Op::kLe:
      return x <= value;
    case Op::kGt:
      return x > value;
    case Op::kGe:
      return x >= value;
  }
  return false;
}

std::string Predicate::to_string() const {
  static constexpr const char* kOps[] = {"==", "!=", "<", "<=", ">", ">="};
  return "a" + std::to_string(attr) + " " + kOps[int(op)] + " " +
         std::to_string(value);
}

bool ContinuousQuery::matches(const Record& r) const {
  if (!scope.contains(r.key)) return false;
  for (const auto& p : predicates) {
    const auto v = r.attr(p.attr);
    if (!v || !p.eval(*v)) return false;
  }
  return true;
}

}  // namespace clash::cq
