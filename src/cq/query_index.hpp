// Prefix-indexed query store. Queries are bucketed by their scope's
// virtual key prefix, so matching a record costs O(N) bucket probes
// (one per prefix length present) instead of O(#queries) — the
// "efficient indices over streams and queries with intersecting
// attribute values" clustering pay-off Section 1 motivates. This is
// also why CLASH's per-group query count enters the load model
// logarithmically rather than linearly.
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "cq/query.hpp"

namespace clash::cq {

class QueryIndex {
 public:
  explicit QueryIndex(unsigned key_width);

  void insert(const ContinuousQuery& q);
  bool erase(QueryId id);

  [[nodiscard]] const ContinuousQuery* find(QueryId id) const;

  /// All queries whose scope contains — and whose predicates accept —
  /// the record.
  [[nodiscard]] std::vector<const ContinuousQuery*> match(
      const Record& r) const;

  /// Queries whose scope lies inside `group` (used to migrate state
  /// when CLASH splits/merges the group).
  [[nodiscard]] std::vector<QueryId> queries_within(
      const KeyGroup& group) const;

  /// Remove and return every query inside `group`.
  std::vector<ContinuousQuery> extract_within(const KeyGroup& group);

  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] bool empty() const { return by_id_.empty(); }

 private:
  struct Bucket {
    // Scope prefix value -> queries anchored at that exact prefix.
    std::unordered_map<std::uint64_t, std::vector<QueryId>> by_prefix;
  };

  unsigned key_width_;
  std::vector<Bucket> by_depth_;  // index = scope depth
  std::map<QueryId, ContinuousQuery> by_id_;
};

}  // namespace clash::cq
