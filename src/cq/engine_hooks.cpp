#include "cq/engine_hooks.hpp"

namespace clash::cq {

bool EngineHooks::register_query(const ContinuousQuery& q) {
  // Resolve ownership BEFORE touching the engine: a failed attempt
  // must leave no residue, or the caller's documented retry would trip
  // QueryIndex's duplicate-id guard.
  const ServerTableEntry* entry =
      server_ == nullptr
          ? nullptr
          : server_->table().active_entry_for(q.scope.virtual_key());
  if (server_ != nullptr && entry == nullptr) return false;
  engine_.register_query(q);
  if (server_ == nullptr) return true;
  return server_->append_app_delta(entry->group,
                                   StreamEngine::encode_register(q));
}

bool EngineHooks::unregister_query(QueryId id, const Key& key) {
  const bool existed = engine_.unregister_query(id);
  if (server_ == nullptr) return existed;
  const ServerTableEntry* entry = server_->table().active_entry_for(key);
  if (entry == nullptr) return false;
  return server_->append_app_delta(entry->group,
                                   StreamEngine::encode_unregister(id)) &&
         existed;
}

std::vector<std::uint8_t> EngineHooks::export_state(const KeyGroup& group,
                                                    ServerId /*destination*/) {
  // Destructive: the group is moving away (split / merge / handoff).
  return StreamEngine::encode_queries(engine_.migrate_out(group));
}

void EngineHooks::import_state(const KeyGroup& /*group*/,
                               const std::vector<std::uint8_t>& state) {
  engine_.import_blob(state);
}

std::vector<std::uint8_t> EngineHooks::snapshot_state(const KeyGroup& group) {
  return engine_.export_group(group);
}

void EngineHooks::apply_delta(const KeyGroup& /*group*/,
                              const std::vector<std::uint8_t>& delta) {
  (void)engine_.apply_delta(delta);
}

}  // namespace clash::cq
