// Continuous queries over streaming data — the application substrate
// the paper's evaluation simulates (NiagaraCQ/Xfilter-style filtering,
// Mobiscope-style spatial queries). A query subscribes to a key-space
// region (a prefix — e.g. a quad-tree cell) plus optional attribute
// predicates evaluated on each matching data record.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "keys/key.hpp"
#include "keys/key_group.hpp"

namespace clash::cq {

/// A single attribute predicate: `attr <op> value`.
struct Predicate {
  enum class Op : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  std::uint32_t attr = 0;
  Op op = Op::kEq;
  std::int64_t value = 0;

  [[nodiscard]] bool eval(std::int64_t x) const;
  [[nodiscard]] std::string to_string() const;
};

/// A data record flowing through the system: its identifier key (which
/// routes it) plus attribute values predicates can inspect.
struct Record {
  Key key{0, 24};
  std::vector<std::int64_t> attrs;

  [[nodiscard]] std::optional<std::int64_t> attr(std::uint32_t id) const {
    return id < attrs.size() ? std::optional(attrs[id]) : std::nullopt;
  }
};

/// A continuous query: fires for records inside `scope` whose attributes
/// satisfy every predicate (conjunctive semantics).
struct ContinuousQuery {
  QueryId id;
  KeyGroup scope;
  std::vector<Predicate> predicates;

  [[nodiscard]] bool matches(const Record& r) const;
};

}  // namespace clash::cq
