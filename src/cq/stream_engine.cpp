#include "cq/stream_engine.hpp"

namespace clash::cq {

StreamEngine::StreamEngine(unsigned key_width, MatchSink sink)
    : index_(key_width), sink_(std::move(sink)) {}

void StreamEngine::register_query(const ContinuousQuery& q) {
  index_.insert(q);
}

bool StreamEngine::unregister_query(QueryId id) { return index_.erase(id); }

std::size_t StreamEngine::process(const Record& r) {
  ++records_processed_;
  const auto matched = index_.match(r);
  matches_fired_ += matched.size();
  if (sink_) {
    for (const auto* q : matched) sink_(*q, r);
  }
  return matched.size();
}

std::vector<ContinuousQuery> StreamEngine::migrate_out(const KeyGroup& group) {
  return index_.extract_within(group);
}

void StreamEngine::migrate_in(const std::vector<ContinuousQuery>& queries) {
  for (const auto& q : queries) index_.insert(q);
}

}  // namespace clash::cq
