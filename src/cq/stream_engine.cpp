#include "cq/stream_engine.hpp"

#include <chrono>

#include "wire/buffer.hpp"

namespace clash::cq {
namespace {

// Query-state blob layout (used by snapshots, migrations, and deltas):
// little-endian via wire::Writer/Reader, bounds-checked on decode.

void encode_query(wire::Writer& w, const ContinuousQuery& q) {
  w.u64(q.id.value);
  w.u8(std::uint8_t(q.scope.key_width()));
  w.u64(q.scope.virtual_key().value());
  w.u8(std::uint8_t(q.scope.depth()));
  w.u32(std::uint32_t(q.predicates.size()));
  for (const auto& p : q.predicates) {
    w.u32(p.attr);
    w.u8(std::uint8_t(p.op));
    w.u64(std::uint64_t(p.value));
  }
}

bool decode_query(wire::Reader& r, ContinuousQuery& q) {
  q.id = QueryId{r.u64()};
  const auto width = r.u8();
  const auto vkey = r.u64();
  const auto depth = r.u8();
  if (!r.ok() || width == 0 || width > Key::kMaxWidth || depth > width ||
      (width < 64 && vkey >= (std::uint64_t{1} << width))) {
    return false;
  }
  q.scope = KeyGroup::of(Key(vkey, width), depth);
  const auto n_preds = r.u32();
  if (std::size_t(n_preds) * 13 > r.remaining()) return false;
  q.predicates.clear();
  q.predicates.reserve(n_preds);
  for (std::uint32_t i = 0; i < n_preds && r.ok(); ++i) {
    Predicate p;
    p.attr = r.u32();
    const auto op = r.u8();
    if (op > std::uint8_t(Predicate::Op::kGe)) return false;
    p.op = Predicate::Op(op);
    p.value = std::int64_t(r.u64());
    q.predicates.push_back(p);
  }
  return r.ok();
}

constexpr std::uint8_t kDeltaRegister = 0;
constexpr std::uint8_t kDeltaUnregister = 1;

}  // namespace

StreamEngine::StreamEngine(unsigned key_width, MatchSink sink)
    : index_(key_width), sink_(std::move(sink)) {}

void StreamEngine::register_query(const ContinuousQuery& q) {
  index_.insert(q);
}

bool StreamEngine::unregister_query(QueryId id) { return index_.erase(id); }

void StreamEngine::set_obs(obs::Hub* hub, std::uint64_t node,
                           MatchMeter meter) {
  hub_ = hub;
  node_ = node;
  meter_ = std::move(meter);
  if (hub_ == nullptr) {
    records_total_ = obs::Counter{};
    matches_total_ = obs::Counter{};
    match_us_ = obs::HistogramHandle{};
    return;
  }
  records_total_ = hub_->registry.counter("clash_cq_records_total");
  matches_total_ = hub_->registry.counter("clash_cq_matches_total");
  match_us_ = hub_->registry.histogram("clash_cq_match_usec");
}

std::size_t StreamEngine::process(const Record& r) {
  ++records_processed_;
  records_total_.inc();
  // Only firing records pay for a clock read: the common non-matching
  // record stays as cheap as before instrumentation.
  const auto matched = index_.match(r);
  matches_fired_ += matched.size();
  matches_total_.inc(matched.size());
  if (!matched.empty()) {
    if (meter_) meter_(r.key, matched.size());
    if (match_us_.valid() && sink_) {
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto* q : matched) sink_(*q, r);
      const auto us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      match_us_.record(std::uint64_t(us));
      return matched.size();
    }
  }
  if (sink_) {
    for (const auto* q : matched) sink_(*q, r);
  }
  return matched.size();
}

std::vector<ContinuousQuery> StreamEngine::migrate_out(const KeyGroup& group) {
  return index_.extract_within(group);
}

void StreamEngine::migrate_in(const std::vector<ContinuousQuery>& queries) {
  for (const auto& q : queries) index_.insert(q);
}

std::vector<std::uint8_t> StreamEngine::encode_queries(
    const std::vector<ContinuousQuery>& queries) {
  wire::Writer w;
  w.u32(std::uint32_t(queries.size()));
  for (const auto& q : queries) encode_query(w, q);
  return w.take();
}

std::vector<ContinuousQuery> StreamEngine::decode_queries(
    const std::vector<std::uint8_t>& blob) {
  wire::Reader r(blob);
  std::vector<ContinuousQuery> out;
  const auto count = r.u32();
  if (std::size_t(count) * 11 > r.remaining()) return out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ContinuousQuery q;
    if (!decode_query(r, q)) break;
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<std::uint8_t> StreamEngine::export_group(
    const KeyGroup& group) const {
  std::vector<ContinuousQuery> scoped;
  for (const QueryId id : index_.queries_within(group)) {
    if (const auto* q = index_.find(id)) scoped.push_back(*q);
  }
  return encode_queries(scoped);
}

void StreamEngine::import_blob(const std::vector<std::uint8_t>& blob) {
  // Peer-supplied state: upsert so an overlap with already-replayed
  // deltas cannot trip the duplicate-id guard mid-recovery.
  for (const auto& q : decode_queries(blob)) {
    (void)index_.erase(q.id);
    index_.insert(q);
  }
}

std::vector<std::uint8_t> StreamEngine::encode_register(
    const ContinuousQuery& q) {
  wire::Writer w;
  w.u8(kDeltaRegister);
  encode_query(w, q);
  return w.take();
}

std::vector<std::uint8_t> StreamEngine::encode_unregister(QueryId id) {
  wire::Writer w;
  w.u8(kDeltaUnregister);
  w.u64(id.value);
  return w.take();
}

bool StreamEngine::apply_delta(const std::vector<std::uint8_t>& delta) {
  wire::Reader r(delta);
  const auto tag = r.u8();
  if (!r.ok()) return false;
  if (tag == kDeltaRegister) {
    ContinuousQuery q;
    if (!decode_query(r, q) || !r.exhausted()) return false;
    // Upsert: deltas arrive from peers (snapshot tails, replays) and
    // must never trip QueryIndex's strict duplicate-id guard.
    (void)index_.erase(q.id);
    index_.insert(q);
    return true;
  }
  if (tag == kDeltaUnregister) {
    const QueryId id{r.u64()};
    if (!r.exhausted()) return false;
    (void)index_.erase(id);
    return true;
  }
  return false;
}

}  // namespace clash::cq
