#include "cq/query_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace clash::cq {

QueryIndex::QueryIndex(unsigned key_width) : key_width_(key_width) {
  by_depth_.resize(key_width + 1);
}

void QueryIndex::insert(const ContinuousQuery& q) {
  if (q.scope.key_width() != key_width_) {
    throw std::invalid_argument("query scope width mismatch");
  }
  const auto [it, inserted] = by_id_.emplace(q.id, q);
  (void)it;
  if (!inserted) throw std::invalid_argument("duplicate query id");
  by_depth_[q.scope.depth()]
      .by_prefix[q.scope.virtual_key().prefix_value(q.scope.depth())]
      .push_back(q.id);
}

bool QueryIndex::erase(QueryId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  const KeyGroup scope = it->second.scope;
  auto& bucket = by_depth_[scope.depth()].by_prefix;
  const auto prefix = scope.virtual_key().prefix_value(scope.depth());
  const auto vec_it = bucket.find(prefix);
  if (vec_it != bucket.end()) {
    auto& vec = vec_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
    if (vec.empty()) bucket.erase(vec_it);
  }
  by_id_.erase(it);
  return true;
}

const ContinuousQuery* QueryIndex::find(QueryId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::vector<const ContinuousQuery*> QueryIndex::match(const Record& r) const {
  std::vector<const ContinuousQuery*> out;
  // One bucket probe per scope depth: all scopes containing r.key at
  // depth d share the same d-bit prefix of r.key.
  for (unsigned d = 0; d <= key_width_; ++d) {
    const auto& bucket = by_depth_[d].by_prefix;
    if (bucket.empty()) continue;
    const auto it = bucket.find(r.key.prefix_value(d));
    if (it == bucket.end()) continue;
    for (const QueryId id : it->second) {
      const ContinuousQuery& q = by_id_.at(id);
      if (q.matches(r)) out.push_back(&q);
    }
  }
  return out;
}

std::vector<QueryId> QueryIndex::queries_within(const KeyGroup& group) const {
  std::vector<QueryId> out;
  for (const auto& [id, q] : by_id_) {
    if (group.covers(q.scope)) out.push_back(id);
  }
  return out;
}

std::vector<ContinuousQuery> QueryIndex::extract_within(
    const KeyGroup& group) {
  std::vector<ContinuousQuery> out;
  for (const QueryId id : queries_within(group)) {
    out.push_back(by_id_.at(id));
    erase(id);
  }
  return out;
}

}  // namespace clash::cq
