// Per-server stream-processing engine: stores the continuous queries of
// the key groups a CLASH server manages and evaluates incoming records
// against them. Implements the state-migration hooks a split/merge
// needs, so examples can run a full query-processing application on top
// of the protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cq/query_index.hpp"
#include "obs/hub.hpp"

namespace clash::cq {

class StreamEngine {
 public:
  /// Callback fired for each (query, record) match.
  using MatchSink =
      std::function<void(const ContinuousQuery&, const Record&)>;

  explicit StreamEngine(unsigned key_width, MatchSink sink = {});

  void register_query(const ContinuousQuery& q);
  bool unregister_query(QueryId id);

  /// Process one record: evaluates it against the stored queries and
  /// fires the sink per match. Returns the match count.
  std::size_t process(const Record& r);

  /// Attach observability: records/matches counters and (when a record
  /// fires at least one match) a match-evaluation histogram + trace
  /// span. `meter` additionally receives (key, matches) per firing
  /// record — cq::EngineHooks routes it into the owning server's
  /// per-group cost vector.
  using MatchMeter = std::function<void(const Key&, std::size_t)>;
  void set_obs(obs::Hub* hub, std::uint64_t node, MatchMeter meter = {});

  /// Extract the queries belonging to `group` for migration to another
  /// server (CLASH split), removing them locally.
  std::vector<ContinuousQuery> migrate_out(const KeyGroup& group);

  /// Install queries migrated from another server (split arrival or
  /// merge reclaim).
  void migrate_in(const std::vector<ContinuousQuery>& queries);

  // --- Snapshot + delta state transfer (replication subsystem) --------
  /// Non-destructive serialisation of the queries scoped inside
  /// `group` (replication snapshots; the engine keeps running them).
  [[nodiscard]] std::vector<std::uint8_t> export_group(
      const KeyGroup& group) const;

  /// Install the queries of an export_group / encode_queries blob.
  void import_blob(const std::vector<std::uint8_t>& blob);

  /// Serialise a query list (shared by export_group and the
  /// destructive migration path).
  [[nodiscard]] static std::vector<std::uint8_t> encode_queries(
      const std::vector<ContinuousQuery>& queries);
  [[nodiscard]] static std::vector<ContinuousQuery> decode_queries(
      const std::vector<std::uint8_t>& blob);

  /// Incremental deltas: one registration / unregistration as an
  /// opaque blob suitable for ClashServer::append_app_delta.
  [[nodiscard]] static std::vector<std::uint8_t> encode_register(
      const ContinuousQuery& q);
  [[nodiscard]] static std::vector<std::uint8_t> encode_unregister(
      QueryId id);
  /// Apply a delta produced by the encoders above; false on a
  /// malformed blob.
  bool apply_delta(const std::vector<std::uint8_t>& delta);

  [[nodiscard]] std::size_t query_count() const { return index_.size(); }
  [[nodiscard]] std::uint64_t records_processed() const {
    return records_processed_;
  }
  [[nodiscard]] std::uint64_t matches_fired() const { return matches_fired_; }

 private:
  QueryIndex index_;
  MatchSink sink_;
  std::uint64_t records_processed_ = 0;
  std::uint64_t matches_fired_ = 0;

  obs::Hub* hub_ = nullptr;
  std::uint64_t node_ = 0;
  MatchMeter meter_;
  obs::Counter records_total_;
  obs::Counter matches_total_;
  obs::HistogramHandle match_us_;
};

}  // namespace clash::cq
