// EngineHooks: plugs a StreamEngine into ClashServer's application
// API so continuous-query state rides the replication & recovery
// subsystem. Registrations flow into the owner's per-group operation
// log as opaque deltas (ClashServer::append_app_delta); replication
// snapshots carry the scoped query set (snapshot_state); splits and
// merges keep using the destructive export/import pair; and a
// promoted replica replays snapshot + deltas back into the heir's
// engine — so matches keep firing after the owner dies.
#pragma once

#include "clash/server.hpp"
#include "cq/stream_engine.hpp"

namespace clash::cq {

class EngineHooks final : public AppHooks {
 public:
  explicit EngineHooks(StreamEngine& engine) : engine_(engine) {}

  /// Attach the owning server (used to append deltas to its group
  /// logs). Must be called before register_query/unregister_query.
  /// Also wires the engine's observability into the server's hub, so
  /// matches fired by the engine land in the server's per-group cost
  /// vector (GroupCost::matches).
  void bind(ClashServer* server) {
    server_ = server;
    if (server_ == nullptr) {
      engine_.set_obs(nullptr, 0);
      return;
    }
    // ~48 bytes per delivered match notification in the wire model.
    engine_.set_obs(&server_->obs_hub(), server_->id().value,
                    [s = server_](const Key& key, std::size_t n) {
                      s->meter_matches(key, n, n * 48);
                    });
  }

  /// Register a query in the engine AND log the registration as an
  /// app delta on the group managing its scope, so replicas can
  /// replay it. Returns false when no active group covers the scope
  /// on the bound server (registration raced a migration).
  bool register_query(const ContinuousQuery& q);

  /// Unregister in the engine and log the removal.
  bool unregister_query(QueryId id, const Key& key);

  [[nodiscard]] StreamEngine& engine() { return engine_; }

  // --- AppHooks --------------------------------------------------------
  std::vector<std::uint8_t> export_state(const KeyGroup& group,
                                         ServerId destination) override;
  void import_state(const KeyGroup& group,
                    const std::vector<std::uint8_t>& state) override;
  std::vector<std::uint8_t> snapshot_state(const KeyGroup& group) override;
  void apply_delta(const KeyGroup& group,
                   const std::vector<std::uint8_t>& delta) override;

 private:
  StreamEngine& engine_;
  ClashServer* server_ = nullptr;
};

}  // namespace clash::cq
