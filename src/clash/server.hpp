// ClashServer: the server side of the protocol (Sections 4 and 5).
// Transport-agnostic: all I/O goes through ServerEnv, so the same logic
// runs under the discrete-event simulator, unit tests, and the TCP
// deployment layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "clash/config.hpp"
#include "clash/load.hpp"
#include "clash/messages.hpp"
#include "clash/server_table.hpp"
#include "clash/stats.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"

namespace clash {

/// Runtime services a ClashServer needs. Implementations count the
/// messages they carry (that is how the Figure 5 overheads are
/// measured).
class ServerEnv {
 public:
  virtual ~ServerEnv() = default;

  /// Route `h` through the DHT from this server; the implementation
  /// accounts for the O(log S) overlay hops.
  virtual dht::LookupResult dht_lookup(dht::HashKey h) = 0;

  /// The `n` servers after the owner of `h` on the ring (Chord's
  /// replica set). Empty when the substrate offers no replication.
  [[nodiscard]] virtual std::vector<ServerId> replica_targets(
      dht::HashKey h, unsigned n) {
    (void)h;
    (void)n;
    return {};
  }

  /// Deliver a protocol message to a peer server.
  virtual void send(ServerId to, const Message& msg) = 0;

  [[nodiscard]] virtual SimTime now() const = 0;

  /// Table-change notifications: `group` became / stopped being an
  /// active leaf on this server. Default no-ops; the simulator uses
  /// them to maintain a global owner index for exact metrics.
  virtual void on_group_activated(const KeyGroup& group) { (void)group; }
  virtual void on_group_deactivated(const KeyGroup& group) { (void)group; }
};

/// Application integration (Section 7's game-middleware API): the
/// hosted application can contribute to a group's load ("indicate
/// application overload") and ship opaque state when CLASH moves a
/// group ("distribute application-specific state"). All callbacks run
/// on the server's protocol thread.
class AppHooks {
 public:
  virtual ~AppHooks() = default;

  /// Extra load units the application attributes to `group` (e.g. game
  /// physics cost); added to the data-rate/query model each check.
  [[nodiscard]] virtual double app_load(const KeyGroup& group) {
    (void)group;
    return 0;
  }

  /// Serialise and relinquish the application state belonging to
  /// `group` (it is moving to `destination`).
  [[nodiscard]] virtual std::vector<std::uint8_t> export_state(
      const KeyGroup& group, ServerId destination) {
    (void)group;
    (void)destination;
    return {};
  }

  /// Install state exported by a peer for `group`.
  virtual void import_state(const KeyGroup& group,
                            const std::vector<std::uint8_t>& state) {
    (void)group;
    (void)state;
  }
};

/// Objects (stream registrations + stored queries) held by one group.
struct GroupState {
  std::map<ClientId, StreamInfo> streams;
  std::map<QueryId, QueryInfo> queries;
  double stream_rate = 0;  // invariant: sum of streams[*].rate

  [[nodiscard]] bool empty() const {
    return streams.empty() && queries.empty();
  }
};

class ClashServer {
 public:
  ClashServer(ServerId self, const ClashConfig& cfg, ServerEnv& env,
              dht::KeyHasher hasher);

  [[nodiscard]] ServerId id() const { return self_; }
  [[nodiscard]] const ClashConfig& config() const { return cfg_; }
  [[nodiscard]] const ServerTable& table() const { return table_; }
  [[nodiscard]] const MessageStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MessageStats{}; }

  // --- Bootstrap -----------------------------------------------------
  /// Install an entry directly (used by the bootstrap splitter and by
  /// tests building Figure 1/2 scenarios).
  void install_entry(const ServerTableEntry& entry);

  /// Force-split an active group regardless of load (bootstrap path;
  /// also the paper's administrative splitting). Returns false if the
  /// group is absent/inactive/at max depth.
  bool force_split(const KeyGroup& group);

  /// Mark an active group as a root entry (ParentID = -1): an
  /// administrative floor consolidation never collapses through.
  bool mark_group_root(const KeyGroup& group);

  // --- Application API (Section 7 extension) --------------------------
  /// Attach application callbacks (load contribution, state shipping).
  /// The hooks must outlive the server.
  void set_app_hooks(AppHooks* hooks) { app_hooks_ = hooks; }

  /// Application-signalled overload: shed the hottest group now, ahead
  /// of the periodic check. Returns false when nothing is splittable.
  bool signal_overload();

  // --- Fault tolerance (replication extension) ------------------------
  /// Promote this server's replica of `group` to active ownership
  /// (called by the failover coordinator after the previous owner
  /// died and the DHT now maps the group here). Falls back to an empty
  /// root entry when no replica exists; returns whether state was
  /// recovered.
  bool promote_replica(const KeyGroup& group);

  [[nodiscard]] std::size_t replica_count() const {
    return replicas_.size();
  }
  [[nodiscard]] bool has_replica(const KeyGroup& group) const {
    return replicas_.count(group) > 0;
  }
  /// Groups this server holds replicas of on behalf of `owner` — the
  /// candidates for promotion when the membership layer declares the
  /// owner dead.
  [[nodiscard]] std::vector<KeyGroup> replicas_owned_by(ServerId owner) const {
    std::vector<KeyGroup> out;
    for (const auto& [group, rec] : replicas_) {
      if (rec.owner == owner) out.push_back(group);
    }
    return out;
  }

  // --- Client RPC (Section 5, three cases) ----------------------------
  [[nodiscard]] AcceptObjectReply handle_accept_object(const AcceptObject& m);

  // --- Peer messages ---------------------------------------------------
  void deliver(ServerId from, const Message& msg);

  // --- Periodic driver --------------------------------------------------
  /// One LOAD_CHECK_PERIOD tick: emit load reports, then split when
  /// overloaded / consolidate when underloaded.
  void run_load_check();

  // --- Bookkeeping used by the simulator and applications ---------------
  /// Remove a stream registration (source key changed or went away).
  /// Not a protocol message: equivalent to the rate decaying to zero in
  /// a per-packet deployment.
  void remove_stream(ClientId source, const Key& key);

  /// Remove an expired continuous query.
  void remove_query(QueryId id, const Key& key);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] double server_load() const;
  [[nodiscard]] double load_of(const KeyGroup& group) const;
  [[nodiscard]] const GroupState* group_state(const KeyGroup& group) const;
  [[nodiscard]] std::size_t total_queries() const;
  [[nodiscard]] std::size_t total_streams() const;
  /// Depths of this server's active groups (for Figure 4c).
  [[nodiscard]] std::vector<unsigned> active_depths() const;
  [[nodiscard]] bool is_active() const { return table_.active_count() > 0; }

 private:
  struct ChildReport {
    double load = 0;
    bool is_leaf = false;
    SimTime at{0};
  };

  void handle_accept_keygroup(ServerId from, const AcceptKeyGroup& m);
  void handle_load_report(ServerId from, const LoadReport& m);
  void handle_reclaim(ServerId from, const ReclaimKeyGroup& m);
  void handle_reclaim_ack(ServerId from, const ReclaimAck& m);
  void handle_reclaim_refused(ServerId from, const ReclaimRefused& m);
  void handle_replicate(ServerId from, const ReplicateGroup& m);
  void handle_drop_replica(ServerId from, const DropReplica& m);

  /// Push lease-replicas of every active group to its ring successors.
  void send_replicas();
  /// Push one group's replica to its ring successors now.
  void replicate_group(const ServerTableEntry& entry);
  /// Tell replica holders a group stopped being active here.
  void retire_replicas(const KeyGroup& group);

  /// Split `group`, shedding its right half (Section 5). When
  /// `reshed_on_self_map` is set and the right child maps back to this
  /// server, the right group's depth is increased again for "another
  /// randomized attempt" (load-shedding semantics); otherwise both
  /// children simply stay local (administrative splitting).
  void split_group(const KeyGroup& group, bool reshed_on_self_map);

  void send_load_reports();
  void try_split_for_overload();
  void try_consolidate();

  [[nodiscard]] std::optional<KeyGroup> pick_split_candidate();
  [[nodiscard]] std::optional<KeyGroup> pick_merge_candidate() const;

  /// Move the members of `subset` out of `st` into the returned state.
  static GroupState extract_subset(GroupState& st, const KeyGroup& subset);

  /// Drop an emptied ephemeral group (fixed-depth baseline mode).
  void maybe_gc_group(const KeyGroup& group);

  /// Queries-to-STATE_TRANSFER-message accounting.
  [[nodiscard]] std::uint64_t state_msgs_for(std::size_t query_count) const;

  ServerId self_;
  ClashConfig cfg_;
  ServerEnv& env_;
  dht::KeyHasher hasher_;
  AppHooks* app_hooks_ = nullptr;
  ServerTable table_;
  std::map<KeyGroup, GroupState> state_;
  std::map<KeyGroup, ChildReport> child_reports_;  // right-child group -> report
  std::set<KeyGroup> pending_reclaims_;            // right-child groups asked back

  /// Replicas held on behalf of other owners (replication extension).
  struct ReplicaRecord {
    ServerId owner{};
    bool root = false;
    ServerId parent{};
    GroupState state;
  };
  std::map<KeyGroup, ReplicaRecord> replicas_;

  Rng rng_;
  MessageStats stats_;
};

}  // namespace clash
