// ClashServer: the server side of the protocol (Sections 4 and 5).
// Transport-agnostic: all I/O goes through ServerEnv, so the same logic
// runs under the discrete-event simulator, unit tests, and the TCP
// deployment layer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "clash/config.hpp"
#include "clash/group_state.hpp"
#include "clash/load.hpp"
#include "clash/messages.hpp"
#include "clash/server_table.hpp"
#include "clash/stats.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"
#include "obs/hub.hpp"
#include "repl/log.hpp"
#include "repl/recovery.hpp"

namespace clash::storage {
class NodeStore;
}  // namespace clash::storage

namespace clash {

/// Runtime services a ClashServer needs. Implementations count the
/// messages they carry (that is how the Figure 5 overheads are
/// measured).
class ServerEnv {
 public:
  virtual ~ServerEnv() = default;

  /// Route `h` through the DHT from this server; the implementation
  /// accounts for the O(log S) overlay hops.
  virtual dht::LookupResult dht_lookup(dht::HashKey h) = 0;

  /// The `n` servers after the owner of `h` on the ring (Chord's
  /// replica set). Empty when the substrate offers no replication.
  [[nodiscard]] virtual std::vector<ServerId> replica_targets(
      dht::HashKey h, unsigned n) {
    (void)h;
    (void)n;
    return {};
  }

  /// Deliver a protocol message to a peer server.
  virtual void send(ServerId to, const Message& msg) = 0;

  [[nodiscard]] virtual SimTime now() const = 0;

  /// How many more replication SnapshotChunk messages the transport is
  /// willing to carry toward `to` right now. The default (unlimited)
  /// suits synchronous simulators, which deliver instantly; the TCP
  /// layer derives the budget from the peer connection's outbound
  /// queue depth so huge snapshots never bury a socket, and
  /// ClashServer::pump_snapshots resumes paused transfers as the
  /// queue drains.
  [[nodiscard]] virtual std::size_t snapshot_chunk_budget(ServerId to) {
    (void)to;
    return std::numeric_limits<std::size_t>::max();
  }

  /// Run `fn` at the end of the current dispatch tick — the
  /// transport's write-coalescing boundary. Synchronous environments
  /// have no tick, so the default runs it inline. ClashServer uses
  /// this to batch the tick's ReplAppend entries into one frame per
  /// group.
  virtual void defer(std::function<void()> fn) { fn(); }

  /// Table-change notifications: `group` became / stopped being an
  /// active leaf on this server. Default no-ops; the simulator uses
  /// them to maintain a global owner index for exact metrics.
  virtual void on_group_activated(const KeyGroup& group) { (void)group; }
  virtual void on_group_deactivated(const KeyGroup& group) { (void)group; }

  /// Where this server's metrics and trace spans go. The default is
  /// the process-global hub (sim substrate, benches); net::ClashNode
  /// overrides with a node-private hub so its stats endpoint serves
  /// exactly one node's view.
  [[nodiscard]] virtual obs::Hub& obs() { return obs::Hub::global(); }
};

/// Application integration (Section 7's game-middleware API): the
/// hosted application can contribute to a group's load ("indicate
/// application overload") and ship opaque state when CLASH moves a
/// group ("distribute application-specific state"). All callbacks run
/// on the server's protocol thread.
class AppHooks {
 public:
  virtual ~AppHooks() = default;

  /// Extra load units the application attributes to `group` (e.g. game
  /// physics cost); added to the data-rate/query model each check.
  [[nodiscard]] virtual double app_load(const KeyGroup& group) {
    (void)group;
    return 0;
  }

  /// Serialise and relinquish the application state belonging to
  /// `group` (it is moving to `destination`).
  [[nodiscard]] virtual std::vector<std::uint8_t> export_state(
      const KeyGroup& group, ServerId destination) {
    (void)group;
    (void)destination;
    return {};
  }

  /// Install state exported by a peer for `group`.
  virtual void import_state(const KeyGroup& group,
                            const std::vector<std::uint8_t>& state) {
    (void)group;
    (void)state;
  }

  /// Non-destructive serialisation of `group`'s application state for
  /// a replication snapshot — unlike export_state, the application
  /// keeps owning (and mutating) the state afterwards.
  [[nodiscard]] virtual std::vector<std::uint8_t> snapshot_state(
      const KeyGroup& group) {
    (void)group;
    return {};
  }

  /// Replay one opaque delta previously pushed through
  /// ClashServer::append_app_delta — called after import_state when a
  /// recovered replica carries logged deltas beyond its app snapshot.
  virtual void apply_delta(const KeyGroup& group,
                           const std::vector<std::uint8_t>& delta) {
    (void)group;
    (void)delta;
  }
};

class ClashServer {
 public:
  ClashServer(ServerId self, const ClashConfig& cfg, ServerEnv& env,
              dht::KeyHasher hasher);

  [[nodiscard]] ServerId id() const { return self_; }
  [[nodiscard]] const ClashConfig& config() const { return cfg_; }
  [[nodiscard]] const ServerTable& table() const { return table_; }
  [[nodiscard]] const MessageStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MessageStats{}; }

  // --- Per-group cost metering (observability layer) -------------------
  /// The Gray cost vector per group this server owns or replicates:
  /// what each group costs in serving, replication, and storage. The
  /// record follows the group — split, handoff, and replica drop
  /// evict it (keeping the census bounded under churn).
  [[nodiscard]] const std::map<KeyGroup, GroupCost>& group_costs() const {
    return group_costs_;
  }
  [[nodiscard]] GroupCost total_group_cost() const {
    GroupCost total;
    for (const auto& [group, c] : group_costs_) total += c;
    return total;
  }
  void reset_group_costs() { group_costs_.clear(); }
  /// Fill a census record's gauges + top-`top_k` per-group costs from
  /// this server's registry and cost map (the obs::Census collector;
  /// identity, seq, and checksum are stamped by the census itself).
  void fold_census(NodeCensusRecord& rec, std::size_t top_k) const;
  /// Attribute `n` query matches (serving `bytes` to clients) to the
  /// active group covering `key` — called by cq::EngineHooks when the
  /// stream engine fires.
  void meter_matches(const Key& key, std::size_t n, std::size_t bytes);
  /// Meter `bytes` of replication stream out of `group`.
  void meter_repl_bytes(const KeyGroup& group, std::uint64_t bytes);
  /// Meter `bytes` of durable-storage writes for `group`.
  void meter_storage_bytes(const KeyGroup& group, std::uint64_t bytes);
  /// The hub this server records into (env-provided).
  [[nodiscard]] obs::Hub& obs_hub() const { return *hub_; }

  // --- Bootstrap -----------------------------------------------------
  /// Install an entry directly (used by the bootstrap splitter and by
  /// tests building Figure 1/2 scenarios).
  void install_entry(const ServerTableEntry& entry);

  /// Force-split an active group regardless of load (bootstrap path;
  /// also the paper's administrative splitting). Returns false if the
  /// group is absent/inactive/at max depth.
  bool force_split(const KeyGroup& group);

  /// Mark an active group as a root entry (ParentID = -1): an
  /// administrative floor consolidation never collapses through.
  bool mark_group_root(const KeyGroup& group);

  // --- Application API (Section 7 extension) --------------------------
  /// Attach application callbacks (load contribution, state shipping).
  /// The hooks must outlive the server.
  void set_app_hooks(AppHooks* hooks) { app_hooks_ = hooks; }

  /// Application-signalled overload: shed the hottest group now, ahead
  /// of the periodic check. Returns false when nothing is splittable.
  bool signal_overload();

  // --- Fault tolerance (replication extension) ------------------------
  /// Promote this server's replica of `group` to active ownership
  /// (called by the failover coordinator after the previous owner
  /// died and the DHT now maps the group here). Falls back to an empty
  /// root entry when no replica exists; returns whether state was
  /// recovered.
  bool promote_replica(const KeyGroup& group);

  // --- Replication & recovery subsystem (src/repl/) -------------------
  /// True when the operation-log replication engine is active.
  [[nodiscard]] bool log_replication() const {
    return cfg_.replication_factor > 0 &&
           cfg_.replication_mode == ClashConfig::ReplicationMode::kLog;
  }

  /// Owner-side log head of an active group (log mode).
  [[nodiscard]] std::optional<repl::LogHead> log_head(
      const KeyGroup& group) const;
  /// Replica-side applied head for a group held on behalf of a peer.
  [[nodiscard]] std::optional<repl::LogHead> replica_head(
      const KeyGroup& group) const;
  /// Replica-side object state (introspection for tests/operators).
  [[nodiscard]] const GroupState* replica_state(const KeyGroup& group) const;

  /// Application-pushed opaque state delta: appended to `group`'s log,
  /// streamed to the replica set, and replayed through
  /// AppHooks::apply_delta when a replica is promoted. Returns false
  /// when this server does not actively own `group` (the caller's
  /// registration raced a migration — re-resolve and retry).
  bool append_app_delta(const KeyGroup& group,
                        std::vector<std::uint8_t> delta);

  /// Open a recovery session for a group this server is about to be
  /// promoted for: probes the surviving replica set for fresher
  /// (epoch, seq) heads so peers can stream the missing suffix before
  /// promote_replica installs. Synchronous transports finish the
  /// repair inside this call; the TCP layer holds a grace window.
  void begin_group_recovery(const KeyGroup& group);

  /// Drop an open recovery session without promoting (the grace-window
  /// re-check failed: the member rejoined or the ring moved the heir).
  void abandon_group_recovery(const KeyGroup& group) {
    flight(obs::FlightKind::kRecoveryAbandon, group_tag(group));
    end_recovery_op(group);
    recovery_.cancel(group);
    recovery_started_.erase(group);
  }

  /// Hand every active group whose DHT owner is now `to` over to it
  /// with full state (ring re-admission healed the routing — without
  /// this, a rejoined node would serve its key ranges empty). Returns
  /// the number of groups moved.
  std::size_t handoff_groups(ServerId to);

  [[nodiscard]] const repl::RecoveryStats& recovery_stats() const {
    return recovery_.stats();
  }

  // --- Durable storage subsystem (src/storage/) ------------------------
  /// Attach the node's durable store: every owned-group mutation
  /// appends to its WAL, activations write baseline snapshots, and
  /// log compaction cuts checkpoint snapshots (kWalSnapshot). Attach
  /// before any traffic; the store must outlive the server.
  void set_storage(storage::NodeStore* store) { storage_ = store; }

  /// True when a store is attached and the config enables durability.
  [[nodiscard]] bool durable() const;

  /// Install the store's recovered pre-crash image as replica records
  /// (owner = self). Promotion then re-adopts each group under a
  /// bumped epoch, and the recovery pull fetches only the divergent
  /// suffix from live holders — not a full snapshot. Returns the
  /// number of groups restored.
  std::size_t restore_from_storage();

  /// Resume snapshot transfers that paused on transport backpressure:
  /// sends as many pending chunks as each destination's budget allows.
  /// Returns the number of transfers still unfinished. Driven by
  /// run_load_check and, on the TCP layer, by connection-drain
  /// callbacks.
  std::size_t pump_snapshots();
  [[nodiscard]] bool has_pending_snapshots() const {
    return !outbound_snapshots_.empty();
  }

  [[nodiscard]] std::size_t replica_count() const {
    return replicas_.size();
  }
  [[nodiscard]] bool has_replica(const KeyGroup& group) const {
    return replicas_.count(group) > 0;
  }
  /// Groups this server holds replicas of on behalf of `owner` — the
  /// candidates for promotion when the membership layer declares the
  /// owner dead.
  [[nodiscard]] std::vector<KeyGroup> replicas_owned_by(ServerId owner) const {
    std::vector<KeyGroup> out;
    for (const auto& [group, rec] : replicas_) {
      if (rec.owner == owner) out.push_back(group);
    }
    return out;
  }

  // --- Client RPC (Section 5, three cases) ----------------------------
  [[nodiscard]] AcceptObjectReply handle_accept_object(const AcceptObject& m);

  // --- Peer messages ---------------------------------------------------
  void deliver(ServerId from, const Message& msg);

  // --- Periodic driver --------------------------------------------------
  /// One LOAD_CHECK_PERIOD tick: emit load reports, then split when
  /// overloaded / consolidate when underloaded.
  void run_load_check();

  // --- Bookkeeping used by the simulator and applications ---------------
  /// Remove a stream registration (source key changed or went away).
  /// Not a protocol message: equivalent to the rate decaying to zero in
  /// a per-packet deployment.
  void remove_stream(ClientId source, const Key& key);

  /// Remove an expired continuous query.
  void remove_query(QueryId id, const Key& key);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] double server_load() const;
  [[nodiscard]] double load_of(const KeyGroup& group) const;
  [[nodiscard]] const GroupState* group_state(const KeyGroup& group) const;
  [[nodiscard]] std::size_t total_queries() const;
  [[nodiscard]] std::size_t total_streams() const;
  /// Depths of this server's active groups (for Figure 4c).
  [[nodiscard]] std::vector<unsigned> active_depths() const;
  [[nodiscard]] bool is_active() const { return table_.active_count() > 0; }

 private:
  struct ChildReport {
    double load = 0;
    bool is_leaf = false;
    SimTime at{0};
  };

  void handle_accept_keygroup(ServerId from, const AcceptKeyGroup& m);
  void handle_load_report(ServerId from, const LoadReport& m);
  void handle_reclaim(ServerId from, const ReclaimKeyGroup& m);
  void handle_reclaim_ack(ServerId from, const ReclaimAck& m);
  void handle_reclaim_refused(ServerId from, const ReclaimRefused& m);
  void handle_replicate(ServerId from, const ReplicateGroup& m);
  void handle_drop_replica(ServerId from, const DropReplica& m);
  void handle_repl_append(ServerId from, const ReplAppend& m);
  void handle_repl_ack(ServerId from, const ReplAck& m);
  void handle_snapshot_offer(ServerId from, const SnapshotOffer& m);
  void handle_snapshot_chunk(ServerId from, const SnapshotChunk& m);
  void handle_ae_probe(ServerId from, const AntiEntropyProbe& m);
  void handle_ae_diff(ServerId from, const AntiEntropyDiff& m);

  /// Push lease-replicas of every active group to its ring successors.
  void send_replicas();
  /// Push one group's replica to its ring successors now (log mode:
  /// snapshot + compact instead of a ReplicateGroup lease).
  void replicate_group(const ServerTableEntry& entry);
  /// Tell replica holders a group stopped being active here.
  void retire_replicas(const KeyGroup& group);

  /// Split `group`, shedding its right half (Section 5). When
  /// `reshed_on_self_map` is set and the right child maps back to this
  /// server, the right group's depth is increased again for "another
  /// randomized attempt" (load-shedding semantics); otherwise both
  /// children simply stay local (administrative splitting).
  void split_group(const KeyGroup& group, bool reshed_on_self_map);

  void send_load_reports();
  void try_split_for_overload();
  void try_consolidate();

  [[nodiscard]] std::optional<KeyGroup> pick_split_candidate();
  [[nodiscard]] std::optional<KeyGroup> pick_merge_candidate() const;

  /// Move the members of `subset` out of `st` into the returned state.
  static GroupState extract_subset(GroupState& st, const KeyGroup& subset);

  /// Drop an emptied ephemeral group (fixed-depth baseline mode).
  void maybe_gc_group(const KeyGroup& group);

  /// Queries-to-STATE_TRANSFER-message accounting.
  [[nodiscard]] std::uint64_t state_msgs_for(std::size_t query_count) const;

  ServerId self_;
  ClashConfig cfg_;
  ServerEnv& env_;
  dht::KeyHasher hasher_;
  AppHooks* app_hooks_ = nullptr;
  storage::NodeStore* storage_ = nullptr;
  ServerTable table_;
  std::map<KeyGroup, GroupState> state_;
  std::map<KeyGroup, ChildReport> child_reports_;  // right-child group -> report
  std::set<KeyGroup> pending_reclaims_;            // right-child groups asked back

  // --- Replication-log internals (src/repl/) ---------------------------
  /// The ring successors holding `group`'s replicas.
  [[nodiscard]] std::vector<ServerId> replica_set(const KeyGroup& group);
  /// Failover found no replica: install an empty root entry so the key
  /// space stays covered (shared by both promotion modes).
  void adopt_bare_group(ServerTableEntry& entry);
  /// Append one op to an active group's log and queue it for the
  /// replica set (no-op unless the log engine is on). Ops queued
  /// during one dispatch tick coalesce into a single ReplAppend frame
  /// per group (flushed through ServerEnv::defer; synchronous
  /// environments flush inline, i.e. per op).
  void log_op(const KeyGroup& group, repl::LogOp op);
  /// Send every queued ReplAppend batch now.
  void flush_pending_appends();
  /// Send (and forget) one group's queued batch — run before its log
  /// is retired or re-epoched so no batch outlives the line it
  /// belongs to.
  void flush_pending_append(const KeyGroup& group);
  /// Start (or restart) a group's log at an epoch strictly above both
  /// `min_epoch` and any epoch this server previously used for it.
  void init_group_log(const KeyGroup& group, std::uint64_t min_epoch);
  /// Retire a group's log, remembering the epoch for reactivations.
  void drop_group_log(const KeyGroup& group);
  /// Snapshot an active group to its whole replica set and compact.
  void snapshot_group(const ServerTableEntry& entry);
  /// Stream one snapshot (offer + chunks) of an active group to `to`.
  void send_snapshot_to(ServerId to, const ServerTableEntry& entry);
  /// Chunk an arbitrary state image at `head` to `to` (owner snapshots
  /// and peer-built repair snapshots share this path). The offer goes
  /// out immediately; chunks flow through the paced outbound cursor
  /// (pump_snapshots) so a large group cannot bury a backpressured
  /// connection in one tick.
  void send_state_snapshot(
      ServerId to, const KeyGroup& group, const GroupState& st,
      repl::LogHead head, bool root, ServerId parent, ServerId owner,
      const std::vector<std::uint8_t>& app_state,
      const std::vector<std::vector<std::uint8_t>>& app_deltas);
  /// Drop the unsent remainder of a transfer (receiver nacked it or
  /// the group left this server); repair restarts it from scratch.
  void cancel_outbound_snapshot(ServerId to, const KeyGroup& group);
  void cancel_outbound_snapshots(const KeyGroup& group);
  /// Periodic anti-entropy: batched (epoch, seq) vectors per holder.
  void send_anti_entropy();
  /// Answer a peer that reported being behind on `group` at `have`.
  void repair_peer(ServerId to, const KeyGroup& group, repl::LogHead have);
  /// Log-mode promotion: pull the freshest suffix from surviving
  /// holders, then install under a bumped epoch.
  bool promote_with_recovery(const KeyGroup& group);

  /// Write `entry`'s current state as its on-disk snapshot (no-op
  /// without a durable store). Baselines anchor WAL replay;
  /// checkpoints additionally advance the truncation floor.
  void persist_group_snapshot(const ServerTableEntry& entry,
                              bool checkpoint);
  /// Make a freshly activated group durable: creates its log (which
  /// writes the baseline snapshot) when no log exists yet.
  void ensure_durable_group(const ServerTableEntry& entry);

  /// Drop replica records nobody has refreshed for several check
  /// periods: an ownership move re-targets the replica set, and the
  /// ex-holders' stale copies must not linger as promotion poison.
  void gc_stale_replicas();

  /// Replicas held on behalf of other owners (replication extension).
  struct ReplicaRecord {
    ServerId owner{};
    bool root = false;
    ServerId parent{};
    GroupState state;
    /// Last time any owner/peer touched this record (lease clock).
    SimTime refreshed{0};

    // Log mode: applied position + retained suffix since the last
    // snapshot (log.head() is the applied head; entries repair peers).
    repl::GroupLog log{0, 0};
    /// Freshest head any owner/peer ever advertised for the group.
    repl::LogHead advertised;
    /// Application state at the last snapshot plus the opaque deltas
    /// logged since — replayed through AppHooks at promotion.
    std::vector<std::uint8_t> app_snapshot;
    std::vector<std::vector<std::uint8_t>> app_tail;

    /// Head of the last transfer this holder tore down and nacked:
    /// the dead stream's remaining chunks must stay silent (one nack
    /// per failed transfer, not one per stale chunk).
    repl::LogHead last_nacked{};

    /// In-flight chunked snapshot assembly (chunks must arrive in
    /// order; a mismatch drops the assembly, nacks the sender for an
    /// immediate restart, and anti-entropy backstops the retry).
    struct PendingSnapshot {
      repl::LogHead head;
      ServerId owner{};
      bool root = false;
      ServerId parent{};
      std::uint32_t total = 0;
      std::uint32_t received = 0;
      GroupState state;
      std::vector<std::uint8_t> app_state;
      std::vector<std::vector<std::uint8_t>> app_deltas;
      /// When the offer opened the assembly (snapshot-transfer span).
      SimTime started{0};
      /// Correlation id from the offer (0 = untraced).
      std::uint64_t trace_id = 0;
      /// InflightTable registration (kSnapshotIn); 0 when untracked.
      std::uint64_t inflight_token = 0;
    };
    std::optional<PendingSnapshot> pending;
  };
  std::map<KeyGroup, ReplicaRecord> replicas_;

  /// Paced outbound snapshot transfers: chunks are pre-cut at offer
  /// time (a stable image regardless of later mutations) and drained
  /// by pump_snapshots as the destination's budget allows.
  struct OutboundSnapshot {
    std::vector<SnapshotChunk> chunks;
    std::size_t next = 0;
    /// InflightTable registration (kSnapshotOut); 0 when untracked.
    std::uint64_t inflight_token = 0;
  };
  std::map<std::pair<ServerId, KeyGroup>, OutboundSnapshot>
      outbound_snapshots_;
  bool pumping_snapshots_ = false;  // re-entrancy guard (nack restarts)

  /// Per-tick ReplAppend batches: ops logged during one dispatch tick,
  /// one frame per group at flush.
  struct PendingAppend {
    std::uint64_t epoch = 0;
    std::uint64_t base_seq = 0;
    /// Correlation id of the traced op (if any) batched here; a batch
    /// coalescing several ops keeps the first traced one's id.
    std::uint64_t trace_id = 0;
    std::vector<repl::LogOp> entries;
  };
  std::map<KeyGroup, PendingAppend> pending_appends_;
  bool append_flush_scheduled_ = false;
  /// Build and fan one batch out to the group's replica set.
  void send_append_batch(const KeyGroup& group, PendingAppend&& batch);

  /// Owner-side logs of the groups this server actively manages.
  /// Acks confirm holder progress; repair is nack-driven, so no
  /// per-holder state is kept here.
  std::map<KeyGroup, repl::GroupLog> logs_;
  /// Last epoch used locally for a no-longer-active group: a
  /// reactivation must start strictly above it so stale copies can
  /// never dominate the new line.
  std::map<KeyGroup, std::uint64_t> retired_epochs_;
  repl::RecoveryCoordinator recovery_;
  /// Replica-lease clock: the GC lease floors at the slowest observed
  /// gap between run_load_check calls (the real refresh cadence).
  SimTime last_load_check_{-1};
  std::int64_t observed_check_gap_usec_ = 0;

  Rng rng_;
  MessageStats stats_;

  // --- Observability (src/obs/) ----------------------------------------
  obs::Hub* hub_ = nullptr;  // env_.obs(), cached at construction
  obs::HistogramHandle commit_latency_us_;
  obs::HistogramHandle failover_us_;
  obs::HistogramHandle snapshot_install_us_;
  obs::Counter puts_total_;
  obs::Counter repl_bytes_total_;
  obs::Counter corrupt_rejected_total_;

  std::map<KeyGroup, GroupCost> group_costs_;
  /// ReplAppend batches in flight: head seq + send time, popped by the
  /// first ok ReplAck at or past that seq (commit-latency histogram).
  struct PendingCommit {
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    SimTime sent{0};
    std::uint64_t trace_id = 0;
  };
  std::map<KeyGroup, std::deque<PendingCommit>> pending_commits_;
  /// Recovery sessions opened at promote time (failover span start).
  std::map<KeyGroup, SimTime> recovery_started_;

  // --- Flight recorder / in-flight table glue --------------------------
  /// Stable correlation tag for a group in flight events (the label
  /// string itself lives in the in-flight table entries).
  [[nodiscard]] static std::uint64_t group_tag(const KeyGroup& group) {
    return std::hash<KeyGroup>{}(group);
  }
  /// Record one lifecycle event in the hub's flight ring (no-op when
  /// observability is detached).
  void flight(obs::FlightKind kind, std::uint64_t a, std::uint64_t b = 0) {
    if (hub_ != nullptr) {
      hub_->flight.record(kind, std::uint32_t(self_.value),
                          env_.now().usec, a, b);
    }
  }
  /// One kReplAppend in-flight op per group while its pending-commit
  /// deque is non-empty (token keyed like pending_commits_).
  std::map<KeyGroup, std::uint64_t> append_ops_;
  /// One kRecoveryPull op per open recovery session.
  std::map<KeyGroup, std::uint64_t> recovery_ops_;
  /// Retire the per-group kReplAppend op (pending commits drained or
  /// invalidated by an epoch change).
  void end_append_op(const KeyGroup& group) {
    const auto it = append_ops_.find(group);
    if (it == append_ops_.end()) return;
    if (hub_ != nullptr) hub_->inflight.end(it->second);
    append_ops_.erase(it);
  }
  void end_recovery_op(const KeyGroup& group) {
    const auto it = recovery_ops_.find(group);
    if (it == recovery_ops_.end()) return;
    if (hub_ != nullptr) hub_->inflight.end(it->second);
    recovery_ops_.erase(it);
  }
  void progress_recovery_op(const KeyGroup& group, std::uint64_t delta) {
    if (hub_ == nullptr) return;
    const auto it = recovery_ops_.find(group);
    if (it != recovery_ops_.end()) {
      hub_->inflight.progress(it->second, env_.now().usec, delta);
    }
  }
  void end_outbound_op(OutboundSnapshot& out) {
    if (hub_ != nullptr && out.inflight_token != 0) {
      hub_->inflight.end(out.inflight_token);
    }
    out.inflight_token = 0;
  }
  /// Group lifecycle hooks with a flight-ring record attached.
  void note_group_activated(const KeyGroup& group) {
    flight(obs::FlightKind::kGroupActivated, group_tag(group));
    env_.on_group_activated(group);
  }
  void note_group_deactivated(const KeyGroup& group) {
    flight(obs::FlightKind::kGroupDeactivated, group_tag(group));
    env_.on_group_deactivated(group);
  }

  /// Correlation id of the operation currently being dispatched
  /// (nonzero only while handling a traced AcceptObject / ReplAppend /
  /// snapshot): every span recorded and every replication message sent
  /// downstream inside the dispatch inherits it, which is what stitches
  /// one query's flow across nodes. Scoped by TraceScope in server.cpp.
  std::uint64_t active_trace_ = 0;
};

}  // namespace clash
