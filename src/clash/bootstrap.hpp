// Deterministic bootstrap tree: the administrative split cascade from
// the depth-0 root down to ClashConfig::initial_depth, computed as pure
// data. The simulator reaches the same state by running force_split;
// the networked deployment installs these entries directly at startup
// (both paths are cross-checked by tests).
#pragma once

#include <map>
#include <vector>

#include "clash/config.hpp"
#include "clash/server_table.hpp"
#include "dht/dht.hpp"

namespace clash {

/// Every table entry each server must hold after bootstrap: the
/// depth-initial_depth root groups (active) plus the inactive lineage
/// entries above them.
[[nodiscard]] std::map<ServerId, std::vector<ServerTableEntry>>
compute_bootstrap_entries(const dht::Dht& dht, const dht::KeyHasher& hasher,
                          const ClashConfig& cfg);

}  // namespace clash
