#include "clash/baseline.hpp"

#include <limits>

namespace clash {

ClashConfig fixed_depth_config(const ClashConfig& base, unsigned fixed_depth) {
  ClashConfig cfg = base;
  cfg.initial_depth = fixed_depth;
  // Thresholds no basic-DHT server ever crosses: never split, never merge.
  cfg.overload_frac = std::numeric_limits<double>::infinity();
  cfg.underload_frac = 0.0;
  cfg.enable_consolidation = false;
  cfg.max_splits_per_check = 0;
  cfg.ephemeral_groups = true;
  return cfg;
}

PowerOfDChoices::PowerOfDChoices(unsigned fixed_depth, unsigned d,
                                 unsigned hash_bits, dht::KeyHasher::Algo algo,
                                 std::uint64_t salt_base)
    : fixed_depth_(fixed_depth) {
  hashers_.reserve(d);
  for (unsigned i = 0; i < d; ++i) {
    hashers_.emplace_back(hash_bits, algo,
                          salt_base + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
}

std::vector<dht::HashKey> PowerOfDChoices::candidates(const Key& key) const {
  std::vector<dht::HashKey> out;
  out.reserve(hashers_.size());
  const Key vkey = shape(key, fixed_depth_);
  for (const auto& h : hashers_) out.push_back(h.hash_key(vkey));
  return out;
}

}  // namespace clash
