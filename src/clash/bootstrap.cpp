#include "clash/bootstrap.hpp"

namespace clash {

std::map<ServerId, std::vector<ServerTableEntry>> compute_bootstrap_entries(
    const dht::Dht& dht, const dht::KeyHasher& hasher,
    const ClashConfig& cfg) {
  std::map<ServerId, std::vector<ServerTableEntry>> out;

  // Walk the split cascade exactly as ClashServer::split_group would:
  // the left child stays with its parent's owner (same virtual key);
  // the right child goes to Map(f(right virtual key)).
  struct Pending {
    KeyGroup group;
    ServerId owner;
    bool lineage_root;  // depth-0 entry has ParentID = -1
    ServerId parent;
  };

  const KeyGroup root = KeyGroup::root(cfg.key_width);
  const ServerId root_owner = dht.map(hasher.hash_key(root.virtual_key()));
  std::vector<Pending> stack{{root, root_owner, true, ServerId{}}};

  while (!stack.empty()) {
    const Pending cur = stack.back();
    stack.pop_back();

    ServerTableEntry entry;
    entry.group = cur.group;
    entry.parent = cur.parent;

    if (cur.group.depth() >= cfg.initial_depth) {
      // A leaf of the bootstrap tree: an active root entry — the
      // administrative floor consolidation cannot collapse through.
      entry.root = true;
      entry.active = true;
      out[cur.owner].push_back(entry);
      continue;
    }

    const KeyGroup left = cur.group.left_child();
    const KeyGroup right = cur.group.right_child();
    const ServerId right_owner =
        dht.map(hasher.hash_key(right.virtual_key()));

    entry.root = cur.lineage_root;
    entry.active = false;
    entry.right_child = right_owner;
    out[cur.owner].push_back(entry);

    stack.push_back({left, cur.owner, false, cur.owner});
    stack.push_back({right, right_owner, false, cur.owner});
  }
  return out;
}

}  // namespace clash
