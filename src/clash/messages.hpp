// CLASH protocol messages (Section 5). Plain structs so the same
// handlers run under the simulator (direct dispatch), unit tests, and
// the TCP transport (via wire/codec).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "clash/objects.hpp"
#include "clash/stats.hpp"
#include "common/types.hpp"
#include "keys/key.hpp"
#include "keys/key_group.hpp"
#include "repl/op.hpp"

namespace clash {

/// Client -> server. The client believes `key`'s group has depth
/// `depth`. `probe_only` resolves without storing (used by lookups).
struct AcceptObject {
  Key key{0, 24};
  unsigned depth = 0;
  ObjectKind kind = ObjectKind::kData;
  QueryId query_id{};     // valid when kind == kQuery
  double stream_rate = 0; // valid when kind == kData (sim rate model)
  ClientId source{};
  bool probe_only = false;
  /// Cross-node correlation id: 0 = untraced, otherwise every span this
  /// object's processing produces (ingest, match, commit, snapshot)
  /// carries the id, on every node it touches.
  std::uint64_t trace_id = 0;
};

/// Server -> client, cases (a) and (b) of Section 5: object accepted;
/// `depth` echoes the correct depth (== request depth in case (a)).
struct AcceptObjectOk {
  unsigned depth = 0;
};

/// Server -> client, case (c): not responsible; `dmin` is the longest
/// prefix match between the key and any ServerTable entry.
struct IncorrectDepth {
  unsigned dmin = 0;
};

/// Parent -> child: transfer responsibility for `group`. Receivers MUST
/// accept (they may immediately split further to shed). Carries the
/// migrated state, including an opaque application payload produced by
/// the AppHooks state-distribution API (Section 7: the game-middleware
/// extension).
struct AcceptKeyGroup {
  KeyGroup group;
  ServerId parent;  // who keeps the parent table entry
  /// Handoff transfers (ring re-admission) preserve the entry's root
  /// flag and lineage; splits always send root == false.
  bool root = false;
  /// Highest log epoch the sender used for the group (0 when unknown /
  /// snapshot mode); the receiver starts its log strictly above it.
  std::uint64_t epoch = 0;
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
  std::vector<std::uint8_t> app_state;
};

struct AcceptKeyGroupAck {
  KeyGroup group;
};

/// Leaf -> server holding the parent entry: periodic load report
/// enabling bottom-up consolidation.
struct LoadReport {
  KeyGroup group;
  double load = 0;       // load units of this group at the reporting leaf
  bool is_leaf = true;   // false once the reporter split the group
};

/// Parent -> right child: reclaim `group` (consolidation). Child
/// accepts only if its entry is still an active leaf.
struct ReclaimKeyGroup {
  KeyGroup group;
};

/// Child -> parent: reclaim accepted; carries migrated-back state.
struct ReclaimAck {
  KeyGroup group;
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
  std::vector<std::uint8_t> app_state;
};

/// Child -> parent: reclaim refused (group was split further meanwhile).
struct ReclaimRefused {
  KeyGroup group;
};

/// Owner -> ring successors: lease-style replica refresh of an active
/// group (fault-tolerance extension; ClashConfig::replication_factor).
struct ReplicateGroup {
  KeyGroup group;
  ServerId owner;
  bool root = false;
  ServerId parent{};
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
};

/// Owner -> replica holder: the group is no longer active here (split
/// or merged away); discard the replica.
struct DropReplica {
  KeyGroup group;
};

// --- Replication & recovery (src/repl/) -------------------------------

/// Owner (or a repairing peer) -> replica holder: a contiguous log
/// suffix. Entries carry seqs (base_seq, base_seq + entries.size()]
/// under `epoch`; the receiver must sit at (epoch, >= base_seq) to
/// apply (overlap is skipped idempotently), otherwise it answers with
/// a ReplAck{ok: false} naming its real head so the sender can diff
/// it forward.
struct ReplAppend {
  KeyGroup group;
  ServerId owner;  // authoritative owner (may differ from the sender)
  std::uint64_t epoch = 0;
  std::uint64_t base_seq = 0;
  /// Correlation id of the traced operation (if any) in this batch;
  /// 0 = untraced. Lets the replica's apply span join the owner's trace.
  std::uint64_t trace_id = 0;
  std::vector<repl::LogOp> entries;
  /// CRC32 over the encoded content (wire::content_crc) — the
  /// receiver's fence against in-flight byte flips that still decode.
  /// 0 = unchecksummed (legacy senders / hand-built test messages):
  /// the fence is skipped, the epoch/seq gates still apply.
  std::uint32_t checksum = 0;
};

/// Replica -> sender: applied up to `head`. `ok == false` flags an
/// append that could not be applied; the head tells the sender where
/// to diff from.
struct ReplAck {
  KeyGroup group;
  repl::LogHead head;
  bool ok = true;
};

/// Owner (or repairing peer) -> holder: a full snapshot of the group at
/// `head` follows in `total_chunks` SnapshotChunk messages. Carries the
/// replica-record metadata (owner, root flag, lineage parent).
struct SnapshotOffer {
  KeyGroup group;
  ServerId owner;
  repl::LogHead head;
  bool root = false;
  ServerId parent{};
  std::uint32_t total_chunks = 1;
  /// Correlation id for the whole transfer; 0 = untraced.
  std::uint64_t trace_id = 0;
};

/// One slice of an announced snapshot: a batch of streams/queries plus
/// an application-state fragment (fragments concatenate in chunk
/// order). `app_deltas` is non-empty only for peer-built snapshots:
/// opaque application deltas logged after the app fragment was cut,
/// replayed in order at promotion.
struct SnapshotChunk {
  KeyGroup group;
  repl::LogHead head;
  std::uint32_t index = 0;
  std::uint32_t total = 1;
  /// Correlation id echoing the offer's; 0 = untraced.
  std::uint64_t trace_id = 0;
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
  std::vector<std::uint8_t> app_state;
  std::vector<std::vector<std::uint8_t>> app_deltas;
  /// Content CRC fence (see ReplAppend::checksum); 0 = unchecksummed.
  std::uint32_t checksum = 0;
};

/// One element of an anti-entropy (epoch, seq) vector.
struct GroupHead {
  KeyGroup group;
  repl::LogHead head;
};

/// Owner -> replica set (anti-entropy timer): "my active groups stand
/// at these heads". Holders that are behind answer AntiEntropyDiff;
/// up-to-date holders stay silent — the steady-state cost is one tiny
/// head vector per period instead of a full state snapshot.
struct AntiEntropyProbe {
  ServerId owner;
  std::vector<GroupHead> heads;
};

/// "I am behind": the receiver (owner or any fresher holder) responds
/// with the missing log suffix (ReplAppend) or a snapshot when the
/// suffix was compacted away. Also the failover pull — a promoting
/// heir sends its replica heads to the surviving holders and installs
/// only after the freshest peer repaired it.
struct AntiEntropyDiff {
  std::vector<GroupHead> behind;
};

// --- SWIM membership (src/membership/) --------------------------------

/// Member lifecycle states disseminated by the membership subsystem.
/// Ordering matters for update precedence: at equal incarnation,
/// kDead > kSuspect > kAlive.
enum class MemberState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

/// One piggybacked membership rumour: `subject` was observed in `state`
/// at `incarnation`. Incarnations are bumped only by the subject itself
/// (to refute suspicion) and totally order conflicting rumours.
struct MemberUpdate {
  ServerId subject{};
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
};

/// SWIM probe messages. Every gossip frame carries a bounded batch of
/// membership updates, so dissemination rides on the failure-detection
/// traffic instead of needing its own.
enum class GossipKind : std::uint8_t {
  kPing = 0,     // are you alive? (direct probe)
  kPingReq = 1,  // please probe `target` on my behalf (indirection)
  kAck = 2,      // `target` is alive; answers ping seq `sequence`
};

// --- Cost census (src/obs/census.*) -----------------------------------

/// One entry of a node's top-K cost ranking: the group and the Gray
/// cost vector its owner metered for it.
struct CensusGroupCost {
  KeyGroup group;
  GroupCost cost;
};

/// One node's periodic self-portrait, disseminated by piggybacking on
/// SWIM gossip exactly like MemberUpdate rumours. (incarnation, seq)
/// totally orders records per node: receivers keep the lexicographic
/// max and drop the rest, so stale records lose and replays are
/// harmless. The per-record CRC fences each record independently of the
/// enclosing Gossip checksum — a record relayed through many frames
/// keeps its own integrity proof.
struct NodeCensusRecord {
  ServerId node{};
  std::uint64_t incarnation = 0;
  std::uint64_t seq = 0;          // bumped by `node` on every refresh
  double load = 0;                // ServerTable load units
  std::uint32_t active_groups = 0;
  std::uint32_t replica_records = 0;
  std::uint64_t queries = 0;
  std::uint64_t streams = 0;
  GroupCost totals;               // sum over ALL groups, not just top-K
  std::vector<CensusGroupCost> top_groups;  // by total_bytes() desc
  /// CRC32 over the encoded record minus this field
  /// (wire::census_record_crc); 0 = unchecksummed.
  std::uint32_t checksum = 0;
};

struct Gossip {
  GossipKind kind = GossipKind::kPing;
  std::uint64_t sequence = 0;  // correlates acks with pending probes
  ServerId target{};           // kPingReq: node to probe; kAck: who acked
  std::vector<MemberUpdate> updates;
  /// Piggybacked cost-census records (obs::Census::pick_records), each
  /// with its own CRC fence. Bounded by MembershipConfig::
  /// census_max_records per frame; empty when no census is attached.
  std::vector<NodeCensusRecord> census;
  /// Content CRC fence (see ReplAppend::checksum); 0 = unchecksummed.
  /// Membership rumours are the highest-blast-radius payload to
  /// corrupt — a flipped incarnation or state could kill an innocent
  /// member cluster-wide — so gossip carries the fence too.
  std::uint32_t checksum = 0;
};

using Message =
    std::variant<AcceptObject, AcceptObjectOk, IncorrectDepth, AcceptKeyGroup,
                 AcceptKeyGroupAck, LoadReport, ReclaimKeyGroup, ReclaimAck,
                 ReclaimRefused, ReplicateGroup, DropReplica, Gossip,
                 ReplAppend, ReplAck, SnapshotOffer, SnapshotChunk,
                 AntiEntropyProbe, AntiEntropyDiff>;

/// Reply to an ACCEPT_OBJECT.
using AcceptObjectReply = std::variant<AcceptObjectOk, IncorrectDepth>;

}  // namespace clash
