// CLASH protocol messages (Section 5). Plain structs so the same
// handlers run under the simulator (direct dispatch), unit tests, and
// the TCP transport (via wire/codec).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/types.hpp"
#include "keys/key.hpp"
#include "keys/key_group.hpp"

namespace clash {

/// What an ACCEPT_OBJECT carries: a data packet (transient, processed
/// and dropped) or a continuous query (stored state, migrated on split).
enum class ObjectKind : std::uint8_t { kData, kQuery };

/// A stored stream registration: the sim registers each source's
/// per-stream data rate with the server managing its group so loads are
/// exact without per-packet events.
struct StreamInfo {
  ClientId source;
  Key key{0, 24};
  double rate = 0;  // packets/sec
};

/// A stored continuous query.
struct QueryInfo {
  QueryId id;
  Key key{0, 24};
};

/// Client -> server. The client believes `key`'s group has depth
/// `depth`. `probe_only` resolves without storing (used by lookups).
struct AcceptObject {
  Key key{0, 24};
  unsigned depth = 0;
  ObjectKind kind = ObjectKind::kData;
  QueryId query_id{};     // valid when kind == kQuery
  double stream_rate = 0; // valid when kind == kData (sim rate model)
  ClientId source{};
  bool probe_only = false;
};

/// Server -> client, cases (a) and (b) of Section 5: object accepted;
/// `depth` echoes the correct depth (== request depth in case (a)).
struct AcceptObjectOk {
  unsigned depth = 0;
};

/// Server -> client, case (c): not responsible; `dmin` is the longest
/// prefix match between the key and any ServerTable entry.
struct IncorrectDepth {
  unsigned dmin = 0;
};

/// Parent -> child: transfer responsibility for `group`. Receivers MUST
/// accept (they may immediately split further to shed). Carries the
/// migrated state, including an opaque application payload produced by
/// the AppHooks state-distribution API (Section 7: the game-middleware
/// extension).
struct AcceptKeyGroup {
  KeyGroup group;
  ServerId parent;  // who keeps the parent table entry
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
  std::vector<std::uint8_t> app_state;
};

struct AcceptKeyGroupAck {
  KeyGroup group;
};

/// Leaf -> server holding the parent entry: periodic load report
/// enabling bottom-up consolidation.
struct LoadReport {
  KeyGroup group;
  double load = 0;       // load units of this group at the reporting leaf
  bool is_leaf = true;   // false once the reporter split the group
};

/// Parent -> right child: reclaim `group` (consolidation). Child
/// accepts only if its entry is still an active leaf.
struct ReclaimKeyGroup {
  KeyGroup group;
};

/// Child -> parent: reclaim accepted; carries migrated-back state.
struct ReclaimAck {
  KeyGroup group;
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
  std::vector<std::uint8_t> app_state;
};

/// Child -> parent: reclaim refused (group was split further meanwhile).
struct ReclaimRefused {
  KeyGroup group;
};

/// Owner -> ring successors: lease-style replica refresh of an active
/// group (fault-tolerance extension; ClashConfig::replication_factor).
struct ReplicateGroup {
  KeyGroup group;
  ServerId owner;
  bool root = false;
  ServerId parent{};
  std::vector<StreamInfo> streams;
  std::vector<QueryInfo> queries;
};

/// Owner -> replica holder: the group is no longer active here (split
/// or merged away); discard the replica.
struct DropReplica {
  KeyGroup group;
};

// --- SWIM membership (src/membership/) --------------------------------

/// Member lifecycle states disseminated by the membership subsystem.
/// Ordering matters for update precedence: at equal incarnation,
/// kDead > kSuspect > kAlive.
enum class MemberState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

/// One piggybacked membership rumour: `subject` was observed in `state`
/// at `incarnation`. Incarnations are bumped only by the subject itself
/// (to refute suspicion) and totally order conflicting rumours.
struct MemberUpdate {
  ServerId subject{};
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
};

/// SWIM probe messages. Every gossip frame carries a bounded batch of
/// membership updates, so dissemination rides on the failure-detection
/// traffic instead of needing its own.
enum class GossipKind : std::uint8_t {
  kPing = 0,     // are you alive? (direct probe)
  kPingReq = 1,  // please probe `target` on my behalf (indirection)
  kAck = 2,      // `target` is alive; answers ping seq `sequence`
};

struct Gossip {
  GossipKind kind = GossipKind::kPing;
  std::uint64_t sequence = 0;  // correlates acks with pending probes
  ServerId target{};           // kPingReq: node to probe; kAck: who acked
  std::vector<MemberUpdate> updates;
};

using Message =
    std::variant<AcceptObject, AcceptObjectOk, IncorrectDepth, AcceptKeyGroup,
                 AcceptKeyGroupAck, LoadReport, ReclaimKeyGroup, ReclaimAck,
                 ReclaimRefused, ReplicateGroup, DropReplica, Gossip>;

/// Reply to an ACCEPT_OBJECT.
using AcceptObjectReply = std::variant<AcceptObjectOk, IncorrectDepth>;

}  // namespace clash
