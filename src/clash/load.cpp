#include "clash/load.hpp"

#include <cmath>

namespace clash {

double group_load(const ClashConfig& cfg, double data_rate,
                  std::size_t query_count) {
  return cfg.load_alpha * data_rate +
         cfg.load_beta * std::log2(1.0 + double(query_count));
}

RateEstimator::RateEstimator(SimDuration half_life) {
  decay_per_usec_ = std::log(2.0) / double(half_life.usec);
}

void RateEstimator::record(SimTime now, double amount) {
  if (!primed_) {
    value_ = 0;
    last_ = now;
    primed_ = true;
  }
  const double dt_usec = double(now.usec - last_.usec);
  if (dt_usec > 0) {
    value_ *= std::exp(-decay_per_usec_ * dt_usec);
    last_ = now;
  }
  // An impulse of `amount` events adds amount * decay_rate to the
  // steady-state estimate (unit-area exponential kernel).
  value_ += amount * decay_per_usec_ * 1e6;  // convert to events/sec
}

double RateEstimator::rate(SimTime now) const {
  if (!primed_) return 0;
  const double dt_usec = double(now.usec - last_.usec);
  return dt_usec <= 0 ? value_ : value_ * std::exp(-decay_per_usec_ * dt_usec);
}

void RateEstimator::reset() {
  value_ = 0;
  primed_ = false;
}

LoadVerdict classify_load(const ClashConfig& cfg, double load) {
  if (load > cfg.overload_frac * cfg.capacity) return LoadVerdict::kOverloaded;
  if (load < cfg.underload_frac * cfg.capacity) {
    return LoadVerdict::kUnderloaded;
  }
  return LoadVerdict::kNormal;
}

}  // namespace clash
